// jsi — command-line front end for the jsonsi schema-inference library.
//
// Subcommands:
//   jsi infer <file.jsonl | ->  [--pretty] [--stats] [--annotate]
//             [--threads N]
//             [--partitions N] [--skip-malformed] [--max-error-rate R]
//             [--no-direct] [--max-depth N] [--max-line-bytes N]
//             [--checkpoint F [--checkpoint-every N] [--resume]]
//             [--memory-watermark-mb N]
//             [--io auto|mmap|read|stream] [--read-ahead-mb N]
//       Infers and prints the fused schema of a JSON-Lines input
//       ('-' streams stdin in bounded batches, no full buffering).
//       --io selects the input source (src/io/): auto (default) memory-maps
//       regular files zero-copy and streams pipes; mmap forces the map;
//       read and stream pump bounded --read-ahead-mb batches through the
//       streaming inferencer with overlapped read-ahead — constant memory,
//       so files larger than RAM infer fine. Every mode produces
//       byte-identical schemas, errors and ingestion stats. --threads N runs the whole pipeline — chunked
//       ingestion, map, tree-reduce — on N workers (default: hardware
//       concurrency; 1 = the exact serial path, structurally identical
//       output). --skip-malformed ingests dirty inputs in
//       degraded mode (bad lines are counted, reported on stderr, and
//       skipped); --max-error-rate R skips bad lines only while they stay
//       within a fraction R of the input, failing otherwise. Ingestion is
//       DOM-free by default (parse and Map fused into one pass over the
//       text); --no-direct restores the parse-then-infer pipeline for
//       A/B comparison.
//       Resource budgets (docs/robustness.md): --max-depth caps nesting
//       (default 512) and --max-line-bytes caps per-line size; a document
//       over budget is a malformed line under the active policy, with
//       identical errors on the DOM and direct paths. --memory-watermark-mb
//       soft-caps the resident auxiliary state (checkpointed runs only).
//       Durability: --checkpoint F streams the input and atomically saves
//       the full inference state to F every --checkpoint-every lines
//       (default 100000); --resume restores F and continues from its byte
//       offset — the final schema is identical to an uninterrupted run.
//       --annotate collects the value-statistics lattice beside the schema
//       (docs/annotations.md) and prints any tagged-union refinements it
//       supports; with --stats the per-position digest goes to stderr.
//       Annotations are exactly identical across serial, --threads N and
//       chunk-parallel runs. Not compatible with --checkpoint.
//   jsi gen <github|twitter|wikidata|nytimes> <count> [--seed S]
//       Emits a synthetic dataset as JSON-Lines on stdout.
//   jsi paths <file.jsonl | ->
//       Prints every label path traversable in the input, with counts.
//   jsi check <file.jsonl | -> --schema '<type expression>'
//       Validates every record against a schema; prints the first few
//       violations and exits non-zero if any record fails.
//   jsi export <file.jsonl | -> [--annotate]
//       Infers the schema and emits it as a JSON Schema (draft 2020-12)
//       document. --annotate additionally emits data-supported validation
//       facets (minimum/maximum, minLength/maxLength, enum) and encodes
//       refined tagged unions as a "oneOf" of discriminator constraints.
//   jsi annotate <file.jsonl | -> [--no-stats]
//       Infers the statistics-annotated schema (per-field counts,
//       provenance, value ranges).
//   jsi diff <old.types> <new.types>
//       Diffs two schema files (one type expression each) and prints the
//       change report; exits 2 when the schemas differ.
//   jsi diff --data <old.jsonl> <new.jsonl>
//       Infers both datasets with annotations and diffs structure AND
//       refinement drift (discriminators and variants appearing,
//       disappearing or moving); exits 2 when anything changed.
//   jsi analyze <file.jsonl | ->
//       Flags record positions that encode data in keys (the Wikidata
//       design smell of Section 6.1 of the paper).
//   jsi expand <file.jsonl | -> --pattern '<a.*.c / **.id>'
//       Expands a wildcard path pattern against the inferred schema.
//   jsi repo add <repo.txt> <source> <file.jsonl | ->
//       Infers the batch's schema and registers it in a persistent schema
//       repository (created on first use); prints drift when it occurs.
//   jsi repo show <repo.txt> [source]
//       Prints registered sources, or one source's version history.
//   jsi codegen <file.jsonl | -> [--root Name] [--namespace ns]
//       Emits C++17 struct bindings for the inferred schema.
//   jsi serve [--port N] [--bind ADDR] [--threads N] [--repo FILE]
//             [--max-body-mb N]
//       Runs the long-running multi-tenant inference daemon (src/server/):
//       per-tenant sessions over local HTTP/1.1, JSONL ingest batches,
//       JSON Schema export, live Prometheus /metrics, graceful
//       SIGINT/SIGTERM drain that checkpoints durable sessions. --port 0
//       (the default) binds an ephemeral port; the bound address is
//       printed on stdout. See docs/server.md for the protocol.
//
// Signals: a checkpointed `jsi infer` and `jsi serve` install SIGINT/
// SIGTERM handlers (server/shutdown.h). `jsi infer --checkpoint F` saves a
// final checkpoint between batches and exits 3 (resume with --resume);
// `jsi serve` drains in-flight requests and checkpoints durable sessions.
//
// Global flags (every subcommand):
//   --metrics-out <file>   Enables telemetry and writes the end-of-run
//                          metrics snapshot to <file> — Prometheus text
//                          when the name ends in .prom, JSON otherwise.
//   --trace-out <file>     Enables telemetry and writes recorded spans as
//                          Chrome trace_event JSON (load in about:tracing
//                          or https://ui.perfetto.dev).
//   --no-intern            Disables hash-consed type interning and fusion
//                          memoization (docs/performance.md) for this run —
//                          the escape hatch for A/B timing and debugging;
//                          results are structurally identical either way.
//   --simd <kernel>        Pins the structural-index scan kernel: auto
//                          (default: best available), scalar, sse4, avx2,
//                          or neon. Unavailable kernels fall back to scalar
//                          with a warning; unknown names are a usage error.
//                          Equivalent to JSI_FORCE_KERNEL=<kernel>; the
//                          flag wins when both are given.
//   Value flags accept `--flag value` and `--flag=value` spellings.
//
// Exit codes: 0 success, 1 usage error, 2 runtime/validation failure,
// 3 interrupted by SIGINT/SIGTERM with state saved (checkpointed infer).

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "annotate/annotation.h"
#include "annotate/counted_schema.h"
#include "annotate/refine.h"
#include "core/checkpoint.h"
#include "core/schema_inferencer.h"
#include "core/streaming_inferencer.h"
#include "diff/schema_diff.h"
#include "export/cpp_codegen.h"
#include "export/json_schema.h"
#include "query/path_expansion.h"
#include "repository/schema_repository.h"
#include "stats/key_analysis.h"
#include "datagen/generator.h"
#include "json/jsonl.h"
#include "json/serializer.h"
#include "json/simd/kernel.h"
#include "server/server.h"
#include "server/shutdown.h"
#include "stats/paths.h"
#include "support/string_util.h"
#include "telemetry/telemetry.h"
#include "fusion/fuse_cache.h"
#include "core/io_pump.h"
#include "io/input_source.h"
#include "io/pipeline_reader.h"
#include "types/explain.h"
#include "types/interner.h"
#include "types/membership.h"
#include "types/printer.h"
#include "types/type_parser.h"

namespace {

using jsonsi::Result;
using jsonsi::core::Schema;
using jsonsi::core::SchemaInferencer;

int Usage() {
  std::cerr <<
      "usage:\n"
      "  jsi infer <file.jsonl | -> [--pretty] [--stats] [--annotate]\n"
      "            [--threads N]\n"
      "            [--partitions N] [--skip-malformed] [--max-error-rate R]\n"
      "            [--no-direct] [--max-depth N] [--max-line-bytes N]\n"
      "            [--checkpoint F [--checkpoint-every N] [--resume]]\n"
      "            [--memory-watermark-mb N]\n"
      "            [--io auto|mmap|read|stream] [--read-ahead-mb N]\n"
      "  jsi gen <github|twitter|wikidata|nytimes> <count> [--seed S]\n"
      "  jsi paths <file.jsonl | ->\n"
      "  jsi check <file.jsonl | -> --schema '<type expression>'\n"
      "  jsi export <file.jsonl | -> [--annotate]\n"
      "  jsi annotate <file.jsonl | -> [--no-stats]\n"
      "  jsi diff <old.types> <new.types>\n"
      "  jsi diff --data <old.jsonl> <new.jsonl>\n"
      "  jsi analyze <file.jsonl | ->\n"
      "  jsi expand <file.jsonl | -> --pattern '<pattern>'\n"
      "  jsi repo add <repo.txt> <source> <file.jsonl | ->\n"
      "  jsi repo show <repo.txt> [source]\n"
      "  jsi codegen <file.jsonl | -> [--root Name] [--namespace ns]\n"
      "  jsi serve [--port N] [--bind ADDR] [--threads N] [--repo FILE]\n"
      "            [--max-body-mb N]\n"
      "global flags: --metrics-out <file>  --trace-out <file>  --no-intern\n"
      "              --simd <auto|scalar|sse4|avx2|neon>\n";
  return 1;
}

Result<std::vector<jsonsi::json::ValueRef>> ReadInput(
    const std::string& arg, const jsonsi::json::IngestOptions& ingest = {},
    jsonsi::json::IngestStats* stats = nullptr) {
  if (arg == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    return jsonsi::json::ParseJsonLines(buffer.str(), ingest, stats);
  }
  return jsonsi::json::ReadJsonLinesFile(arg, ingest, stats);
}

// Degraded-mode report for inputs read with a non-strict policy.
void ReportIngest(const jsonsi::json::IngestStats& stats) {
  if (stats.malformed_lines == 0) return;
  std::cerr << "jsi: skipped " << stats.malformed_lines
            << " malformed line(s) of " << stats.lines_read << " ("
            << jsonsi::FormatFixed(100.0 * stats.ErrorRate(), 2) << "%)\n";
  for (const auto& e : stats.errors) {
    std::cerr << "jsi:   line " << e.line_number << " @ byte " << e.byte_offset
              << ": " << e.message << "\n";
  }
}

// Accepts both spellings: `--flag value` and `--flag=value`.
std::optional<std::string> FlagValue(std::vector<std::string>& args,
                                     const std::string& flag) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == flag && i + 1 < args.size()) {
      std::string value = args[i + 1];
      args.erase(args.begin() + i, args.begin() + i + 2);
      return value;
    }
    if (args[i].size() > flag.size() + 1 &&
        args[i].compare(0, flag.size(), flag) == 0 &&
        args[i][flag.size()] == '=') {
      std::string value = args[i].substr(flag.size() + 1);
      args.erase(args.begin() + i);
      return value;
    }
  }
  return std::nullopt;
}

bool Flag(std::vector<std::string>& args, const std::string& flag) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == flag) {
      args.erase(args.begin() + i);
      return true;
    }
  }
  return false;
}

int BadFlagValue(const std::string& flag, const std::string& value) {
  std::cerr << "jsi: " << flag << " needs a numeric value, got '" << value
            << "'\n";
  return Usage();
}

// --stats report shared by the batch and checkpointed-streaming infer paths.
void PrintInferStats(const Schema& schema, size_t threads) {
  const auto& s = schema.stats;
  // Ingestion-mode row: which pipeline typed the records, so A/B runs
  // (--no-direct vs default) are self-describing.
  const char* mode = s.direct_records > 0
                         ? (s.dom_records > 0 ? "mixed" : "direct")
                         : (s.dom_records > 0 ? "dom" : "direct");
  std::cerr << "threads:        " << threads << "\n"
            << "simd:           "
            << jsonsi::json::simd::KernelName(
                   jsonsi::json::simd::ActiveKernel())
            << "\n"
            << "ingestion:      " << mode << " (direct "
            << jsonsi::WithThousands(static_cast<int64_t>(s.direct_records))
            << " / dom "
            << jsonsi::WithThousands(static_cast<int64_t>(s.dom_records))
            << ")\n"
            << "records:        "
            << jsonsi::WithThousands(static_cast<int64_t>(s.record_count))
            << "\n"
            << "distinct types: "
            << jsonsi::WithThousands(
                   static_cast<int64_t>(s.distinct_type_count))
            << "\n"
            << "type size:      min " << s.min_type_size << " / max "
            << s.max_type_size << " / avg "
            << jsonsi::FormatFixed(s.avg_type_size, 1) << "\n"
            << "fused size:     " << schema.type->size() << "\n"
            << "inference:      " << jsonsi::FormatFixed(s.infer_seconds, 3)
            << "s\nfusion:         "
            << jsonsi::FormatFixed(s.fuse_seconds, 3) << "s\n";
  if (jsonsi::telemetry::Enabled()) {
    // Counter digest of the run (full detail goes to --metrics-out).
    auto snap = jsonsi::telemetry::MetricsRegistry::Global().Snapshot();
    std::cerr << "telemetry:      parse " << snap.CounterValue("parse.calls")
              << " / fuse " << snap.CounterValue("fuse.calls")
              << " / pool tasks "
              << snap.CounterValue("pool.tasks_completed") << " / retries "
              << snap.CounterValue("retry.retries") << "\n";
  }
  if (jsonsi::types::InterningEnabled()) {
    // Interning/memoization digest — always-on internal stats, no
    // telemetry needed (docs/performance.md).
    auto is = jsonsi::types::TypeInterner::Global().stats();
    auto cs = jsonsi::fusion::FuseCache::Global().stats();
    std::cerr << "interning:      "
              << jsonsi::FormatFixed(is.HitRate() * 100, 1)
              << "% intern hits (" << is.size << " live) / "
              << jsonsi::FormatFixed(cs.HitRate() * 100, 1)
              << "% fuse-cache hits (" << cs.size << " live)\n";
  }
}

// Checkpointed streaming inference: feed the input to a StreamingInferencer
// in --checkpoint-every-line batches and atomically save the full stream
// state after each one. --resume restores the checkpoint and restarts
// reading at its bytes_consumed offset; by associativity of fusion the
// final schema is TypeEquals-identical to an uninterrupted run.
int RunInferCheckpointed(jsonsi::io::InputSource& source,
                         const jsonsi::core::InferenceOptions& options,
                         const std::string& checkpoint_path, bool resume,
                         uint64_t checkpoint_every, uint64_t watermark_mb,
                         bool pretty, bool stats) {
  jsonsi::core::StreamingOptions sopts;
  sopts.parse = options.ingest.parse;
  sopts.on_malformed = options.ingest.on_malformed;
  sopts.max_error_rate = options.ingest.max_error_rate;
  sopts.min_lines_for_rate = options.ingest.min_lines_for_rate;
  sopts.max_recorded_errors = options.ingest.max_recorded_errors;
  sopts.direct_infer = options.direct_infer;
  sopts.soft_memory_limit_bytes = watermark_mb * (1ull << 20);
  jsonsi::core::StreamingInferencer stream(sopts);
  uint64_t pos = 0;
  if (resume) {
    jsonsi::Status loaded =
        jsonsi::core::LoadCheckpoint(checkpoint_path, &stream);
    if (!loaded.ok()) {
      std::cerr << "jsi: cannot resume: " << loaded << "\n";
      return 2;
    }
    pos = stream.ingest_stats().bytes_consumed;
    if (std::optional<uint64_t> size = source.SizeBytes();
        size && pos > *size) {
      std::cerr << "jsi: checkpoint offset " << pos
                << " is past the end of the input (" << *size
                << " bytes) — wrong input file?\n";
      return 2;
    }
    std::cerr << "jsi: resumed from " << checkpoint_path << " at byte " << pos
              << " (" << stream.record_count() << " records)\n";
  }

  uint64_t saves = 0;
  auto save = [&]() -> jsonsi::Status {
    jsonsi::Status st = jsonsi::core::SaveCheckpoint(stream, checkpoint_path);
    if (st.ok()) ++saves;
    return st;
  };
  // A checkpointed run is exactly the kind of long job that gets SIGTERMed
  // (deploys, preemption): arm the shared shutdown latch and save a final
  // checkpoint between batches instead of losing the run. Same drain
  // machinery `jsi serve` uses.
  jsonsi::server::InstallShutdownSignalHandlers();
  // The pipeline reader resumes at the checkpoint's exact bytes_consumed
  // offset and cuts batches on line boundaries, so batching never changes
  // what each Add call sees. Saves land between batches, whenever
  // --checkpoint-every lines have accumulated since the last one.
  jsonsi::io::PipelineReader reader(&source, options.io, pos);
  uint64_t last_saved_lines = stream.ingest_stats().lines_read;
  bool interrupted = false;
  jsonsi::Status save_failure;
  jsonsi::core::PumpOptions pump;
  pump.num_threads = options.num_threads;
  pump.after_batch = [&]() -> jsonsi::Result<bool> {
    if (jsonsi::server::ShutdownRequested()) {
      if (jsonsi::Status cp = save(); !cp.ok()) {
        save_failure = cp;
        return cp;
      }
      interrupted = true;
      return false;
    }
    if (stream.ingest_stats().lines_read - last_saved_lines >=
        checkpoint_every) {
      if (jsonsi::Status cp = save(); !cp.ok()) {
        save_failure = cp;
        return cp;
      }
      last_saved_lines = stream.ingest_stats().lines_read;
    }
    return true;
  };
  jsonsi::Status st = jsonsi::core::PumpJsonLines(reader, stream, pump);
  if (!save_failure.ok()) {
    std::cerr << "jsi: checkpoint save failed: " << save_failure << "\n";
    return 2;
  }
  if (!st.ok()) {
    // Persist the consistent pre-abort state: bytes_consumed points at
    // the aborting line, so a fixed-up input can be resumed in place.
    if (jsonsi::Status cp = save(); !cp.ok()) {
      std::cerr << "jsi: checkpoint save failed: " << cp << "\n";
    }
    std::cerr << "jsi: " << st << "\n";
    return 2;
  }
  if (interrupted) {
    std::cerr << "jsi: interrupted at byte "
              << stream.ingest_stats().bytes_consumed << " ("
              << stream.record_count() << " records) — state saved to "
              << checkpoint_path << "; rerun with --resume to continue\n";
    return 3;
  }
  // Always leave a final checkpoint behind (also covers an empty input or
  // an already-consumed resume) so the file reflects this run.
  if (jsonsi::Status cp = save(); !cp.ok()) {
    std::cerr << "jsi: checkpoint save failed: " << cp << "\n";
    return 2;
  }
  ReportIngest(stream.ingest_stats());
  Schema schema = stream.Snapshot();
  std::cout << schema.ToString(pretty) << "\n";
  if (stats) {
    size_t threads = options.num_threads
                         ? options.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
    PrintInferStats(schema, threads);
    std::cerr << "checkpoints:    " << saves << " save(s) to "
              << checkpoint_path << "\n"
              << "consumed:       "
              << jsonsi::WithThousands(
                     static_cast<int64_t>(stream.ingest_stats().bytes_consumed))
              << " bytes"
              << (stream.memory_degraded() ? " (memory watermark hit)" : "")
              << "\n";
  }
  return 0;
}

int RunInfer(std::vector<std::string> args) {
  bool pretty = Flag(args, "--pretty");
  bool stats = Flag(args, "--stats");
  jsonsi::core::InferenceOptions options;
  options.annotate = Flag(args, "--annotate");
  if (auto t = FlagValue(args, "--threads")) {
    try {
      options.num_threads = std::stoul(*t);
    } catch (const std::exception&) {
      return BadFlagValue("--threads", *t);
    }
  }
  if (auto p = FlagValue(args, "--partitions")) {
    try {
      options.num_partitions = std::stoul(*p);
    } catch (const std::exception&) {
      return BadFlagValue("--partitions", *p);
    }
  }
  if (Flag(args, "--no-direct")) {
    // Escape hatch for A/B runs: parse into a DOM, then infer, instead of
    // the default fused DOM-free pass.
    options.direct_infer = false;
  }
  if (Flag(args, "--skip-malformed")) {
    options.ingest.on_malformed = jsonsi::json::MalformedLinePolicy::kSkip;
  }
  if (auto r = FlagValue(args, "--max-error-rate")) {
    options.ingest.on_malformed =
        jsonsi::json::MalformedLinePolicy::kFailAboveRate;
    try {
      options.ingest.max_error_rate = std::stod(*r);
    } catch (const std::exception&) {
      return BadFlagValue("--max-error-rate", *r);
    }
  }
  // Parser budgets apply to every ingestion path (DOM, direct, serial,
  // chunk-parallel) through ParseOptions; over-budget documents are
  // malformed lines under the active policy.
  if (auto d = FlagValue(args, "--max-depth")) {
    try {
      options.ingest.parse.max_depth = std::stoul(*d);
    } catch (const std::exception&) {
      return BadFlagValue("--max-depth", *d);
    }
  }
  if (auto b = FlagValue(args, "--max-line-bytes")) {
    try {
      options.ingest.parse.max_document_bytes = std::stoull(*b);
    } catch (const std::exception&) {
      return BadFlagValue("--max-line-bytes", *b);
    }
  }
  std::optional<std::string> checkpoint = FlagValue(args, "--checkpoint");
  bool resume = Flag(args, "--resume");
  uint64_t checkpoint_every = 100000;
  if (auto e = FlagValue(args, "--checkpoint-every")) {
    try {
      checkpoint_every = std::stoull(*e);
    } catch (const std::exception&) {
      return BadFlagValue("--checkpoint-every", *e);
    }
    if (checkpoint_every == 0) checkpoint_every = 1;
  }
  uint64_t watermark_mb = 0;
  if (auto m = FlagValue(args, "--memory-watermark-mb")) {
    try {
      watermark_mb = std::stoull(*m);
    } catch (const std::exception&) {
      return BadFlagValue("--memory-watermark-mb", *m);
    }
  }
  if (auto io = FlagValue(args, "--io")) {
    if (!jsonsi::io::ParseIoMode(*io, &options.io.mode)) {
      std::cerr << "jsi: --io wants auto|mmap|read|stream, got '" << *io
                << "'\n";
      return Usage();
    }
  }
  if (auto ra = FlagValue(args, "--read-ahead-mb")) {
    try {
      uint64_t mb = std::stoull(*ra);
      if (mb == 0) mb = 1;
      options.io.buffer_bytes = static_cast<size_t>(mb) << 20;
    } catch (const std::exception&) {
      return BadFlagValue("--read-ahead-mb", *ra);
    }
  }
  if (resume && !checkpoint) {
    std::cerr << "jsi: --resume needs --checkpoint <file>\n";
    return Usage();
  }
  if (options.annotate && checkpoint) {
    // The streaming inferencer keeps no annotation state (checkpoints
    // would have to persist the whole lattice); refuse up front instead of
    // silently dropping the flag.
    std::cerr << "jsi: --annotate is not supported with --checkpoint; "
                 "run without a checkpoint to collect annotations\n";
    return Usage();
  }
  if (args.empty()) return Usage();
  // The input source (mmap / pread / stdin pipe, per --io) replaces the old
  // whole-file slurp: mapped files take the zero-copy chunk-parallel path,
  // everything else pumps bounded batches, so files larger than RAM infer
  // in constant memory (see src/io/ and core/schema_inferencer.h).
  if (checkpoint) {
    Result<std::unique_ptr<jsonsi::io::InputSource>> source =
        jsonsi::io::OpenInputSource(args[0], options.io);
    if (!source.ok()) {
      std::cerr << "jsi: " << source.status().message() << "\n";
      return 2;
    }
    return RunInferCheckpointed(*source.value(), options, *checkpoint, resume,
                                checkpoint_every, watermark_mb, pretty,
                                stats);
  }
  jsonsi::json::IngestStats ingest_stats;
  SchemaInferencer inferencer(options);
  Result<Schema> result = inferencer.InferFromFile(args[0], &ingest_stats);
  if (!result.ok()) {
    // Open failures carry a clean "cannot open file: X" message; policy
    // aborts and other errors print the full status with its code.
    if (result.status().code() == jsonsi::StatusCode::kNotFound) {
      std::cerr << "jsi: " << result.status().message() << "\n";
    } else {
      std::cerr << "jsi: " << result.status() << "\n";
    }
    return 2;
  }
  ReportIngest(ingest_stats);
  Schema schema = std::move(result).value();
  std::cout << schema.ToString(pretty) << "\n";
  if (stats) PrintInferStats(schema, inferencer.options().num_threads);
  if (schema.annotation) {
    jsonsi::annotate::RefinementMap refinements =
        jsonsi::annotate::RefineTaggedUnions(*schema.annotation);
    if (refinements.empty()) {
      std::cout << "no tagged unions detected\n";
    } else {
      std::cout << jsonsi::annotate::FormatRefinements(refinements);
    }
    if (stats) {
      std::cerr << "annotation:     "
                << schema.annotation->TreeNodes() << " node(s) / "
                << jsonsi::WithThousands(
                       static_cast<int64_t>(schema.annotation->count))
                << " root value(s) / " << refinements.size()
                << " refined union(s)\n"
                << jsonsi::annotate::FormatAnnotation(*schema.annotation);
    }
  }
  return 0;
}

int RunGen(std::vector<std::string> args) {
  if (args.size() < 2) return Usage();
  uint64_t seed = 42;
  if (auto s = FlagValue(args, "--seed")) seed = std::stoull(*s);
  jsonsi::datagen::DatasetId id;
  if (args[0] == "github") {
    id = jsonsi::datagen::DatasetId::kGitHub;
  } else if (args[0] == "twitter") {
    id = jsonsi::datagen::DatasetId::kTwitter;
  } else if (args[0] == "wikidata") {
    id = jsonsi::datagen::DatasetId::kWikidata;
  } else if (args[0] == "nytimes") {
    id = jsonsi::datagen::DatasetId::kNYTimes;
  } else {
    return Usage();
  }
  uint64_t count = std::stoull(args[1]);
  auto gen = jsonsi::datagen::MakeGenerator(id, seed);
  std::string line;
  for (uint64_t i = 0; i < count; ++i) {
    line.clear();
    jsonsi::json::AppendJson(*gen->Generate(i), &line);
    line.push_back('\n');
    std::cout << line;
  }
  return 0;
}

int RunPaths(std::vector<std::string> args) {
  if (args.empty()) return Usage();
  auto values = ReadInput(args[0]);
  if (!values.ok()) {
    std::cerr << "jsi: " << values.status() << "\n";
    return 2;
  }
  jsonsi::stats::PathCounter counter;
  for (const auto& v : values.value()) counter.Add(*v);
  for (const auto& [path, count] : counter.counts()) {
    std::cout << count << "\t" << path << "\n";
  }
  return 0;
}

int RunCheck(std::vector<std::string> args) {
  auto schema_text = FlagValue(args, "--schema");
  if (args.empty() || !schema_text) return Usage();
  auto type = jsonsi::types::ParseType(*schema_text);
  if (!type.ok()) {
    std::cerr << "jsi: bad --schema: " << type.status() << "\n";
    return 1;
  }
  auto values = ReadInput(args[0]);
  if (!values.ok()) {
    std::cerr << "jsi: " << values.status() << "\n";
    return 2;
  }
  size_t failures = 0;
  for (size_t i = 0; i < values.value().size(); ++i) {
    auto mismatch = jsonsi::types::Explain(*values.value()[i], *type.value());
    if (mismatch) {
      if (++failures <= 5) {
        std::cerr << "record " << (i + 1) << ": at "
                  << (mismatch->path.empty() ? "<root>" : mismatch->path)
                  << ": " << mismatch->reason << "\n";
      }
    }
  }
  std::cout << (values.value().size() - failures) << "/"
            << values.value().size() << " records match\n";
  return failures ? 2 : 0;
}

int RunExport(std::vector<std::string> args) {
  bool annotate = Flag(args, "--annotate");
  if (args.empty()) return Usage();
  auto values = ReadInput(args[0]);
  if (!values.ok()) {
    std::cerr << "jsi: " << values.status() << "\n";
    return 2;
  }
  jsonsi::core::InferenceOptions options;
  options.annotate = annotate;
  Schema schema = SchemaInferencer(options).InferFromValues(values.value());
  jsonsi::exporter::JsonSchemaOptions export_options;
  jsonsi::annotate::RefinementMap refinements;
  if (schema.annotation) {
    export_options.annotation = schema.annotation.get();
    refinements = jsonsi::annotate::RefineTaggedUnions(*schema.annotation);
    export_options.refinements = &refinements;
  }
  std::cout << jsonsi::exporter::ToJsonSchemaText(*schema.type,
                                                  /*pretty=*/true,
                                                  export_options)
            << "\n";
  return 0;
}

int RunAnnotate(std::vector<std::string> args) {
  if (args.empty()) return Usage();
  bool stats = !Flag(args, "--no-stats");
  auto values = ReadInput(args[0]);
  if (!values.ok()) {
    std::cerr << "jsi: " << values.status() << "\n";
    return 2;
  }
  jsonsi::annotate::SchemaProfiler profiler;
  for (size_t i = 0; i < values.value().size(); ++i) {
    profiler.Observe(*values.value()[i], i);
  }
  std::cout << profiler.ToString(stats) << "\n";
  return 0;
}

jsonsi::Result<jsonsi::types::TypeRef> ReadTypeFile(const std::string& path) {
  jsonsi::Result<std::string> text = jsonsi::io::ReadFileToString(path);
  if (!text.ok()) return text.status();
  return jsonsi::types::ParseType(text.value());
}

// `jsi diff --data`: infer both datasets with annotations and report
// structural changes together with refinement drift.
int RunDiffData(const std::string& before_path, const std::string& after_path) {
  jsonsi::core::InferenceOptions options;
  options.annotate = true;
  SchemaInferencer inferencer(options);
  auto values_before = ReadInput(before_path);
  auto values_after = ReadInput(after_path);
  if (!values_before.ok() || !values_after.ok()) {
    std::cerr << "jsi: "
              << (values_before.ok() ? values_after.status()
                                     : values_before.status())
              << "\n";
    return 2;
  }
  Schema before = inferencer.InferFromValues(values_before.value());
  Schema after = inferencer.InferFromValues(values_after.value());
  auto changes = jsonsi::diff::DiffSchemas(before.type, after.type);
  jsonsi::annotate::RefinementMap refined_before, refined_after;
  if (before.annotation) {
    refined_before = jsonsi::annotate::RefineTaggedUnions(*before.annotation);
  }
  if (after.annotation) {
    refined_after = jsonsi::annotate::RefineTaggedUnions(*after.annotation);
  }
  auto drift = jsonsi::diff::DiffRefinements(refined_before, refined_after);
  changes.insert(changes.end(), drift.begin(), drift.end());
  std::stable_sort(changes.begin(), changes.end(),
                   [](const jsonsi::diff::SchemaChange& a,
                      const jsonsi::diff::SchemaChange& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  if (changes.empty()) {
    std::cout << "schemas are identical\n";
    return 0;
  }
  std::cout << jsonsi::diff::FormatChanges(changes);
  return 2;
}

int RunDiff(std::vector<std::string> args) {
  bool data = Flag(args, "--data");
  if (args.size() != 2) return Usage();
  if (data) return RunDiffData(args[0], args[1]);
  auto before = ReadTypeFile(args[0]);
  auto after = ReadTypeFile(args[1]);
  if (!before.ok() || !after.ok()) {
    std::cerr << "jsi: " << (before.ok() ? after.status() : before.status())
              << "\n";
    return 2;
  }
  auto changes = jsonsi::diff::DiffSchemas(before.value(), after.value());
  if (changes.empty()) {
    std::cout << "schemas are identical\n";
    return 0;
  }
  std::cout << jsonsi::diff::FormatChanges(changes);
  return 2;
}

int RunAnalyze(std::vector<std::string> args) {
  if (args.empty()) return Usage();
  auto values = ReadInput(args[0]);
  if (!values.ok()) {
    std::cerr << "jsi: " << values.status() << "\n";
    return 2;
  }
  Schema schema = SchemaInferencer().InferFromValues(values.value());
  auto findings = jsonsi::stats::DetectKeyAsData(schema.type);
  if (findings.empty()) {
    std::cout << "no key-as-data positions detected\n";
    return 0;
  }
  for (const auto& f : findings) {
    std::cout << (f.path.empty() ? "<root>" : f.path) << ": "
              << f.field_count << " keys, "
              << jsonsi::FormatFixed(100 * f.uniformity, 0)
              << "% share shape '" << f.dominant_kinds << "', "
              << jsonsi::FormatFixed(100 * f.optional_fraction, 0)
              << "% optional -> looks like a map keyed by data\n";
  }
  return 0;
}

int RunExpand(std::vector<std::string> args) {
  auto pattern = FlagValue(args, "--pattern");
  if (args.empty() || !pattern) return Usage();
  auto values = ReadInput(args[0]);
  if (!values.ok()) {
    std::cerr << "jsi: " << values.status() << "\n";
    return 2;
  }
  Schema schema = SchemaInferencer().InferFromValues(values.value());
  auto expanded = jsonsi::query::ExpandPathPattern(*schema.type, *pattern);
  if (expanded.empty()) {
    std::cout << "pattern matches no schema path (dead query)\n";
    return 2;
  }
  for (const auto& path : expanded) std::cout << path << "\n";
  return 0;
}

int RunRepo(std::vector<std::string> args) {
  if (args.size() < 2) return Usage();
  const std::string& action = args[0];
  const std::string& path = args[1];
  if (action == "add") {
    if (args.size() != 4) return Usage();
    jsonsi::repository::SchemaRepository repo;
    if (auto loaded = jsonsi::repository::SchemaRepository::LoadFromFile(path);
        loaded.ok()) {
      repo = std::move(loaded).value();
    }  // a missing file means a fresh repository
    auto values = ReadInput(args[3]);
    if (!values.ok()) {
      std::cerr << "jsi: " << values.status() << "\n";
      return 2;
    }
    Schema schema = SchemaInferencer().InferFromValues(values.value());
    const auto* before = repo.Current(args[2]);
    uint64_t version_before = before ? before->version : 0;
    auto st = repo.RegisterBatch(args[2], schema.type,
                                 values.value().size());
    if (!st.ok()) {
      std::cerr << "jsi: " << st << "\n";
      return 2;
    }
    const auto* current = repo.Current(args[2]);
    if (current->version != version_before && version_before != 0) {
      std::cout << "schema drift -> v" << current->version << "\n"
                << jsonsi::diff::FormatChanges(current->changes);
    } else {
      std::cout << "source " << args[2] << " at v" << current->version
                << " (" << current->cumulative_records << " records)\n";
    }
    if (auto save = repo.SaveToFile(path); !save.ok()) {
      std::cerr << "jsi: " << save << "\n";
      return 2;
    }
    return 0;
  }
  if (action == "show") {
    auto loaded = jsonsi::repository::SchemaRepository::LoadFromFile(path);
    if (!loaded.ok()) {
      std::cerr << "jsi: " << loaded.status() << "\n";
      return 2;
    }
    const auto& repo = loaded.value();
    if (args.size() == 2) {
      for (const std::string& source : repo.Sources()) {
        const auto* current = repo.Current(source);
        std::cout << source << "  v" << current->version << "  "
                  << current->cumulative_records << " records\n";
      }
      return 0;
    }
    const auto* history = repo.History(args[2]);
    if (!history) {
      std::cerr << "jsi: unknown source " << args[2] << "\n";
      return 2;
    }
    for (const auto& v : *history) {
      std::cout << "v" << v.version << "  records<=" << v.cumulative_records
                << "  changes=" << v.changes.size() << "\n"
                << "  " << jsonsi::types::ToString(*v.schema) << "\n";
    }
    return 0;
  }
  return Usage();
}

int RunCodegen(std::vector<std::string> args) {
  jsonsi::exporter::CppCodegenOptions options;
  if (auto root = FlagValue(args, "--root")) options.root_name = *root;
  if (auto ns = FlagValue(args, "--namespace")) options.namespace_name = *ns;
  if (args.empty()) return Usage();
  auto values = ReadInput(args[0]);
  if (!values.ok()) {
    std::cerr << "jsi: " << values.status() << "\n";
    return 2;
  }
  Schema schema = SchemaInferencer().InferFromValues(values.value());
  std::cout << jsonsi::exporter::ToCppStructs(schema.type, options);
  return 0;
}

int RunServe(std::vector<std::string> args) {
  jsonsi::server::ServerOptions options;
  if (auto p = FlagValue(args, "--port")) {
    try {
      options.port = static_cast<uint16_t>(std::stoul(*p));
    } catch (const std::exception&) {
      return BadFlagValue("--port", *p);
    }
  }
  if (auto b = FlagValue(args, "--bind")) options.bind_address = *b;
  if (auto t = FlagValue(args, "--threads")) {
    try {
      options.num_threads = std::stoul(*t);
    } catch (const std::exception&) {
      return BadFlagValue("--threads", *t);
    }
  }
  if (auto r = FlagValue(args, "--repo")) options.repository_path = *r;
  if (auto m = FlagValue(args, "--max-body-mb")) {
    try {
      options.http.max_body_bytes = std::stoull(*m) * (1ull << 20);
    } catch (const std::exception&) {
      return BadFlagValue("--max-body-mb", *m);
    }
  }
  if (!args.empty()) return Usage();

  jsonsi::server::InferenceServer server(options);
  if (jsonsi::Status st = server.Start(); !st.ok()) {
    std::cerr << "jsi: " << st << "\n";
    return 2;
  }
  // Machine-parseable so scripts can grab the (possibly ephemeral) port.
  std::cout << "jsi: serving on http://" << options.bind_address << ":"
            << server.port() << "\n"
            << std::flush;
  jsonsi::server::InstallShutdownSignalHandlers();
  jsonsi::server::WaitForShutdown();
  std::cerr << "jsi: shutdown signal — draining " << server.sessions().size()
            << " live session(s)\n";
  jsonsi::Status stopped = server.Stop();
  if (!stopped.ok()) {
    std::cerr << "jsi: drain checkpoint failed: " << stopped << "\n";
    return 2;
  }
  return 0;
}

}  // namespace

int Dispatch(const std::string& command, std::vector<std::string> args) {
  if (command == "infer") return RunInfer(std::move(args));
  if (command == "gen") return RunGen(std::move(args));
  if (command == "paths") return RunPaths(std::move(args));
  if (command == "check") return RunCheck(std::move(args));
  if (command == "export") return RunExport(std::move(args));
  if (command == "annotate") return RunAnnotate(std::move(args));
  if (command == "diff") return RunDiff(std::move(args));
  if (command == "analyze") return RunAnalyze(std::move(args));
  if (command == "expand") return RunExpand(std::move(args));
  if (command == "repo") return RunRepo(std::move(args));
  if (command == "codegen") return RunCodegen(std::move(args));
  if (command == "serve") return RunServe(std::move(args));
  return Usage();
}

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  // Global observability flags, valid on every subcommand. Either one turns
  // the (otherwise free) telemetry layer on for the whole process.
  std::string metrics_out = FlagValue(args, "--metrics-out").value_or("");
  std::string trace_out = FlagValue(args, "--trace-out").value_or("");
  const bool telemetry_on = !metrics_out.empty() || !trace_out.empty();
  if (telemetry_on) jsonsi::telemetry::SetEnabled(true);
  // Opt out of the interning/memoization acceleration (identity-preserving,
  // so only timings change).
  if (Flag(args, "--no-intern")) jsonsi::types::SetInterningEnabled(false);
  // Pin the structural-index scan kernel (parity-identical output; only
  // throughput changes). Overrides JSI_FORCE_KERNEL.
  if (auto simd = FlagValue(args, "--simd")) {
    jsonsi::Status forced = jsonsi::json::simd::ForceKernel(*simd);
    if (!forced.ok()) {
      std::cerr << "jsi: " << forced << "\n";
      return Usage();
    }
  }

  int rc = Dispatch(command, std::move(args));

  if (telemetry_on) {
    jsonsi::telemetry::FileSink sink(metrics_out, trace_out);
    jsonsi::Status flushed = jsonsi::telemetry::Flush(sink);
    if (!flushed.ok()) {
      std::cerr << "jsi: telemetry flush failed: " << flushed << "\n";
      if (rc == 0) rc = 2;
    }
  }
  return rc;
}
