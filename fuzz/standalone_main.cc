// Corpus replay driver for toolchains without libFuzzer (the GCC-only CI
// image and local ctest smoke runs). Each argument is a corpus file or a
// directory of corpus files; every file is fed once to
// LLVMFuzzerTestOneInput. Under Clang the fuzz targets link
// -fsanitize=fuzzer instead and this file is not compiled.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else {
      files.push_back(arg);
    }
  }
  int rc = 0;
  for (const auto& f : files) rc |= RunFile(f);
  std::printf("replayed %zu corpus file(s)\n", files.size());
  return rc;
}
