// Checkpoint-restore fuzz target: RestoreCheckpoint must be total on
// arbitrary bytes — reject cleanly or restore a coherent inferencer, never
// crash, hang, or over-allocate. When restore accepts, the round trip must
// be stable: the restored state serializes and restores again, and keeps
// accepting records. Seeded with real checkpoints and their prefixes (the
// torn-write shapes the durability tests cover exhaustively at small scale).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "core/checkpoint.h"
#include "core/streaming_inferencer.h"
#include "support/status.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  jsonsi::core::StreamingInferencer inferencer;
  jsonsi::Status restored =
      jsonsi::core::RestoreCheckpoint(text, &inferencer);
  if (!restored.ok()) return 0;

  // Accepted: the state must be serializable and stable under one more
  // round trip, and live (still ingesting).
  jsonsi::Result<std::string> again =
      jsonsi::core::SerializeCheckpoint(inferencer);
  if (!again.ok()) {
    std::fprintf(stderr, "checkpoint_fuzz: restored state unserializable\n");
    std::abort();
  }
  jsonsi::core::StreamingInferencer twice;
  if (!jsonsi::core::RestoreCheckpoint(again.value(), &twice).ok()) {
    std::fprintf(stderr, "checkpoint_fuzz: round trip not stable\n");
    std::abort();
  }
  (void)inferencer.AddJson("{\"probe\":1}");
  return 0;
}
