// Differential fuzz target: the DOM parser and the DOM-free direct
// inference kernel must be observationally equivalent on ARBITRARY bytes —
// same accept/reject decision, byte-identical Status message, and (on
// accept) a direct type TypeEquals-identical to InferType over the parsed
// value. This is the fuzz-hardened version of the fixed adversarial gallery
// in tests/direct_infer_test.cc; the gallery seeds the corpus.
//
// The first input byte selects the ParseOptions variant (default, shallow
// max_depth, tiny max_document_bytes, trailing content allowed) and, in its
// high half (selector >= 4), turns annotation collection on: the same four
// option variants re-run with an Annotation accumulator, cross-checking that
// annotating changes no accept/reject decision or type, and that the
// tokenizer-driven collection agrees exactly with the DOM-walk ObserveValue
// (annotate/annotation.h). The second byte selects the SIMD kernel the
// direct path runs under (modulo the kernels this host actually has, so
// every corpus entry is meaningful on every machine). The direct pass
// additionally runs under the scalar kernel and both results are
// cross-checked — a vector kernel that mis-scans any byte sequence shows
// up as a scalar/vector divergence even when the DOM comparison alone
// would pass. The rest of the input is the document.
//
// The second byte's high half is the io-pipeline axis (PR 10): when bit 7
// is set, the document is additionally treated as JSONL and fed through a
// PipelineReader over a Contents()-hidden MemorySource with a tiny buffer
// (bits 4-6 pick the size, down to a single byte, so batch seams land
// inside tokens, strings and error positions). The pumped stream must
// reproduce the one-shot AddJsonLines exactly — same accept/abort status
// message, same IngestStats to the byte offset, same snapshot type —
// under both the skip and the fail-above-rate policies.
//
// Built with -fsanitize=fuzzer under Clang (see fuzz/CMakeLists.txt); under
// GCC the same target links fuzz/standalone_main.cc and replays the corpus
// as a ctest smoke.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "annotate/annotation.h"
#include "core/io_pump.h"
#include "core/streaming_inferencer.h"
#include "inference/direct_infer.h"
#include "inference/infer.h"
#include "io/input_source.h"
#include "io/pipeline_reader.h"
#include "json/parser.h"
#include "json/simd/kernel.h"
#include "json/value.h"
#include "types/type.h"

namespace {

void Fail(const char* what, std::string_view doc) {
  std::fprintf(stderr, "differential_fuzz: %s on %zu-byte input: ", what,
               doc.size());
  std::fwrite(doc.data(), 1, doc.size(), stderr);
  std::fputc('\n', stderr);
  std::abort();
}

bool SameStats(const jsonsi::json::IngestStats& a,
               const jsonsi::json::IngestStats& b) {
  if (a.lines_read != b.lines_read || a.blank_lines != b.blank_lines ||
      a.records != b.records || a.malformed_lines != b.malformed_lines ||
      a.bytes_read != b.bytes_read || a.bytes_consumed != b.bytes_consumed ||
      a.errors.size() != b.errors.size()) {
    return false;
  }
  for (size_t i = 0; i < a.errors.size(); ++i) {
    if (a.errors[i].line_number != b.errors[i].line_number ||
        a.errors[i].byte_offset != b.errors[i].byte_offset ||
        a.errors[i].message != b.errors[i].message) {
      return false;
    }
  }
  return true;
}

// The io-pipeline parity axis: batching `doc` through a tiny-buffer
// PipelineReader must be observationally identical to one AddJsonLines
// call of the whole text.
void CheckStreamParity(std::string_view doc, size_t buffer_bytes,
                       jsonsi::json::MalformedLinePolicy policy) {
  jsonsi::core::StreamingOptions opts;
  opts.on_malformed = policy;
  opts.max_error_rate = 0.25;
  opts.min_lines_for_rate = 4;

  jsonsi::core::StreamingInferencer one_shot(opts);
  jsonsi::Status want = one_shot.AddJsonLines(doc);

  jsonsi::core::StreamingInferencer pumped(opts);
  jsonsi::io::MemorySource source(doc, /*expose_contents=*/false);
  jsonsi::io::IoOptions io;
  io.buffer_bytes = buffer_bytes;
  io.overlap = false;  // deterministic single-thread replay
  jsonsi::io::PipelineReader reader(&source, io);
  jsonsi::Status got = jsonsi::core::PumpJsonLines(reader, pumped, {});

  if (want.ok() != got.ok()) Fail("pipeline accept/abort split", doc);
  if (!want.ok() && want.message() != got.message()) {
    Fail("pipeline abort message mismatch", doc);
  }
  if (!SameStats(one_shot.ingest_stats(), pumped.ingest_stats())) {
    Fail("pipeline IngestStats mismatch", doc);
  }
  if (want.ok() &&
      !one_shot.Snapshot().type->Equals(*pumped.Snapshot().type)) {
    Fail("pipeline type mismatch", doc);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace simd = jsonsi::json::simd;
  static const std::vector<simd::Kernel> kKernels = simd::AvailableKernels();

  jsonsi::json::ParseOptions options;
  bool annotate = false;
  std::string_view doc(reinterpret_cast<const char*>(data), size);
  if (!doc.empty()) {
    const unsigned selector = static_cast<unsigned char>(doc.front()) % 8;
    annotate = selector >= 4;
    switch (selector % 4) {
      case 0:
        break;  // defaults
      case 1:
        options.max_depth = 4;
        break;
      case 2:
        options.max_document_bytes = 16;
        break;
      case 3:
        options.allow_trailing_content = true;
        break;
    }
    doc.remove_prefix(1);
  }
  simd::Kernel kernel = simd::Kernel::kScalar;
  bool stream_parity = false;
  size_t stream_buffer = 1;
  if (!doc.empty()) {
    const unsigned byte = static_cast<unsigned char>(doc.front());
    kernel = kKernels[byte % kKernels.size()];
    stream_parity = (byte & 0x80) != 0;
    static constexpr size_t kBufferSizes[8] = {1, 2, 3, 5, 8, 13, 64, 4096};
    stream_buffer = kBufferSizes[(byte >> 4) & 7];
    doc.remove_prefix(1);
  }

  if (stream_parity) {
    CheckStreamParity(doc, stream_buffer,
                      jsonsi::json::MalformedLinePolicy::kSkip);
    CheckStreamParity(doc, stream_buffer,
                      jsonsi::json::MalformedLinePolicy::kFailAboveRate);
  }

  jsonsi::Result<jsonsi::json::ValueRef> parsed =
      jsonsi::json::Parse(doc, options);

  jsonsi::annotate::Annotation ann_scalar;
  jsonsi::annotate::Annotation ann_vector;
  simd::SetKernel(simd::Kernel::kScalar);
  jsonsi::Result<jsonsi::types::TypeRef> scalar =
      annotate ? jsonsi::inference::DirectInferType(doc, options, &ann_scalar)
               : jsonsi::inference::DirectInferType(doc, options);
  simd::SetKernel(kernel);
  jsonsi::Result<jsonsi::types::TypeRef> direct =
      annotate ? jsonsi::inference::DirectInferType(doc, options, &ann_vector)
               : jsonsi::inference::DirectInferType(doc, options);

  // Vector kernel vs scalar: the SIMD parity axis.
  if (scalar.ok() != direct.ok()) Fail("kernel accept/reject split", doc);
  if (!scalar.ok() &&
      scalar.status().message() != direct.status().message()) {
    Fail("kernel status message mismatch", doc);
  }
  if (scalar.ok() && !scalar.value()->Equals(*direct.value())) {
    Fail("kernel type mismatch", doc);
  }

  // Direct vs DOM: the PR-7 parity axis.
  if (parsed.ok() != direct.ok()) Fail("accept/reject mismatch", doc);
  if (!parsed.ok()) {
    if (parsed.status().message() != direct.status().message()) {
      Fail("status message mismatch", doc);
    }
    return 0;
  }
  jsonsi::types::TypeRef via_dom =
      jsonsi::inference::InferType(*parsed.value());
  if (!via_dom->Equals(*direct.value())) Fail("type mismatch", doc);

  if (annotate) {
    // Annotation axes: collection must not perturb the type, the two
    // kernels must accumulate identical statistics, and the tokenizer
    // collection must equal the DOM walk.
    jsonsi::Result<jsonsi::types::TypeRef> plain =
        jsonsi::inference::DirectInferType(doc, options);
    if (!plain.ok() || !plain.value()->Equals(*direct.value())) {
      Fail("annotated/unannotated type mismatch", doc);
    }
    if (!ann_scalar.Equals(ann_vector)) {
      Fail("kernel annotation mismatch", doc);
    }
    jsonsi::annotate::Annotation ann_dom;
    jsonsi::annotate::ObserveValue(*parsed.value(), &ann_dom);
    if (!ann_dom.Equals(ann_vector)) Fail("DOM annotation mismatch", doc);
  }
  return 0;
}
