// Differential fuzz target: the DOM parser and the DOM-free direct
// inference kernel must be observationally equivalent on ARBITRARY bytes —
// same accept/reject decision, byte-identical Status message, and (on
// accept) a direct type TypeEquals-identical to InferType over the parsed
// value. This is the fuzz-hardened version of the fixed adversarial gallery
// in tests/direct_infer_test.cc; the gallery seeds the corpus.
//
// The first input byte selects the ParseOptions variant (default, shallow
// max_depth, tiny max_document_bytes, trailing content allowed) so the
// budget-rejection paths are fuzzed too; the rest is the document.
//
// Built with -fsanitize=fuzzer under Clang (see fuzz/CMakeLists.txt); under
// GCC the same target links fuzz/standalone_main.cc and replays the corpus
// as a ctest smoke.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "inference/direct_infer.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "json/value.h"
#include "types/type.h"

namespace {

void Fail(const char* what, std::string_view doc) {
  std::fprintf(stderr, "differential_fuzz: %s on %zu-byte input: ", what,
               doc.size());
  std::fwrite(doc.data(), 1, doc.size(), stderr);
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  jsonsi::json::ParseOptions options;
  std::string_view doc(reinterpret_cast<const char*>(data), size);
  if (!doc.empty()) {
    switch (static_cast<unsigned char>(doc.front()) % 4) {
      case 0:
        break;  // defaults
      case 1:
        options.max_depth = 4;
        break;
      case 2:
        options.max_document_bytes = 16;
        break;
      case 3:
        options.allow_trailing_content = true;
        break;
    }
    doc.remove_prefix(1);
  }

  jsonsi::Result<jsonsi::json::ValueRef> parsed =
      jsonsi::json::Parse(doc, options);
  jsonsi::Result<jsonsi::types::TypeRef> direct =
      jsonsi::inference::DirectInferType(doc, options);

  if (parsed.ok() != direct.ok()) Fail("accept/reject mismatch", doc);
  if (!parsed.ok()) {
    if (parsed.status().message() != direct.status().message()) {
      Fail("status message mismatch", doc);
    }
    return 0;
  }
  jsonsi::types::TypeRef via_dom =
      jsonsi::inference::InferType(*parsed.value());
  if (!via_dom->Equals(*direct.value())) Fail("type mismatch", doc);
  return 0;
}
