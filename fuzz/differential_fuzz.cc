// Differential fuzz target: the DOM parser and the DOM-free direct
// inference kernel must be observationally equivalent on ARBITRARY bytes —
// same accept/reject decision, byte-identical Status message, and (on
// accept) a direct type TypeEquals-identical to InferType over the parsed
// value. This is the fuzz-hardened version of the fixed adversarial gallery
// in tests/direct_infer_test.cc; the gallery seeds the corpus.
//
// The first input byte selects the ParseOptions variant (default, shallow
// max_depth, tiny max_document_bytes, trailing content allowed) and, in its
// high half (selector >= 4), turns annotation collection on: the same four
// option variants re-run with an Annotation accumulator, cross-checking that
// annotating changes no accept/reject decision or type, and that the
// tokenizer-driven collection agrees exactly with the DOM-walk ObserveValue
// (annotate/annotation.h). The second byte selects the SIMD kernel the
// direct path runs under (modulo the kernels this host actually has, so
// every corpus entry is meaningful on every machine). The direct pass
// additionally runs under the scalar kernel and both results are
// cross-checked — a vector kernel that mis-scans any byte sequence shows
// up as a scalar/vector divergence even when the DOM comparison alone
// would pass. The rest of the input is the document.
//
// Built with -fsanitize=fuzzer under Clang (see fuzz/CMakeLists.txt); under
// GCC the same target links fuzz/standalone_main.cc and replays the corpus
// as a ctest smoke.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "annotate/annotation.h"
#include "inference/direct_infer.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "json/simd/kernel.h"
#include "json/value.h"
#include "types/type.h"

namespace {

void Fail(const char* what, std::string_view doc) {
  std::fprintf(stderr, "differential_fuzz: %s on %zu-byte input: ", what,
               doc.size());
  std::fwrite(doc.data(), 1, doc.size(), stderr);
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace simd = jsonsi::json::simd;
  static const std::vector<simd::Kernel> kKernels = simd::AvailableKernels();

  jsonsi::json::ParseOptions options;
  bool annotate = false;
  std::string_view doc(reinterpret_cast<const char*>(data), size);
  if (!doc.empty()) {
    const unsigned selector = static_cast<unsigned char>(doc.front()) % 8;
    annotate = selector >= 4;
    switch (selector % 4) {
      case 0:
        break;  // defaults
      case 1:
        options.max_depth = 4;
        break;
      case 2:
        options.max_document_bytes = 16;
        break;
      case 3:
        options.allow_trailing_content = true;
        break;
    }
    doc.remove_prefix(1);
  }
  simd::Kernel kernel = simd::Kernel::kScalar;
  if (!doc.empty()) {
    kernel = kKernels[static_cast<unsigned char>(doc.front()) %
                      kKernels.size()];
    doc.remove_prefix(1);
  }

  jsonsi::Result<jsonsi::json::ValueRef> parsed =
      jsonsi::json::Parse(doc, options);

  jsonsi::annotate::Annotation ann_scalar;
  jsonsi::annotate::Annotation ann_vector;
  simd::SetKernel(simd::Kernel::kScalar);
  jsonsi::Result<jsonsi::types::TypeRef> scalar =
      annotate ? jsonsi::inference::DirectInferType(doc, options, &ann_scalar)
               : jsonsi::inference::DirectInferType(doc, options);
  simd::SetKernel(kernel);
  jsonsi::Result<jsonsi::types::TypeRef> direct =
      annotate ? jsonsi::inference::DirectInferType(doc, options, &ann_vector)
               : jsonsi::inference::DirectInferType(doc, options);

  // Vector kernel vs scalar: the SIMD parity axis.
  if (scalar.ok() != direct.ok()) Fail("kernel accept/reject split", doc);
  if (!scalar.ok() &&
      scalar.status().message() != direct.status().message()) {
    Fail("kernel status message mismatch", doc);
  }
  if (scalar.ok() && !scalar.value()->Equals(*direct.value())) {
    Fail("kernel type mismatch", doc);
  }

  // Direct vs DOM: the PR-7 parity axis.
  if (parsed.ok() != direct.ok()) Fail("accept/reject mismatch", doc);
  if (!parsed.ok()) {
    if (parsed.status().message() != direct.status().message()) {
      Fail("status message mismatch", doc);
    }
    return 0;
  }
  jsonsi::types::TypeRef via_dom =
      jsonsi::inference::InferType(*parsed.value());
  if (!via_dom->Equals(*direct.value())) Fail("type mismatch", doc);

  if (annotate) {
    // Annotation axes: collection must not perturb the type, the two
    // kernels must accumulate identical statistics, and the tokenizer
    // collection must equal the DOM walk.
    jsonsi::Result<jsonsi::types::TypeRef> plain =
        jsonsi::inference::DirectInferType(doc, options);
    if (!plain.ok() || !plain.value()->Equals(*direct.value())) {
      Fail("annotated/unannotated type mismatch", doc);
    }
    if (!ann_scalar.Equals(ann_vector)) {
      Fail("kernel annotation mismatch", doc);
    }
    jsonsi::annotate::Annotation ann_dom;
    jsonsi::annotate::ObserveValue(*parsed.value(), &ann_dom);
    if (!ann_dom.Equals(ann_vector)) Fail("DOM annotation mismatch", doc);
  }
  return 0;
}
