// Baseline 2: skeleton schemas (frequent-structure summaries).
//
// Wang et al. [22] summarize a JSON store by a *skeleton*: the structures
// that appear frequently, dropping rare ones. Section 1 of the paper
// contrasts this with its own complete schemas: "the skeleton may totally
// miss information about paths that can be traversed in some of the JSON
// objects". This module implements a path-frequency skeleton so that the
// completeness gap is measurable (bench/ablation_skeleton).
//
// Construction: count, across the dataset, in how many records each label
// path occurs; then prune from the (complete) fused schema every record
// field whose path support falls below a threshold. What remains is the
// "frequent skeleton" — small, but provably missing the rare paths, which
// `stats::Coverage` then quantifies.

#ifndef JSONSI_BASELINE_SKELETON_H_
#define JSONSI_BASELINE_SKELETON_H_

#include <vector>

#include "json/value.h"
#include "stats/paths.h"
#include "types/type.h"

namespace jsonsi::baseline {

/// Skeleton tuning.
struct SkeletonOptions {
  /// Keep a field only if its path occurs in at least this fraction of the
  /// records. Wang et al. keep "structures that frequently appear".
  double min_support = 0.01;
};

/// Prunes rare fields from `complete` using per-path record counts.
types::TypeRef PruneRareFields(const types::TypeRef& complete,
                               const stats::PathCounter& counter,
                               const SkeletonOptions& options);

/// End-to-end: counts paths over `values` and prunes `complete`.
types::TypeRef BuildSkeleton(const std::vector<json::ValueRef>& values,
                             const types::TypeRef& complete,
                             const SkeletonOptions& options = {});

}  // namespace jsonsi::baseline

#endif  // JSONSI_BASELINE_SKELETON_H_
