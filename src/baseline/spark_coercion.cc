#include "baseline/spark_coercion.h"

#include <vector>

namespace jsonsi::baseline {

using json::Value;
using json::ValueKind;
using types::FieldType;
using types::Type;
using types::TypeNode;
using types::TypeRef;

namespace {

bool BothBasic(const TypeRef& a, const TypeRef& b) {
  return a->is_basic() && b->is_basic();
}

TypeRef MergeArrayBodies(const TypeRef& a, const TypeRef& b) {
  // eps bodies (from empty arrays) are identities.
  if (a->is_empty()) return b;
  if (b->is_empty()) return a;
  return MergeCoerced(a, b);
}

}  // namespace

TypeRef InferCoerced(const Value& value) {
  switch (value.kind()) {
    case ValueKind::kNull:
      return Type::Null();
    case ValueKind::kBool:
      return Type::Bool();
    case ValueKind::kNum:
      return Type::Num();
    case ValueKind::kStr:
      return Type::Str();
    case ValueKind::kRecord: {
      std::vector<FieldType> fields;
      fields.reserve(value.fields().size());
      for (const json::Field& f : value.fields()) {
        fields.push_back({f.key, InferCoerced(*f.value), /*optional=*/false});
      }
      return Type::RecordUnchecked(std::move(fields));
    }
    case ValueKind::kArray: {
      // Spark summarizes an array by ONE element type immediately, coercing
      // disagreeing elements; an empty array has an eps body.
      TypeRef body = Type::Empty();
      for (const json::ValueRef& e : value.elements()) {
        body = MergeArrayBodies(body, InferCoerced(*e));
      }
      return Type::ArrayStar(std::move(body));
    }
  }
  return Type::Null();
}

TypeRef MergeCoerced(const TypeRef& a, const TypeRef& b) {
  if (a->Equals(*b)) return a;
  // NullType is absorbed by any other type (nullability is implicit).
  if (a->node() == TypeNode::kNull) return b;
  if (b->node() == TypeNode::kNull) return a;
  if (a->is_record() && b->is_record()) {
    const auto& fa = a->fields();
    const auto& fb = b->fields();
    std::vector<FieldType> out;
    out.reserve(fa.size() + fb.size());
    size_t i = 0;
    size_t j = 0;
    while (i < fa.size() && j < fb.size()) {
      int cmp = fa[i].key.compare(fb[j].key);
      if (cmp == 0) {
        out.push_back({fa[i].key, MergeCoerced(fa[i].type, fb[j].type),
                       fa[i].optional || fb[j].optional});
        ++i;
        ++j;
      } else if (cmp < 0) {
        out.push_back({fa[i].key, fa[i].type, true});
        ++i;
      } else {
        out.push_back({fb[j].key, fb[j].type, true});
        ++j;
      }
    }
    for (; i < fa.size(); ++i) out.push_back({fa[i].key, fa[i].type, true});
    for (; j < fb.size(); ++j) out.push_back({fb[j].key, fb[j].type, true});
    return Type::RecordUnchecked(std::move(out));
  }
  if (a->is_array_star() && b->is_array_star()) {
    return Type::ArrayStar(MergeArrayBodies(a->body(), b->body()));
  }
  if (BothBasic(a, b)) {
    return Type::Str();  // scalar conflict -> StringType
  }
  // Structural conflict (record vs scalar, array vs record, ...): Spark
  // falls back to StringType for the whole position.
  return Type::Str();
}

TypeRef InferCoercedSchema(const std::vector<json::ValueRef>& values) {
  TypeRef acc = Type::Null();  // NullType is Spark's merge identity
  for (const json::ValueRef& v : values) {
    acc = MergeCoerced(acc, InferCoerced(*v));
  }
  return acc;
}

namespace {

void Walk(const TypeRef& fused, const TypeRef& coerced, CoercionLoss* loss) {
  std::vector<TypeRef> alts = types::Flatten(fused);
  // Count kind diversity at this position (Null alternatives do not count —
  // both systems treat nulls as presence information).
  size_t informative = 0;
  const Type* record_alt = nullptr;
  const Type* array_alt = nullptr;
  for (const TypeRef& alt : alts) {
    if (alt->node() == TypeNode::kNull) continue;
    ++informative;
    if (alt->is_record()) record_alt = alt.get();
    if (alt->is_array()) array_alt = alt.get();
  }
  bool coerced_is_str = coerced->node() == TypeNode::kStr;
  if (informative >= 2) {
    ++loss->union_positions;
    if (coerced_is_str) ++loss->coerced_to_str;
  }
  if (record_alt) {
    if (coerced->is_record()) {
      for (const FieldType& f : record_alt->fields()) {
        if (const FieldType* cf = coerced->FindField(f.key)) {
          Walk(f.type, cf->type, loss);
        }
      }
    } else if (coerced_is_str) {
      ++loss->structure_lost;
    }
  }
  if (array_alt) {
    if (coerced->is_array_star()) {
      TypeRef fused_body = array_alt->is_array_star()
                               ? array_alt->body()
                               : TypeRef();  // exact arrays: compare per kind
      if (fused_body && !fused_body->is_empty() &&
          !coerced->body()->is_empty()) {
        Walk(fused_body, coerced->body(), loss);
      }
    } else if (coerced_is_str) {
      ++loss->structure_lost;
    }
  }
}

}  // namespace

CoercionLoss MeasureLoss(const TypeRef& fused, const TypeRef& coerced) {
  CoercionLoss loss;
  Walk(fused, coerced, &loss);
  return loss;
}

}  // namespace jsonsi::baseline
