// Baseline 1: Spark-DataFrame-style schema inference with type coercion.
//
// Section 6.1 of the paper contrasts its union types against Spark's
// behaviour: "In such a case, the Spark API uses type coercion yielding an
// array of type String only", versus the paper's precise
// `[(Num + Str + {l: Str})*]`. This module implements that comparator — the
// merge discipline of Spark SQL's JSON schema inference (InferSchema /
// compatibleType):
//
//   * equal types merge to themselves;
//   * Null merges into anything (nullability, modelled as `T + Null`
//     dropping to just T with the field optional);
//   * two different scalar kinds coerce to Str;
//   * records merge field-wise (missing fields become optional);
//   * arrays merge element types recursively; an array whose elements
//     disagree coerces its element type to Str;
//   * a record vs a non-record (or array vs non-array) conflict coerces the
//     whole position to Str.
//
// The result is expressed in the library's own Type language (never using
// unions), so precision can be compared structurally with the paper's fused
// types: every position where this baseline says `Str` but fusion produced a
// union or a structured type is a loss of information.

#ifndef JSONSI_BASELINE_SPARK_COERCION_H_
#define JSONSI_BASELINE_SPARK_COERCION_H_

#include <cstddef>
#include <vector>

#include "json/value.h"
#include "types/type.h"

namespace jsonsi::baseline {

/// Infers the Spark-style type of one value (arrays already coerced).
types::TypeRef InferCoerced(const json::Value& value);

/// Spark's compatibleType: merges two coerced types, coercing conflicts to
/// Str as described above. Associative and commutative.
types::TypeRef MergeCoerced(const types::TypeRef& a, const types::TypeRef& b);

/// Runs the whole baseline pipeline over a collection.
types::TypeRef InferCoercedSchema(const std::vector<json::ValueRef>& values);

/// Precision metrics comparing a coerced schema against a fused one.
struct CoercionLoss {
  /// Leaf positions in the fused schema carrying a union of several kinds.
  size_t union_positions = 0;
  /// Of those, positions the baseline flattened to plain Str.
  size_t coerced_to_str = 0;
  /// Structured positions (record/array) the baseline lost to Str entirely.
  size_t structure_lost = 0;
};

/// Walks the two schemas in parallel and tallies where coercion lost
/// information relative to fusion.
CoercionLoss MeasureLoss(const types::TypeRef& fused,
                         const types::TypeRef& coerced);

}  // namespace jsonsi::baseline

#endif  // JSONSI_BASELINE_SPARK_COERCION_H_
