#include "baseline/skeleton.h"

#include <cmath>
#include <string>
#include <vector>

namespace jsonsi::baseline {

using types::FieldType;
using types::Type;
using types::TypeNode;
using types::TypeRef;

namespace {

struct Pruner {
  const stats::PathCounter& counter;
  double min_count;

  size_t CountOf(const std::string& path) const {
    auto it = counter.counts().find(path);
    return it == counter.counts().end() ? 0 : it->second;
  }

  TypeRef Prune(const TypeRef& t, const std::string& prefix) const {
    switch (t->node()) {
      case TypeNode::kRecord: {
        std::vector<FieldType> kept;
        for (const FieldType& f : t->fields()) {
          std::string path = prefix.empty() ? f.key : prefix + "." + f.key;
          if (static_cast<double>(CountOf(path)) < min_count) continue;
          kept.push_back({f.key, Prune(f.type, path), f.optional});
        }
        return Type::RecordUnchecked(std::move(kept));
      }
      case TypeNode::kArrayExact: {
        std::vector<TypeRef> elements;
        elements.reserve(t->elements().size());
        for (const TypeRef& e : t->elements()) {
          elements.push_back(Prune(e, prefix + "[]"));
        }
        return Type::ArrayExact(std::move(elements));
      }
      case TypeNode::kArrayStar:
        return Type::ArrayStar(Prune(t->body(), prefix + "[]"));
      case TypeNode::kUnion: {
        std::vector<TypeRef> alts;
        alts.reserve(t->alternatives().size());
        for (const TypeRef& alt : t->alternatives()) {
          alts.push_back(Prune(alt, prefix));
        }
        return Type::Union(std::move(alts));
      }
      default:
        return t;
    }
  }
};

}  // namespace

TypeRef PruneRareFields(const TypeRef& complete,
                        const stats::PathCounter& counter,
                        const SkeletonOptions& options) {
  Pruner pruner{counter,
                options.min_support * static_cast<double>(counter.total())};
  return pruner.Prune(complete, "");
}

TypeRef BuildSkeleton(const std::vector<json::ValueRef>& values,
                      const TypeRef& complete,
                      const SkeletonOptions& options) {
  stats::PathCounter counter;
  for (const json::ValueRef& v : values) counter.Add(*v);
  return PruneRareFields(complete, counter, options);
}

}  // namespace jsonsi::baseline
