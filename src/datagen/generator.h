// Synthetic workload generators standing in for the paper's four crawled
// datasets (GitHub pull requests, Twitter firehose, Wikidata, NYTimes
// articles).
//
// The real dumps are unavailable (and up to 75 GB); what the evaluation
// actually depends on is each dataset's *structural profile* — how types
// vary across records — which Section 6.1 describes precisely. Each
// generator reproduces its profile (documented in its .cc and in DESIGN.md):
//
//   GitHub   homogeneous nested records, no arrays, depth <= 4, variation
//            only in lower-level scalar types           -> few distinct types
//   Twitter  5 top-level variants (tweets + deletes), arrays of records,
//            depth <= 3                                 -> medium variety
//   Wikidata entity-ids used as record *keys*, depth <= 6 -> nearly every
//            record has a fresh type (fusion's worst case)
//   NYTimes  stable top level, highly variable lower levels, depth <= 7,
//            long prose fields                          -> many types, best
//                                                          compaction
//
// Generation is deterministic and random-access: record i of a generator
// seeded with s is a pure function of (s, i), so datasets can be produced in
// parallel, streamed, or regenerated partially without storing anything.

#ifndef JSONSI_DATAGEN_GENERATOR_H_
#define JSONSI_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "json/value.h"

namespace jsonsi::datagen {

/// The four evaluation datasets of Section 6.1.
enum class DatasetId { kGitHub, kTwitter, kWikidata, kNYTimes };

/// "GitHub", "Twitter", "Wikidata", "NYTimes".
const char* DatasetName(DatasetId id);

/// All four ids, in the paper's order.
std::vector<DatasetId> AllDatasets();

/// Deterministic random-access record source.
class DatasetGenerator {
 public:
  virtual ~DatasetGenerator() = default;

  /// Human-readable dataset name.
  virtual std::string name() const = 0;

  /// The i-th record; a pure function of (seed, index).
  virtual json::ValueRef Generate(uint64_t index) const = 0;

  /// Records [start, start+count).
  std::vector<json::ValueRef> GenerateMany(uint64_t count,
                                           uint64_t start = 0) const;
};

/// Creates the generator for `id` with the given seed.
std::unique_ptr<DatasetGenerator> MakeGenerator(DatasetId id, uint64_t seed);

}  // namespace jsonsi::datagen

#endif  // JSONSI_DATAGEN_GENERATOR_H_
