// Wikidata entity generator.
//
// Profile (Section 6.1 / Table 4 of the paper):
//   * a fixed top-level schema (id / type / labels / descriptions / claims /
//     sitelinks), but *poorly designed* lower levels: identifiers that are
//     really data — property ids ("P31", "P569", ...) and site names
//     ("enwiki", ...) — are encoded as record KEYS rather than as values of
//     an `id` field;
//   * nesting reaches level 6;
//   * consequence: nearly every record exhibits a fresh record type (the
//     paper counts 999 distinct types among 1,000 records), fusion cannot
//     match keys across records, and the fused type accumulates one optional
//     field per distinct key ever seen — much larger than the average input
//     type, though still far smaller than the sum of all inputs. This is the
//     documented worst case for key-driven fusion.
//
// Property keys are drawn Zipf-skewed from a bounded id space, so the fused
// type's growth flattens as N covers the key space — the same saturation the
// paper's Table 4 shows between 100K and 1M.

#include <memory>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "datagen/value_builder.h"
#include "support/hash.h"
#include "support/rng.h"

namespace jsonsi::datagen {
namespace {

using json::ValueRef;

constexpr uint64_t kPropertySpace = 2400;  // distinct "P<i>" property keys
constexpr uint64_t kWikiSpace = 280;       // distinct "<lang>wiki" site keys

class WikidataGenerator final : public DatasetGenerator {
 public:
  explicit WikidataGenerator(uint64_t seed) : seed_(seed) {}

  std::string name() const override { return "Wikidata"; }

  ValueRef Generate(uint64_t index) const override {
    Rng rng(Mix64(seed_ ^ Mix64(index + 0x3141'59ULL)));

    // labels/descriptions: language-keyed records (more keys-as-data, but
    // from a small space).
    auto lang_map = [&](size_t min_langs, size_t max_langs) {
      static const char* kLangs[] = {"en", "fr", "de", "es", "it", "nl",
                                     "ru", "ja", "zh", "pt", "pl", "sv"};
      size_t n = min_langs + rng.Below(max_langs - min_langs + 1);
      std::vector<json::Field> fields;
      // Pick a prefix of the language list to keep keys unique.
      for (size_t i = 0; i < n && i < 12; ++i) {
        fields.push_back(
            {kLangs[i], VRec({{"language", VStr(kLangs[i])},
                              {"value", VStr(rng.Words(2))}})});
      }
      return VRec(std::move(fields));
    };

    // claims: property-id-keyed record; each property maps to an array of
    // statements nested to level 6:
    // claims -> P31 -> [stmt] -> mainsnak -> datavalue -> value -> {...}
    static const ZipfTable kPropertyZipf(kPropertySpace, 1.05);
    static const ZipfTable kWikiZipf(kWikiSpace, 1.1);
    uint64_t num_claims = 3 + rng.Below(14);
    std::vector<json::Field> claims;
    std::vector<bool> used(kPropertySpace, false);
    for (uint64_t c = 0; c < num_claims; ++c) {
      uint64_t pid = kPropertyZipf.Sample(rng);
      if (used[pid]) continue;  // keys must stay unique
      used[pid] = true;
      claims.push_back(
          {std::string("P") + std::to_string(pid + 1), VArr({Statement(rng)})});
    }

    uint64_t num_links = rng.Below(5);
    std::vector<json::Field> sitelinks;
    std::vector<bool> used_wiki(kWikiSpace, false);
    for (uint64_t s = 0; s < num_links; ++s) {
      uint64_t wid = kWikiZipf.Sample(rng);
      if (used_wiki[wid]) continue;
      used_wiki[wid] = true;
      std::string site = std::string("w") + std::to_string(wid) + "wiki";
      sitelinks.push_back({site, VRec({{"site", VStr(site)},
                                       {"title", VStr(rng.Words(2))}})});
    }

    return VRec({
        {"id", VStr(std::string("Q") + std::to_string(index + 1))},
        {"type", VStr("item")},
        {"labels", lang_map(1, 6)},
        {"descriptions", lang_map(0, 4)},
        {"claims", VRec(std::move(claims))},
        {"sitelinks", VRec(std::move(sitelinks))},
        {"lastrevid", VNum(static_cast<double>(rng.Below(400000000)))},
        {"modified", VStr(std::string("2016-0") +
                          std::to_string(1 + rng.Below(9)) +
                          "-01T00:00:00Z")},
    });
  }

 private:
  // One statement, nested: {mainsnak:{snaktype,property,datavalue:{value:
  // {...},type}},type,rank}. Depth under `claims` reaches 6 counted from the
  // root record.
  static ValueRef Statement(Rng& rng) {
    ValueRef inner_value;
    double pick = rng.NextDouble();
    if (pick < 0.4) {
      inner_value = VRec({{"entity-type", VStr("item")},
                          {"numeric-id",
                           VNum(static_cast<double>(rng.Below(1000000)))}});
    } else if (pick < 0.7) {
      inner_value = VRec({{"time", VStr("+2016-01-01T00:00:00Z")},
                          {"precision", VNum(static_cast<double>(
                               9 + rng.Below(4)))},
                          {"calendarmodel", VStr("Q1985727")}});
    } else {
      inner_value = VStr(rng.Words(3));
    }
    return VRec({
        {"mainsnak",
         VRec({{"snaktype", VStr("value")},
               {"property",
                VStr(std::string("P") + std::to_string(rng.Below(2000)))},
               {"datavalue",
                VRec({{"value", inner_value},
                      {"type", VStr(inner_value->is_str()
                                        ? "string"
                                        : "structured")}})}})},
        {"type", VStr("statement")},
        {"rank", VStr(rng.Chance(0.9) ? "normal" : "preferred")},
    });
  }

  uint64_t seed_;
};

}  // namespace

std::unique_ptr<DatasetGenerator> MakeWikidataGenerator(uint64_t seed) {
  return std::make_unique<WikidataGenerator>(seed);
}

}  // namespace jsonsi::datagen
