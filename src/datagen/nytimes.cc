// NYTimes article-metadata generator.
//
// Profile (Section 6.1 / Table 5 of the paper):
//   * ~20 stable top-level fields (headline, keywords, byline, snippet,
//     lead_paragraph, multimedia, ...), so the FIRST level is fixed;
//   * the LOWER levels vary heavily from record to record:
//       - `headline` carries alternative subfield sets — sometimes
//         {main, content_kicker, kicker}, sometimes {main, print_headline};
//       - `byline` is a record in some records and a plain string (or null)
//         in others;
//       - several fields hold Num in some records and Str in others
//         (e.g. print_page, word_count as "325");
//       - `multimedia` and `keywords` are arrays of near-homogeneous records
//         with per-record lengths;
//   * nesting reaches 7 levels; most leaves are long prose strings, which is
//     why the real dataset is 22 GB for 1.2M records;
//   * expected results: many distinct inferred types (length and variant
//     combinations), but since all variation sits below a fixed first level,
//     fusion aligns the top-level keys perfectly and the fused type stays
//     small — the paper's *best* compaction case.

#include <memory>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "datagen/value_builder.h"
#include "support/hash.h"
#include "support/rng.h"

namespace jsonsi::datagen {
namespace {

using json::ValueRef;

class NYTimesGenerator final : public DatasetGenerator {
 public:
  explicit NYTimesGenerator(uint64_t seed) : seed_(seed) {}

  std::string name() const override { return "NYTimes"; }

  ValueRef Generate(uint64_t index) const override {
    Rng rng(Mix64(seed_ ^ Mix64(index + 0xA27'71CE5ULL)));

    // A field that is Num in some records and Str in others — the "common
    // pattern" called out for this dataset.
    auto num_or_str = [&](double p_str, uint64_t bound) {
      uint64_t v = rng.Below(bound);
      return rng.Chance(p_str) ? VStr(std::to_string(v))
                               : VNum(static_cast<double>(v));
    };

    return VRec({
        {"web_url", VStr("https://www.nytimes.com/2016/" + rng.Ident(12) +
                         ".html")},
        {"snippet", VStr(rng.Words(18 + rng.Below(14)))},
        {"lead_paragraph", VStr(rng.Words(40 + rng.Below(60)))},
        {"abstract", rng.Chance(0.2) ? VNull() : VStr(rng.Words(15))},
        {"print_page", num_or_str(0.35, 60)},
        {"source", VStr("The New York Times")},
        {"multimedia", Multimedia(rng)},
        {"headline", Headline(rng)},
        {"keywords", Keywords(rng)},
        {"pub_date", VStr(std::string("2016-0") +
                          std::to_string(1 + rng.Below(9)) +
                          "-12T09:00:00Z")},
        {"document_type", VStr(rng.Chance(0.85) ? "article" : "blogpost")},
        {"news_desk", VStr(rng.Ident(7))},
        {"section_name", rng.Chance(0.12) ? VNull() : VStr(rng.Ident(8))},
        {"byline", Byline(rng)},
        {"type_of_material", VStr(rng.Chance(0.8) ? "News" : "Op-Ed")},
        {"_id", VStr(rng.Ident(24))},
        {"word_count", num_or_str(0.25, 3000)},
        {"score", VNum(rng.NextDouble() * 10)},
        {"legacy", Legacy(rng)},
    });
  }

 private:
  // headline: the two alternative subfield sets the paper reports, plus an
  // occasional extended variant.
  static ValueRef Headline(Rng& rng) {
    double pick = rng.NextDouble();
    if (pick < 0.45) {
      return VRec({{"main", VStr(rng.Words(7))},
                   {"content_kicker", VStr(rng.Words(3))},
                   {"kicker", VStr(rng.Words(2))}});
    }
    if (pick < 0.9) {
      return VRec({{"main", VStr(rng.Words(7))},
                   {"print_headline", VStr(rng.Words(6))}});
    }
    return VRec({{"main", VStr(rng.Words(7))},
                 {"print_headline", VStr(rng.Words(6))},
                 {"seo", VStr(rng.Words(5))},
                 {"sub", VStr(rng.Words(4))}});
  }

  // byline: record / plain string / null across records.
  static ValueRef Byline(Rng& rng) {
    double pick = rng.NextDouble();
    if (pick < 0.15) return VNull();
    if (pick < 0.35) return VStr("By " + rng.Ident(6) + " " + rng.Ident(8));
    std::vector<ValueRef> people;
    for (uint64_t i = 1 + rng.Below(3); i > 0; --i) {
      people.push_back(VRec({{"firstname", VStr(rng.Ident(6))},
                             {"lastname", VStr(rng.Ident(9))},
                             {"rank", VNum(static_cast<double>(i))},
                             {"role", VStr("reported")}}));
    }
    return VRec({{"original", VStr("By " + rng.Ident(6))},
                 {"person", VArr(std::move(people))}});
  }

  static ValueRef Keywords(Rng& rng) {
    std::vector<ValueRef> keywords;
    for (uint64_t i = rng.Below(8); i > 0; --i) {
      keywords.push_back(VRec({
          {"name", VStr(rng.Chance(0.5) ? "subject" : "persons")},
          {"value", VStr(rng.Words(2))},
          // rank: Num or Str, per record — more same-field kind mixing.
          {"rank", rng.Chance(0.3) ? VStr(std::to_string(i))
                                   : VNum(static_cast<double>(i))},
          {"major", VStr(rng.Chance(0.5) ? "Y" : "N")},
      }));
    }
    return VArr(std::move(keywords));
  }

  static ValueRef Multimedia(Rng& rng) {
    std::vector<ValueRef> items;
    for (uint64_t i = rng.Below(5); i > 0; --i) {
      std::vector<json::Field> fields = {
          {"url", VStr("images/2016/" + rng.Ident(10) + ".jpg")},
          {"format", VStr(rng.Chance(0.5) ? "Standard" : "Large")},
          {"height", VNum(static_cast<double>(120 + rng.Below(800)))},
          {"width", VNum(static_cast<double>(120 + rng.Below(1200)))},
          {"type", VStr("image")},
      };
      if (rng.Chance(0.4)) {
        fields.push_back({"caption", VStr(rng.Words(10))});
      }
      if (rng.Chance(0.25)) {
        fields.push_back(
            {"credit", rng.Chance(0.8) ? VStr(rng.Ident(12)) : VNull()});
      }
      items.push_back(VRec(std::move(fields)));
    }
    return VArr(std::move(items));
  }

  // A deep legacy envelope taking total nesting to 7:
  // root -> legacy -> meta -> source -> feed -> origin -> ids (record).
  static ValueRef Legacy(Rng& rng) {
    ValueRef ids = VRec({{"primary", VStr(rng.Ident(12))},
                         {"secondary", rng.Chance(0.3)
                                           ? VNull()
                                           : VStr(rng.Ident(12))}});
    ValueRef origin = VRec({{"system", VStr(rng.Chance(0.7) ? "cms" : "wire")},
                            {"ids", ids}});
    ValueRef feed = VRec({{"name", VStr(rng.Ident(6))},
                          {"origin", origin}});
    ValueRef source = VRec({{"feed", feed},
                            {"verified", VBool(rng.Chance(0.9))}});
    ValueRef meta = VRec({{"source", source},
                          {"revision", VNum(static_cast<double>(
                               1 + rng.Below(9)))}});
    return VRec({{"meta", meta}});
  }

  uint64_t seed_;
};

}  // namespace

std::unique_ptr<DatasetGenerator> MakeNYTimesGenerator(uint64_t seed) {
  return std::make_unique<NYTimesGenerator>(seed);
}

}  // namespace jsonsi::datagen
