#include "datagen/generator.h"

namespace jsonsi::datagen {

// Factories defined by the per-dataset translation units.
std::unique_ptr<DatasetGenerator> MakeGitHubGenerator(uint64_t seed);
std::unique_ptr<DatasetGenerator> MakeTwitterGenerator(uint64_t seed);
std::unique_ptr<DatasetGenerator> MakeWikidataGenerator(uint64_t seed);
std::unique_ptr<DatasetGenerator> MakeNYTimesGenerator(uint64_t seed);

const char* DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kGitHub:
      return "GitHub";
    case DatasetId::kTwitter:
      return "Twitter";
    case DatasetId::kWikidata:
      return "Wikidata";
    case DatasetId::kNYTimes:
      return "NYTimes";
  }
  return "?";
}

std::vector<DatasetId> AllDatasets() {
  return {DatasetId::kGitHub, DatasetId::kTwitter, DatasetId::kWikidata,
          DatasetId::kNYTimes};
}

std::vector<json::ValueRef> DatasetGenerator::GenerateMany(
    uint64_t count, uint64_t start) const {
  std::vector<json::ValueRef> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) out.push_back(Generate(start + i));
  return out;
}

std::unique_ptr<DatasetGenerator> MakeGenerator(DatasetId id, uint64_t seed) {
  switch (id) {
    case DatasetId::kGitHub:
      return MakeGitHubGenerator(seed);
    case DatasetId::kTwitter:
      return MakeTwitterGenerator(seed);
    case DatasetId::kWikidata:
      return MakeWikidataGenerator(seed);
    case DatasetId::kNYTimes:
      return MakeNYTimesGenerator(seed);
  }
  return nullptr;
}

}  // namespace jsonsi::datagen
