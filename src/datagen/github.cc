// GitHub pull-request metadata generator.
//
// Profile (Section 6.1 / Table 2 of the paper):
//   * records only — arrays are never used;
//   * nesting depth never greater than 4;
//   * one shared top-level schema; records vary only in their lower levels;
//   * homogeneous: the number of distinct types grows very slowly with the
//     dataset size (29 @ 1K ... 3,043 @ 1M), and every inferred type has the
//     same AST size (min = max = avg in Table 2) because the variation is
//     scalar fields flipping between same-size basic types (Str <-> Null,
//     Num <-> Null);
//   * consequently fusion compacts extremely well: fused/avg <= 1.4.
//
// The generator emits a fixed pull-request skeleton (actor/repo/base/head
// sub-records, depth 4) in which a set of *nullable* scalar fields is
// independently Null with a small, field-specific probability, and a couple
// of enum-ish fields flip between Str and Num rarely. Distinct-type counts
// then grow like the number of observed null-pattern combinations —
// logarithmic-ish in N — exactly the paper's shape.

#include <cstdio>
#include <memory>
#include <string>

#include "datagen/generator.h"
#include "datagen/value_builder.h"
#include "support/hash.h"
#include "support/rng.h"

namespace jsonsi::datagen {
namespace {

using json::Field;
using json::ValueRef;

class GitHubGenerator final : public DatasetGenerator {
 public:
  explicit GitHubGenerator(uint64_t seed) : seed_(seed) {}

  std::string name() const override { return "GitHub"; }

  ValueRef Generate(uint64_t index) const override {
    Rng rng(Mix64(seed_ ^ Mix64(index + 0x9117'6bULL)));

    // A scalar that is Null with probability p (same AST size either way).
    auto nullable_str = [&](double p, std::string s) {
      return rng.Chance(p) ? VNull() : VStr(std::move(s));
    };
    auto nullable_num = [&](double p, double n) {
      return rng.Chance(p) ? VNull() : VNum(n);
    };

    uint64_t pr_number = 1 + rng.Below(40000);
    uint64_t uid = 1000 + rng.Below(500000);

    ValueRef user = VRec({
        {"login", VStr(rng.Ident(8))},
        {"id", VNum(static_cast<double>(uid))},
        {"type", VStr(rng.Chance(0.03) ? "Organization" : "User")},
        {"site_admin", VBool(rng.Chance(0.01))},
        // Lower-level variation: profile fields users often leave unset.
        {"name", nullable_str(0.012, rng.Ident(10))},
        {"company", nullable_str(0.02, rng.Ident(7))},
        {"email",
         nullable_str(0.015, rng.Ident(6) + "@" + rng.Ident(5) + ".com")},
    });

    auto repo = [&](std::string owner) {
      return VRec({
          {"id", VNum(static_cast<double>(rng.Below(9000000)))},
          {"name", VStr(rng.Ident(9))},
          {"full_name", VStr(owner + "/" + rng.Ident(9))},
          {"private", VBool(rng.Chance(0.08))},
          {"fork", VBool(rng.Chance(0.3))},
          {"language", nullable_str(0.01, rng.Ident(5))},
          {"description", nullable_str(0.01, rng.Words(6))},
          {"homepage", nullable_str(0.025, "https://" + rng.Ident(8) + ".io")},
          {"stargazers_count", VNum(static_cast<double>(rng.Below(5000)))},
          {"open_issues_count", VNum(static_cast<double>(rng.Below(300)))},
      });
    };

    // base/head: depth-4 chain (root -> base -> repo -> owner-ish scalars).
    auto ref = [&]() {
      std::string owner = rng.Ident(8);
      return VRec({
          {"label", VStr(owner + ":" + rng.Ident(6))},
          {"ref", VStr(rng.Chance(0.6) ? "master" : rng.Ident(7))},
          {"sha", VStr(rng.Ident(40))},
          {"repo", repo(owner)},
      });
    };

    return VRec({
        {"id", VNum(static_cast<double>(index + 1000000))},
        {"number", VNum(static_cast<double>(pr_number))},
        {"state", VStr(rng.Chance(0.7) ? "closed" : "open")},
        {"title", VStr(rng.Words(5))},
        {"body", nullable_str(0.008, rng.Words(25))},
        {"created_at", VStr(Timestamp(rng))},
        {"updated_at", VStr(Timestamp(rng))},
        {"closed_at", nullable_str(0.01, Timestamp(rng))},
        {"merged_at", nullable_str(0.015, Timestamp(rng))},
        {"merge_commit_sha", nullable_str(0.012, rng.Ident(40))},
        {"user", user},
        {"base", ref()},
        {"head", ref()},
        {"milestone", nullable_num(0.03, static_cast<double>(rng.Below(50)))},
        {"comments", VNum(static_cast<double>(rng.Below(40)))},
        {"commits", VNum(static_cast<double>(1 + rng.Below(30)))},
        {"additions", VNum(static_cast<double>(rng.Below(2000)))},
        {"deletions", VNum(static_cast<double>(rng.Below(1500)))},
        {"changed_files", VNum(static_cast<double>(1 + rng.Below(60)))},
        {"mergeable", rng.Chance(0.02) ? VNull() : VBool(rng.Chance(0.8))},
    });
  }

 private:
  static std::string Timestamp(Rng& rng) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "201%d-%02d-%02dT%02d:%02d:%02dZ",
                  static_cast<int>(rng.Below(7)),
                  static_cast<int>(1 + rng.Below(12)),
                  static_cast<int>(1 + rng.Below(28)),
                  static_cast<int>(rng.Below(24)),
                  static_cast<int>(rng.Below(60)),
                  static_cast<int>(rng.Below(60)));
    return buf;
  }

  uint64_t seed_;
};

}  // namespace

std::unique_ptr<DatasetGenerator> MakeGitHubGenerator(uint64_t seed) {
  return std::make_unique<GitHubGenerator>(seed);
}

}  // namespace jsonsi::datagen
