// Twitter firehose metadata generator.
//
// Profile (Section 6.1 / Table 3 of the paper):
//   * a large majority of records are tweet entities; a tiny fraction are
//     "delete" control records ({"delete": {...}}) — two different kinds of
//     objects in one stream;
//   * five distinct top-level schemas sharing common parts (plain tweet,
//     reply, retweet, geo-tagged tweet, delete);
//   * both records and arrays of records (hashtag/url/mention entities),
//     maximum nesting 3;
//   * inferred type sizes range widely (deletes are tiny, entity-rich tweets
//     large); exact array types of different lengths make the number of
//     distinct types grow steadily with N, and array fusion (the starred
//     types) is what keeps the fused schema small: fused/avg <= ~4.

#include <memory>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "datagen/value_builder.h"
#include "support/hash.h"
#include "support/rng.h"

namespace jsonsi::datagen {
namespace {

using json::ValueRef;

class TwitterGenerator final : public DatasetGenerator {
 public:
  explicit TwitterGenerator(uint64_t seed) : seed_(seed) {}

  std::string name() const override { return "Twitter"; }

  ValueRef Generate(uint64_t index) const override {
    Rng rng(Mix64(seed_ ^ Mix64(index + 0x7155173ULL)));
    // ~2% of the stream are delete control records.
    if (rng.Chance(0.02)) return Delete(rng);
    // The remaining four top-level variants.
    double pick = rng.NextDouble();
    if (pick < 0.15) return Tweet(rng, Variant::kReply);
    if (pick < 0.35) return Tweet(rng, Variant::kRetweet);
    if (pick < 0.45) return Tweet(rng, Variant::kGeo);
    return Tweet(rng, Variant::kPlain);
  }

 private:
  enum class Variant { kPlain, kReply, kRetweet, kGeo };

  // {"delete":{"status":{"id":..,"id_str":..,"user_id":..},"timestamp_ms":..}}
  static ValueRef Delete(Rng& rng) {
    double id = static_cast<double>(rng.Below(1e18));
    return VRec({{"delete",
                  VRec({{"status", VRec({
                                       {"id", VNum(id)},
                                       {"id_str",
                                        VStr(std::to_string(
                                            static_cast<uint64_t>(id)))},
                                       {"user_id", VNum(static_cast<double>(
                                                       rng.Below(100000000)))},
                                   })},
                        {"timestamp_ms",
                         VStr(std::to_string(1460000000000ULL +
                                             rng.Below(1e10)))}})}});
  }

  static ValueRef User(Rng& rng) {
    return VRec({
        {"id", VNum(static_cast<double>(rng.Below(100000000)))},
        {"screen_name", VStr(rng.Ident(9))},
        {"followers_count", VNum(static_cast<double>(rng.Below(100000)))},
        {"friends_count", VNum(static_cast<double>(rng.Below(5000)))},
        {"verified", VBool(rng.Chance(0.02))},
        {"lang", VStr(rng.Chance(0.6) ? "en" : rng.Ident(2))},
        // Profile URL is famously null-or-string in the firehose.
        {"url", rng.Chance(0.5) ? VNull()
                                : VStr("https://t.co/" + rng.Ident(8))},
    });
  }

  // entities.hashtags / urls / user_mentions: arrays of records whose
  // *lengths* vary per tweet -> distinct exact array types before fusion.
  // Lengths are drawn with a long tail so the number of distinct inferred
  // types keeps growing with |D| (Table 3's shape) instead of saturating.
  static uint64_t EntityLen(Rng& rng, uint64_t common, uint64_t rare) {
    return rng.Chance(0.8) ? rng.Below(common + 1) : rng.Below(rare + 1);
  }

  static ValueRef Entities(Rng& rng) {
    auto indices = [&]() {
      double a = static_cast<double>(rng.Below(120));
      return VArr({VNum(a), VNum(a + 1 + static_cast<double>(rng.Below(20)))});
    };
    std::vector<ValueRef> hashtags;
    for (uint64_t i = EntityLen(rng, 3, 9); i > 0; --i) {
      hashtags.push_back(VRec({{"text", VStr(rng.Ident(7))},
                               {"indices", indices()}}));
    }
    std::vector<ValueRef> urls;
    for (uint64_t i = EntityLen(rng, 2, 6); i > 0; --i) {
      urls.push_back(VRec({{"url", VStr("https://t.co/" + rng.Ident(8))},
                           {"expanded_url", VStr("https://" + rng.Ident(10) +
                                                 ".com/" + rng.Ident(6))},
                           {"indices", indices()}}));
    }
    std::vector<ValueRef> mentions;
    for (uint64_t i = EntityLen(rng, 2, 7); i > 0; --i) {
      mentions.push_back(
          VRec({{"screen_name", VStr(rng.Ident(9))},
                {"id", VNum(static_cast<double>(rng.Below(100000000)))},
                {"indices", indices()}}));
    }
    std::vector<json::Field> fields = {
        {"hashtags", VArr(std::move(hashtags))},
        {"urls", VArr(std::move(urls))},
        {"user_mentions", VArr(std::move(mentions))}};
    if (rng.Chance(0.12)) {
      std::vector<ValueRef> media;
      for (uint64_t i = 1 + rng.Below(4); i > 0; --i) {
        media.push_back(VRec({
            {"id", VNum(static_cast<double>(rng.Below(1e15)))},
            {"media_url", VStr("https://pbs.twimg.com/" + rng.Ident(10))},
            {"type", VStr("photo")},
            // Kept flat: the dataset's record nesting never exceeds 3.
            {"w", VNum(static_cast<double>(120 + rng.Below(4000)))},
            {"h", VNum(static_cast<double>(120 + rng.Below(3000)))},
            {"resize", VStr(rng.Chance(0.5) ? "fit" : "crop")},
        }));
      }
      fields.push_back({"media", VArr(std::move(media))});
    }
    return VRec(std::move(fields));
  }

  static ValueRef Tweet(Rng& rng, Variant variant) {
    std::vector<json::Field> fields = {
        {"created_at", VStr(std::string("Sat Apr 0") +
                            std::to_string(1 + rng.Below(9)) +
                            " 15:00:00 +0000 2016")},
        {"id", VNum(static_cast<double>(rng.Below(1e18)))},
        {"text", VStr(rng.Words(8 + rng.Below(10)))},
        {"source", VStr("<a href=\"http://twitter.com\">Web</a>")},
        {"truncated", VBool(rng.Chance(0.03))},
        {"user", User(rng)},
        {"retweet_count", VNum(static_cast<double>(rng.Below(1000)))},
        {"favorite_count", VNum(static_cast<double>(rng.Below(2000)))},
        {"entities", Entities(rng)},
        {"lang", VStr(rng.Chance(0.6) ? "en" : rng.Ident(2))},
    };
    switch (variant) {
      case Variant::kPlain:
        break;
      case Variant::kReply:
        fields.push_back({"in_reply_to_status_id",
                          VNum(static_cast<double>(rng.Below(1e18)))});
        fields.push_back({"in_reply_to_user_id",
                          VNum(static_cast<double>(rng.Below(100000000)))});
        fields.push_back({"in_reply_to_screen_name", VStr(rng.Ident(9))});
        break;
      case Variant::kRetweet: {
        // Nested original tweet (depth stays <= 3: record -> record ->
        // entities arrays).
        std::vector<json::Field> original = {
            {"id", VNum(static_cast<double>(rng.Below(1e18)))},
            {"text", VStr(rng.Words(10))},
            {"user", User(rng)},
            {"retweet_count", VNum(static_cast<double>(rng.Below(10000)))},
        };
        fields.push_back(
            {"retweeted_status", VRec(std::move(original))});
        break;
      }
      case Variant::kGeo: {
        fields.push_back(
            {"coordinates",
             VRec({{"type", VStr("Point")},
                   {"coordinates",
                    VArr({VNum(rng.NextDouble() * 360 - 180),
                          VNum(rng.NextDouble() * 180 - 90)})}})});
        fields.push_back({"place",
                          VRec({{"id", VStr(rng.Ident(16))},
                                {"full_name", VStr(rng.Ident(8))},
                                {"country_code", VStr(rng.Ident(2))}})});
        break;
      }
    }
    return VRec(std::move(fields));
  }

  uint64_t seed_;
};

}  // namespace

std::unique_ptr<DatasetGenerator> MakeTwitterGenerator(uint64_t seed) {
  return std::make_unique<TwitterGenerator>(seed);
}

}  // namespace jsonsi::datagen
