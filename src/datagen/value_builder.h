// Terse construction helpers for building JSON values in the generators.
// Internal to src/datagen (not part of the public API).

#ifndef JSONSI_DATAGEN_VALUE_BUILDER_H_
#define JSONSI_DATAGEN_VALUE_BUILDER_H_

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "json/value.h"

namespace jsonsi::datagen {

inline json::ValueRef VNull() { return json::Value::Null(); }
inline json::ValueRef VBool(bool b) { return json::Value::Bool(b); }
inline json::ValueRef VNum(double n) { return json::Value::Num(n); }
inline json::ValueRef VStr(std::string s) {
  return json::Value::Str(std::move(s));
}

inline json::ValueRef VArr(std::vector<json::ValueRef> elements) {
  return json::Value::Array(std::move(elements));
}

/// Record from key/value pairs; keys must be distinct (asserted in debug).
inline json::ValueRef VRec(std::vector<json::Field> fields) {
  return json::Value::RecordUnchecked(std::move(fields));
}

}  // namespace jsonsi::datagen

#endif  // JSONSI_DATAGEN_VALUE_BUILDER_H_
