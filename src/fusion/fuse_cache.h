// Memoization of the binary fusion operator.
//
// `Fuse` is a pure function of its operands' structure, and on real datasets
// the same pairs recur constantly: the Reduce phase fuses the same handful
// of record shapes against the evolving accumulator, and the recursive
// per-field fusions inside wide records repeat across millions of records
// (`Fuse(Num, Num + Null)` alone can run once per record). `FuseCache` is a
// bounded, sharded memo table for `Fuse(a, b) -> result`:
//
//   * Keys are *node identities* (pointers), which is why the cache is layered
//     on the TypeInterner (types/interner.h): after interning, structurally
//     equal operands present the same pointer, so a pointer-pair key captures
//     structural recurrence at O(1) cost with no tree walks.
//   * Keys are normalized for commutativity (Theorem 5.4): the pair is
//     ordered by pointer, so Fuse(a, b) and Fuse(b, a) share one entry.
//   * Keys carry the fuser's option fingerprint: a tuple-mode fuser
//     (max_tuple_length > 0) produces different results from the paper-exact
//     one, so their entries must not alias.
//   * Entries own TypeRefs to both operands and the result, so a cached key
//     pointer can never dangle or be recycled into a false hit.
//   * Bounded: each shard holds at most capacity/num_shards entries and
//     evicts an arbitrary resident when full (memo eviction only costs a
//     recomputation).
//
// Hit/miss/evict counters are kept internally (always, for bench reporting)
// and mirrored into the global MetricsRegistry (when telemetry is enabled)
// as fusecache.hits / fusecache.misses / fusecache.evictions.

#ifndef JSONSI_FUSION_FUSE_CACHE_H_
#define JSONSI_FUSION_FUSE_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/hash.h"
#include "types/type.h"

namespace jsonsi::fusion {

struct FuseCacheOptions {
  /// Number of independently locked shards; rounded up to a power of two.
  size_t num_shards = 16;
  /// Total resident entries across all shards.
  size_t capacity = 1 << 16;
};

struct FuseCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t size = 0;  // resident entries right now

  double HitRate() const {
    uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

/// Bounded sharded memo for Fuse. Thread-safe; see file comment.
class FuseCache {
 public:
  explicit FuseCache(const FuseCacheOptions& options = {});

  /// The process-global instance the default (memoizing) Fuser uses.
  static FuseCache& Global();

  /// Cached result for the (commutatively normalized) pair under the given
  /// option fingerprint; nullptr on miss.
  types::TypeRef Lookup(const types::TypeRef& a, const types::TypeRef& b,
                        uint64_t options_tag);

  /// Records Fuse(a, b) = result. Keeps a, b, and result alive while the
  /// entry is resident.
  void Insert(const types::TypeRef& a, const types::TypeRef& b,
              uint64_t options_tag, types::TypeRef result);

  FuseCacheStats stats() const;

  /// Drops all entries and zeroes the counters.
  void Clear();

  const FuseCacheOptions& options() const { return options_; }

 private:
  struct Key {
    const types::Type* lo = nullptr;
    const types::Type* hi = nullptr;
    uint64_t tag = 0;

    bool operator==(const Key& other) const {
      return lo == other.lo && hi == other.hi && tag == other.tag;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = Mix64(reinterpret_cast<uintptr_t>(k.lo));
      h = HashCombine(h, reinterpret_cast<uintptr_t>(k.hi));
      return static_cast<size_t>(HashCombine(h, k.tag));
    }
  };
  struct Entry {
    types::TypeRef lo;  // keepalive for the key pointers
    types::TypeRef hi;
    types::TypeRef result;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> map;
  };

  static Key MakeKey(const types::TypeRef& a, const types::TypeRef& b,
                     uint64_t options_tag) {
    Key k;
    k.lo = a.get() <= b.get() ? a.get() : b.get();
    k.hi = a.get() <= b.get() ? b.get() : a.get();
    k.tag = options_tag;
    return k;
  }

  Shard& ShardFor(const Key& k) const {
    return shards_[(KeyHash{}(k) >> 48) & shard_mask_];
  }

  FuseCacheOptions options_;
  size_t shard_mask_ = 0;
  size_t per_shard_capacity_ = 0;
  mutable std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace jsonsi::fusion

#endif  // JSONSI_FUSION_FUSE_CACHE_H_
