// Type fusion — the Reduce phase (Section 5.2, Figures 5 and 6).
//
// `Fuse` is the binary operator at the heart of the paper: it merges two
// types into a compact common supertype. It is *correct* (both inputs are
// subtypes of the output, Theorem 5.2), *commutative* (Theorem 5.4) and
// *associative* (Theorem 5.5), which is what makes the distributed Reduce —
// and incremental schema maintenance — safe.
//
// Specification implemented (Figure 6):
//
//   Fuse(T1, T2)   = (+) over { LFuse(U1,U2) | (U1,U2) in KMatch(T1,T2) }
//                              u  KUnmatch(T1, T2)
//   LFuse(B, B)    = B                                (same basic kind)
//   LFuse(RT1,RT2) = field-wise merge: matching keys fused recursively with
//                    cardinality min(m,n) (so '?' prevails over '1');
//                    unmatched keys become optional
//   LFuse on arrays = [ Fuse(body1, body2) * ]  where body_i is the array's
//                    star body, or collapse(AT_i) for an exact array type
//   collapse([])   = eps
//   collapse([T,R])= Fuse(T, collapse(R))
//
// Deviation noted in DESIGN.md: matched record fields fuse with `Fuse`, not
// `LFuse` — field types may be union types after earlier fusions (e.g.
// `B: Num + Bool` in the paper's own Section 2 example), on which LFuse is
// undefined; the prose and the worked examples require the union-aware Fuse.
//
// All functions preserve the normal-type invariant: in every union of the
// result, each kind occurs at most once.
//
// -- Tunable array precision (the paper's future work) ----------------------
//
// Section 7 announces the intent to "improve the precision of the inference
// process for arrays and study the relationship between precision and
// efficiency". The `Fuser` class realizes that study: with
// `FuseOptions::max_tuple_length = L`, two exact array types of the SAME
// length n <= L fuse positionally into an exact array type (a tuple type),
// preserving element order and length; everything else falls back to the
// paper's starred simplification. L = 0 (the default, and what the free
// functions use) is exactly the paper's algorithm. The parameterized
// operator remains commutative and associative (property-tested).
//
// -- Hash-consed, memoized fusion (the hot-path optimization) ---------------
//
// Because Fuse is a pure function of its operands' structure, and real
// datasets repeat the same structural types millions of times, the default
// Fuser runs *memoized*: operands are canonicalized through the global
// TypeInterner (types/interner.h), the pair is looked up in the global
// FuseCache (fuse_cache.h, commutatively normalized), and only misses run
// the Figure 5/6 merge. Results are interned too, so equal schemas share
// nodes and later equality checks short-circuit on pointer identity. The
// optimization is *provably invisible*: outputs are structurally identical
// to the unoptimized path (differential suite in tests/interning_test.cc),
// and it is disabled wholesale by `types::SetInterningEnabled(false)`
// (`jsi --no-intern`) or per-instance via FuseOptions.

#ifndef JSONSI_FUSION_FUSE_H_
#define JSONSI_FUSION_FUSE_H_

#include <cstddef>
#include <vector>

#include "types/interner.h"
#include "types/type.h"

namespace jsonsi::fusion {

/// Knobs for the precision/efficiency study plus the memoization toggles.
struct FuseOptions {
  /// Exact arrays of equal length <= this fuse positionally (tuple types)
  /// instead of collapsing to a starred body. 0 = paper behaviour.
  size_t max_tuple_length = 0;
  /// Canonicalize operands/results through the global TypeInterner before
  /// and after fusing, so structurally equal types share one node.
  bool intern = true;
  /// Memoize Fuse(a, b) in the global FuseCache keyed on interned identity.
  bool memoize = true;
  /// TreeFuser-level dedup: coalesce structurally identical stream elements
  /// into (type, count) entries and fuse each distinct type once.
  bool dedup = true;
  /// Distinct types buffered by TreeFuser dedup before flushing into the
  /// balanced-tree slots (bounds memory on mostly-distinct streams).
  size_t dedup_max_pending = 4096;
};

/// A fusion operator instance. Holds no mutable state of its own (the
/// interner/memo it consults are process-global); cheap to copy. The
/// default-constructed Fuser implements the paper exactly, accelerated by
/// interning + memoization; both layers are identity-preserving and can be
/// switched off via options or globally (types::SetInterningEnabled).
class Fuser {
 public:
  explicit Fuser(const FuseOptions& options = {}) : options_(options) {}

  /// Fuses two (possibly union, possibly eps) normal types into their
  /// compact common supertype. Commutative and associative.
  types::TypeRef Fuse(const types::TypeRef& a, const types::TypeRef& b) const;

  /// Fuses two non-union types of the same kind() (Figure 6 lines 2-7).
  /// Precondition: a and b are non-union, non-empty, kind(a) == kind(b).
  types::TypeRef LFuse(const types::TypeRef& a, const types::TypeRef& b) const;

  /// Array-body simplification (Figure 6 lines 8-9): folds the element types
  /// of an exact array type with Fuse; the empty array type collapses to
  /// eps. Precondition: `exact_array` is an exact array type.
  types::TypeRef Collapse(const types::TypeRef& exact_array) const;

  /// Left fold over a list (eps for empty input).
  types::TypeRef FuseAll(const std::vector<types::TypeRef>& ts) const;

  const FuseOptions& options() const { return options_; }

  /// True when this instance currently interns/memoizes (its options say so
  /// AND the global switch is on).
  bool interning_active() const {
    return options_.intern && types::InterningEnabled();
  }
  bool memoization_active() const {
    return options_.memoize && types::InterningEnabled();
  }
  bool dedup_active() const {
    return options_.dedup && types::InterningEnabled();
  }

 private:
  /// The unmemoized Figure 5/6 merge (identity cases already handled).
  types::TypeRef FuseUncached(const types::TypeRef& a,
                              const types::TypeRef& b) const;

  FuseOptions options_;
};

// -- Paper-exact free functions (default options) ---------------------------

types::TypeRef Fuse(const types::TypeRef& a, const types::TypeRef& b);
types::TypeRef LFuse(const types::TypeRef& a, const types::TypeRef& b);
types::TypeRef Collapse(const types::TypeRef& exact_array);
types::TypeRef FuseAll(const std::vector<types::TypeRef>& ts);

}  // namespace jsonsi::fusion

#endif  // JSONSI_FUSION_FUSE_H_
