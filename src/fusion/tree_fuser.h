// Streaming tree-shaped fusion accumulator.
//
// Left-folding Fuse over a stream is correct but quadratic-ish on datasets
// whose fused schema is wide (Wikidata: every record merges against an
// accumulator holding one optional field per key ever seen). Because Fuse is
// associative and commutative (Theorems 5.4/5.5), ANY reduction tree gives
// the same result; a balanced tree does asymptotically less work, since big
// schemas only merge with big schemas O(log n) times.
//
// TreeFuser implements a balanced reduction over a stream in O(log n) memory
// with the classic binary-counter scheme (as in bottom-up mergesort): slot k
// holds the fusion of exactly 2^k stream elements; pushing an element merges
// carries upward. This is the in-process analogue of Spark's treeReduce and
// is what the experiment harnesses use for the 1M-record table rows.
//
// -- Dedup layer ------------------------------------------------------------
//
// Real streams emit the same structural types over and over (GitHub events
// repeat a few dozen shapes across millions of records). When the fuser's
// dedup option is active, Add() coalesces structurally identical elements
// into a bounded (type, count) multiset and the fold fuses each *distinct*
// type once: the fold of c copies of T is computed by self-fusing T to its
// fixpoint (reached after at most one step beyond star-normalization — see
// FusionProperties.SelfFusionStabilizesAndAbsorbs), which is structurally
// identical to folding the c copies one by one, by associativity. The
// multiset is bounded (FuseOptions::dedup_max_pending); mostly-distinct
// streams (Wikidata) spill into the binary-counter slots and behave exactly
// as before. The whole layer is differential-tested against the plain path.

#ifndef JSONSI_FUSION_TREE_FUSER_H_
#define JSONSI_FUSION_TREE_FUSER_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "fusion/fuse.h"
#include "telemetry/telemetry.h"
#include "types/type.h"

namespace jsonsi::fusion {

/// Accumulates types one at a time, fusing in balanced-tree order.
class TreeFuser {
 public:
  TreeFuser() = default;
  /// Fuses with the given operator (tuple mode, memoization, dedup knobs).
  explicit TreeFuser(Fuser fuser) : fuser_(std::move(fuser)) {}

  /// Adds one type to the reduction.
  void Add(types::TypeRef t) {
    ++count_;
    if (fuser_.dedup_active()) {
      auto [it, inserted] = pending_.try_emplace(std::move(t), 0);
      ++it->second;
      if (!inserted) {
        JSONSI_COUNTER("treefuser.dedup_hits").Increment();
      } else if (pending_.size() >= fuser_.options().dedup_max_pending) {
        FlushPending();
      }
      return;
    }
    // Dedup inactive (or toggled off mid-stream): drain any buffered
    // entries, then fold directly.
    if (!pending_.empty()) FlushPending();
    AddToSlots(std::move(t));
  }

  /// Number of types added so far (dedup included).
  size_t count() const { return count_; }

  /// Distinct types currently buffered by the dedup layer.
  size_t pending_distinct() const { return pending_.size(); }

  /// Fuses the outstanding slots (and pending dedup entries) into the final
  /// result, folding from the first live slot — no Fuse(eps, slot) warm-up
  /// call. Returns eps when nothing was added. The fuser remains usable;
  /// Finish() is idempotent between Add() calls.
  types::TypeRef Finish() const {
    types::TypeRef acc;
    for (const types::TypeRef& slot : slots_) {
      if (!slot) continue;
      acc = acc ? fuser_.Fuse(acc, slot) : slot;
    }
    for (const auto& [t, count] : pending_) {
      types::TypeRef part = FoldCopies(t, count);
      acc = acc ? fuser_.Fuse(acc, part) : std::move(part);
    }
    return acc ? acc : types::Type::Empty();
  }

  const Fuser& fuser() const { return fuser_; }

  /// Binary-counter slots (slot k: fusion of 2^k elements, or null). Exposed
  /// for checkpointing; treat as opaque state to be fed back via
  /// RestoreState.
  const std::vector<types::TypeRef>& slots() const { return slots_; }

  /// The dedup multiset as (type, multiplicity) pairs, in unspecified order
  /// (fusion is commutative, so any order restores an equivalent fuser).
  std::vector<std::pair<types::TypeRef, size_t>> pending_entries() const {
    std::vector<std::pair<types::TypeRef, size_t>> entries;
    entries.reserve(pending_.size());
    for (const auto& [t, count] : pending_) entries.emplace_back(t, count);
    return entries;
  }

  /// Replaces the accumulator state wholesale with a previously exported
  /// (slots, pending, count) triple — the restore half of a checkpoint.
  /// Slots may carry trailing nulls; pending multiplicities must be >= 1.
  void RestoreState(std::vector<types::TypeRef> slots,
                    std::vector<std::pair<types::TypeRef, size_t>> pending,
                    size_t count) {
    slots_ = std::move(slots);
    while (!slots_.empty() && !slots_.back()) slots_.pop_back();
    pending_.clear();
    for (auto& [t, n] : pending) pending_[std::move(t)] += n;
    count_ = count;
  }

  /// Drains the dedup buffer into the O(log n) slots, releasing the
  /// multiset's memory. The reduction result is unchanged (Finish() folds
  /// pending entries through the same FoldCopies path); used by the
  /// soft-memory watermark to shed resident state.
  void ShrinkToSlots() {
    if (!pending_.empty()) FlushPending();
    pending_.rehash(0);
  }

 private:
  void AddToSlots(types::TypeRef t) {
    // Binary-counter carry: slot k full -> merge and carry into slot k+1.
    size_t k = 0;
    while (k < slots_.size() && slots_[k]) {
      t = fuser_.Fuse(slots_[k], t);
      slots_[k] = nullptr;
      ++k;
    }
    if (k == slots_.size()) slots_.emplace_back();
    slots_[k] = std::move(t);
  }

  /// Exact fold of `count` copies of t: self-fuse until the accumulator
  /// stops changing. Fuse is deterministic on structural inputs, so once one
  /// step is a no-op every further copy is too — the loop result equals the
  /// count-long left fold for any count >= the fixpoint index.
  types::TypeRef FoldCopies(const types::TypeRef& t, size_t count) const {
    types::TypeRef acc = t;
    for (size_t i = 1; i < count; ++i) {
      types::TypeRef next = fuser_.Fuse(acc, t);
      if (next->Equals(*acc)) break;
      acc = std::move(next);
    }
    return acc;
  }

  /// Drains the dedup multiset into the binary-counter slots.
  void FlushPending() {
    for (auto& [t, count] : pending_) AddToSlots(FoldCopies(t, count));
    pending_.clear();
  }

  Fuser fuser_;
  std::vector<types::TypeRef> slots_;  // slot k: fusion of 2^k elements
  std::unordered_map<types::TypeRef, size_t, types::TypeRefHash,
                     types::TypeRefEq>
      pending_;  // dedup multiset: distinct type -> multiplicity
  size_t count_ = 0;
};

}  // namespace jsonsi::fusion

#endif  // JSONSI_FUSION_TREE_FUSER_H_
