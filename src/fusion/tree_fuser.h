// Streaming tree-shaped fusion accumulator.
//
// Left-folding Fuse over a stream is correct but quadratic-ish on datasets
// whose fused schema is wide (Wikidata: every record merges against an
// accumulator holding one optional field per key ever seen). Because Fuse is
// associative and commutative (Theorems 5.4/5.5), ANY reduction tree gives
// the same result; a balanced tree does asymptotically less work, since big
// schemas only merge with big schemas O(log n) times.
//
// TreeFuser implements a balanced reduction over a stream in O(log n) memory
// with the classic binary-counter scheme (as in bottom-up mergesort): slot k
// holds the fusion of exactly 2^k stream elements; pushing an element merges
// carries upward. This is the in-process analogue of Spark's treeReduce and
// is what the experiment harnesses use for the 1M-record table rows.

#ifndef JSONSI_FUSION_TREE_FUSER_H_
#define JSONSI_FUSION_TREE_FUSER_H_

#include <vector>

#include "fusion/fuse.h"
#include "types/type.h"

namespace jsonsi::fusion {

/// Accumulates types one at a time, fusing in balanced-tree order.
class TreeFuser {
 public:
  /// Adds one type to the reduction.
  void Add(types::TypeRef t) {
    // Binary-counter carry: slot k full -> merge and carry into slot k+1.
    size_t k = 0;
    while (k < slots_.size() && slots_[k]) {
      t = Fuse(slots_[k], t);
      slots_[k] = nullptr;
      ++k;
    }
    if (k == slots_.size()) slots_.emplace_back();
    slots_[k] = std::move(t);
    ++count_;
  }

  /// Number of types added so far.
  size_t count() const { return count_; }

  /// Fuses the outstanding slots into the final result (eps when empty).
  /// The fuser remains usable; Finish() is idempotent between Add() calls.
  types::TypeRef Finish() const {
    types::TypeRef acc = types::Type::Empty();
    for (const types::TypeRef& slot : slots_) {
      if (slot) acc = Fuse(acc, slot);
    }
    return acc;
  }

 private:
  std::vector<types::TypeRef> slots_;  // slot k: fusion of 2^k elements
  size_t count_ = 0;
};

}  // namespace jsonsi::fusion

#endif  // JSONSI_FUSION_TREE_FUSER_H_
