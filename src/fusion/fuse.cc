#include "fusion/fuse.h"

#include <array>
#include <cassert>

#include "fusion/fuse_cache.h"
#include "telemetry/telemetry.h"
#include "types/interner.h"

namespace jsonsi::fusion {

using types::FieldType;
using types::Kind;
using types::Type;
using types::TypeRef;

namespace {

// Buckets the non-union addends of a flattened type by kind, normalizing
// defensively: should two addends of one kind ever appear (a non-normal
// input), they are LFused together, so Fuse is total and always yields a
// normal result.
std::array<TypeRef, 6> BucketByKind(const Fuser& fuser, const TypeRef& t) {
  std::array<TypeRef, 6> buckets{};
  for (const TypeRef& addend : types::Flatten(t)) {
    TypeRef& slot = buckets[static_cast<size_t>(addend->kind())];
    slot = slot ? fuser.LFuse(slot, addend) : addend;
  }
  return buckets;
}

TypeRef FuseRecords(const Fuser& fuser, const TypeRef& a, const TypeRef& b) {
  const auto& fa = a->fields();
  const auto& fb = b->fields();
  std::vector<FieldType> out;
  out.reserve(fa.size() + fb.size());
  // Both field vectors are key-sorted: a single linear merge implements
  // FMatch/FUnmatch of Figure 5.
  size_t i = 0;
  size_t j = 0;
  while (i < fa.size() && j < fb.size()) {
    int cmp = fa[i].key.compare(fb[j].key);
    if (cmp == 0) {
      // Matching keys: fuse the field types; min(m,n) with ? < 1 means the
      // field stays mandatory only when mandatory on both sides.
      out.push_back({fa[i].key, fuser.Fuse(fa[i].type, fb[j].type),
                     fa[i].optional || fb[j].optional});
      ++i;
      ++j;
    } else if (cmp < 0) {
      out.push_back({fa[i].key, fa[i].type, /*optional=*/true});
      ++i;
    } else {
      out.push_back({fb[j].key, fb[j].type, /*optional=*/true});
      ++j;
    }
  }
  for (; i < fa.size(); ++i) out.push_back({fa[i].key, fa[i].type, true});
  for (; j < fb.size(); ++j) out.push_back({fb[j].key, fb[j].type, true});
  // The merge of two key-sorted field lists is key-sorted and unique.
  return Type::RecordFromSorted(std::move(out));
}

TypeRef FuseArrays(const Fuser& fuser, const TypeRef& a, const TypeRef& b) {
  // Tuple mode (future-work extension): equal-length short exact arrays
  // fuse positionally, preserving order and length.
  // (Gated on max_tuple_length > 0 so the default operator reproduces the
  // paper exactly, including [] (+) [] = [(Empty)*].)
  if (fuser.options().max_tuple_length > 0 && a->is_array_exact() &&
      b->is_array_exact() &&
      a->elements().size() == b->elements().size() &&
      a->elements().size() <= fuser.options().max_tuple_length) {
    std::vector<TypeRef> elements;
    elements.reserve(a->elements().size());
    for (size_t i = 0; i < a->elements().size(); ++i) {
      elements.push_back(fuser.Fuse(a->elements()[i], b->elements()[i]));
    }
    return Type::ArrayExact(std::move(elements));
  }
  // Paper behaviour (Figure 6 lines 4-7): star of the fused bodies, where
  // the body of an exact array is its collapse.
  auto star_body = [&fuser](const TypeRef& t) {
    return t->is_array_star() ? t->body() : fuser.Collapse(t);
  };
  return Type::ArrayStar(fuser.Fuse(star_body(a), star_body(b)));
}

}  // namespace

TypeRef Fuser::Collapse(const TypeRef& exact_array) const {
  assert(exact_array->is_array_exact());
  JSONSI_COUNTER("fuse.collapse_calls").Increment();
  TypeRef acc = Type::Empty();  // collapse(EArrT) = eps
  for (const TypeRef& element : exact_array->elements()) {
    acc = Fuse(acc, element);
  }
  return acc;
}

TypeRef Fuser::LFuse(const TypeRef& a, const TypeRef& b) const {
  assert(!a->is_union() && !a->is_empty());
  assert(!b->is_union() && !b->is_empty());
  assert(a->kind() == b->kind());
  JSONSI_COUNTER("fuse.lfuse_calls").Increment();
  switch (a->kind()) {
    case Kind::kNull:
    case Kind::kBool:
    case Kind::kNum:
    case Kind::kStr:
      return a;  // LFuse(B, B) = B
    case Kind::kRecord:
      return FuseRecords(*this, a, b);
    case Kind::kArray:
      return FuseArrays(*this, a, b);
  }
  return a;
}

TypeRef Fuser::Fuse(const TypeRef& a, const TypeRef& b) const {
  // The identity cases skip the bucket/merge machinery entirely: fusing with
  // eps returns the other operand unchanged (sharing its node, the memo-like
  // fast path the telemetry counter below makes visible).
  if (a->is_empty() || b->is_empty()) {
    JSONSI_COUNTER("fuse.identity_hits").Increment();
    return a->is_empty() ? b : a;
  }

  // Memoized path: canonicalize operands to their interned representatives
  // (structurally equal, possibly the same node), then consult the memo
  // keyed on node identity. Both layers preserve structural equality, so
  // this branch is invisible apart from speed (differential-tested).
  if (!interning_active() && !memoization_active()) {
    return FuseUncached(a, b);
  }
  TypeRef ai = a;
  TypeRef bi = b;
  if (interning_active()) {
    types::TypeInterner& interner = types::TypeInterner::Global();
    ai = interner.Intern(std::move(ai));
    bi = interner.Intern(std::move(bi));
  }
  const uint64_t tag = static_cast<uint64_t>(options_.max_tuple_length);
  if (memoization_active()) {
    if (TypeRef hit = FuseCache::Global().Lookup(ai, bi, tag)) return hit;
  }
  TypeRef result = FuseUncached(ai, bi);
  if (interning_active()) {
    result = types::TypeInterner::Global().Intern(std::move(result));
  }
  if (memoization_active()) {
    FuseCache::Global().Insert(ai, bi, tag, result);
  }
  return result;
}

TypeRef Fuser::FuseUncached(const TypeRef& a, const TypeRef& b) const {
  std::array<TypeRef, 6> ba = BucketByKind(*this, a);
  std::array<TypeRef, 6> bb = BucketByKind(*this, b);
  std::vector<TypeRef> out;
  out.reserve(6);
  for (size_t k = 0; k < 6; ++k) {
    if (ba[k] && bb[k]) {
      out.push_back(LFuse(ba[k], bb[k]));  // KMatch pair
    } else if (ba[k]) {
      out.push_back(ba[k]);  // KUnmatch passthrough
    } else if (bb[k]) {
      out.push_back(bb[k]);
    }
  }
  // Union() canonicalizes: 0 addends -> eps, 1 -> the addend itself.
  TypeRef result = Type::Union(std::move(out));
  if (telemetry::Enabled()) {
    JSONSI_COUNTER("fuse.calls").Increment();
    JSONSI_HISTOGRAM("fuse.result_size").Record(result->size());
    // Compaction per pair: how much smaller the supertype is than its inputs
    // combined — the quantity behind the paper's fused/avg ratios.
    size_t inputs = a->size() + b->size();
    JSONSI_HISTOGRAM("fuse.size_delta")
        .Record(inputs > result->size() ? inputs - result->size() : 0);
  }
  return result;
}

TypeRef Fuser::FuseAll(const std::vector<TypeRef>& ts) const {
  TypeRef acc = Type::Empty();
  for (const TypeRef& t : ts) acc = Fuse(acc, t);
  return acc;
}

// -- Free functions: the paper-exact default instance -----------------------

namespace {
const Fuser& DefaultFuser() {
  static const Fuser instance{};
  return instance;
}
}  // namespace

TypeRef Fuse(const TypeRef& a, const TypeRef& b) {
  return DefaultFuser().Fuse(a, b);
}

TypeRef LFuse(const TypeRef& a, const TypeRef& b) {
  return DefaultFuser().LFuse(a, b);
}

TypeRef Collapse(const TypeRef& exact_array) {
  return DefaultFuser().Collapse(exact_array);
}

TypeRef FuseAll(const std::vector<TypeRef>& ts) {
  return DefaultFuser().FuseAll(ts);
}

}  // namespace jsonsi::fusion
