#include "fusion/fuse_cache.h"

#include "telemetry/telemetry.h"

namespace jsonsi::fusion {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

FuseCache::FuseCache(const FuseCacheOptions& options) : options_(options) {
  size_t shards = RoundUpPow2(options_.num_shards ? options_.num_shards : 1);
  shard_mask_ = shards - 1;
  per_shard_capacity_ =
      options_.capacity ? (options_.capacity + shards - 1) / shards : 1;
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  shards_ = std::vector<Shard>(shards);
}

FuseCache& FuseCache::Global() {
  static FuseCache* instance = new FuseCache();
  return *instance;
}

types::TypeRef FuseCache::Lookup(const types::TypeRef& a,
                                 const types::TypeRef& b,
                                 uint64_t options_tag) {
  Key key = MakeKey(a, b, options_tag);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    JSONSI_COUNTER("fusecache.misses").Increment();
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  JSONSI_COUNTER("fusecache.hits").Increment();
  return it->second.result;
}

void FuseCache::Insert(const types::TypeRef& a, const types::TypeRef& b,
                       uint64_t options_tag, types::TypeRef result) {
  Key key = MakeKey(a, b, options_tag);
  Entry entry;
  entry.lo = a.get() <= b.get() ? a : b;
  entry.hi = a.get() <= b.get() ? b : a;
  entry.result = std::move(result);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.size() >= per_shard_capacity_ &&
      shard.map.find(key) == shard.map.end()) {
    // Memo eviction only ever costs a recomputation.
    shard.map.erase(shard.map.begin());
    evictions_.fetch_add(1, std::memory_order_relaxed);
    JSONSI_COUNTER("fusecache.evictions").Increment();
  }
  shard.map.insert_or_assign(key, std::move(entry));
}

FuseCacheStats FuseCache::stats() const {
  FuseCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.size += shard.map.size();
  }
  return s;
}

void FuseCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace jsonsi::fusion
