// Export to JSON Schema.
//
// The paper positions its type language as "a core part of the JSON Schema
// language" formalized by Pezoa et al. [20]; this module realizes that
// relationship concretely by translating inferred types into standard JSON
// Schema documents (draft 2020-12 vocabulary), so downstream tools
// (validators, editors, codegen) can consume the inferred schemas.
//
// Mapping:
//   Null / Bool / Num / Str      {"type": "null" | "boolean" | "number"
//                                 | "string"}
//   {l1: T1, l2: T2?, ...}       {"type": "object",
//                                 "properties": {...},
//                                 "required": [mandatory keys],
//                                 "additionalProperties": false}
//                                (closed records, matching Section 4's
//                                 semantics)
//   [T1, ..., Tn]  (exact)       {"type": "array", "prefixItems": [...],
//                                 "items": false,
//                                 "minItems": n, "maxItems": n}
//   [T*]           (simplified)  {"type": "array", "items": {...}}
//   [Empty*]                     {"type": "array", "maxItems": 0}
//   T1 + ... + Tn                {"anyOf": [...]}
//   Empty                        false-schema ({"not": {}})
//
// With annotations attached (JsonSchemaOptions::annotation, collected by
// `--annotate`), the translation additionally emits validation facets the
// observed data supports: "minimum"/"maximum" on numbers, "minLength"/
// "maxLength" on strings, "enum" where the complete distinct-value set was
// sampled, and — at record positions with a tagged-union refinement
// (annotate/refine.h) — a "oneOf" of discriminator constraints encoding the
// variants as {"properties": {disc: {"const": v}}, "required": [...]}.

#ifndef JSONSI_EXPORT_JSON_SCHEMA_H_
#define JSONSI_EXPORT_JSON_SCHEMA_H_

#include <string>

#include "annotate/annotation.h"
#include "annotate/refine.h"
#include "json/value.h"
#include "types/type.h"

namespace jsonsi::exporter {

/// Export knobs.
struct JsonSchemaOptions {
  /// Emit the "$schema" draft marker on the root document.
  bool include_draft_uri = true;
  /// Emit "additionalProperties": false (the paper's closed-record
  /// semantics). Disable for lenient consumer-side validation.
  bool closed_records = true;
  /// Value statistics keyed by schema position (core::Schema::annotation).
  /// When set, data-supported facets (ranges, lengths, enums) are attached
  /// at matching positions. Borrowed, not owned; may be null.
  const annotate::Annotation* annotation = nullptr;
  /// Tagged-union refinements (RefineTaggedUnions over `annotation`), keyed
  /// by the same dotted paths the differ uses. When set, refined record
  /// positions carry the discriminated "oneOf" encoding. May be null.
  const annotate::RefinementMap* refinements = nullptr;
};

/// Translates `type` into a JSON Schema document (as a JSON value).
json::ValueRef ToJsonSchema(const types::Type& type,
                            const JsonSchemaOptions& options = {});
inline json::ValueRef ToJsonSchema(const types::TypeRef& type,
                                   const JsonSchemaOptions& options = {}) {
  return ToJsonSchema(*type, options);
}

/// Same, serialized (pretty-printed when `pretty`).
std::string ToJsonSchemaText(const types::Type& type, bool pretty = true,
                             const JsonSchemaOptions& options = {});

}  // namespace jsonsi::exporter

#endif  // JSONSI_EXPORT_JSON_SCHEMA_H_
