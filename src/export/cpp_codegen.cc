#include "export/cpp_codegen.h"

#include <cctype>
#include <vector>

namespace jsonsi::exporter {

using types::FieldType;
using types::Type;
using types::TypeNode;
using types::TypeRef;

namespace {

bool IsIdentifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

std::string Sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 'f');
  }
  return out;
}

std::string PascalCase(const std::string& name) {
  std::string out;
  bool upper = true;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      upper = true;
      continue;
    }
    out.push_back(upper ? static_cast<char>(
                              std::toupper(static_cast<unsigned char>(c)))
                        : c);
    upper = false;
  }
  return out.empty() ? "Unnamed" : out;
}

// Emits nested struct declarations depth-first; returns the C++ type
// expression to reference `t` at its use site.
struct Generator {
  const CppCodegenOptions& options;
  std::string declarations;

  std::string TypeExpr(const TypeRef& t, const std::string& name_hint) {
    switch (t->node()) {
      case TypeNode::kNull:
        return "std::monostate";
      case TypeNode::kBool:
        return "bool";
      case TypeNode::kNum:
        return "double";
      case TypeNode::kStr:
        return "std::string";
      case TypeNode::kEmpty:
        return "void /* uninhabited */";
      case TypeNode::kRecord:
        return EmitStruct(t, name_hint);
      case TypeNode::kArrayExact: {
        // Element type: union of the element kinds.
        std::vector<TypeRef> elements = t->elements();
        TypeRef body = Type::Union(std::move(elements));
        if (body->is_empty()) return "std::vector<std::monostate>";
        return "std::vector<" + TypeExpr(body, name_hint + "Item") + ">";
      }
      case TypeNode::kArrayStar: {
        if (t->body()->is_empty()) return "std::vector<std::monostate>";
        return "std::vector<" + TypeExpr(t->body(), name_hint + "Item") + ">";
      }
      case TypeNode::kUnion: {
        std::string expr = "std::variant<";
        bool first = true;
        for (const TypeRef& alt : t->alternatives()) {
          if (!first) expr += ", ";
          first = false;
          expr += TypeExpr(alt, name_hint + "Alt");
        }
        expr += ">";
        return expr;
      }
    }
    return "void";
  }

  std::string EmitStruct(const TypeRef& record, const std::string& name) {
    std::string struct_name = PascalCase(name);
    std::string body = "struct " + struct_name + " {\n";
    for (const FieldType& f : record->fields()) {
      std::string member = IsIdentifier(f.key) ? f.key : Sanitize(f.key);
      std::string type_expr = TypeExpr(f.type, struct_name + "_" + member);
      if (f.optional) type_expr = "std::optional<" + type_expr + ">";
      body += "  " + type_expr + " " + member + ";";
      if (member != f.key) body += "  // JSON key: \"" + f.key + "\"";
      body += "\n";
    }
    body += "};\n\n";
    declarations += body;  // nested structs were appended before us
    return struct_name;
  }
};

}  // namespace

std::string ToCppStructs(const Type& type, const CppCodegenOptions& options) {
  Generator gen{options, ""};
  std::string root_expr;
  if (type.is_record()) {
    // Share the node (cheap) to reuse TypeExpr's record path.
    std::vector<FieldType> fields = type.fields();
    root_expr = gen.EmitStruct(Type::RecordFromSorted(std::move(fields)),
                               options.root_name);
  } else {
    std::vector<FieldType> wrapper = {
        {"value",
         [&] {
           // Rebuild a shared handle for the non-record root.
           switch (type.node()) {
             case TypeNode::kNull:
               return Type::Null();
             case TypeNode::kBool:
               return Type::Bool();
             case TypeNode::kNum:
               return Type::Num();
             case TypeNode::kStr:
               return Type::Str();
             case TypeNode::kEmpty:
               return Type::Empty();
             case TypeNode::kArrayExact: {
               auto elements = type.elements();
               return Type::ArrayExact(std::move(elements));
             }
             case TypeNode::kArrayStar:
               return Type::ArrayStar(type.body());
             case TypeNode::kUnion: {
               auto alts = type.alternatives();
               return Type::Union(std::move(alts));
             }
             case TypeNode::kRecord:
               break;
           }
           return Type::Null();
         }(),
         false}};
    root_expr = gen.EmitStruct(Type::RecordFromSorted(std::move(wrapper)),
                               options.root_name);
  }

  std::string out =
      "// Generated by jsonsi (schema-inferred C++ bindings). Do not edit.\n"
      "#pragma once\n\n"
      "#include <optional>\n#include <string>\n#include <variant>\n"
      "#include <vector>\n\n";
  if (!options.namespace_name.empty()) {
    out += "namespace " + options.namespace_name + " {\n\n";
  }
  out += gen.declarations;
  if (!options.namespace_name.empty()) {
    out += "}  // namespace " + options.namespace_name + "\n";
  }
  (void)root_expr;
  return out;
}

}  // namespace jsonsi::exporter
