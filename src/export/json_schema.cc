#include "export/json_schema.h"

#include <vector>

#include "json/serializer.h"

namespace jsonsi::exporter {

using json::Field;
using json::Value;
using json::ValueRef;
using types::Type;
using types::TypeNode;
using types::TypeRef;

namespace {

// Annotation context for one schema position: the matching accumulator node
// (null when annotations are absent or the position was never observed) and
// the differ-convention dotted path used to look up refinements.
struct Ctx {
  const annotate::Annotation* ann = nullptr;
  std::string path;

  Ctx Field(const std::string& key) const {
    Ctx child;
    child.path = path.empty() ? key : path + "." + key;
    if (ann != nullptr) {
      auto it = ann->fields.find(key);
      if (it != ann->fields.end()) child.ann = it->second.node.get();
    }
    return child;
  }

  Ctx Items() const {
    Ctx child;
    child.path = path + "[]";
    if (ann != nullptr) child.ann = ann->items.get();
    return child;
  }
};

ValueRef Translate(const Type& t, const JsonSchemaOptions& options,
                   const Ctx& ctx);

ValueRef TypeName(const char* name) {
  return Value::RecordUnchecked({{"type", Value::Str(name)}});
}

// Attaches "enum" when the position's complete distinct-value set was
// sampled. Values are filtered by the leaf's encoding tag so a union
// position's Num branch only enumerates numbers, the Str branch strings.
void AppendEnum(const annotate::Annotation& ann, char tag,
                std::vector<Field>* schema) {
  if (!ann.sample.complete() || ann.sample.values.empty()) return;
  std::vector<ValueRef> values;
  for (const std::string& v : ann.sample.values) {
    if (!v.empty() && v[0] == tag) {
      values.push_back(annotate::DecodeScalarValue(v));
    }
  }
  if (!values.empty()) {
    schema->push_back({"enum", Value::Array(std::move(values))});
  }
}

ValueRef TranslateNum(const Ctx& ctx) {
  if (ctx.ann == nullptr) return TypeName("number");
  std::vector<Field> schema = {{"type", Value::Str("number")}};
  if (ctx.ann->num_range.seen) {
    schema.push_back({"minimum", Value::Num(ctx.ann->num_range.min)});
    schema.push_back({"maximum", Value::Num(ctx.ann->num_range.max)});
  }
  AppendEnum(*ctx.ann, 'n', &schema);
  return Value::RecordUnchecked(std::move(schema));
}

ValueRef TranslateStr(const Ctx& ctx) {
  if (ctx.ann == nullptr) return TypeName("string");
  std::vector<Field> schema = {{"type", Value::Str("string")}};
  if (ctx.ann->str_len.seen) {
    schema.push_back(
        {"minLength", Value::Num(static_cast<double>(ctx.ann->str_len.min))});
    schema.push_back(
        {"maxLength", Value::Num(static_cast<double>(ctx.ann->str_len.max))});
  }
  AppendEnum(*ctx.ann, 's', &schema);
  return Value::RecordUnchecked(std::move(schema));
}

// The discriminated-variant encoding: one "oneOf" branch per variant, each
// pinning the discriminator ("const" for one value, "enum" for several) and
// requiring the keys every record of the variant carried. Composes with the
// fused object schema it is attached to — properties/types still validate
// there; the oneOf restores what fusion erased.
ValueRef TranslateRefinement(const annotate::Refinement& refinement) {
  std::vector<ValueRef> one_of;
  one_of.reserve(refinement.variants.size());
  for (const annotate::RefinedVariant& variant : refinement.variants) {
    ValueRef disc;
    if (variant.values.size() == 1) {
      disc = Value::RecordUnchecked(
          {{"const", annotate::DecodeScalarValue(variant.values[0])}});
    } else {
      std::vector<ValueRef> values;
      values.reserve(variant.values.size());
      for (const std::string& v : variant.values) {
        values.push_back(annotate::DecodeScalarValue(v));
      }
      disc = Value::RecordUnchecked(
          {{"enum", Value::Array(std::move(values))}});
    }
    std::vector<Field> branch = {
        {"properties", Value::RecordUnchecked(
                           {{refinement.discriminator, std::move(disc)}})},
    };
    std::vector<ValueRef> required;
    for (const auto& [key, present] : variant.key_presence) {
      if (present == variant.count) required.push_back(Value::Str(key));
    }
    if (!required.empty()) {
      branch.push_back({"required", Value::Array(std::move(required))});
    }
    one_of.push_back(Value::RecordUnchecked(std::move(branch)));
  }
  return Value::Array(std::move(one_of));
}

ValueRef TranslateRecord(const Type& t, const JsonSchemaOptions& options,
                         const Ctx& ctx) {
  std::vector<Field> properties;
  std::vector<ValueRef> required;
  properties.reserve(t.fields().size());
  for (const types::FieldType& f : t.fields()) {
    properties.push_back(
        {f.key, Translate(*f.type, options, ctx.Field(f.key))});
    if (!f.optional) required.push_back(Value::Str(f.key));
  }
  std::vector<Field> schema = {
      {"type", Value::Str("object")},
      {"properties", Value::RecordUnchecked(std::move(properties))},
  };
  if (!required.empty()) {
    schema.push_back({"required", Value::Array(std::move(required))});
  }
  if (options.closed_records) {
    schema.push_back({"additionalProperties", Value::Bool(false)});
  }
  if (options.refinements != nullptr) {
    auto it = options.refinements->find(ctx.path);
    if (it != options.refinements->end()) {
      schema.push_back({"oneOf", TranslateRefinement(it->second)});
    }
  }
  return Value::RecordUnchecked(std::move(schema));
}

ValueRef TranslateExactArray(const Type& t, const JsonSchemaOptions& options,
                             const Ctx& ctx) {
  double n = static_cast<double>(t.elements().size());
  // All elements of a position pool into one annotation child, so each
  // prefix item reads the same (valid, pooled) statistics.
  Ctx items = ctx.Items();
  std::vector<ValueRef> prefix;
  prefix.reserve(t.elements().size());
  for (const TypeRef& e : t.elements()) {
    prefix.push_back(Translate(*e, options, items));
  }
  std::vector<Field> schema = {
      {"type", Value::Str("array")},
      {"minItems", Value::Num(n)},
      {"maxItems", Value::Num(n)},
  };
  if (!prefix.empty()) {
    schema.push_back({"prefixItems", Value::Array(std::move(prefix))});
    schema.push_back({"items", Value::Bool(false)});
  }
  return Value::RecordUnchecked(std::move(schema));
}

ValueRef TranslateStarArray(const Type& t, const JsonSchemaOptions& options,
                            const Ctx& ctx) {
  if (t.body()->is_empty()) {
    // [Empty*] denotes exactly the empty array.
    return Value::RecordUnchecked(
        {{"type", Value::Str("array")}, {"maxItems", Value::Num(0)}});
  }
  return Value::RecordUnchecked(
      {{"type", Value::Str("array")},
       {"items", Translate(*t.body(), options, ctx.Items())}});
}

ValueRef Translate(const Type& t, const JsonSchemaOptions& options,
                   const Ctx& ctx) {
  switch (t.node()) {
    case TypeNode::kNull:
      return TypeName("null");
    case TypeNode::kBool:
      return TypeName("boolean");
    case TypeNode::kNum:
      return TranslateNum(ctx);
    case TypeNode::kStr:
      return TranslateStr(ctx);
    case TypeNode::kEmpty:
      // The false schema: matches nothing.
      return Value::RecordUnchecked(
          {{"not", Value::RecordUnchecked({})}});
    case TypeNode::kRecord:
      return TranslateRecord(t, options, ctx);
    case TypeNode::kArrayExact:
      return TranslateExactArray(t, options, ctx);
    case TypeNode::kArrayStar:
      return TranslateStarArray(t, options, ctx);
    case TypeNode::kUnion: {
      std::vector<ValueRef> any_of;
      any_of.reserve(t.alternatives().size());
      for (const TypeRef& alt : t.alternatives()) {
        any_of.push_back(Translate(*alt, options, ctx));
      }
      return Value::RecordUnchecked(
          {{"anyOf", Value::Array(std::move(any_of))}});
    }
  }
  return TypeName("null");
}

}  // namespace

ValueRef ToJsonSchema(const Type& type, const JsonSchemaOptions& options) {
  Ctx root;
  root.ann = options.annotation;
  ValueRef body = Translate(type, options, root);
  if (!options.include_draft_uri) return body;
  std::vector<Field> fields = {
      {"$schema", Value::Str("https://json-schema.org/draft/2020-12/schema")}};
  for (const Field& f : body->fields()) fields.push_back(f);
  return Value::RecordUnchecked(std::move(fields));
}

std::string ToJsonSchemaText(const Type& type, bool pretty,
                             const JsonSchemaOptions& options) {
  ValueRef schema = ToJsonSchema(type, options);
  return pretty ? json::ToPrettyJson(*schema) : json::ToJson(*schema);
}

}  // namespace jsonsi::exporter
