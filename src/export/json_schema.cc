#include "export/json_schema.h"

#include <vector>

#include "json/serializer.h"

namespace jsonsi::exporter {

using json::Field;
using json::Value;
using json::ValueRef;
using types::Type;
using types::TypeNode;
using types::TypeRef;

namespace {

ValueRef Translate(const Type& t, const JsonSchemaOptions& options);

ValueRef TypeName(const char* name) {
  return Value::RecordUnchecked({{"type", Value::Str(name)}});
}

ValueRef TranslateRecord(const Type& t, const JsonSchemaOptions& options) {
  std::vector<Field> properties;
  std::vector<ValueRef> required;
  properties.reserve(t.fields().size());
  for (const types::FieldType& f : t.fields()) {
    properties.push_back({f.key, Translate(*f.type, options)});
    if (!f.optional) required.push_back(Value::Str(f.key));
  }
  std::vector<Field> schema = {
      {"type", Value::Str("object")},
      {"properties", Value::RecordUnchecked(std::move(properties))},
  };
  if (!required.empty()) {
    schema.push_back({"required", Value::Array(std::move(required))});
  }
  if (options.closed_records) {
    schema.push_back({"additionalProperties", Value::Bool(false)});
  }
  return Value::RecordUnchecked(std::move(schema));
}

ValueRef TranslateExactArray(const Type& t, const JsonSchemaOptions& options) {
  double n = static_cast<double>(t.elements().size());
  std::vector<ValueRef> prefix;
  prefix.reserve(t.elements().size());
  for (const TypeRef& e : t.elements()) {
    prefix.push_back(Translate(*e, options));
  }
  std::vector<Field> schema = {
      {"type", Value::Str("array")},
      {"minItems", Value::Num(n)},
      {"maxItems", Value::Num(n)},
  };
  if (!prefix.empty()) {
    schema.push_back({"prefixItems", Value::Array(std::move(prefix))});
    schema.push_back({"items", Value::Bool(false)});
  }
  return Value::RecordUnchecked(std::move(schema));
}

ValueRef TranslateStarArray(const Type& t, const JsonSchemaOptions& options) {
  if (t.body()->is_empty()) {
    // [Empty*] denotes exactly the empty array.
    return Value::RecordUnchecked(
        {{"type", Value::Str("array")}, {"maxItems", Value::Num(0)}});
  }
  return Value::RecordUnchecked(
      {{"type", Value::Str("array")},
       {"items", Translate(*t.body(), options)}});
}

ValueRef Translate(const Type& t, const JsonSchemaOptions& options) {
  switch (t.node()) {
    case TypeNode::kNull:
      return TypeName("null");
    case TypeNode::kBool:
      return TypeName("boolean");
    case TypeNode::kNum:
      return TypeName("number");
    case TypeNode::kStr:
      return TypeName("string");
    case TypeNode::kEmpty:
      // The false schema: matches nothing.
      return Value::RecordUnchecked(
          {{"not", Value::RecordUnchecked({})}});
    case TypeNode::kRecord:
      return TranslateRecord(t, options);
    case TypeNode::kArrayExact:
      return TranslateExactArray(t, options);
    case TypeNode::kArrayStar:
      return TranslateStarArray(t, options);
    case TypeNode::kUnion: {
      std::vector<ValueRef> any_of;
      any_of.reserve(t.alternatives().size());
      for (const TypeRef& alt : t.alternatives()) {
        any_of.push_back(Translate(*alt, options));
      }
      return Value::RecordUnchecked(
          {{"anyOf", Value::Array(std::move(any_of))}});
    }
  }
  return TypeName("null");
}

}  // namespace

ValueRef ToJsonSchema(const Type& type, const JsonSchemaOptions& options) {
  ValueRef body = Translate(type, options);
  if (!options.include_draft_uri) return body;
  std::vector<Field> fields = {
      {"$schema", Value::Str("https://json-schema.org/draft/2020-12/schema")}};
  for (const Field& f : body->fields()) fields.push_back(f);
  return Value::RecordUnchecked(std::move(fields));
}

std::string ToJsonSchemaText(const Type& type, bool pretty,
                             const JsonSchemaOptions& options) {
  ValueRef schema = ToJsonSchema(type, options);
  return pretty ? json::ToPrettyJson(*schema) : json::ToJson(*schema);
}

}  // namespace jsonsi::exporter
