// C++ struct generation from inferred schemas.
//
// A downstream consumer of schema inference (Section 1's "users cannot rely
// on schema information" complaint, inverted): once the schema is known,
// strongly-typed bindings can be generated. This backend emits a header with
// one struct per record type:
//
//   {id: Num, name: Str?, tags: [(Str)*]}
//     -->
//   struct Root {
//     double id;
//     std::optional<std::string> name;
//     std::vector<std::string> tags;
//   };
//
// Mapping rules:
//   Null            std::monostate        (presence marker only)
//   Bool/Num/Str    bool / double / std::string
//   T?              std::optional<T>
//   T1 + ... + Tn   std::variant<T1, ..., Tn>
//   [T*] and [T1..Tn]  std::vector<E>  (E = union of element types)
//   {..}            a named nested struct (name derived from the field path)
//
// Field keys that are not valid C++ identifiers are sanitized, with the
// original spelled in a comment. Generated code is deterministic.

#ifndef JSONSI_EXPORT_CPP_CODEGEN_H_
#define JSONSI_EXPORT_CPP_CODEGEN_H_

#include <string>

#include "types/type.h"

namespace jsonsi::exporter {

/// Codegen knobs.
struct CppCodegenOptions {
  /// Name for the root struct.
  std::string root_name = "Root";
  /// Namespace to wrap the declarations in (empty = none).
  std::string namespace_name = "schema";
};

/// Renders a self-contained C++17 header declaring structs for `type`.
std::string ToCppStructs(const types::Type& type,
                         const CppCodegenOptions& options = {});
inline std::string ToCppStructs(const types::TypeRef& type,
                                const CppCodegenOptions& options = {}) {
  return ToCppStructs(*type, options);
}

}  // namespace jsonsi::exporter

#endif  // JSONSI_EXPORT_CPP_CODEGEN_H_
