// Minimal JSON Schema validator for the vocabulary ToJsonSchema emits:
// type, properties, required, additionalProperties, items (schema or false),
// prefixItems, minItems, maxItems, anyOf, not.
//
// Exists so the exporter is testable *semantically*: for every type T and
// value V, `types::Matches(V, T)` must agree with
// `Validates(V, ToJsonSchema(T))` — a property the test suite sweeps over
// randomized inputs. It also doubles as a small standalone validator for the
// CLI (`jsi check --jsonschema`).

#ifndef JSONSI_EXPORT_VALIDATOR_H_
#define JSONSI_EXPORT_VALIDATOR_H_

#include "json/value.h"

namespace jsonsi::exporter {

/// Returns true iff `value` satisfies `schema` (a JSON Schema document using
/// the subset above). Unknown keywords are ignored, per the specification.
bool Validates(const json::Value& value, const json::Value& schema);
inline bool Validates(const json::ValueRef& value,
                      const json::ValueRef& schema) {
  return Validates(*value, *schema);
}

}  // namespace jsonsi::exporter

#endif  // JSONSI_EXPORT_VALIDATOR_H_
