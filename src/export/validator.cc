#include "export/validator.h"

#include <string_view>

namespace jsonsi::exporter {

using json::Value;
using json::ValueKind;

namespace {

bool MatchesTypeName(const Value& value, std::string_view name) {
  switch (value.kind()) {
    case ValueKind::kNull:
      return name == "null";
    case ValueKind::kBool:
      return name == "boolean";
    case ValueKind::kNum:
      return name == "number" ||
             (name == "integer" &&
              value.num_value() == static_cast<int64_t>(value.num_value()));
    case ValueKind::kStr:
      return name == "string";
    case ValueKind::kRecord:
      return name == "object";
    case ValueKind::kArray:
      return name == "array";
  }
  return false;
}

bool ValidateObject(const Value& value, const Value& schema) {
  const Value* required = schema.Find("required");
  if (required && required->is_array()) {
    for (const json::ValueRef& key : required->elements()) {
      if (!key->is_str() || !value.Find(key->str_value())) return false;
    }
  }
  const Value* properties = schema.Find("properties");
  const Value* additional = schema.Find("additionalProperties");
  for (const json::Field& f : value.fields()) {
    const Value* prop =
        properties && properties->is_record() ? properties->Find(f.key)
                                              : nullptr;
    if (prop) {
      if (!Validates(*f.value, *prop)) return false;
    } else if (additional && additional->is_bool() &&
               !additional->bool_value()) {
      return false;  // additionalProperties: false forbids unknown keys
    }
  }
  return true;
}

bool ValidateArray(const Value& value, const Value& schema) {
  const auto& elements = value.elements();
  if (const Value* min = schema.Find("minItems"); min && min->is_num()) {
    if (elements.size() < static_cast<size_t>(min->num_value())) return false;
  }
  if (const Value* max = schema.Find("maxItems"); max && max->is_num()) {
    if (elements.size() > static_cast<size_t>(max->num_value())) return false;
  }
  size_t prefix_len = 0;
  if (const Value* prefix = schema.Find("prefixItems");
      prefix && prefix->is_array()) {
    prefix_len = prefix->elements().size();
    for (size_t i = 0; i < elements.size() && i < prefix_len; ++i) {
      if (!Validates(*elements[i], *prefix->elements()[i])) return false;
    }
  }
  if (const Value* items = schema.Find("items")) {
    if (items->is_bool()) {
      // items: false forbids elements beyond the prefix.
      if (!items->bool_value() && elements.size() > prefix_len) return false;
    } else {
      for (size_t i = prefix_len; i < elements.size(); ++i) {
        if (!Validates(*elements[i], *items)) return false;
      }
    }
  }
  return true;
}

}  // namespace

bool Validates(const Value& value, const Value& schema) {
  // A schema that is a boolean validates everything / nothing.
  if (schema.is_bool()) return schema.bool_value();
  if (!schema.is_record()) return false;  // malformed schema

  if (const Value* any_of = schema.Find("anyOf");
      any_of && any_of->is_array()) {
    bool any = false;
    for (const json::ValueRef& sub : any_of->elements()) {
      if (Validates(value, *sub)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  if (const Value* not_schema = schema.Find("not")) {
    if (Validates(value, *not_schema)) return false;
  }
  if (const Value* type_name = schema.Find("type")) {
    if (type_name->is_str() &&
        !MatchesTypeName(value, type_name->str_value())) {
      return false;
    }
  }
  if (value.is_record() && !ValidateObject(value, schema)) return false;
  if (value.is_array() && !ValidateArray(value, schema)) return false;
  return true;
}

}  // namespace jsonsi::exporter
