// The coupling between the io layer and streaming inference: pull
// newline-bounded batches off a PipelineReader and fold each one into a
// StreamingInferencer, overlapping the next read with inference.
//
// Batches are fed as interior reads (end_of_stream = false) and the stream
// is closed with FinishStream() at end of input, so the schema, errors and
// IngestStats are byte-identical to a one-shot read of the whole input —
// the frozen contract every --io mode honors. Used by
// SchemaInferencer::InferFromFile (read/stream modes), the checkpointed
// `jsi infer` loop, and `jsi serve` ingest.

#ifndef JSONSI_CORE_IO_PUMP_H_
#define JSONSI_CORE_IO_PUMP_H_

#include <cstddef>
#include <functional>

#include "core/streaming_inferencer.h"
#include "io/pipeline_reader.h"
#include "support/status.h"

namespace jsonsi::core {

struct PumpOptions {
  /// Workers per batch: 1 = serial AddJsonLines, 0 = hardware concurrency,
  /// N = chunk-parallel (byte-identical results either way).
  size_t num_threads = 1;
  /// Run the deferred end-of-stream rate validation when the input ends.
  /// Off when the caller feeds several sources into one logical stream.
  bool finish_at_eof = true;
  /// Invoked after each successfully ingested batch (checkpoint saves,
  /// shutdown polling). ok(false) stops the pump cleanly — without the
  /// end-of-stream validation, since the stream is not over — and
  /// PumpJsonLines returns OK; an error status aborts and is returned.
  std::function<Result<bool>()> after_batch;
};

/// Drains `reader` into `stream`. Returns the first read or policy error;
/// `stream.ingest_stats()` covers everything consumed either way.
Status PumpJsonLines(io::PipelineReader& reader, StreamingInferencer& stream,
                     const PumpOptions& options);

}  // namespace jsonsi::core

#endif  // JSONSI_CORE_IO_PUMP_H_
