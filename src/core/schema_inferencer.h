// SchemaInferencer — the library's public entry point.
//
// Runs the paper's two-phase pipeline over a collection of JSON values:
//
//   Map    each value -> its isomorphic type        (inference::InferType)
//   Reduce fuse all types into one compact schema   (fusion::Fuse)
//
// executed on the partitioned map/reduce engine, with the statistics of
// Tables 2-5 gathered along the way. Because Fuse is associative and
// commutative, schemas are also *mergeable after the fact*: Merge() fuses
// two schemas of disjoint batches into the schema of their union, which is
// the incremental-maintenance story of Section 1 (new records, or re-typed
// partitions, fold into an existing schema without reprocessing the rest).
//
// Parallel end-to-end execution: with num_threads > 1 every stage runs on
// the thread pool —
//
//   * text input is cut into ~4x-threads chunks on line boundaries
//     (json/jsonl_chunk.h) and parsed chunk-parallel, with the degraded-mode
//     MalformedLinePolicy replayed to exact serial semantics;
//   * the Map phase runs one task per partition, each owning a thread-local
//     TreeFuser that folds its slice as it is typed (interning is process-
//     global, so structural duplicates dedup across workers);
//   * the per-partition partial schemas merge in a parallel pairwise
//     tree-reduce (engine/parallel_reduce.h), log-depth instead of a serial
//     fold.
//
// num_threads == 1 bypasses the pool entirely and runs the exact serial
// pipeline (single TreeFuser fold in stream order); by associativity and
// commutativity of Fuse (Theorems 5.4/5.5) the parallel schema is
// structurally identical to the serial one for every thread/partition/chunk
// count — asserted by tests/parallel_pipeline_test.cc.
//
// Fault tolerance: the same algebraic structure makes every stage re-runnable
// — recomputing a partition's types or partial schema reproduces it exactly
// — so the driver executes the parallel stages under a retry policy
// (engine/retry.h). A worker task that throws no longer brings down the
// process: the thread pool converts it to a Status, and the run either
// retries or reports the failure. Text/file input can run in degraded mode
// (skip malformed lines, with an ingestion report) via json::IngestOptions.
//
// Typical use:
//
//   jsonsi::core::SchemaInferencer inferencer;           // default options
//   auto schema = inferencer.InferFromValues(values);    // or ...FromFile
//   std::cout << schema.ToString() << "\n";
//   schema = SchemaInferencer::Merge(schema, later_batch_schema);

#ifndef JSONSI_CORE_SCHEMA_INFERENCER_H_
#define JSONSI_CORE_SCHEMA_INFERENCER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "annotate/annotation.h"
#include "engine/retry.h"
#include "io/input_source.h"
#include "json/jsonl.h"
#include "json/value.h"
#include "support/status.h"
#include "types/type.h"

namespace jsonsi::core {

/// Pipeline configuration.
struct InferenceOptions {
  /// Worker threads for the map/reduce engine (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Input partitions (Spark's parallelism knob). 0 = one per thread.
  size_t num_partitions = 0;
  /// Also gather distinct-type statistics (Tables 2-5). Costs one hash-set
  /// insert per record; disable for pure schema extraction.
  bool collect_stats = true;
  /// Retry policy for the parallel stages and for file reads. The defaults
  /// retry transient failures (worker exceptions, I/O hiccups) twice with
  /// jittered exponential backoff; deterministic input errors (parse,
  /// not-found) are never retried.
  engine::RetryPolicy retry;
  /// Malformed-line handling for the text/file entry points.
  json::IngestOptions ingest;
  /// Fuse parsing and the Map phase into one DOM-free pass for the
  /// text/file entry points (inference/direct_infer.h): types are built
  /// straight from the token stream, no json::Value is materialized. Error
  /// messages, positions and degraded-mode policy decisions are identical
  /// to the DOM path. On by default; `jsi infer --no-direct` (or setting
  /// this false) restores the parse-then-infer pipeline for A/B runs.
  bool direct_infer = true;
  /// Text inputs at least this large are ingested chunk-parallel when
  /// num_threads > 1 (below it, chunking overhead beats the win). Tests set
  /// 0 to force the parallel path on tiny inputs.
  size_t parallel_ingest_min_bytes = 1 << 16;
  /// Ingestion chunks created per worker thread (load-balancing slack for
  /// uneven line lengths).
  size_t chunks_per_thread = 4;
  /// Collect the Annotation monoid lattice (annotate/annotation.h) beside
  /// the schema: per-position counts, numeric/string ranges, distinct-value
  /// samples, cardinality sketches and record-shape evidence for
  /// tagged-union refinement. Off by default — the un-annotated hot path
  /// keeps its throughput; `jsi infer --annotate` opts in. The annotation
  /// is exactly identical across serial, parallel and chunk-parallel runs
  /// (every component is an associative + commutative merge).
  bool annotate = false;
  /// Input-source selection and pipeline buffering for the file/stdin
  /// entry points (src/io/). kAuto maps regular files (zero-copy, the
  /// buffer pipelines run on the page cache) and streams pipes; kRead and
  /// kStream pump bounded batches through a StreamingInferencer, which is
  /// what makes files larger than RAM inferrable. Every mode produces
  /// byte-identical schemas, errors and IngestStats.
  io::IoOptions io;
};

/// Statistics gathered by one inference run (or accumulated by Merge).
struct SchemaStats {
  size_t record_count = 0;
  size_t distinct_type_count = 0;   // 0 when collect_stats was off
  size_t min_type_size = 0;
  size_t max_type_size = 0;
  double avg_type_size = 0;         // mean over records (not distinct types)
  /// Map-phase cost. Serial: wall-clock of the inference loop. Parallel:
  /// the critical path — the slowest worker's inference time. On the
  /// direct-inference path parsing and Map are one fused pass, so this is
  /// the ingestion wall-clock (serial) or the slowest chunk worker.
  double infer_seconds = 0;
  /// Reduce-phase cost. Serial: wall-clock of the fold. Parallel: slowest
  /// worker's partition fold plus the tree-reduce wall-clock.
  double fuse_seconds = 0;
  /// Ingestion-mode accounting: how many records were typed DOM-free
  /// (direct) vs through a materialized json::Value (dom). Merge sums both,
  /// so A/B and mixed runs stay self-describing (`jsi infer --stats`).
  size_t direct_records = 0;
  size_t dom_records = 0;
};

/// An inferred schema: the fused type plus run statistics.
struct Schema {
  types::TypeRef type;
  SchemaStats stats;
  /// Value statistics keyed by schema position (null unless
  /// InferenceOptions::annotate was set). Shared, not owned: Merge() and
  /// copies of the schema alias the same immutable tree.
  std::shared_ptr<const annotate::Annotation> annotation;

  /// Renders the type in the paper's notation (multiline when `pretty`).
  std::string ToString(bool pretty = false) const;
};

/// The two-phase Map/Reduce schema-inference pipeline.
class SchemaInferencer {
 public:
  explicit SchemaInferencer(const InferenceOptions& options = {});

  /// Infers the schema of an in-memory collection. Infallible for
  /// well-behaved inputs; if a worker failure persists through the retry
  /// policy the process aborts with a diagnostic (the historical behaviour
  /// was an unceremonious std::terminate from the worker thread). Callers
  /// that want the error instead use TryInferFromValues.
  Schema InferFromValues(const std::vector<json::ValueRef>& values) const;

  /// As InferFromValues, but surfaces persistent worker failures as a
  /// Status after exhausting the retry policy.
  Result<Schema> TryInferFromValues(
      const std::vector<json::ValueRef>& values) const;

  /// Parses JSON-Lines text (per options().ingest), then infers. `stats`,
  /// when provided, receives the ingestion report.
  Result<Schema> InferFromJsonLines(std::string_view text,
                                    json::IngestStats* stats = nullptr) const;

  /// Reads a JSON-Lines file (per options().ingest, under the retry policy
  /// for transient I/O), then infers. The source is selected by
  /// options().io: memory-backed sources run the zero-copy buffer
  /// pipelines; others stream through bounded pipeline batches
  /// (constant-memory, identical results). "-" reads stdin.
  Result<Schema> InferFromFile(const std::string& path,
                               json::IngestStats* stats = nullptr) const;

  /// Infers from an already-opened input source — the file/stdin tail of
  /// InferFromFile, usable directly for custom sources. Memory-backed
  /// sources (Contents()) take the zero-copy path; everything else pumps
  /// bounded batches through a StreamingInferencer (annotate falls back to
  /// buffering: the annotation chunk merge needs random access).
  Result<Schema> InferFromSource(io::InputSource& source,
                                 json::IngestStats* stats = nullptr) const;

  /// Fuses two schemas into the schema of the union of their inputs.
  /// Associativity of Fuse makes this exact, not approximate. Distinct-type
  /// counts cannot be combined without the underlying sets, so the merged
  /// count is 0 unless one side is empty; size statistics merge exactly.
  static Schema Merge(const Schema& a, const Schema& b);

  const InferenceOptions& options() const { return options_; }

 private:
  /// DOM-free text ingestion: DirectInferType per line (serial) or per
  /// chunk worker (parallel), then the typed Reduce tail.
  Result<Schema> InferDirectFromJsonLines(std::string_view text,
                                          json::IngestStats* stats) const;

  InferenceOptions options_;
};

}  // namespace jsonsi::core

#endif  // JSONSI_CORE_SCHEMA_INFERENCER_H_
