// Progressive schema refinement — the exploration mode Section 7 proposes:
// "process a subset of a large dataset to get a first insight on the
// structure of the data before deciding whether to refine this partial
// schema by processing additional data."
//
// ProgressiveInferencer ingests batches and tracks schema *convergence*: how
// long the running schema has been structurally stable. Because fusion is
// monotone (prefix schemas form a subtype chain), once the schema stops
// changing for a while, additional data rarely adds structure — the tracker
// quantifies exactly that, so a user (or driver loop) can stop early with an
// evidence-backed partial schema, or keep refining.

#ifndef JSONSI_CORE_PROGRESSIVE_H_
#define JSONSI_CORE_PROGRESSIVE_H_

#include <cstdint>
#include <vector>

#include "core/streaming_inferencer.h"
#include "json/value.h"
#include "types/type.h"

namespace jsonsi::core {

/// Convergence policy.
struct ProgressiveOptions {
  /// Declare convergence after this many consecutive batches without any
  /// structural schema change.
  size_t stable_batches_to_converge = 5;
  /// Streaming options for the underlying inferencer.
  StreamingOptions streaming;
};

/// Per-batch progress record.
struct BatchReport {
  uint64_t batch_index = 0;
  uint64_t records_total = 0;
  /// Did this batch change the schema structurally?
  bool schema_changed = false;
  /// Schema AST size after the batch.
  size_t schema_size = 0;
  /// Consecutive unchanged batches ending at this one.
  size_t stable_run = 0;
};

/// Batch-at-a-time inference with convergence tracking.
class ProgressiveInferencer {
 public:
  explicit ProgressiveInferencer(const ProgressiveOptions& options = {});

  /// Ingests one batch; returns its progress report.
  BatchReport AddBatch(const std::vector<json::ValueRef>& batch);

  /// True once `stable_batches_to_converge` consecutive batches left the
  /// schema unchanged.
  bool converged() const {
    return stable_run_ >= options_.stable_batches_to_converge;
  }

  /// Current (partial) schema snapshot.
  Schema Snapshot() const { return streaming_.Snapshot(); }

  /// All reports so far (one per batch).
  const std::vector<BatchReport>& history() const { return history_; }

 private:
  ProgressiveOptions options_;
  StreamingInferencer streaming_;
  types::TypeRef last_schema_;
  size_t stable_run_ = 0;
  std::vector<BatchReport> history_;
};

}  // namespace jsonsi::core

#endif  // JSONSI_CORE_PROGRESSIVE_H_
