#include "core/io_pump.h"

#include <string_view>

#include "telemetry/telemetry.h"

namespace jsonsi::core {

Status PumpJsonLines(io::PipelineReader& reader, StreamingInferencer& stream,
                     const PumpOptions& options) {
  for (;;) {
    Result<std::string_view> batch = reader.Next();
    if (!batch.ok()) return batch.status();
    if (batch.value().empty()) break;  // end of input
    JSONSI_COUNTER("io.batches").Increment();
    JSONSI_COUNTER("io.batch_bytes").Add(batch.value().size());
    Status st =
        options.num_threads == 1
            ? stream.AddJsonLines(batch.value(), /*end_of_stream=*/false)
            : stream.AddJsonLinesParallel(batch.value(), options.num_threads,
                                          /*end_of_stream=*/false);
    if (!st.ok()) return st;
    if (options.after_batch) {
      Result<bool> keep_going = options.after_batch();
      if (!keep_going.ok()) return keep_going.status();
      if (!keep_going.value()) return Status::OK();
    }
  }
  if (options.finish_at_eof) return stream.FinishStream();
  return Status::OK();
}

}  // namespace jsonsi::core
