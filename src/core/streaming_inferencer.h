// Push-based streaming schema inference.
//
// SchemaInferencer (schema_inferencer.h) is the batch pipeline; this is the
// unbounded-feed counterpart the paper's incremental story calls for:
// records are pushed one at a time (or as raw JSON-Lines text), the running
// schema is maintained in balanced-tree fusion order (O(log n) memory), and
// a consistent snapshot — schema + statistics — can be taken at any moment
// without stopping ingestion. Snapshots are exact: by associativity, the
// snapshot schema equals the batch schema of everything pushed so far.
//
// Two streaming profiles can be enabled:
//   * distinct-type counting (hash-based, 8 bytes per distinct type),
//   * the statistics/provenance profiler of annotate/counted_schema.h.
//
// Text ingestion runs in degraded mode on request: a MalformedLinePolicy
// decides whether a bad line aborts the stream, is skipped, or is skipped
// until bad lines exceed a tolerated rate, and ingest_stats() reports what
// was read, skipped, and where the first errors were.

#ifndef JSONSI_CORE_STREAMING_INFERENCER_H_
#define JSONSI_CORE_STREAMING_INFERENCER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_set>

#include "annotate/counted_schema.h"
#include "core/schema_inferencer.h"
#include "fusion/tree_fuser.h"
#include "json/jsonl.h"
#include "json/value.h"
#include "support/status.h"
#include "types/type.h"

namespace jsonsi::core {

/// Streaming configuration.
struct StreamingOptions {
  /// Track the number of distinct inferred types (Tables 2-5 metric).
  bool count_distinct_types = true;
  /// Per-document parser budgets, applied identically on the DOM and direct
  /// paths, serial and chunk-parallel: `max_depth` caps nesting,
  /// `max_document_bytes` caps line size (0 = unlimited). A document over
  /// either budget is a malformed line under `on_malformed` — degraded-mode
  /// streams skip it and keep going instead of aborting.
  json::ParseOptions parse;
  /// Soft watermark (bytes, 0 = unlimited) over the inferencer's resident
  /// auxiliary state: the distinct-type hash set, the TreeFuser dedup
  /// buffer, and the process-global interner / fuse-cache tables. When the
  /// estimate crosses the watermark, ingestion keeps going but stops
  /// growing: the dedup buffer is flushed into the O(log n) fusion slots,
  /// the distinct-type set stops admitting new hashes (the count becomes a
  /// lower bound), and the global caches are cleared (identity-preserving —
  /// they are pure accelerators). The schema itself is never dropped.
  size_t soft_memory_limit_bytes = 0;
  /// Maintain the annotated profile (field counts, provenance, value stats).
  /// Costs one extra pass per record.
  bool profile = false;
  /// Legacy switch: when true (and on_malformed is the default kFail),
  /// malformed input is counted and skipped — equivalent to
  /// MalformedLinePolicy::kSkip.
  bool skip_malformed = false;
  /// Degraded-mode policy for AddJson/AddJsonLines; see json/jsonl.h.
  json::MalformedLinePolicy on_malformed = json::MalformedLinePolicy::kFail;
  /// kFailAboveRate knobs (same semantics as json::IngestOptions).
  double max_error_rate = 0.01;
  uint64_t min_lines_for_rate = 100;
  size_t max_recorded_errors = 8;
  /// Ingest AddJsonLines{,Parallel} text DOM-free (inference/direct_infer.h):
  /// types are built straight from the token stream, no json::Value per
  /// line. Policy decisions, reports and the snapshot schema are identical
  /// to the DOM path. Ignored (DOM path used) when `profile` is set — the
  /// profiler needs the parsed values. AddValue/AddJson always use the DOM
  /// path: their inputs are values by definition.
  bool direct_infer = true;
};

/// Accumulates a schema over a pushed stream of records.
class StreamingInferencer {
 public:
  explicit StreamingInferencer(const StreamingOptions& options = {});

  /// Pushes one already-parsed record.
  void AddValue(const json::ValueRef& value);

  /// Parses and pushes one JSON document. Parse errors are handled per the
  /// malformed-line policy: kFail propagates, kSkip records and continues,
  /// kFailAboveRate records and fails once the tolerated rate is exceeded.
  Status AddJson(std::string_view json_text);

  /// Parses and pushes a whole JSON-Lines buffer (blank lines skipped,
  /// CRLF/BOM tolerated, zero-copy line slicing). Chunks may be fed
  /// repeatedly; ingest_stats() accumulates across calls with coherent
  /// line numbers. Passing `end_of_stream = false` marks the buffer as an
  /// interior batch of a longer stream: the end-of-read rate validation is
  /// deferred until a final batch (or FinishStream()) closes the stream,
  /// so a batched feed aborts exactly where a one-shot read would.
  Status AddJsonLines(std::string_view text, bool end_of_stream = true);

  /// As AddJsonLines, but parses and infers the buffer chunk-parallel on
  /// `num_threads` workers (0 = hardware concurrency; <= 1 falls back to
  /// the serial method). Exactly equivalent to AddJsonLines — the degraded-
  /// mode policy is replayed against the cumulative stream (rate_baseline =
  /// ingest_stats()), profiling provenance keeps global record ordinals,
  /// and the snapshot schema is structurally identical by associativity.
  Status AddJsonLinesParallel(std::string_view text, size_t num_threads = 0,
                              bool end_of_stream = true);

  /// Closes a stream fed with `end_of_stream = false` batches: runs the
  /// deferred end-of-stream rate validation against the cumulative stream.
  /// No-op (OK) for other policies or when nothing was deferred.
  Status FinishStream();

  /// Merges another streaming inferencer (e.g. one per shard) into this one.
  /// Exact, by associativity/commutativity of fusion and profile merging.
  /// Distinct-type counts merge exactly (hash-set union).
  void Merge(const StreamingInferencer& other);

  /// Consistent snapshot of the current schema + statistics. O(log n) fuse
  /// work; ingestion may continue afterwards.
  Schema Snapshot() const;

  /// Records successfully ingested so far.
  uint64_t record_count() const { return record_count_; }
  /// Text inputs rejected so far (only grows under kSkip/kFailAboveRate, or
  /// with the legacy skip_malformed switch).
  uint64_t malformed_count() const { return ingest_stats_.malformed_lines; }

  /// Cumulative text-ingestion report (AddJson + AddJsonLines).
  /// `ingest_stats().bytes_consumed` is the stream's exact resume offset —
  /// the byte just past the last fully-processed line — and is what a
  /// checkpoint records as the position to restart reading from.
  const json::IngestStats& ingest_stats() const { return ingest_stats_; }

  /// The annotated profile; nullptr unless options.profile was set.
  const annotate::SchemaProfiler* profiler() const { return profiler_.get(); }

  /// The streaming configuration this inferencer was built with.
  const StreamingOptions& options() const { return options_; }

  /// True once the soft memory watermark fired (see
  /// StreamingOptions::soft_memory_limit_bytes); the distinct-type count is
  /// a lower bound from then on.
  bool memory_degraded() const { return memory_degraded_; }

 private:
  // Crash-safe snapshot/restore of the full stream state (core/checkpoint.h
  // owns the on-disk format; it reads and writes the private fields below).
  friend Result<std::string> SerializeCheckpoint(
      const StreamingInferencer& inferencer);
  friend Status RestoreCheckpoint(std::string_view text,
                                  StreamingInferencer* inferencer);

  json::MalformedLinePolicy EffectivePolicy() const;
  /// True when text ingestion should run DOM-free.
  bool UseDirectIngestion() const {
    return options_.direct_infer && !profiler_;
  }
  /// Folds one inferred type into the running schema and statistics — the
  /// shared tail of AddValue (DOM) and the direct ingestion paths.
  void AddType(types::TypeRef type);
  /// DOM-free chunk-parallel ingestion (AddJsonLinesParallel's direct arm).
  Status AddJsonLinesParallelDirect(std::string_view text, size_t num_threads,
                                    bool end_of_stream);
  /// Mirrors the cumulative ingestion report into stream.* gauges (no-op
  /// while telemetry is disabled).
  void PublishIngestTelemetry() const;
  /// Rough byte estimate of the resident auxiliary state the soft watermark
  /// governs (hash set, dedup buffer, global caches).
  size_t EstimateAuxiliaryMemory() const;
  /// Checks the soft watermark and sheds state once when it is crossed.
  void EnforceMemoryBudget();

  StreamingOptions options_;
  fusion::TreeFuser fuser_;
  std::unordered_set<uint64_t> distinct_hashes_;
  std::unique_ptr<annotate::SchemaProfiler> profiler_;
  json::IngestStats ingest_stats_;
  uint64_t record_count_ = 0;
  // Running size stats over inferred types.
  size_t min_type_size_ = 0;
  size_t max_type_size_ = 0;
  double total_type_size_ = 0;
  // Sticky soft-watermark latch: once crossed, the distinct-type set stops
  // growing and the dedup buffer stays flushed.
  bool memory_degraded_ = false;
};

}  // namespace jsonsi::core

#endif  // JSONSI_CORE_STREAMING_INFERENCER_H_
