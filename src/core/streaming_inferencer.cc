#include "core/streaming_inferencer.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/thread_pool.h"
#include "fusion/fuse_cache.h"
#include "inference/direct_infer.h"
#include "inference/infer.h"
#include "json/jsonl_chunk.h"
#include "json/parser.h"
#include "telemetry/telemetry.h"
#include "types/interner.h"

namespace jsonsi::core {

StreamingInferencer::StreamingInferencer(const StreamingOptions& options)
    : options_(options) {
  if (options_.profile) {
    profiler_ = std::make_unique<annotate::SchemaProfiler>();
  }
}

json::MalformedLinePolicy StreamingInferencer::EffectivePolicy() const {
  // The legacy skip_malformed switch maps onto the policy enum unless the
  // caller picked an explicit non-default policy.
  if (options_.skip_malformed &&
      options_.on_malformed == json::MalformedLinePolicy::kFail) {
    return json::MalformedLinePolicy::kSkip;
  }
  return options_.on_malformed;
}

void StreamingInferencer::AddValue(const json::ValueRef& value) {
  types::TypeRef t = inference::InferType(*value);
  if (profiler_) profiler_->Observe(*value, record_count_);
  AddType(std::move(t));
}

void StreamingInferencer::AddType(types::TypeRef type) {
  // Once the watermark fired the distinct-type set is frozen: admitting new
  // hashes is what grows it, so the count becomes a lower bound.
  if (options_.count_distinct_types && !memory_degraded_) {
    distinct_hashes_.insert(type->hash());
  }
  size_t s = type->size();
  if (record_count_ == 0) {
    min_type_size_ = max_type_size_ = s;
  } else {
    min_type_size_ = std::min(min_type_size_, s);
    max_type_size_ = std::max(max_type_size_, s);
  }
  total_type_size_ += static_cast<double>(s);
  fuser_.Add(std::move(type));
  ++record_count_;
  JSONSI_COUNTER("stream.records").Increment();
  // Cheap periodic check; the estimate walks no types, so even every record
  // would be affordable, but 512 keeps it entirely off the hot path.
  if ((record_count_ & 511) == 0) EnforceMemoryBudget();
}

size_t StreamingInferencer::EstimateAuxiliaryMemory() const {
  // Rough, monotone accounting — a soft watermark needs the right order of
  // magnitude, not malloc truth. Per-entry costs approximate libstdc++ node
  // + bucket overhead; types themselves are shared (interned), so containers
  // are charged shallow ownership only.
  size_t bytes = distinct_hashes_.size() * 48;       // 8-byte hash + node
  bytes += fuser_.pending_distinct() * 96;           // (type, count) map node
  bytes += fuser_.slots().capacity() * sizeof(types::TypeRef);
  bytes += types::TypeInterner::Global().stats().size * 96;
  bytes += fusion::FuseCache::Global().stats().size * 128;
  return bytes;
}

void StreamingInferencer::EnforceMemoryBudget() {
  if (options_.soft_memory_limit_bytes == 0) return;
  if (EstimateAuxiliaryMemory() <= options_.soft_memory_limit_bytes) return;
  // Crossed: shed what can be shed without touching the schema. The dedup
  // buffer folds into the O(log n) slots (same reduction result), and the
  // global accelerator tables are pure caches — clearing them only costs
  // future hit rate. The frozen distinct-hash set is released outright; its
  // size() stays meaningful as a lower bound via stats, so keep the set but
  // stop growing it (AddType checks memory_degraded_).
  fuser_.ShrinkToSlots();
  types::TypeInterner::Global().Clear();
  fusion::FuseCache::Global().Clear();
  if (!memory_degraded_) {
    memory_degraded_ = true;
    JSONSI_COUNTER("stream.memory_degraded").Increment();
  }
  JSONSI_COUNTER("stream.memory_sheds").Increment();
}

void StreamingInferencer::PublishIngestTelemetry() const {
  if (!telemetry::Enabled()) return;
  // Cumulative levels, not deltas: gauges mirror the ingest_stats() report
  // so an exporter snapshot always shows the stream totals, however the
  // input was batched.
  JSONSI_GAUGE("stream.lines_read")
      .Set(static_cast<int64_t>(ingest_stats_.lines_read));
  JSONSI_GAUGE("stream.malformed_lines")
      .Set(static_cast<int64_t>(ingest_stats_.malformed_lines));
}

Status StreamingInferencer::AddJson(std::string_view json_text) {
  // One document = one logical line of the cumulative ingestion report.
  ++ingest_stats_.lines_read;
  ingest_stats_.bytes_read += json_text.size();
  Result<json::ValueRef> value = json::Parse(json_text, options_.parse);
  if (value.ok()) {
    ++ingest_stats_.records;
    ingest_stats_.bytes_consumed = ingest_stats_.bytes_read;
    AddValue(value.value());
    return Status::OK();
  }

  ++ingest_stats_.malformed_lines;
  JSONSI_COUNTER("stream.malformed_documents").Increment();
  PublishIngestTelemetry();
  if (ingest_stats_.errors.size() < options_.max_recorded_errors) {
    ingest_stats_.errors.push_back(json::IngestError{
        ingest_stats_.lines_read, 0, value.status().message()});
  }
  switch (EffectivePolicy()) {
    case json::MalformedLinePolicy::kFail:
      return value.status();
    case json::MalformedLinePolicy::kSkip:
      ingest_stats_.bytes_consumed = ingest_stats_.bytes_read;
      return Status::OK();
    case json::MalformedLinePolicy::kFailAboveRate: {
      uint64_t non_blank =
          ingest_stats_.records + ingest_stats_.malformed_lines;
      if (non_blank >= options_.min_lines_for_rate &&
          static_cast<double>(ingest_stats_.malformed_lines) >
              options_.max_error_rate * static_cast<double>(non_blank)) {
        return Status::ParseError(
            "malformed-document rate " +
            std::to_string(ingest_stats_.malformed_lines) + "/" +
            std::to_string(non_blank) + " exceeds tolerated rate");
      }
      ingest_stats_.bytes_consumed = ingest_stats_.bytes_read;
      return Status::OK();
    }
  }
  return Status::OK();
}

Status StreamingInferencer::AddJsonLines(std::string_view text,
                                         bool end_of_stream) {
  json::IngestOptions ingest;
  ingest.parse = options_.parse;
  ingest.on_malformed = EffectivePolicy();
  ingest.max_error_rate = options_.max_error_rate;
  ingest.min_lines_for_rate = options_.min_lines_for_rate;
  ingest.max_recorded_errors = options_.max_recorded_errors;
  // Rate decisions must see the whole stream, not just this chunk:
  // without the baseline a late 5-line chunk with one bad line would abort
  // a stream that is 99.99% clean, and a rate creeping up across chunks
  // would never trip. ingest_stats_ is only read during the chunk; it is
  // folded forward below, after the read completes.
  ingest.rate_baseline = &ingest_stats_;
  // First-line BOM stripping belongs to the true start of the stream, not to
  // every batch: a follow-up chunk (or a resume at a mid-file offset) must
  // classify its first line exactly as a one-shot read of the whole input.
  ingest.continuation = ingest_stats_.lines_read > 0;
  ingest.end_of_stream = end_of_stream;
  json::IngestStats chunk;
  Status st;
  if (UseDirectIngestion()) {
    // DOM-free fused pass: type each line straight off the token stream,
    // behind the same line machinery (policy, report, rate baseline).
    JSONSI_SPAN("infer.direct");
    json::LineFn fn = [&](std::string_view line) -> Result<bool> {
      Result<types::TypeRef> t =
          inference::DirectInferType(line, ingest.parse);
      if (!t.ok()) return t.status();
      AddType(std::move(t).value());
      return true;
    };
    st = json::IngestJsonLines(text, fn, ingest, &chunk);
  } else {
    st = json::ReadJsonLines(
        text,
        [&](json::ValueRef v) {
          AddValue(v);
          return true;
        },
        ingest, &chunk);
  }
  // Accumulate even on failure, so the report covers the aborted chunk.
  ingest_stats_.Absorb(chunk, options_.max_recorded_errors);
  PublishIngestTelemetry();
  return st;
}

Status StreamingInferencer::FinishStream() {
  if (EffectivePolicy() != json::MalformedLinePolicy::kFailAboveRate) {
    return Status::OK();
  }
  // An empty end-of-stream read: no lines are consumed, only the deferred
  // end-of-read rate validation runs, with the stream's cumulative stats as
  // baseline — so the abort message cites the stream's first recorded error
  // at its global line number, exactly like a one-shot read.
  return AddJsonLines(std::string_view(), /*end_of_stream=*/true);
}

Status StreamingInferencer::AddJsonLinesParallel(std::string_view text,
                                                 size_t num_threads,
                                                 bool end_of_stream) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (num_threads <= 1) return AddJsonLines(text, end_of_stream);
  if (UseDirectIngestion()) {
    return AddJsonLinesParallelDirect(text, num_threads, end_of_stream);
  }
  JSONSI_SPAN("stream.add_parallel");

  json::IngestOptions ingest;
  ingest.parse = options_.parse;
  ingest.on_malformed = EffectivePolicy();
  ingest.max_error_rate = options_.max_error_rate;
  ingest.min_lines_for_rate = options_.min_lines_for_rate;
  ingest.max_recorded_errors = options_.max_recorded_errors;
  // Same cumulative-rate story as AddJsonLines: the replay judges this
  // buffer's malformed lines against the whole stream read so far.
  ingest.rate_baseline = &ingest_stats_;
  // As in AddJsonLines: only the stream's true first line sheds a BOM.
  ingest.continuation = ingest_stats_.lines_read > 0;
  ingest.end_of_stream = end_of_stream;

  engine::ThreadPool pool(num_threads);
  std::vector<json::ChunkSpan> spans =
      json::SplitJsonLines(text, num_threads * 4);
  std::vector<json::ChunkOutcome> outcomes(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    pool.Submit([&text, &spans, &outcomes, i, &ingest] {
      outcomes[i] = json::ParseJsonLinesChunk(
          text.substr(spans[i].begin, spans[i].size()), ingest.parse,
          ingest.max_recorded_errors, i == 0 && !ingest.continuation);
    });
  }
  pool.Wait();
  JSONSI_RETURN_IF_ERROR(pool.first_error());

  json::IngestStats chunk;
  json::ChunkReplay replay = json::ReplayChunkPolicy(outcomes, ingest, &chunk);

  // Per-chunk inference shards, run on the pool and folded forward in chunk
  // order. Profiling provenance must carry GLOBAL record ordinals (the
  // serial path numbers records across the whole stream), so each shard is
  // seeded with the stream ordinal of its first included record.
  struct Shard {
    fusion::TreeFuser fuser;
    std::unordered_set<uint64_t> hashes;
    std::unique_ptr<annotate::SchemaProfiler> profiler;
    size_t min_size = 0;
    size_t max_size = 0;
    double total_size = 0;
    uint64_t count = 0;
  };
  const size_t included_chunks =
      replay.full_chunks + (replay.partial_records > 0 ? 1 : 0);
  std::vector<Shard> shards(included_chunks);
  uint64_t next_ordinal = record_count_;
  const bool count_distinct = options_.count_distinct_types;
  for (size_t c = 0; c < included_chunks; ++c) {
    const size_t take =
        c < replay.full_chunks
            ? outcomes[c].values.size()
            : std::min(replay.partial_records, outcomes[c].values.size());
    const uint64_t base = next_ordinal;
    next_ordinal += take;
    if (take == 0) continue;
    Shard& shard = shards[c];
    if (profiler_) {
      shard.profiler = std::make_unique<annotate::SchemaProfiler>();
    }
    pool.Submit([&outcomes, &shard, c, take, base, count_distinct] {
      JSONSI_SPAN("pipeline.worker");
      const std::vector<json::ValueRef>& vals = outcomes[c].values;
      for (size_t i = 0; i < take; ++i) {
        types::TypeRef t = inference::InferType(*vals[i]);
        if (count_distinct) shard.hashes.insert(t->hash());
        size_t s = t->size();
        if (shard.count == 0) {
          shard.min_size = shard.max_size = s;
        } else {
          shard.min_size = std::min(shard.min_size, s);
          shard.max_size = std::max(shard.max_size, s);
        }
        shard.total_size += static_cast<double>(s);
        if (shard.profiler) shard.profiler->Observe(*vals[i], base + i);
        shard.fuser.Add(std::move(t));
        ++shard.count;
        JSONSI_COUNTER("stream.records").Increment();
      }
    });
  }
  pool.Wait();
  JSONSI_RETURN_IF_ERROR(pool.first_error());

  // Fold shards in stream order — the same merge Merge() performs for
  // explicit shards, so the snapshot schema matches serial AddJsonLines.
  for (Shard& shard : shards) {
    if (shard.count == 0) continue;
    fuser_.Add(shard.fuser.Finish());
    if (record_count_ == 0) {
      min_type_size_ = shard.min_size;
      max_type_size_ = shard.max_size;
    } else {
      min_type_size_ = std::min(min_type_size_, shard.min_size);
      max_type_size_ = std::max(max_type_size_, shard.max_size);
    }
    total_type_size_ += shard.total_size;
    if (!memory_degraded_) {
      distinct_hashes_.insert(shard.hashes.begin(), shard.hashes.end());
    }
    if (profiler_ && shard.profiler) profiler_->Merge(*shard.profiler);
    record_count_ += shard.count;
  }
  EnforceMemoryBudget();

  // Accumulate even on failure, so the report covers the aborted buffer.
  ingest_stats_.Absorb(chunk, options_.max_recorded_errors);
  PublishIngestTelemetry();
  if (telemetry::Enabled()) {
    JSONSI_COUNTER("pipeline.parallel.chunks").Add(spans.size());
  }
  return replay.status;
}

Status StreamingInferencer::AddJsonLinesParallelDirect(std::string_view text,
                                                       size_t num_threads,
                                                       bool end_of_stream) {
  JSONSI_SPAN("stream.add_parallel");

  json::IngestOptions ingest;
  ingest.parse = options_.parse;
  ingest.on_malformed = EffectivePolicy();
  ingest.max_error_rate = options_.max_error_rate;
  ingest.min_lines_for_rate = options_.min_lines_for_rate;
  ingest.max_recorded_errors = options_.max_recorded_errors;
  // Same cumulative-rate story as AddJsonLines: the replay judges this
  // buffer's malformed lines against the whole stream read so far.
  ingest.rate_baseline = &ingest_stats_;
  // As in AddJsonLines: only the stream's true first line sheds a BOM.
  ingest.continuation = ingest_stats_.lines_read > 0;
  ingest.end_of_stream = end_of_stream;

  engine::ThreadPool pool(num_threads);
  std::vector<json::ChunkSpan> spans =
      json::SplitJsonLines(text, num_threads * 4);
  std::vector<inference::TypedChunkOutcome> outcomes(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    pool.Submit([&text, &spans, &outcomes, i, &ingest] {
      outcomes[i] = inference::InferJsonLinesChunk(
          text.substr(spans[i].begin, spans[i].size()), ingest.parse,
          ingest.max_recorded_errors, i == 0 && !ingest.continuation);
    });
  }
  pool.Wait();
  JSONSI_RETURN_IF_ERROR(pool.first_error());

  json::IngestStats chunk;
  json::ChunkReplay replay =
      inference::ReplayChunkPolicy(outcomes, ingest, &chunk);

  // Per-chunk statistics shards, folded forward in chunk order. Simpler
  // than the DOM arm: this path never runs with a profiler, so no global
  // record ordinals are needed.
  struct Shard {
    fusion::TreeFuser fuser;
    std::unordered_set<uint64_t> hashes;
    size_t min_size = 0;
    size_t max_size = 0;
    double total_size = 0;
    uint64_t count = 0;
  };
  const size_t included_chunks =
      replay.full_chunks + (replay.partial_records > 0 ? 1 : 0);
  std::vector<Shard> shards(included_chunks);
  const bool count_distinct = options_.count_distinct_types;
  for (size_t c = 0; c < included_chunks; ++c) {
    const size_t take =
        c < replay.full_chunks
            ? outcomes[c].types.size()
            : std::min(replay.partial_records, outcomes[c].types.size());
    if (take == 0) continue;
    Shard& shard = shards[c];
    pool.Submit([&outcomes, &shard, c, take, count_distinct] {
      JSONSI_SPAN("pipeline.worker");
      std::vector<types::TypeRef>& chunk_types = outcomes[c].types;
      for (size_t i = 0; i < take; ++i) {
        types::TypeRef& t = chunk_types[i];
        if (count_distinct) shard.hashes.insert(t->hash());
        size_t s = t->size();
        if (shard.count == 0) {
          shard.min_size = shard.max_size = s;
        } else {
          shard.min_size = std::min(shard.min_size, s);
          shard.max_size = std::max(shard.max_size, s);
        }
        shard.total_size += static_cast<double>(s);
        shard.fuser.Add(std::move(t));
        ++shard.count;
        JSONSI_COUNTER("stream.records").Increment();
      }
    });
  }
  pool.Wait();
  JSONSI_RETURN_IF_ERROR(pool.first_error());

  // Fold shards in stream order — same merge as the DOM arm, so the
  // snapshot schema matches serial AddJsonLines.
  for (Shard& shard : shards) {
    if (shard.count == 0) continue;
    fuser_.Add(shard.fuser.Finish());
    if (record_count_ == 0) {
      min_type_size_ = shard.min_size;
      max_type_size_ = shard.max_size;
    } else {
      min_type_size_ = std::min(min_type_size_, shard.min_size);
      max_type_size_ = std::max(max_type_size_, shard.max_size);
    }
    total_type_size_ += shard.total_size;
    if (!memory_degraded_) {
      distinct_hashes_.insert(shard.hashes.begin(), shard.hashes.end());
    }
    record_count_ += shard.count;
  }
  EnforceMemoryBudget();

  // Accumulate even on failure, so the report covers the aborted buffer.
  ingest_stats_.Absorb(chunk, options_.max_recorded_errors);
  PublishIngestTelemetry();
  if (telemetry::Enabled()) {
    JSONSI_COUNTER("pipeline.parallel.chunks").Add(spans.size());
  }
  return replay.status;
}

void StreamingInferencer::Merge(const StreamingInferencer& other) {
  // Fold the other side's outstanding schema in one piece; statistics merge
  // pointwise.
  if (other.record_count_ > 0) {
    fuser_.Add(other.fuser_.Finish());
    if (record_count_ == 0) {
      min_type_size_ = other.min_type_size_;
      max_type_size_ = other.max_type_size_;
    } else {
      min_type_size_ = std::min(min_type_size_, other.min_type_size_);
      max_type_size_ = std::max(max_type_size_, other.max_type_size_);
    }
    total_type_size_ += other.total_type_size_;
  }
  distinct_hashes_.insert(other.distinct_hashes_.begin(),
                          other.distinct_hashes_.end());
  if (profiler_ && other.profiler_) profiler_->Merge(*other.profiler_);
  record_count_ += other.record_count_;
  // Shards are distinct streams; their reports concatenate (line numbers
  // shift past this side's totals, like sequential chunks).
  ingest_stats_.Absorb(other.ingest_stats_, options_.max_recorded_errors);
}

Schema StreamingInferencer::Snapshot() const {
  JSONSI_SPAN("stream.snapshot");
  JSONSI_COUNTER("stream.snapshots").Increment();
  PublishIngestTelemetry();
  Schema schema;
  schema.type = fuser_.Finish();
  schema.stats.record_count = record_count_;
  schema.stats.distinct_type_count = distinct_hashes_.size();
  schema.stats.min_type_size = min_type_size_;
  schema.stats.max_type_size = max_type_size_;
  schema.stats.avg_type_size =
      record_count_ ? total_type_size_ / static_cast<double>(record_count_)
                    : 0.0;
  return schema;
}

}  // namespace jsonsi::core
