#include "core/streaming_inferencer.h"

#include <algorithm>

#include "inference/infer.h"
#include "json/parser.h"
#include "support/string_util.h"

namespace jsonsi::core {

StreamingInferencer::StreamingInferencer(const StreamingOptions& options)
    : options_(options) {
  if (options_.profile) {
    profiler_ = std::make_unique<annotate::SchemaProfiler>();
  }
}

void StreamingInferencer::AddValue(const json::ValueRef& value) {
  types::TypeRef t = inference::InferType(*value);
  if (options_.count_distinct_types) distinct_hashes_.insert(t->hash());
  size_t s = t->size();
  if (record_count_ == 0) {
    min_type_size_ = max_type_size_ = s;
  } else {
    min_type_size_ = std::min(min_type_size_, s);
    max_type_size_ = std::max(max_type_size_, s);
  }
  total_type_size_ += static_cast<double>(s);
  if (profiler_) profiler_->Observe(*value, record_count_);
  fuser_.Add(std::move(t));
  ++record_count_;
}

Status StreamingInferencer::AddJson(std::string_view json_text) {
  Result<json::ValueRef> value = json::Parse(json_text);
  if (!value.ok()) {
    if (options_.skip_malformed) {
      ++malformed_count_;
      return Status::OK();
    }
    return value.status();
  }
  AddValue(value.value());
  return Status::OK();
}

Status StreamingInferencer::AddJsonLines(std::string_view text) {
  for (std::string_view line : Split(text, '\n')) {
    // Skip blank lines (cheap whitespace check).
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    JSONSI_RETURN_IF_ERROR(AddJson(line));
  }
  return Status::OK();
}

void StreamingInferencer::Merge(const StreamingInferencer& other) {
  // Fold the other side's outstanding schema in one piece; statistics merge
  // pointwise.
  if (other.record_count_ > 0) {
    fuser_.Add(other.fuser_.Finish());
    if (record_count_ == 0) {
      min_type_size_ = other.min_type_size_;
      max_type_size_ = other.max_type_size_;
    } else {
      min_type_size_ = std::min(min_type_size_, other.min_type_size_);
      max_type_size_ = std::max(max_type_size_, other.max_type_size_);
    }
    total_type_size_ += other.total_type_size_;
  }
  distinct_hashes_.insert(other.distinct_hashes_.begin(),
                          other.distinct_hashes_.end());
  if (profiler_ && other.profiler_) profiler_->Merge(*other.profiler_);
  record_count_ += other.record_count_;
  malformed_count_ += other.malformed_count_;
}

Schema StreamingInferencer::Snapshot() const {
  Schema schema;
  schema.type = fuser_.Finish();
  schema.stats.record_count = record_count_;
  schema.stats.distinct_type_count = distinct_hashes_.size();
  schema.stats.min_type_size = min_type_size_;
  schema.stats.max_type_size = max_type_size_;
  schema.stats.avg_type_size =
      record_count_ ? total_type_size_ / static_cast<double>(record_count_)
                    : 0.0;
  return schema;
}

}  // namespace jsonsi::core
