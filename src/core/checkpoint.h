// Crash-safe checkpoint/resume for streaming inference.
//
// A long-running `jsi infer` over a multi-GB JSON-Lines feed should survive
// being killed: a checkpoint captures the *entire* stream state of a
// StreamingInferencer — the running schema (the TreeFuser's binary-counter
// slots and dedup multiset, each type serialized through the existing
// printer/parser round-trip), the cumulative IngestStats (which double as
// the kFailAboveRate policy baseline), the distinct-type hash set, the size
// statistics, and `bytes_consumed`, the exact byte offset to restart reading
// the source from. Restoring the checkpoint and re-feeding the source from
// that offset produces a schema TypeEquals-identical to the uninterrupted
// run, by associativity of fusion (property-tested in checkpoint_test.cc).
//
// -- On-disk format ---------------------------------------------------------
//
// A checkpoint is line-oriented text: a versioned header, `key value` lines
// (types in the paper's surface syntax, doubles as hex bit patterns), an
// `end` marker, and a trailing `checksum <hex>` line holding HashBytes over
// every preceding byte. The checksum is what makes torn writes detectable:
// a file truncated at ANY byte prefix either lacks a well-formed checksum
// line or fails verification — there is no prefix that silently restores as
// an earlier state (fuzzed in fuzz/checkpoint_fuzz.cc).
//
// -- Durability protocol ----------------------------------------------------
//
// SaveCheckpoint writes to `<path>.tmp` and publishes with an atomic
// rename(2), so a crash mid-write leaves the previous checkpoint intact. The
// TornWriteInjector hook truncates/corrupts the payload or aborts before the
// rename — the fault-injection surface the recovery tests drive.

#ifndef JSONSI_CORE_CHECKPOINT_H_
#define JSONSI_CORE_CHECKPOINT_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "core/streaming_inferencer.h"
#include "support/status.h"

namespace jsonsi::core {

/// Fault-injection hook for SaveCheckpoint, simulating torn writes and
/// crashes in the durability protocol. Defaults inject nothing.
struct TornWriteInjector {
  /// Keep only the first N payload bytes (SIZE_MAX = no truncation). The
  /// truncated file is still published via rename — the checksum must catch
  /// it at load time.
  size_t truncate_at = static_cast<size_t>(-1);
  /// XOR 0x01 into the payload byte at this offset (SIZE_MAX = none).
  size_t corrupt_at = static_cast<size_t>(-1);
  /// Abort after writing the temp file but before the rename, as a crash
  /// between the two syscalls would: the previous checkpoint at `path` must
  /// survive untouched.
  bool fail_before_rename = false;
};

/// Serializes the inferencer's full stream state to the checkpoint text
/// format (checksum line included). Fails on profiling streams — the
/// profiler's provenance state is not checkpointable.
Result<std::string> SerializeCheckpoint(const StreamingInferencer& inferencer);

/// Parses and verifies checkpoint text and replaces `*inferencer` wholesale
/// (options included) with the captured state. Any truncation, corruption,
/// or version mismatch is a ParseError; `*inferencer` is untouched on
/// failure.
Status RestoreCheckpoint(std::string_view text,
                         StreamingInferencer* inferencer);

/// Serializes and durably writes a checkpoint: payload to `<path>.tmp`,
/// then atomic rename onto `path`. `fault`, when given, injects a torn
/// write (see TornWriteInjector).
Status SaveCheckpoint(const StreamingInferencer& inferencer,
                      const std::string& path,
                      const TornWriteInjector* fault = nullptr);

/// Reads `path` and restores it into `*inferencer` via RestoreCheckpoint.
Status LoadCheckpoint(const std::string& path,
                      StreamingInferencer* inferencer);

}  // namespace jsonsi::core

#endif  // JSONSI_CORE_CHECKPOINT_H_
