#include "core/checkpoint.h"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "io/input_source.h"
#include "support/hash.h"
#include "telemetry/telemetry.h"
#include "types/printer.h"
#include "types/type_parser.h"

namespace jsonsi::core {
namespace {

constexpr std::string_view kHeader = "jsonsi-checkpoint 1";

std::string U64ToHex(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

bool HexToU64(std::string_view s, uint64_t* out) {
  if (s.size() != 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *out = v;
  return true;
}

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

Status Corrupt(const std::string& what) {
  JSONSI_COUNTER("checkpoint.corrupt").Increment();
  return Status::ParseError("corrupt checkpoint: " + what);
}

// Splits `line` at its first space into (key, rest). Rest may be empty.
std::pair<std::string_view, std::string_view> KeyRest(std::string_view line) {
  size_t sp = line.find(' ');
  if (sp == std::string_view::npos) return {line, {}};
  return {line.substr(0, sp), line.substr(sp + 1)};
}

// Flushes a freshly-written file to stable storage before it is published:
// the rename can otherwise survive a power failure while the data does not,
// replacing the previous good checkpoint with a truncated one. (The checksum
// would detect that at load, but the prior state would already be gone.)
Status SyncFile(const std::string& path) {
#if !defined(_WIN32)
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return Status::Internal("cannot reopen " + path + " for fsync");
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal("fsync " + path + " failed");
#endif
  return Status::OK();
}

// Best-effort fsync of the directory containing `path`, making the rename
// itself durable. Failures are ignored: some filesystems refuse directory
// fsync, and the worst outcome is the previous checkpoint — still consistent.
void SyncParentDir(const std::string& path) {
#if !defined(_WIN32)
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#endif
}

// Pops the first space-delimited token off `*rest`.
bool PopToken(std::string_view* rest, std::string_view* token) {
  if (rest->empty()) return false;
  size_t sp = rest->find(' ');
  if (sp == std::string_view::npos) {
    *token = *rest;
    *rest = {};
  } else {
    *token = rest->substr(0, sp);
    *rest = rest->substr(sp + 1);
  }
  return true;
}

}  // namespace

Result<std::string> SerializeCheckpoint(
    const StreamingInferencer& inferencer) {
  JSONSI_SPAN("checkpoint.serialize");
  if (inferencer.profiler_) {
    return Status::InvalidArgument(
        "profiling streams are not checkpointable: the profiler's "
        "provenance state has no snapshot form");
  }
  const StreamingOptions& o = inferencer.options_;
  std::string out;
  out.reserve(1024);
  out.append(kHeader).append("\n");

  // Options: a resumed run must behave identically, so the whole streaming
  // configuration rides along (doubles as exact hex bit patterns).
  auto emit_u64 = [&out](std::string_view key, uint64_t v) {
    out.append(key).append(" ").append(std::to_string(v)).append("\n");
  };
  auto emit_hex = [&out](std::string_view key, uint64_t v) {
    out.append(key).append(" ").append(U64ToHex(v)).append("\n");
  };
  emit_u64("count_distinct_types", o.count_distinct_types ? 1 : 0);
  emit_u64("direct_infer", o.direct_infer ? 1 : 0);
  emit_u64("skip_malformed", o.skip_malformed ? 1 : 0);
  emit_u64("on_malformed", static_cast<uint64_t>(o.on_malformed));
  emit_hex("max_error_rate", std::bit_cast<uint64_t>(o.max_error_rate));
  emit_u64("min_lines_for_rate", o.min_lines_for_rate);
  emit_u64("max_recorded_errors", o.max_recorded_errors);
  emit_u64("max_depth", o.parse.max_depth);
  emit_u64("max_document_bytes", o.parse.max_document_bytes);
  emit_u64("soft_memory_limit_bytes", o.soft_memory_limit_bytes);

  // Cumulative ingestion report — the kFailAboveRate baseline and the
  // resume offset both live here.
  const json::IngestStats& s = inferencer.ingest_stats_;
  emit_u64("lines_read", s.lines_read);
  emit_u64("blank_lines", s.blank_lines);
  emit_u64("records", s.records);
  emit_u64("malformed_lines", s.malformed_lines);
  emit_u64("bytes_read", s.bytes_read);
  emit_u64("bytes_consumed", s.bytes_consumed);
  for (const json::IngestError& e : s.errors) {
    // Messages are our own single-line Status texts; rest-of-line framing.
    out.append("error ")
        .append(std::to_string(e.line_number))
        .append(" ")
        .append(std::to_string(e.byte_offset))
        .append(" ")
        .append(e.message)
        .append("\n");
  }

  emit_u64("record_count", inferencer.record_count_);
  emit_u64("min_type_size", inferencer.min_type_size_);
  emit_u64("max_type_size", inferencer.max_type_size_);
  emit_hex("total_type_size",
           std::bit_cast<uint64_t>(inferencer.total_type_size_));
  emit_u64("memory_degraded", inferencer.memory_degraded_ ? 1 : 0);
  for (uint64_t h : inferencer.distinct_hashes_) {
    out.append("hash ").append(U64ToHex(h)).append("\n");
  }

  // The running schema: binary-counter slots and the dedup multiset, each
  // type through the printer (single-line; round-trips via ParseType).
  emit_u64("fuser_count", inferencer.fuser_.count());
  const std::vector<types::TypeRef>& slots = inferencer.fuser_.slots();
  for (size_t k = 0; k < slots.size(); ++k) {
    if (!slots[k]) continue;
    out.append("slot ")
        .append(std::to_string(k))
        .append(" ")
        .append(types::ToString(slots[k]))
        .append("\n");
  }
  for (const auto& [t, count] : inferencer.fuser_.pending_entries()) {
    out.append("pending ")
        .append(std::to_string(count))
        .append(" ")
        .append(types::ToString(t))
        .append("\n");
  }

  out.append("end\n");
  // Trailing checksum over every preceding byte: any byte-prefix truncation
  // either loses this line or fails the comparison.
  const uint64_t checksum = HashBytes(out);
  out.append("checksum ").append(U64ToHex(checksum)).append("\n");
  return out;
}

Status RestoreCheckpoint(std::string_view text,
                         StreamingInferencer* inferencer) {
  JSONSI_SPAN("checkpoint.restore");
  // --- Verify the envelope before believing any field. ---
  if (text.empty() || text.back() != '\n') {
    return Corrupt("missing trailing newline");
  }
  std::string_view body = text.substr(0, text.size() - 1);
  size_t last_nl = body.rfind('\n');
  if (last_nl == std::string_view::npos) return Corrupt("no checksum line");
  std::string_view last_line = body.substr(last_nl + 1);
  body = text.substr(0, last_nl + 1);  // checksum input: includes that '\n'
  auto [last_key, last_rest] = KeyRest(last_line);
  uint64_t want = 0;
  if (last_key != "checksum" || !HexToU64(last_rest, &want)) {
    return Corrupt("no checksum line");
  }
  if (HashBytes(body) != want) return Corrupt("checksum mismatch");

  // --- Parse the verified body line by line. ---
  StreamingOptions opts;
  json::IngestStats stats;
  uint64_t record_count = 0, min_size = 0, max_size = 0;
  double total_size = 0;
  bool memory_degraded = false;
  std::vector<uint64_t> hashes;
  uint64_t fuser_count = 0;
  std::vector<types::TypeRef> slots;
  std::vector<std::pair<types::TypeRef, size_t>> pending;
  bool saw_end = false;

  size_t pos = 0, line_no = 0;
  while (pos < body.size()) {
    size_t nl = body.find('\n', pos);
    std::string_view line = body.substr(pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line_no == 1) {
      if (line != kHeader) return Corrupt("bad header");
      continue;
    }
    auto [key, rest] = KeyRest(line);
    if (key == "end") {
      saw_end = true;
      break;
    }
    uint64_t v = 0;
    auto u64 = [&rest, &v] { return ParseU64(rest, &v); };
    auto hex = [&rest, &v] { return HexToU64(rest, &v); };
    bool ok = true;
    if (key == "count_distinct_types") {
      ok = u64();
      opts.count_distinct_types = v != 0;
    } else if (key == "direct_infer") {
      ok = u64();
      opts.direct_infer = v != 0;
    } else if (key == "skip_malformed") {
      ok = u64();
      opts.skip_malformed = v != 0;
    } else if (key == "on_malformed") {
      ok = u64() && v <= 2;
      opts.on_malformed = static_cast<json::MalformedLinePolicy>(v);
    } else if (key == "max_error_rate") {
      ok = hex();
      opts.max_error_rate = std::bit_cast<double>(v);
    } else if (key == "min_lines_for_rate") {
      ok = u64();
      opts.min_lines_for_rate = v;
    } else if (key == "max_recorded_errors") {
      ok = u64();
      opts.max_recorded_errors = v;
    } else if (key == "max_depth") {
      ok = u64();
      opts.parse.max_depth = v;
    } else if (key == "max_document_bytes") {
      ok = u64();
      opts.parse.max_document_bytes = v;
    } else if (key == "soft_memory_limit_bytes") {
      ok = u64();
      opts.soft_memory_limit_bytes = v;
    } else if (key == "lines_read") {
      ok = u64();
      stats.lines_read = v;
    } else if (key == "blank_lines") {
      ok = u64();
      stats.blank_lines = v;
    } else if (key == "records") {
      ok = u64();
      stats.records = v;
    } else if (key == "malformed_lines") {
      ok = u64();
      stats.malformed_lines = v;
    } else if (key == "bytes_read") {
      ok = u64();
      stats.bytes_read = v;
    } else if (key == "bytes_consumed") {
      ok = u64();
      stats.bytes_consumed = v;
    } else if (key == "error") {
      json::IngestError e;
      std::string_view tok;
      ok = PopToken(&rest, &tok) && ParseU64(tok, &e.line_number) &&
           PopToken(&rest, &tok) && ParseU64(tok, &e.byte_offset);
      e.message = std::string(rest);
      if (ok) stats.errors.push_back(std::move(e));
    } else if (key == "record_count") {
      ok = u64();
      record_count = v;
    } else if (key == "min_type_size") {
      ok = u64();
      min_size = v;
    } else if (key == "max_type_size") {
      ok = u64();
      max_size = v;
    } else if (key == "total_type_size") {
      ok = hex();
      total_size = std::bit_cast<double>(v);
    } else if (key == "memory_degraded") {
      ok = u64();
      memory_degraded = v != 0;
    } else if (key == "hash") {
      ok = hex();
      if (ok) hashes.push_back(v);
    } else if (key == "fuser_count") {
      ok = u64();
      fuser_count = v;
    } else if (key == "slot") {
      std::string_view tok;
      ok = PopToken(&rest, &tok) && ParseU64(tok, &v) && v < 64;
      if (ok) {
        Result<types::TypeRef> t = types::ParseType(rest);
        if (!t.ok()) return Corrupt("slot type: " + t.status().message());
        if (slots.size() <= v) slots.resize(v + 1);
        slots[v] = std::move(t).value();
      }
    } else if (key == "pending") {
      std::string_view tok;
      ok = PopToken(&rest, &tok) && ParseU64(tok, &v) && v > 0;
      if (ok) {
        Result<types::TypeRef> t = types::ParseType(rest);
        if (!t.ok()) return Corrupt("pending type: " + t.status().message());
        pending.emplace_back(std::move(t).value(), v);
      }
    } else {
      // Unknown keys are rejected, not skipped: the checksum already proves
      // integrity, so an unknown key means a version/format mismatch.
      return Corrupt("unknown key '" + std::string(key) + "'");
    }
    if (!ok) return Corrupt("bad value for '" + std::string(key) + "'");
  }
  if (!saw_end) return Corrupt("missing end marker");
  if (opts.profile) {
    return Corrupt("profiling checkpoints are not supported");
  }

  // --- Commit: rebuild the inferencer wholesale. ---
  // A checkpoint saved after an aborted read carries the aborting line in
  // its counts (scanned but not consumed, bytes_read > bytes_consumed). The
  // resumed read restarts at bytes_consumed and re-scans that line, so
  // rewind to the consumed prefix: otherwise Absorb would rebase the next
  // read's offsets past the stale bytes_read — inflating bytes_consumed by
  // the old failing line's length, so a later checkpoint+resume would skip
  // those bytes mid-line — and the re-read line would be double-counted.
  stats.RewindToConsumed();
  StreamingInferencer restored(opts);
  restored.ingest_stats_ = std::move(stats);
  restored.record_count_ = record_count;
  restored.min_type_size_ = min_size;
  restored.max_type_size_ = max_size;
  restored.total_type_size_ = total_size;
  restored.memory_degraded_ = memory_degraded;
  restored.distinct_hashes_.insert(hashes.begin(), hashes.end());
  restored.fuser_.RestoreState(std::move(slots), std::move(pending),
                               fuser_count);
  *inferencer = std::move(restored);
  JSONSI_COUNTER("checkpoint.loads").Increment();
  return Status::OK();
}

Status SaveCheckpoint(const StreamingInferencer& inferencer,
                      const std::string& path,
                      const TornWriteInjector* fault) {
  JSONSI_SPAN("checkpoint.save");
  Result<std::string> payload = SerializeCheckpoint(inferencer);
  JSONSI_RETURN_IF_ERROR(payload.status());
  std::string bytes = std::move(payload).value();
  if (fault) {
    if (fault->corrupt_at < bytes.size()) {
      bytes[fault->corrupt_at] ^= 0x01;
    }
    if (fault->truncate_at < bytes.size()) {
      bytes.resize(fault->truncate_at);
    }
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot open " + tmp + " for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::Internal("short write to " + tmp);
  }
  JSONSI_RETURN_IF_ERROR(SyncFile(tmp));
  if (fault && fault->fail_before_rename) {
    return Status::Internal("injected crash before rename");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename " + tmp + " -> " + path + " failed");
  }
  SyncParentDir(path);
  JSONSI_COUNTER("checkpoint.saves").Increment();
  JSONSI_COUNTER("checkpoint.bytes").Add(bytes.size());
  return Status::OK();
}

Status LoadCheckpoint(const std::string& path,
                      StreamingInferencer* inferencer) {
  JSONSI_SPAN("checkpoint.load");
  // Single stat-sized read (io/input_source.h), not a byte-iterator slurp.
  Result<std::string> text = io::ReadFileToString(path);
  if (!text.ok()) {
    if (text.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("cannot open checkpoint " + path);
    }
    return text.status();
  }
  return RestoreCheckpoint(text.value(), inferencer);
}

}  // namespace jsonsi::core
