#include "core/schema_inferencer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "engine/dataset.h"
#include "engine/thread_pool.h"
#include "fusion/fuse.h"
#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "json/jsonl.h"
#include "stats/type_stats.h"
#include "support/timer.h"
#include "telemetry/telemetry.h"
#include "types/printer.h"

namespace jsonsi::core {

using types::Type;
using types::TypeRef;

std::string Schema::ToString(bool pretty) const {
  types::PrintOptions opts;
  opts.multiline = pretty;
  return type ? types::ToString(*type, opts) : "Empty";
}

SchemaInferencer::SchemaInferencer(const InferenceOptions& options)
    : options_(options) {
  if (options_.num_threads == 0) {
    options_.num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.num_partitions == 0) {
    options_.num_partitions = options_.num_threads;
  }
}

Result<Schema> SchemaInferencer::TryInferFromValues(
    const std::vector<json::ValueRef>& values) const {
  Schema schema;
  // The whole pipeline is a pure function of `values` (inference is
  // deterministic, fusion associative/commutative), so re-running it after a
  // transient worker failure is sound — the retry-safety corollary of
  // Theorems 5.4/5.5. Each attempt runs on a fresh pool.
  Status st = engine::RunWithRetry(
      [&]() -> Status {
        JSONSI_SPAN("infer.pipeline");
        engine::ThreadPool pool(options_.num_threads);
        auto dataset = engine::Dataset<json::ValueRef>::FromVector(
            values, options_.num_partitions);

        schema = Schema{};
        schema.stats.record_count = values.size();

        // ---- Map phase: per-value type inference (Figure 4). ----
        Stopwatch infer_watch;
        engine::StageMetrics map_metrics;
        auto typed = [&] {
          JSONSI_SPAN("infer.map");
          return dataset.Map(
              pool,
              [](const json::ValueRef& v) { return inference::InferType(*v); },
              &map_metrics);
        }();
        schema.stats.infer_seconds = infer_watch.ElapsedSeconds();
        if (telemetry::Enabled()) {
          JSONSI_COUNTER("map.records").Add(values.size());
          JSONSI_COUNTER("map.partitions").Add(dataset.num_partitions());
          for (double s : map_metrics.partition_seconds) {
            JSONSI_HISTOGRAM("map.partition_ns")
                .Record(s > 0 ? static_cast<uint64_t>(s * 1e9) : 0);
          }
        }
        JSONSI_RETURN_IF_ERROR(pool.first_error());

        // ---- Statistics (Tables 2-5), gathered partition-parallel. ----
        if (options_.collect_stats && values.size() > 0) {
          JSONSI_SPAN("infer.stats");
          struct PartStats {
            stats::DistinctTypeSet distinct;
            size_t min = 0;
            size_t max = 0;
            double total = 0;
            size_t count = 0;
          };
          auto partials = typed.MapPartitions(
              pool, [](const std::vector<TypeRef>& part) {
                PartStats ps;
                for (const TypeRef& t : part) {
                  ps.distinct.Add(t);
                  size_t s = t->size();
                  if (ps.count == 0) {
                    ps.min = ps.max = s;
                  } else {
                    ps.min = std::min(ps.min, s);
                    ps.max = std::max(ps.max, s);
                  }
                  ps.total += static_cast<double>(s);
                  ++ps.count;
                }
                return std::vector<PartStats>{std::move(ps)};
              });
          JSONSI_RETURN_IF_ERROR(pool.first_error());
          stats::DistinctTypeSet distinct;
          size_t min = 0, max = 0, count = 0;
          double total = 0;
          for (const PartStats& ps : partials.Collect()) {
            if (ps.count == 0) continue;
            distinct.Merge(ps.distinct);
            min = (count == 0) ? ps.min : std::min(min, ps.min);
            max = std::max(max, ps.max);
            total += ps.total;
            count += ps.count;
          }
          schema.stats.distinct_type_count = distinct.size();
          schema.stats.min_type_size = min;
          schema.stats.max_type_size = max;
          schema.stats.avg_type_size =
              count ? total / static_cast<double>(count) : 0.0;
        }

        // ---- Reduce phase: associative fusion (Figures 5-6). Each
        // partition is reduced in balanced-tree order (TreeFuser) —
        // identical result to any other order by Theorems 5.4/5.5, but
        // asymptotically cheaper on wide schemas — then the per-partition
        // partials fuse together. ----
        Stopwatch fuse_watch;
        {
          JSONSI_SPAN("infer.reduce");
          engine::StageMetrics reduce_metrics;
          auto partials = typed.MapPartitions(
              pool,
              [](const std::vector<TypeRef>& part) {
                fusion::TreeFuser fuser;
                for (const TypeRef& t : part) fuser.Add(t);
                return std::vector<TypeRef>{fuser.Finish()};
              },
              &reduce_metrics);
          JSONSI_RETURN_IF_ERROR(pool.first_error());
          fusion::TreeFuser combiner;
          for (const TypeRef& partial : partials.Collect()) {
            combiner.Add(partial);
          }
          schema.type = combiner.Finish();
          if (telemetry::Enabled()) {
            JSONSI_COUNTER("reduce.partials").Add(partials.num_partitions());
            for (double s : reduce_metrics.partition_seconds) {
              JSONSI_HISTOGRAM("reduce.partition_ns")
                  .Record(s > 0 ? static_cast<uint64_t>(s * 1e9) : 0);
            }
          }
        }
        schema.stats.fuse_seconds = fuse_watch.ElapsedSeconds();
        if (telemetry::Enabled()) {
          JSONSI_HISTOGRAM("infer.fused_size")
              .Record(schema.type ? schema.type->size() : 0);
        }
        return Status::OK();
      },
      options_.retry);
  if (!st.ok()) return st;
  return schema;
}

Schema SchemaInferencer::InferFromValues(
    const std::vector<json::ValueRef>& values) const {
  Result<Schema> result = TryInferFromValues(values);
  if (!result.ok()) {
    // A persistent worker failure on the infallible entry point: fail fast
    // with a diagnostic instead of the pre-hardening std::terminate.
    std::fprintf(stderr, "jsonsi: inference failed permanently: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

Result<Schema> SchemaInferencer::InferFromJsonLines(
    std::string_view text, json::IngestStats* stats) const {
  Result<std::vector<json::ValueRef>> values =
      json::ParseJsonLines(text, options_.ingest, stats);
  if (!values.ok()) return values.status();
  return TryInferFromValues(values.value());
}

Result<Schema> SchemaInferencer::InferFromFile(
    const std::string& path, json::IngestStats* stats) const {
  // Reads retry under the policy: transient I/O errors heal, while
  // deterministic ones (missing file, malformed content under kFail) are
  // classified permanent by the default predicate and fail immediately.
  Result<std::vector<json::ValueRef>> values =
      Status::Internal("not attempted");
  Status st = engine::RunWithRetry(
      [&]() -> Status {
        values = json::ReadJsonLinesFile(path, options_.ingest, stats);
        return values.ok() ? Status::OK() : values.status();
      },
      options_.retry);
  if (!st.ok()) return st;
  return TryInferFromValues(values.value());
}

Schema SchemaInferencer::Merge(const Schema& a, const Schema& b) {
  Schema out;
  out.type = fusion::Fuse(a.type ? a.type : Type::Empty(),
                          b.type ? b.type : Type::Empty());
  const SchemaStats& sa = a.stats;
  const SchemaStats& sb = b.stats;
  out.stats.record_count = sa.record_count + sb.record_count;
  if (sa.record_count == 0) {
    out.stats.distinct_type_count = sb.distinct_type_count;
  } else if (sb.record_count == 0) {
    out.stats.distinct_type_count = sa.distinct_type_count;
  } else {
    out.stats.distinct_type_count = 0;  // not derivable from counts alone
  }
  if (sa.record_count == 0) {
    out.stats.min_type_size = sb.min_type_size;
    out.stats.max_type_size = sb.max_type_size;
    out.stats.avg_type_size = sb.avg_type_size;
  } else if (sb.record_count == 0) {
    out.stats.min_type_size = sa.min_type_size;
    out.stats.max_type_size = sa.max_type_size;
    out.stats.avg_type_size = sa.avg_type_size;
  } else {
    out.stats.min_type_size = std::min(sa.min_type_size, sb.min_type_size);
    out.stats.max_type_size = std::max(sa.max_type_size, sb.max_type_size);
    out.stats.avg_type_size =
        (sa.avg_type_size * static_cast<double>(sa.record_count) +
         sb.avg_type_size * static_cast<double>(sb.record_count)) /
        static_cast<double>(out.stats.record_count);
  }
  out.stats.infer_seconds = sa.infer_seconds + sb.infer_seconds;
  out.stats.fuse_seconds = sa.fuse_seconds + sb.fuse_seconds;
  return out;
}

}  // namespace jsonsi::core
