#include "core/schema_inferencer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/io_pump.h"
#include "core/streaming_inferencer.h"
#include "engine/parallel_reduce.h"
#include "engine/thread_pool.h"
#include "fusion/fuse.h"
#include "fusion/tree_fuser.h"
#include "inference/direct_infer.h"
#include "inference/infer.h"
#include "json/jsonl.h"
#include "json/jsonl_chunk.h"
#include "stats/type_stats.h"
#include "support/timer.h"
#include "telemetry/telemetry.h"
#include "types/printer.h"

namespace jsonsi::core {

using types::Type;
using types::TypeRef;

std::string Schema::ToString(bool pretty) const {
  types::PrintOptions opts;
  opts.multiline = pretty;
  return type ? types::ToString(*type, opts) : "Empty";
}

SchemaInferencer::SchemaInferencer(const InferenceOptions& options)
    : options_(options) {
  if (options_.num_threads == 0) {
    options_.num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.num_partitions == 0) {
    options_.num_partitions = options_.num_threads;
  }
}

namespace {

// Everything one parallel worker produces from its slice of the input: the
// slice's partial schema (a thread-local TreeFuser fold), its contribution
// to the Tables 2-5 statistics, and stage timings for the critical-path
// accounting in SchemaStats.
struct PartitionPartial {
  TypeRef partial;
  std::unique_ptr<annotate::Annotation> annotation;
  stats::DistinctTypeSet distinct;
  size_t min_size = 0;
  size_t max_size = 0;
  size_t count = 0;
  double total_size = 0;
  double infer_seconds = 0;
  double fuse_seconds = 0;
};

// The exact pre-parallel pipeline: one inference loop, one TreeFuser fold in
// stream order, no thread pool. num_threads == 1 runs this; the parallel
// path is validated against it (structural identity, Theorems 5.4/5.5).
Status InferSerial(const std::vector<json::ValueRef>& values,
                   const InferenceOptions& options, Schema* schema) {
  JSONSI_SPAN("infer.pipeline");
  schema->stats.record_count = values.size();
  schema->stats.dom_records = values.size();

  // ---- Map phase: per-value type inference (Figure 4). ----
  Stopwatch infer_watch;
  std::unique_ptr<annotate::Annotation> ann;
  if (options.annotate) ann = std::make_unique<annotate::Annotation>();
  std::vector<TypeRef> typed;
  typed.reserve(values.size());
  {
    JSONSI_SPAN("infer.map");
    for (const json::ValueRef& v : values) {
      typed.push_back(ann ? inference::InferType(*v, ann.get())
                          : inference::InferType(*v));
    }
  }
  if (ann) schema->annotation = std::move(ann);
  schema->stats.infer_seconds = infer_watch.ElapsedSeconds();
  if (telemetry::Enabled()) {
    JSONSI_COUNTER("map.records").Add(values.size());
    JSONSI_COUNTER("map.partitions").Increment();
  }

  // ---- Statistics (Tables 2-5). ----
  if (options.collect_stats && !values.empty()) {
    JSONSI_SPAN("infer.stats");
    stats::DistinctTypeSet distinct;
    size_t min = 0, max = 0;
    double total = 0;
    for (size_t i = 0; i < typed.size(); ++i) {
      distinct.Add(typed[i]);
      size_t s = typed[i]->size();
      if (i == 0) {
        min = max = s;
      } else {
        min = std::min(min, s);
        max = std::max(max, s);
      }
      total += static_cast<double>(s);
    }
    schema->stats.distinct_type_count = distinct.size();
    schema->stats.min_type_size = min;
    schema->stats.max_type_size = max;
    schema->stats.avg_type_size = total / static_cast<double>(typed.size());
  }

  // ---- Reduce phase: associative fusion (Figures 5-6), balanced-tree
  // order (TreeFuser) for asymptotic cheapness on wide schemas. ----
  Stopwatch fuse_watch;
  {
    JSONSI_SPAN("infer.reduce");
    fusion::TreeFuser fuser;
    for (TypeRef& t : typed) fuser.Add(std::move(t));
    schema->type = fuser.Finish();
  }
  schema->stats.fuse_seconds = fuse_watch.ElapsedSeconds();
  if (telemetry::Enabled()) {
    JSONSI_COUNTER("reduce.partials").Increment();
    JSONSI_HISTOGRAM("infer.fused_size")
        .Record(schema->type ? schema->type->size() : 0);
  }
  return Status::OK();
}

// The parallel pipeline: the input is sliced into contiguous index ranges,
// each range runs map + stats + a thread-local TreeFuser fold as ONE pool
// task (no cross-stage barrier, no materialised global type vector), and the
// per-worker partial schemas merge in a log-depth parallel tree-reduce.
// Interning is process-global, so identical record types dedup across
// workers despite the thread-local fusers.
Status InferParallel(const std::vector<json::ValueRef>& values,
                     const InferenceOptions& options, Schema* schema) {
  JSONSI_SPAN("infer.pipeline");
  const size_t n = values.size();
  schema->stats.record_count = n;
  schema->stats.dom_records = n;
  if (n == 0) {
    schema->type = Type::Empty();
    return Status::OK();
  }

  engine::ThreadPool pool(options.num_threads);
  const size_t parts =
      std::max<size_t>(1, std::min(options.num_partitions, n));
  std::vector<PartitionPartial> partials(parts);
  const bool collect = options.collect_stats;
  const bool do_annotate = options.annotate;

  {
    JSONSI_SPAN("infer.map");
    const size_t base = n / parts;
    const size_t extra = n % parts;
    size_t offset = 0;
    for (size_t p = 0; p < parts; ++p) {
      const size_t len = base + (p < extra ? 1 : 0);
      const size_t begin = offset;
      offset += len;
      pool.Submit([&values, &partials, p, begin, len, collect, do_annotate] {
        JSONSI_SPAN("pipeline.worker");
        PartitionPartial& pp = partials[p];
        if (do_annotate) {
          pp.annotation = std::make_unique<annotate::Annotation>();
        }
        Stopwatch infer_watch;
        std::vector<TypeRef> typed;
        typed.reserve(len);
        for (size_t i = begin; i < begin + len; ++i) {
          typed.push_back(
              do_annotate
                  ? inference::InferType(*values[i], pp.annotation.get())
                  : inference::InferType(*values[i]));
        }
        pp.infer_seconds = infer_watch.ElapsedSeconds();
        if (collect) {
          for (size_t i = 0; i < typed.size(); ++i) {
            pp.distinct.Add(typed[i]);
            size_t s = typed[i]->size();
            if (i == 0) {
              pp.min_size = pp.max_size = s;
            } else {
              pp.min_size = std::min(pp.min_size, s);
              pp.max_size = std::max(pp.max_size, s);
            }
            pp.total_size += static_cast<double>(s);
          }
        }
        Stopwatch fuse_watch;
        fusion::TreeFuser fuser;
        for (TypeRef& t : typed) fuser.Add(std::move(t));
        pp.partial = fuser.Finish();
        pp.fuse_seconds = fuse_watch.ElapsedSeconds();
        pp.count = len;
      });
    }
    pool.Wait();
  }
  JSONSI_RETURN_IF_ERROR(pool.first_error());

  if (do_annotate) {
    // Associativity + commutativity make any merge order exact; index order
    // keeps the fold deterministic anyway.
    auto acc = std::make_unique<annotate::Annotation>();
    for (PartitionPartial& pp : partials) {
      if (pp.annotation) acc->MergeFrom(*pp.annotation);
    }
    schema->annotation = std::move(acc);
  }

  double max_infer = 0, max_fuse = 0;
  for (const PartitionPartial& pp : partials) {
    max_infer = std::max(max_infer, pp.infer_seconds);
    max_fuse = std::max(max_fuse, pp.fuse_seconds);
  }
  if (collect) {
    stats::DistinctTypeSet distinct;
    size_t min = 0, max = 0, count = 0;
    double total = 0;
    for (PartitionPartial& pp : partials) {
      if (pp.count == 0) continue;
      distinct.Merge(pp.distinct);
      min = (count == 0) ? pp.min_size : std::min(min, pp.min_size);
      max = std::max(max, pp.max_size);
      total += pp.total_size;
      count += pp.count;
    }
    schema->stats.distinct_type_count = distinct.size();
    schema->stats.min_type_size = min;
    schema->stats.max_type_size = max;
    schema->stats.avg_type_size =
        count ? total / static_cast<double>(count) : 0.0;
  }

  Stopwatch reduce_watch;
  size_t rounds = 0;
  {
    JSONSI_SPAN("infer.reduce");
    std::vector<TypeRef> types;
    types.reserve(parts);
    for (PartitionPartial& pp : partials) {
      types.push_back(std::move(pp.partial));
    }
    schema->type = engine::ParallelTreeReduce(
        pool, std::move(types), Type::Empty(),
        [](const TypeRef& a, const TypeRef& b) { return fusion::Fuse(a, b); },
        &rounds);
  }
  JSONSI_RETURN_IF_ERROR(pool.first_error());
  schema->stats.infer_seconds = max_infer;
  schema->stats.fuse_seconds = max_fuse + reduce_watch.ElapsedSeconds();

  if (telemetry::Enabled()) {
    JSONSI_COUNTER("map.records").Add(n);
    JSONSI_COUNTER("map.partitions").Add(parts);
    JSONSI_COUNTER("reduce.partials").Add(parts);
    JSONSI_COUNTER("pipeline.parallel.runs").Increment();
    JSONSI_COUNTER("pipeline.parallel.records").Add(n);
    JSONSI_COUNTER("pipeline.parallel.partitions").Add(parts);
    JSONSI_COUNTER("pipeline.parallel.reduce_rounds").Add(rounds);
    for (const PartitionPartial& pp : partials) {
      JSONSI_HISTOGRAM("map.partition_ns")
          .Record(pp.infer_seconds > 0
                      ? static_cast<uint64_t>(pp.infer_seconds * 1e9)
                      : 0);
      JSONSI_HISTOGRAM("reduce.partition_ns")
          .Record(pp.fuse_seconds > 0
                      ? static_cast<uint64_t>(pp.fuse_seconds * 1e9)
                      : 0);
    }
    JSONSI_HISTOGRAM("infer.fused_size")
        .Record(schema->type ? schema->type->size() : 0);
  }
  return Status::OK();
}

// ---- Typed pipeline tail: the DOM-free ingestion path already ran the
// Map phase (DirectInferType per line), so only statistics and the Reduce
// phase remain. Both variants read `typed` without consuming it — retry
// attempts re-run over the intact vector. ----

Status InferSerialTyped(const std::vector<TypeRef>& typed,
                        const InferenceOptions& options, Schema* schema) {
  JSONSI_SPAN("infer.pipeline");
  schema->stats.record_count = typed.size();
  schema->stats.direct_records = typed.size();

  if (options.collect_stats && !typed.empty()) {
    JSONSI_SPAN("infer.stats");
    stats::DistinctTypeSet distinct;
    size_t min = 0, max = 0;
    double total = 0;
    for (size_t i = 0; i < typed.size(); ++i) {
      distinct.Add(typed[i]);
      size_t s = typed[i]->size();
      if (i == 0) {
        min = max = s;
      } else {
        min = std::min(min, s);
        max = std::max(max, s);
      }
      total += static_cast<double>(s);
    }
    schema->stats.distinct_type_count = distinct.size();
    schema->stats.min_type_size = min;
    schema->stats.max_type_size = max;
    schema->stats.avg_type_size = total / static_cast<double>(typed.size());
  }

  Stopwatch fuse_watch;
  {
    JSONSI_SPAN("infer.reduce");
    fusion::TreeFuser fuser;
    for (const TypeRef& t : typed) fuser.Add(t);
    schema->type = fuser.Finish();
  }
  schema->stats.fuse_seconds = fuse_watch.ElapsedSeconds();
  if (telemetry::Enabled()) {
    JSONSI_COUNTER("map.records").Add(typed.size());
    JSONSI_COUNTER("map.partitions").Increment();
    JSONSI_COUNTER("reduce.partials").Increment();
    JSONSI_HISTOGRAM("infer.fused_size")
        .Record(schema->type ? schema->type->size() : 0);
  }
  return Status::OK();
}

Status InferParallelTyped(const std::vector<TypeRef>& typed,
                          const InferenceOptions& options, Schema* schema) {
  JSONSI_SPAN("infer.pipeline");
  const size_t n = typed.size();
  schema->stats.record_count = n;
  schema->stats.direct_records = n;
  if (n == 0) {
    schema->type = Type::Empty();
    return Status::OK();
  }

  engine::ThreadPool pool(options.num_threads);
  const size_t parts =
      std::max<size_t>(1, std::min(options.num_partitions, n));
  std::vector<PartitionPartial> partials(parts);
  const bool collect = options.collect_stats;

  {
    JSONSI_SPAN("infer.map");
    const size_t base = n / parts;
    const size_t extra = n % parts;
    size_t offset = 0;
    for (size_t p = 0; p < parts; ++p) {
      const size_t len = base + (p < extra ? 1 : 0);
      const size_t begin = offset;
      offset += len;
      pool.Submit([&typed, &partials, p, begin, len, collect] {
        JSONSI_SPAN("pipeline.worker");
        PartitionPartial& pp = partials[p];
        if (collect) {
          for (size_t i = begin; i < begin + len; ++i) {
            pp.distinct.Add(typed[i]);
            size_t s = typed[i]->size();
            if (i == begin) {
              pp.min_size = pp.max_size = s;
            } else {
              pp.min_size = std::min(pp.min_size, s);
              pp.max_size = std::max(pp.max_size, s);
            }
            pp.total_size += static_cast<double>(s);
          }
        }
        Stopwatch fuse_watch;
        fusion::TreeFuser fuser;
        for (size_t i = begin; i < begin + len; ++i) fuser.Add(typed[i]);
        pp.partial = fuser.Finish();
        pp.fuse_seconds = fuse_watch.ElapsedSeconds();
        pp.count = len;
      });
    }
    pool.Wait();
  }
  JSONSI_RETURN_IF_ERROR(pool.first_error());

  double max_fuse = 0;
  for (const PartitionPartial& pp : partials) {
    max_fuse = std::max(max_fuse, pp.fuse_seconds);
  }
  if (collect) {
    stats::DistinctTypeSet distinct;
    size_t min = 0, max = 0, count = 0;
    double total = 0;
    for (PartitionPartial& pp : partials) {
      if (pp.count == 0) continue;
      distinct.Merge(pp.distinct);
      min = (count == 0) ? pp.min_size : std::min(min, pp.min_size);
      max = std::max(max, pp.max_size);
      total += pp.total_size;
      count += pp.count;
    }
    schema->stats.distinct_type_count = distinct.size();
    schema->stats.min_type_size = min;
    schema->stats.max_type_size = max;
    schema->stats.avg_type_size =
        count ? total / static_cast<double>(count) : 0.0;
  }

  Stopwatch reduce_watch;
  size_t rounds = 0;
  {
    JSONSI_SPAN("infer.reduce");
    std::vector<TypeRef> types;
    types.reserve(parts);
    for (PartitionPartial& pp : partials) {
      types.push_back(std::move(pp.partial));
    }
    schema->type = engine::ParallelTreeReduce(
        pool, std::move(types), Type::Empty(),
        [](const TypeRef& a, const TypeRef& b) { return fusion::Fuse(a, b); },
        &rounds);
  }
  JSONSI_RETURN_IF_ERROR(pool.first_error());
  // Map cost lives in the fused ingestion pass; the caller adds it.
  schema->stats.fuse_seconds = max_fuse + reduce_watch.ElapsedSeconds();

  if (telemetry::Enabled()) {
    JSONSI_COUNTER("map.records").Add(n);
    JSONSI_COUNTER("map.partitions").Add(parts);
    JSONSI_COUNTER("reduce.partials").Add(parts);
    JSONSI_COUNTER("pipeline.parallel.runs").Increment();
    JSONSI_COUNTER("pipeline.parallel.records").Add(n);
    JSONSI_COUNTER("pipeline.parallel.partitions").Add(parts);
    JSONSI_COUNTER("pipeline.parallel.reduce_rounds").Add(rounds);
    for (const PartitionPartial& pp : partials) {
      JSONSI_HISTOGRAM("reduce.partition_ns")
          .Record(pp.fuse_seconds > 0
                      ? static_cast<uint64_t>(pp.fuse_seconds * 1e9)
                      : 0);
    }
    JSONSI_HISTOGRAM("infer.fused_size")
        .Record(schema->type ? schema->type->size() : 0);
  }
  return Status::OK();
}

// Retrying driver over the typed tail — the typed analogue of
// TryInferFromValues, sound for the same algebraic reasons.
Result<Schema> TryInferTyped(const std::vector<TypeRef>& typed,
                             const InferenceOptions& options) {
  Schema schema;
  Status st = engine::RunWithRetry(
      [&]() -> Status {
        schema = Schema{};
        return options.num_threads <= 1
                   ? InferSerialTyped(typed, options, &schema)
                   : InferParallelTyped(typed, options, &schema);
      },
      options.retry);
  if (!st.ok()) return st;
  return schema;
}

}  // namespace

Result<Schema> SchemaInferencer::TryInferFromValues(
    const std::vector<json::ValueRef>& values) const {
  Schema schema;
  // The whole pipeline is a pure function of `values` (inference is
  // deterministic, fusion associative/commutative), so re-running it after a
  // transient worker failure is sound — the retry-safety corollary of
  // Theorems 5.4/5.5. Each parallel attempt runs on a fresh pool.
  Status st = engine::RunWithRetry(
      [&]() -> Status {
        schema = Schema{};
        return options_.num_threads <= 1
                   ? InferSerial(values, options_, &schema)
                   : InferParallel(values, options_, &schema);
      },
      options_.retry);
  if (!st.ok()) return st;
  return schema;
}

Schema SchemaInferencer::InferFromValues(
    const std::vector<json::ValueRef>& values) const {
  Result<Schema> result = TryInferFromValues(values);
  if (!result.ok()) {
    // A persistent worker failure on the infallible entry point: fail fast
    // with a diagnostic instead of the pre-hardening std::terminate.
    std::fprintf(stderr, "jsonsi: inference failed permanently: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

Result<Schema> SchemaInferencer::InferDirectFromJsonLines(
    std::string_view text, json::IngestStats* stats) const {
  std::vector<TypeRef> typed;
  std::unique_ptr<annotate::Annotation> annotation;
  if (options_.annotate) annotation = std::make_unique<annotate::Annotation>();
  double ingest_seconds = 0;

  if (options_.num_threads <= 1 ||
      text.size() < options_.parallel_ingest_min_bytes) {
    // Serial fused pass: one DirectInferType per line behind the standard
    // degraded-mode line machinery — same policy decisions, same report.
    Stopwatch ingest_watch;
    {
      JSONSI_SPAN("infer.direct");
      json::LineFn fn = [&](std::string_view line) -> Result<bool> {
        if (annotation) {
          // Per-record tree, folded only on success, so a malformed line's
          // partial observations never reach the accumulator.
          annotate::Annotation rec;
          Result<TypeRef> t =
              inference::DirectInferType(line, options_.ingest.parse, &rec);
          if (!t.ok()) return t.status();
          annotation->MergeFrom(rec);
          typed.push_back(std::move(t).value());
          return true;
        }
        Result<TypeRef> t =
            inference::DirectInferType(line, options_.ingest.parse);
        if (!t.ok()) return t.status();
        typed.push_back(std::move(t).value());
        return true;
      };
      Status st = json::IngestJsonLines(text, fn, options_.ingest, stats);
      if (!st.ok()) return st;
    }
    ingest_seconds = ingest_watch.ElapsedSeconds();
  } else {
    // Chunk-parallel fused pass: DOM-free chunk workers, then the shared
    // sequential policy replay for exact serial-reader semantics.
    Stopwatch ingest_watch;
    JSONSI_SPAN("infer.direct.parallel");
    const size_t max_chunks =
        options_.num_threads * std::max<size_t>(1, options_.chunks_per_thread);
    std::vector<json::ChunkSpan> spans = json::SplitJsonLines(text, max_chunks);
    std::vector<inference::TypedChunkOutcome> outcomes(spans.size());
    {
      engine::ThreadPool pool(options_.num_threads);
      for (size_t i = 0; i < spans.size(); ++i) {
        pool.Submit([&text, &spans, &outcomes, i, this] {
          JSONSI_SPAN("ingest.chunk_worker");
          outcomes[i] = inference::InferJsonLinesChunk(
              text.substr(spans[i].begin, spans[i].size()),
              options_.ingest.parse, options_.ingest.max_recorded_errors,
              i == 0, options_.annotate);
        });
      }
      pool.Wait();
      JSONSI_RETURN_IF_ERROR(pool.first_error());
    }
    if (telemetry::Enabled()) {
      JSONSI_COUNTER("pipeline.parallel.chunks").Add(spans.size());
    }
    json::IngestStats local;
    json::IngestStats* out = stats ? stats : &local;
    json::ChunkReplay replay =
        inference::ReplayChunkPolicy(outcomes, options_.ingest, out);
    if (!replay.status.ok()) return replay.status;
    if (annotation) {
      // Fold the eager whole-chunk accumulators the replay kept in full,
      // in index order. The chunk the replay aborted inside (if any) is
      // re-scanned over just its included prefix — its eager fold saw
      // excluded records and cannot be used.
      size_t merges = 0;
      for (size_t c = 0; c < replay.full_chunks && c < outcomes.size(); ++c) {
        if (outcomes[c].annotation) {
          annotation->MergeFrom(*outcomes[c].annotation);
          ++merges;
        }
      }
      if (replay.partial_records > 0 && replay.full_chunks < outcomes.size()) {
        const json::ChunkSpan& span = spans[replay.full_chunks];
        inference::AnnotateChunkPrefix(text.substr(span.begin, span.size()),
                                       options_.ingest.parse,
                                       replay.full_chunks == 0,
                                       replay.partial_records,
                                       annotation.get());
        ++merges;
      }
      if (telemetry::Enabled()) {
        JSONSI_COUNTER("annotate.chunk_merges").Add(merges);
      }
    }
    typed = inference::TakeIncludedTypes(std::move(outcomes), replay);
    ingest_seconds = ingest_watch.ElapsedSeconds();
  }

  Result<Schema> schema = TryInferTyped(typed, options_);
  if (!schema.ok()) return schema;
  // Parsing and Map are one fused pass on this path; bill it as Map cost.
  schema.value().stats.infer_seconds += ingest_seconds;
  schema.value().annotation = std::move(annotation);
  return schema;
}

Result<Schema> SchemaInferencer::InferFromJsonLines(
    std::string_view text, json::IngestStats* stats) const {
  if (options_.direct_infer) return InferDirectFromJsonLines(text, stats);
  if (options_.num_threads <= 1 ||
      text.size() < options_.parallel_ingest_min_bytes) {
    Result<std::vector<json::ValueRef>> values =
        json::ParseJsonLines(text, options_.ingest, stats);
    if (!values.ok()) return values.status();
    return TryInferFromValues(values.value());
  }

  // Chunk-parallel ingestion: cut on line boundaries, parse chunks on the
  // pool, then replay the malformed-line policy sequentially so degraded
  // mode behaves byte-for-byte like the serial reader (jsonl_chunk.h).
  std::vector<json::ValueRef> values;
  {
    JSONSI_SPAN("ingest.parallel");
    const size_t max_chunks =
        options_.num_threads * std::max<size_t>(1, options_.chunks_per_thread);
    std::vector<json::ChunkSpan> spans =
        json::SplitJsonLines(text, max_chunks);
    std::vector<json::ChunkOutcome> outcomes(spans.size());
    {
      engine::ThreadPool pool(options_.num_threads);
      for (size_t i = 0; i < spans.size(); ++i) {
        pool.Submit([&text, &spans, &outcomes, i, this] {
          JSONSI_SPAN("ingest.chunk_worker");
          outcomes[i] = json::ParseJsonLinesChunk(
              text.substr(spans[i].begin, spans[i].size()),
              options_.ingest.parse, options_.ingest.max_recorded_errors,
              i == 0);
        });
      }
      pool.Wait();
      JSONSI_RETURN_IF_ERROR(pool.first_error());
    }
    if (telemetry::Enabled()) {
      JSONSI_COUNTER("pipeline.parallel.chunks").Add(spans.size());
    }
    json::IngestStats local;
    json::IngestStats* out = stats ? stats : &local;
    json::ChunkReplay replay =
        json::ReplayChunkPolicy(outcomes, options_.ingest, out);
    if (!replay.status.ok()) return replay.status;
    values = json::TakeIncludedValues(std::move(outcomes), replay);
  }
  return TryInferFromValues(values);
}

Result<Schema> SchemaInferencer::InferFromFile(
    const std::string& path, json::IngestStats* stats) const {
  // Opening (and mapping) retries under the policy: transient I/O errors
  // heal, while deterministic ones (missing file, malformed content under
  // kFail) are classified permanent and fail immediately. Once the source
  // is open, inference proceeds without mid-stream retry — a consumed
  // stream cannot be replayed.
  Result<std::unique_ptr<io::InputSource>> source =
      Status::Internal("not attempted");
  Status st = engine::RunWithRetry(
      [&]() -> Status {
        source = io::OpenInputSource(path, options_.io);
        return source.ok() ? Status::OK() : source.status();
      },
      options_.retry);
  if (!st.ok()) return st;
  return InferFromSource(*source.value(), stats);
}

Result<Schema> SchemaInferencer::InferFromSource(
    io::InputSource& source, json::IngestStats* stats) const {
  if (std::optional<std::string_view> view = source.Contents()) {
    // Memory-backed (mmap): the existing buffer pipelines — serial fused
    // pass or chunk-parallel — run zero-copy on the mapping; the kernel's
    // readahead overlaps the page-ins with inference.
    return InferFromJsonLines(*view, stats);
  }
  if (options_.annotate) {
    // The annotation chunk merge re-scans aborted-chunk prefixes, which
    // needs random access to the whole buffer: non-mapped sources are
    // buffered first. File inputs normally map (kAuto) and never get here.
    std::string text;
    std::vector<char> buf(options_.io.buffer_bytes);
    if (std::optional<uint64_t> size = source.SizeBytes()) {
      text.reserve(static_cast<size_t>(*size));
    }
    for (;;) {
      Result<size_t> got = source.Read(buf.data(), buf.size());
      if (!got.ok()) return got.status();
      if (got.value() == 0) break;
      text.append(buf.data(), got.value());
    }
    return InferFromJsonLines(text, stats);
  }

  // Bounded pipeline: the reader overlaps the next read() against the
  // batch being inferred; peak memory is a few pipeline buffers plus the
  // streaming state, independent of input size. Batched == one-shot by
  // the monoid algebra plus the stream-global rate/error baselines.
  StreamingOptions sopts;
  sopts.count_distinct_types = options_.collect_stats;
  sopts.parse = options_.ingest.parse;
  sopts.on_malformed = options_.ingest.on_malformed;
  sopts.max_error_rate = options_.ingest.max_error_rate;
  sopts.min_lines_for_rate = options_.ingest.min_lines_for_rate;
  sopts.max_recorded_errors = options_.ingest.max_recorded_errors;
  sopts.direct_infer = options_.direct_infer;
  StreamingInferencer stream(sopts);
  io::PipelineReader reader(&source, options_.io);
  PumpOptions pump;
  pump.num_threads = options_.num_threads;
  Status st = PumpJsonLines(reader, stream, pump);
  if (stats) *stats = stream.ingest_stats();
  if (!st.ok()) return st;
  Schema schema = stream.Snapshot();
  // Snapshot() does not know which pipeline typed the records; keep the
  // --stats ingestion row self-describing.
  (options_.direct_infer ? schema.stats.direct_records
                         : schema.stats.dom_records) = stream.record_count();
  return schema;
}

Schema SchemaInferencer::Merge(const Schema& a, const Schema& b) {
  Schema out;
  out.type = fusion::Fuse(a.type ? a.type : Type::Empty(),
                          b.type ? b.type : Type::Empty());
  const SchemaStats& sa = a.stats;
  const SchemaStats& sb = b.stats;
  out.stats.record_count = sa.record_count + sb.record_count;
  if (sa.record_count == 0) {
    out.stats.distinct_type_count = sb.distinct_type_count;
  } else if (sb.record_count == 0) {
    out.stats.distinct_type_count = sa.distinct_type_count;
  } else {
    out.stats.distinct_type_count = 0;  // not derivable from counts alone
  }
  if (sa.record_count == 0) {
    out.stats.min_type_size = sb.min_type_size;
    out.stats.max_type_size = sb.max_type_size;
    out.stats.avg_type_size = sb.avg_type_size;
  } else if (sb.record_count == 0) {
    out.stats.min_type_size = sa.min_type_size;
    out.stats.max_type_size = sa.max_type_size;
    out.stats.avg_type_size = sa.avg_type_size;
  } else {
    out.stats.min_type_size = std::min(sa.min_type_size, sb.min_type_size);
    out.stats.max_type_size = std::max(sa.max_type_size, sb.max_type_size);
    out.stats.avg_type_size =
        (sa.avg_type_size * static_cast<double>(sa.record_count) +
         sb.avg_type_size * static_cast<double>(sb.record_count)) /
        static_cast<double>(out.stats.record_count);
  }
  out.stats.infer_seconds = sa.infer_seconds + sb.infer_seconds;
  out.stats.fuse_seconds = sa.fuse_seconds + sb.fuse_seconds;
  out.stats.direct_records = sa.direct_records + sb.direct_records;
  out.stats.dom_records = sa.dom_records + sb.dom_records;
  if (a.annotation || b.annotation) {
    // The annotation lattice merges exactly like the types do (the same
    // monoid fold), so the merged schema's statistics are those of the
    // union of the two inputs.
    auto merged = std::make_unique<annotate::Annotation>();
    if (a.annotation) merged->MergeFrom(*a.annotation);
    if (b.annotation) merged->MergeFrom(*b.annotation);
    out.annotation = std::move(merged);
  }
  return out;
}

}  // namespace jsonsi::core
