#include "core/progressive.h"

namespace jsonsi::core {

ProgressiveInferencer::ProgressiveInferencer(const ProgressiveOptions& options)
    : options_(options),
      streaming_(options.streaming),
      last_schema_(types::Type::Empty()) {}

BatchReport ProgressiveInferencer::AddBatch(
    const std::vector<json::ValueRef>& batch) {
  for (const json::ValueRef& v : batch) streaming_.AddValue(v);
  types::TypeRef schema = streaming_.Snapshot().type;
  BatchReport report;
  report.batch_index = history_.size();
  report.records_total = streaming_.record_count();
  report.schema_changed = !schema->Equals(*last_schema_);
  report.schema_size = schema->size();
  stable_run_ = report.schema_changed ? 0 : stable_run_ + 1;
  report.stable_run = stable_run_;
  last_schema_ = std::move(schema);
  history_.push_back(report);
  return report;
}

}  // namespace jsonsi::core
