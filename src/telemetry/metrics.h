// Low-overhead, thread-safe metrics: named counters, gauges, and log-scale
// histograms behind a process-global registry.
//
// Design constraints (see docs/observability.md):
//   * Hot paths (per-value inference, per-pair fusion) pay ~one relaxed
//     atomic increment when telemetry is enabled and one relaxed atomic load
//     when it is disabled. Counters are sharded across cache-line-padded
//     atomics so concurrent writers do not contend on one line.
//   * Telemetry is OFF by default; every mutation checks the global enable
//     flag first, so uninstrumented builds and disabled runs are unaffected.
//   * Metric objects are registered once by name and never deallocated while
//     the registry lives, so call sites may cache references in function-
//     local statics.
//
// Accounting is exact, not sampled: counter totals and histogram counts/sums
// are the precise sum of all recorded values regardless of thread count
// (relaxed atomics lose no updates, only ordering — and totals are
// order-independent, the same monoid argument that makes fusion parallel).

#ifndef JSONSI_TELEMETRY_METRICS_H_
#define JSONSI_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jsonsi::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;

/// Stable per-thread shard index in [0, kCounterShards).
size_t ShardIndex();
}  // namespace detail

/// Global switch. Telemetry starts disabled; when disabled, every metric
/// mutation and span is a single relaxed load and an early return.
inline bool Enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

inline constexpr size_t kCounterShards = 8;

/// Monotonically increasing sum, sharded to keep concurrent increments off
/// one cache line.
class Counter {
 public:
  void Add(uint64_t delta) {
    if (!Enabled()) return;
    shards_[detail::ShardIndex()].value.fetch_add(delta,
                                                  std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over shards (exact once concurrent writers have quiesced).
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kCounterShards];
};

/// Instantaneous signed level (queue depths, in-flight tasks).
class Gauge {
 public:
  void Set(int64_t value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Read-only view of a histogram at one instant.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  /// Occupied log2 buckets only: {inclusive upper bound, count}. Bucket k
  /// holds values in [2^(k-1), 2^k - 1] (bucket 0 holds the value 0).
  std::vector<std::pair<uint64_t, uint64_t>> buckets;

  double Mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

/// Log-scale (power-of-two bucket) histogram for durations and sizes that
/// span orders of magnitude. Recording is a handful of relaxed atomic ops;
/// count and sum are exact, min/max converge via CAS.
class Histogram {
 public:
  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

  /// Bucket index of a value: 0 for 0, otherwise bit-width (1 + floor(log2)).
  static size_t BucketIndex(uint64_t value);
  /// Inclusive upper bound of bucket k.
  static uint64_t BucketUpperBound(size_t k);

  static constexpr size_t kNumBuckets = 65;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Full registry state at one instant (name-sorted, ready for export).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Counter value by exact name (0 when absent) — convenience for tests
  /// and self-checks.
  uint64_t CounterValue(std::string_view name) const;
};

/// Name-keyed registry of metric instruments. Registration (first GetX for a
/// name) takes a mutex; returned references are stable for the registry's
/// lifetime, so hot call sites cache them in function-local statics.
class MetricsRegistry {
 public:
  /// The process-global registry all built-in instrumentation records into.
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered instrument (names stay registered). Used by the
  /// CLI/bench to scope a report to one run, and by tests.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace jsonsi::telemetry

#endif  // JSONSI_TELEMETRY_METRICS_H_
