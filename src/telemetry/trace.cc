#include "telemetry/trace.h"

#include <algorithm>

namespace jsonsi::telemetry {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

TraceRecorder::ThreadRing& TraceRecorder::RingForThisThread() {
  // The shared_ptr is held both here (thread lifetime) and in rings_
  // (recorder lifetime), so Drain can read rings of exited threads.
  thread_local std::shared_ptr<ThreadRing> ring = [this] {
    auto r = std::make_shared<ThreadRing>();
    std::lock_guard<std::mutex> lock(mu_);
    r->slots.resize(ring_capacity_);
    r->thread_index = next_thread_index_++;
    rings_.push_back(r);
    return r;
  }();
  return *ring;
}

void TraceRecorder::Record(const SpanRecord& span) {
  ThreadRing& ring = RingForThisThread();
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.slots.empty()) return;
  if (ring.size == ring.slots.size()) ++ring.dropped;  // overwriting oldest
  SpanRecord stamped = span;
  stamped.thread_index = ring.thread_index;
  ring.slots[ring.next] = stamped;
  ring.next = (ring.next + 1) % ring.slots.size();
  ring.size = std::min(ring.size + 1, ring.slots.size());
}

std::vector<SpanRecord> TraceRecorder::Drain() {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings = rings_;
  }
  std::vector<SpanRecord> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    // Oldest-first: the ring's chronological order starts at `next` when the
    // ring has wrapped, at 0 otherwise.
    size_t start = (ring->size == ring->slots.size()) ? ring->next : 0;
    for (size_t i = 0; i < ring->size; ++i) {
      out.push_back(ring->slots[(start + i) % ring->slots.size()]);
    }
    ring->next = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;  // parents open before children
            });
  return out;
}

uint64_t TraceRecorder::dropped_spans() const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings = rings_;
  }
  uint64_t total = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

void TraceRecorder::SetRingCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = std::max<size_t>(1, capacity);
}

}  // namespace jsonsi::telemetry
