// Exporters: serialize metrics snapshots and span timelines into standard
// interchange formats.
//
//   * MetricsToJson       — one JSON document: counters, gauges, histograms.
//   * MetricsToPrometheus — Prometheus text exposition format (metric names
//                           are mangled "fuse.calls" -> "jsonsi_fuse_calls";
//                           histograms use cumulative le-buckets).
//   * SpansToChromeTrace  — Chrome trace_event JSON (open chrome://tracing
//                           or https://ui.perfetto.dev and load the file).
//
// These are pure string builders over snapshot structs; they never touch the
// global registry and are safe to call from any thread.

#ifndef JSONSI_TELEMETRY_EXPORT_H_
#define JSONSI_TELEMETRY_EXPORT_H_

#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace jsonsi::telemetry {

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// min, max, mean, buckets: [{le, count}...]}}}
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Prometheus text format: "# TYPE jsonsi_x counter\njsonsi_x 42\n...".
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot);

/// Live-scrape entry point (`GET /metrics` in `jsi serve`): snapshots the
/// global registry *now* and renders it as Prometheus text, all in memory —
/// no file I/O. Every call re-reads the registry, so instruments registered
/// after an earlier render are included in the next one (asserted by
/// telemetry_test.cc).
std::string GlobalMetricsPrometheus();

/// {"traceEvents": [{"name", "cat", "ph": "X", "ts", "dur", "pid", "tid",
/// "args": {"depth": d}}, ...]} — complete-event ("X") records, timestamps
/// in microseconds.
std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans);

}  // namespace jsonsi::telemetry

#endif  // JSONSI_TELEMETRY_EXPORT_H_
