#include "telemetry/sink.h"

#include <fstream>

#include "telemetry/export.h"

namespace jsonsi::telemetry {
namespace {

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out << content;
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

bool HasSuffix(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

Status FileSink::ConsumeMetrics(const MetricsSnapshot& snapshot) {
  if (metrics_path_.empty()) return Status::OK();
  const std::string text = HasSuffix(metrics_path_, ".prom")
                               ? MetricsToPrometheus(snapshot)
                               : MetricsToJson(snapshot);
  return WriteFile(metrics_path_, text);
}

Status FileSink::ConsumeSpans(const std::vector<SpanRecord>& spans) {
  if (trace_path_.empty()) return Status::OK();
  return WriteFile(trace_path_, SpansToChromeTrace(spans));
}

Status StringSink::ConsumeMetrics(const MetricsSnapshot& snapshot) {
  metrics_text_ = format_ == MetricsFormat::kPrometheus
                      ? MetricsToPrometheus(snapshot)
                      : MetricsToJson(snapshot);
  return Status::OK();
}

Status StringSink::ConsumeSpans(const std::vector<SpanRecord>& spans) {
  trace_json_ = SpansToChromeTrace(spans);
  return Status::OK();
}

Status Flush(TelemetrySink& sink) {
  Status st = sink.ConsumeMetrics(MetricsRegistry::Global().Snapshot());
  Status spans = sink.ConsumeSpans(TraceRecorder::Global().Drain());
  return st.ok() ? spans : st;
}

}  // namespace jsonsi::telemetry
