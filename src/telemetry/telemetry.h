// Umbrella header for the telemetry subsystem; instrumented modules include
// this one header.
//
//   telemetry::SetEnabled(true);                  // off by default
//   { JSONSI_SPAN("fuse"); ... }                  // scoped tracing span
//   JSONSI_COUNTER("fuse.calls").Increment();     // cached named counter
//   telemetry::FileSink sink("metrics.json", "trace.json");
//   telemetry::Flush(sink);
//
// JSONSI_COUNTER / JSONSI_GAUGE / JSONSI_HISTOGRAM resolve the named
// instrument once per call site (function-local static) so steady-state cost
// is one static-guard load plus the instrument's relaxed atomics. See
// docs/observability.md for the metric and span naming conventions.

#ifndef JSONSI_TELEMETRY_TELEMETRY_H_
#define JSONSI_TELEMETRY_TELEMETRY_H_

#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/sink.h"
#include "telemetry/trace.h"

/// Per-call-site cached instruments from the global registry. `name` must be
/// a constant: every evaluation of one macro instance yields the instrument
/// resolved on first execution.
#define JSONSI_COUNTER(name)                                               \
  ([]() -> ::jsonsi::telemetry::Counter& {                                 \
    static ::jsonsi::telemetry::Counter& c =                               \
        ::jsonsi::telemetry::MetricsRegistry::Global().GetCounter(name);   \
    return c;                                                              \
  }())

#define JSONSI_GAUGE(name)                                                 \
  ([]() -> ::jsonsi::telemetry::Gauge& {                                   \
    static ::jsonsi::telemetry::Gauge& g =                                 \
        ::jsonsi::telemetry::MetricsRegistry::Global().GetGauge(name);     \
    return g;                                                              \
  }())

#define JSONSI_HISTOGRAM(name)                                             \
  ([]() -> ::jsonsi::telemetry::Histogram& {                               \
    static ::jsonsi::telemetry::Histogram& h =                             \
        ::jsonsi::telemetry::MetricsRegistry::Global().GetHistogram(name); \
    return h;                                                              \
  }())

#endif  // JSONSI_TELEMETRY_TELEMETRY_H_
