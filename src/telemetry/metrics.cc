#include "telemetry/metrics.h"

#include <bit>

namespace jsonsi::telemetry {

namespace detail {

std::atomic<bool> g_enabled{false};

size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return index;
}

}  // namespace detail

void SetEnabled(bool enabled) {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

size_t Histogram::BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t Histogram::BucketUpperBound(size_t k) {
  if (k == 0) return 0;
  if (k >= 64) return UINT64_MAX;
  return (uint64_t{1} << k) - 1;
}

void Histogram::Record(uint64_t value) {
  if (!Enabled()) return;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = (min == UINT64_MAX) ? 0 : min;
  snap.max = max_.load(std::memory_order_relaxed);
  for (size_t k = 0; k < kNumBuckets; ++k) {
    uint64_t n = buckets_[k].load(std::memory_order_relaxed);
    if (n > 0) snap.buckets.emplace_back(BucketUpperBound(k), n);
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist->Snapshot());
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace jsonsi::telemetry
