#include "telemetry/export.h"

#include <cinttypes>
#include <cstdio>

#include "support/string_util.h"

namespace jsonsi::telemetry {
namespace {

void AppendQuoted(std::string_view text, std::string* out) {
  out->push_back('"');
  AppendJsonEscaped(text, out);
  out->push_back('"');
}

void AppendU64(uint64_t value, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->append(buf);
}

void AppendI64(int64_t value, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out->append(buf);
}

// "fuse.calls" -> "jsonsi_fuse_calls": Prometheus names allow [a-zA-Z0-9_:].
std::string PrometheusName(std::string_view name) {
  std::string out = "jsonsi_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(name, &out);
    out.append(": ");
    AppendU64(value, &out);
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"gauges\": {");
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(name, &out);
    out.append(": ");
    AppendI64(value, &out);
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"histograms\": {");
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendQuoted(name, &out);
    out.append(": {\"count\": ");
    AppendU64(hist.count, &out);
    out.append(", \"sum\": ");
    AppendU64(hist.sum, &out);
    out.append(", \"min\": ");
    AppendU64(hist.min, &out);
    out.append(", \"max\": ");
    AppendU64(hist.max, &out);
    out.append(", \"mean\": ");
    out.append(FormatJsonNumber(hist.Mean()));
    out.append(", \"buckets\": [");
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (i) out.append(", ");
      out.append("{\"le\": ");
      AppendU64(hist.buckets[i].first, &out);
      out.append(", \"count\": ");
      AppendU64(hist.buckets[i].second, &out);
      out.push_back('}');
    }
    out.append("]}");
  }
  out.append(first ? "}\n}\n" : "\n  }\n}\n");
  return out;
}

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string pname = PrometheusName(name);
    out.append("# TYPE ").append(pname).append(" counter\n");
    out.append(pname).append(" ");
    AppendU64(value, &out);
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string pname = PrometheusName(name);
    out.append("# TYPE ").append(pname).append(" gauge\n");
    out.append(pname).append(" ");
    AppendI64(value, &out);
    out.push_back('\n');
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    std::string pname = PrometheusName(name);
    out.append("# TYPE ").append(pname).append(" histogram\n");
    uint64_t cumulative = 0;
    for (const auto& [le, count] : hist.buckets) {
      cumulative += count;
      out.append(pname).append("_bucket{le=\"");
      AppendU64(le, &out);
      out.append("\"} ");
      AppendU64(cumulative, &out);
      out.push_back('\n');
    }
    out.append(pname).append("_bucket{le=\"+Inf\"} ");
    AppendU64(hist.count, &out);
    out.push_back('\n');
    out.append(pname).append("_sum ");
    AppendU64(hist.sum, &out);
    out.push_back('\n');
    out.append(pname).append("_count ");
    AppendU64(hist.count, &out);
    out.push_back('\n');
  }
  return out;
}

std::string GlobalMetricsPrometheus() {
  return MetricsToPrometheus(MetricsRegistry::Global().Snapshot());
}

std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out.append(i ? ",\n  " : "\n  ");
    out.append("{\"name\": ");
    AppendQuoted(s.name, &out);
    out.append(", \"cat\": \"jsonsi\", \"ph\": \"X\", \"ts\": ");
    // trace_event timestamps are microseconds; keep nanosecond precision
    // with a fractional part.
    out.append(FormatJsonNumber(static_cast<double>(s.start_ns) / 1e3));
    out.append(", \"dur\": ");
    out.append(
        FormatJsonNumber(static_cast<double>(s.end_ns - s.start_ns) / 1e3));
    out.append(", \"pid\": 1, \"tid\": ");
    AppendU64(s.thread_index, &out);
    out.append(", \"args\": {\"depth\": ");
    AppendU64(s.depth, &out);
    out.append("}}");
  }
  out.append(spans.empty() ? "]}\n" : "\n]}\n");
  return out;
}

}  // namespace jsonsi::telemetry
