// Pluggable telemetry output: where a flush sends the metrics snapshot and
// the drained span timeline.
//
// The default sink is NullSink — consuming a flush and discarding it — so a
// library embedder that never configures telemetry pays nothing beyond the
// disabled-path atomic loads. FileSink writes the standard formats
// (telemetry/export.h) to caller-chosen paths; tools/jsi.cc builds one from
// --metrics-out/--trace-out.

#ifndef JSONSI_TELEMETRY_SINK_H_
#define JSONSI_TELEMETRY_SINK_H_

#include <string>
#include <vector>

#include "support/status.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace jsonsi::telemetry {

/// Receives one flush of telemetry state. Implementations must tolerate
/// empty snapshots/timelines.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual Status ConsumeMetrics(const MetricsSnapshot& snapshot) = 0;
  virtual Status ConsumeSpans(const std::vector<SpanRecord>& spans) = 0;
};

/// Discards everything (the default).
class NullSink : public TelemetrySink {
 public:
  Status ConsumeMetrics(const MetricsSnapshot&) override {
    return Status::OK();
  }
  Status ConsumeSpans(const std::vector<SpanRecord>&) override {
    return Status::OK();
  }
};

/// Writes metrics (JSON or Prometheus text, by extension ".prom") and spans
/// (Chrome trace JSON) to files. Empty paths skip that output.
class FileSink : public TelemetrySink {
 public:
  FileSink(std::string metrics_path, std::string trace_path)
      : metrics_path_(std::move(metrics_path)),
        trace_path_(std::move(trace_path)) {}

  Status ConsumeMetrics(const MetricsSnapshot& snapshot) override;
  Status ConsumeSpans(const std::vector<SpanRecord>& spans) override;

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

/// Renders a flush in memory — the no-file-I/O counterpart of FileSink for
/// embedders that *serve* telemetry (an HTTP /metrics endpoint, a test
/// harness) instead of writing it out at process exit. The rendered text is
/// replaced on every flush.
class StringSink : public TelemetrySink {
 public:
  enum class MetricsFormat { kJson, kPrometheus };
  explicit StringSink(MetricsFormat format = MetricsFormat::kJson)
      : format_(format) {}

  Status ConsumeMetrics(const MetricsSnapshot& snapshot) override;
  Status ConsumeSpans(const std::vector<SpanRecord>& spans) override;

  /// Last flush's metrics, rendered per the chosen format.
  const std::string& metrics_text() const { return metrics_text_; }
  /// Last flush's spans as Chrome trace JSON.
  const std::string& trace_json() const { return trace_json_; }

 private:
  MetricsFormat format_;
  std::string metrics_text_;
  std::string trace_json_;
};

/// Snapshots the global registry and drains the global recorder into `sink`.
/// Returns the first non-OK sink status.
Status Flush(TelemetrySink& sink);

}  // namespace jsonsi::telemetry

#endif  // JSONSI_TELEMETRY_SINK_H_
