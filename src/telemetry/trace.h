// Scoped tracing spans recorded into thread-local ring buffers and merged at
// flush time.
//
//   void Reduce(...) {
//     JSONSI_SPAN("fuse");        // RAII: records [enter, exit) when enabled
//     ...
//   }
//
// A span is recorded on scope exit into the calling thread's fixed-capacity
// ring buffer (oldest spans are overwritten when full; the overwrite count is
// reported). Buffers register themselves with the global recorder on first
// use and stay readable after their thread exits. TraceRecorder::Drain()
// merges every thread's spans into one start-time-ordered timeline, ready
// for the Chrome trace_event exporter (telemetry/export.h).
//
// Span names must be string literals (or otherwise outlive the recorder):
// records store the pointer, never a copy, so the disabled path and the
// record path allocate nothing.

#ifndef JSONSI_TELEMETRY_TRACE_H_
#define JSONSI_TELEMETRY_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "support/timer.h"
#include "telemetry/metrics.h"

namespace jsonsi::telemetry {

/// One completed span on one thread.
struct SpanRecord {
  const char* name = "";   // static-storage string; not owned
  uint64_t start_ns = 0;   // MonotonicNanos at scope entry
  uint64_t end_ns = 0;     // MonotonicNanos at scope exit
  uint32_t thread_index = 0;  // dense per-thread id, stable per thread
  uint32_t depth = 0;         // nesting depth within the thread (0 = root)
};

/// Process-global collector of per-thread span rings.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Appends one finished span to the calling thread's ring buffer.
  void Record(const SpanRecord& span);

  /// Merges all threads' outstanding spans into one start-ordered timeline
  /// and clears the rings. Spans recorded concurrently with Drain land in
  /// the next drain.
  std::vector<SpanRecord> Drain();

  /// Spans overwritten because a ring was full, since the last Drain.
  uint64_t dropped_spans() const;

  /// Ring capacity for threads that have not yet recorded (existing rings
  /// keep their size). Default 4096 spans per thread.
  void SetRingCapacity(size_t capacity);

 private:
  struct ThreadRing {
    std::mutex mu;
    std::vector<SpanRecord> slots;  // ring storage, capacity fixed at creation
    size_t next = 0;                // write cursor
    size_t size = 0;                // valid records (<= slots.size())
    uint64_t dropped = 0;
    uint32_t thread_index = 0;
  };

  ThreadRing& RingForThisThread();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  size_t ring_capacity_ = 4096;
  uint32_t next_thread_index_ = 0;
};

/// RAII span guard; see JSONSI_SPAN. Does nothing when telemetry is off at
/// scope entry.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!Enabled()) return;
    name_ = name;
    start_ns_ = MonotonicNanos();
    depth_ = nesting_depth()++;
  }
  ~ScopedSpan() {
    if (!name_) return;
    --nesting_depth();
    SpanRecord span;
    span.name = name_;
    span.start_ns = start_ns_;
    span.end_ns = MonotonicNanos();
    span.depth = depth_;
    TraceRecorder::Global().Record(span);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  static uint32_t& nesting_depth() {
    thread_local uint32_t depth = 0;
    return depth;
  }

  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

#define JSONSI_TELEMETRY_CONCAT_INNER(a, b) a##b
#define JSONSI_TELEMETRY_CONCAT(a, b) JSONSI_TELEMETRY_CONCAT_INNER(a, b)

/// Opens a scoped span named `name` (a string literal) covering the rest of
/// the enclosing scope.
#define JSONSI_SPAN(name)                                  \
  ::jsonsi::telemetry::ScopedSpan JSONSI_TELEMETRY_CONCAT( \
      jsonsi_scoped_span_, __LINE__)(name)

}  // namespace jsonsi::telemetry

#endif  // JSONSI_TELEMETRY_TRACE_H_
