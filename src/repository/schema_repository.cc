#include "repository/schema_repository.h"

#include <fstream>
#include <sstream>

#include "fusion/fuse.h"
#include "io/input_source.h"
#include "support/string_util.h"
#include "types/printer.h"
#include "types/type_parser.h"

namespace jsonsi::repository {

using types::Type;
using types::TypeRef;

Status SchemaRepository::RegisterBatch(const std::string& source,
                                       const TypeRef& batch_schema,
                                       uint64_t record_count,
                                       const std::string& note) {
  if (source.empty() || source.find('\n') != std::string::npos ||
      source.find(' ') != std::string::npos) {
    return Status::InvalidArgument(
        "source names must be non-empty and contain no spaces/newlines");
  }
  if (note.find('\n') != std::string::npos) {
    return Status::InvalidArgument("notes must not contain newlines");
  }
  if (!batch_schema) {
    return Status::InvalidArgument("batch schema must not be null");
  }
  std::vector<SchemaVersion>& history = sources_[source];
  if (history.empty()) {
    SchemaVersion v;
    v.version = 1;
    v.schema = batch_schema;
    v.cumulative_records = record_count;
    v.note = note;
    history.push_back(std::move(v));
    return Status::OK();
  }
  SchemaVersion& current = history.back();
  TypeRef fused = fusion::Fuse(current.schema, batch_schema);
  if (fused->Equals(*current.schema)) {
    // Structure unchanged: just account for the records.
    current.cumulative_records += record_count;
    return Status::OK();
  }
  SchemaVersion next;
  next.version = current.version + 1;
  next.schema = fused;
  next.cumulative_records = current.cumulative_records + record_count;
  next.note = note;
  next.changes = diff::DiffSchemas(current.schema, fused);
  history.push_back(std::move(next));
  return Status::OK();
}

const SchemaVersion* SchemaRepository::Current(
    const std::string& source) const {
  auto it = sources_.find(source);
  if (it == sources_.end() || it->second.empty()) return nullptr;
  return &it->second.back();
}

const std::vector<SchemaVersion>* SchemaRepository::History(
    const std::string& source) const {
  auto it = sources_.find(source);
  if (it == sources_.end()) return nullptr;
  return &it->second;
}

std::vector<diff::SchemaChange> SchemaRepository::LatestDrift(
    const std::string& source) const {
  auto it = sources_.find(source);
  if (it == sources_.end() || it->second.size() < 2) return {};
  return it->second.back().changes;
}

std::vector<std::string> SchemaRepository::Sources() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto& [name, history] : sources_) out.push_back(name);
  return out;
}

std::string SchemaRepository::Serialize() const {
  // Line-oriented format:
  //   jsonsi-schema-repository 1
  //   source <name>
  //   version <n> records <m> note <note...>
  //   type <single-line type expression>
  std::string out = "jsonsi-schema-repository 1\n";
  for (const auto& [name, history] : sources_) {
    out += "source " + name + "\n";
    for (const SchemaVersion& v : history) {
      out += "version " + std::to_string(v.version) + " records " +
             std::to_string(v.cumulative_records) + " note " + v.note + "\n";
      out += "type " + types::ToString(*v.schema) + "\n";
    }
  }
  return out;
}

Result<SchemaRepository> SchemaRepository::Deserialize(std::string_view text) {
  SchemaRepository repo;
  std::vector<std::string_view> lines = Split(text, '\n');
  if (lines.empty() || lines[0] != "jsonsi-schema-repository 1") {
    return Status::ParseError("bad repository header");
  }
  std::string current_source;
  SchemaVersion pending;
  bool have_pending = false;
  auto flush = [&]() -> Status {
    if (!have_pending) return Status::OK();
    if (current_source.empty()) {
      return Status::ParseError("version without a source");
    }
    std::vector<SchemaVersion>& history = repo.sources_[current_source];
    if (!history.empty()) {
      pending.changes = diff::DiffSchemas(history.back().schema,
                                          pending.schema);
    }
    history.push_back(std::move(pending));
    pending = SchemaVersion{};
    have_pending = false;
    return Status::OK();
  };
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (line.empty()) continue;
    if (line.rfind("source ", 0) == 0) {
      JSONSI_RETURN_IF_ERROR(flush());
      current_source = std::string(line.substr(7));
      continue;
    }
    if (line.rfind("version ", 0) == 0) {
      JSONSI_RETURN_IF_ERROR(flush());
      std::istringstream parse{std::string(line)};
      std::string kw_version, kw_records, kw_note;
      uint64_t version = 0, records = 0;
      parse >> kw_version >> version >> kw_records >> records >> kw_note;
      if (!parse || kw_records != "records" || kw_note != "note") {
        return Status::ParseError("bad version line: " + std::string(line));
      }
      std::string note;
      std::getline(parse, note);
      if (!note.empty() && note.front() == ' ') note.erase(note.begin());
      pending.version = version;
      pending.cumulative_records = records;
      pending.note = std::move(note);
      have_pending = true;
      continue;
    }
    if (line.rfind("type ", 0) == 0) {
      if (!have_pending) {
        return Status::ParseError("type line without a version");
      }
      Result<TypeRef> type = types::ParseType(line.substr(5));
      if (!type.ok()) return type.status();
      pending.schema = std::move(type).value();
      continue;
    }
    return Status::ParseError("unrecognized line: " + std::string(line));
  }
  JSONSI_RETURN_IF_ERROR(flush());
  // Validate: every version has a schema.
  for (const auto& [name, history] : repo.sources_) {
    for (const SchemaVersion& v : history) {
      if (!v.schema) {
        return Status::ParseError("source " + name + " version " +
                                  std::to_string(v.version) +
                                  " is missing its type line");
      }
    }
  }
  return repo;
}

Status SchemaRepository::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out << Serialize();
  return out ? Status::OK() : Status::Internal("write failed: " + path);
}

Result<SchemaRepository> SchemaRepository::LoadFromFile(
    const std::string& path) {
  // Single stat-sized read (io/input_source.h), not an ostringstream
  // double copy — repositories grow with every published version.
  Result<std::string> text = io::ReadFileToString(path);
  if (!text.ok()) return text.status();
  return Deserialize(text.value());
}

}  // namespace jsonsi::repository
