// Versioned schema repository — the operational layer the paper's
// incremental-inference story implies (Section 1: dynamic sources, new
// values "added at any time, with a structure that can differ from that
// already inferred"), and the complete-schema answer to the skeleton-based
// repository of Wang et al. [22] discussed in Section 3.
//
// A repository tracks any number of named sources. Registering a batch
// fuses the batch's schema into the source's current schema (exact, by
// associativity); if the schema changed, a new version is recorded together
// with the change list (diff/schema_diff.h), giving a full evolution history
// that downstream consumers can subscribe to.
//
// The repository persists to a plain-text format built on the type
// printer/parser, so saved schemas remain human-readable and diffable.

#ifndef JSONSI_REPOSITORY_SCHEMA_REPOSITORY_H_
#define JSONSI_REPOSITORY_SCHEMA_REPOSITORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "diff/schema_diff.h"
#include "support/status.h"
#include "types/type.h"

namespace jsonsi::repository {

/// One recorded schema version of a source.
struct SchemaVersion {
  uint64_t version = 0;           // 1-based, monotonically increasing
  types::TypeRef schema;          // fused schema as of this version
  uint64_t cumulative_records = 0;  // records folded in up to this version
  std::string note;               // free-form batch annotation (no newlines)
  /// Changes relative to the previous version (empty for version 1).
  std::vector<diff::SchemaChange> changes;
};

/// A named, versioned store of fused schemas.
class SchemaRepository {
 public:
  /// Fuses `batch_schema` (the schema of `record_count` new records) into
  /// `source`'s current schema. Records a new version only when the fused
  /// schema actually changed; the running record count updates regardless.
  /// Creates the source on first registration.
  Status RegisterBatch(const std::string& source,
                       const types::TypeRef& batch_schema,
                       uint64_t record_count, const std::string& note = "");

  /// Latest version of a source; nullptr when unknown.
  const SchemaVersion* Current(const std::string& source) const;

  /// Full version history (empty when unknown). Oldest first.
  const std::vector<SchemaVersion>* History(const std::string& source) const;

  /// Changes between the last two versions (empty when fewer than two).
  std::vector<diff::SchemaChange> LatestDrift(const std::string& source) const;

  /// Registered source names, sorted.
  std::vector<std::string> Sources() const;

  // -- Persistence ----------------------------------------------------------

  /// Serializes the repository (all sources, all versions except per-version
  /// change lists, which are recomputed on load).
  std::string Serialize() const;
  /// Parses a repository from Serialize() output.
  static Result<SchemaRepository> Deserialize(std::string_view text);

  Status SaveToFile(const std::string& path) const;
  static Result<SchemaRepository> LoadFromFile(const std::string& path);

 private:
  std::map<std::string, std::vector<SchemaVersion>> sources_;
};

}  // namespace jsonsi::repository

#endif  // JSONSI_REPOSITORY_SCHEMA_REPOSITORY_H_
