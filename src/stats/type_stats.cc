#include "stats/type_stats.h"

#include <algorithm>

namespace jsonsi::stats {

SizeStats ComputeSizeStats(const std::vector<types::TypeRef>& ts) {
  SizeStats out;
  if (ts.empty()) return out;
  out.count = ts.size();
  out.min = ts.front()->size();
  out.max = ts.front()->size();
  double total = 0;
  for (const types::TypeRef& t : ts) {
    size_t s = t->size();
    out.min = std::min(out.min, s);
    out.max = std::max(out.max, s);
    total += static_cast<double>(s);
  }
  out.avg = total / static_cast<double>(ts.size());
  return out;
}

}  // namespace jsonsi::stats
