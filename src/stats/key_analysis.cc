#include "stats/key_analysis.h"

#include <algorithm>
#include <map>

namespace jsonsi::stats {

using types::FieldType;
using types::Type;
using types::TypeNode;
using types::TypeRef;

namespace {

// The set of kinds a (possibly union) type covers, as a stable label.
std::string KindSignature(const TypeRef& t) {
  static const char* kNames[6] = {"Null", "Bool", "Num",
                                  "Str",  "record", "array"};
  bool kinds[6] = {false, false, false, false, false, false};
  for (const TypeRef& alt : types::Flatten(t)) {
    kinds[static_cast<size_t>(alt->kind())] = true;
  }
  std::string out;
  for (size_t k = 0; k < 6; ++k) {
    if (!kinds[k]) continue;
    if (!out.empty()) out += " + ";
    out += kNames[k];
  }
  return out.empty() ? "Empty" : out;
}

struct Scanner {
  const KeyAnalysisOptions& options;
  std::vector<KeyAsDataFinding>* out;

  void ScanRecord(const Type& record, const std::string& path) {
    const auto& fields = record.fields();
    if (fields.size() >= options.min_fields) {
      // Group the field types by kind signature: map entries share their
      // shape (e.g. "every claim value is an array of statements") without
      // being structurally identical.
      std::map<std::string, size_t> groups;
      size_t optional = 0;
      for (const FieldType& f : fields) {
        ++groups[KindSignature(f.type)];
        optional += f.optional ? 1 : 0;
      }
      size_t best_count = 0;
      std::string best_signature;
      for (const auto& [signature, count] : groups) {
        if (count > best_count) {
          best_count = count;
          best_signature = signature;
        }
      }
      double uniformity =
          static_cast<double>(best_count) / static_cast<double>(fields.size());
      double optional_fraction =
          static_cast<double>(optional) / static_cast<double>(fields.size());
      if (uniformity >= options.min_uniformity &&
          optional_fraction >= options.min_optional_fraction) {
        out->push_back({path, fields.size(), uniformity, optional_fraction,
                        best_signature});
      }
    }
    for (const FieldType& f : fields) {
      Scan(*f.type, path.empty() ? f.key : path + "." + f.key);
    }
  }

  void Scan(const Type& t, const std::string& path) {
    switch (t.node()) {
      case TypeNode::kRecord:
        ScanRecord(t, path);
        return;
      case TypeNode::kArrayExact:
        for (const TypeRef& e : t.elements()) Scan(*e, path + "[]");
        return;
      case TypeNode::kArrayStar:
        Scan(*t.body(), path + "[]");
        return;
      case TypeNode::kUnion:
        for (const TypeRef& alt : t.alternatives()) Scan(*alt, path);
        return;
      default:
        return;
    }
  }
};

}  // namespace

std::vector<KeyAsDataFinding> DetectKeyAsData(
    const TypeRef& schema, const KeyAnalysisOptions& options) {
  std::vector<KeyAsDataFinding> findings;
  Scanner{options, &findings}.Scan(*schema, "");
  std::stable_sort(findings.begin(), findings.end(),
                   [](const KeyAsDataFinding& a, const KeyAsDataFinding& b) {
                     return a.field_count > b.field_count;
                   });
  return findings;
}

}  // namespace jsonsi::stats
