// Path enumeration over values and types.
//
// The paper's central completeness claim (Section 1) is that "each path that
// can be traversed in the tree-structure of each input JSON value can be
// traversed in the inferred schema as well" — unlike skeleton approaches that
// may drop rare paths. These helpers make that claim checkable: enumerate
// the label paths of values and of types, and measure coverage.
//
// Path syntax: dot-separated keys, with "[]" for an array step, e.g.
//   entities.hashtags[].text
// The root contributes no component; a path exists for every traversable
// node, including intermediate ones.

#ifndef JSONSI_STATS_PATHS_H_
#define JSONSI_STATS_PATHS_H_

#include <map>
#include <set>
#include <string>

#include "json/value.h"
#include "types/type.h"

namespace jsonsi::stats {

/// All label paths traversable in `value` (excluding the empty root path).
std::set<std::string> ValuePaths(const json::Value& value);

/// All label paths traversable in the denotation of `type`: union branches
/// merge, optional fields still contribute their paths, array types
/// contribute "[]" steps (element positions of exact arrays collapse).
std::set<std::string> TypePaths(const types::Type& type);

/// Accumulates per-path occurrence counts across many values (used by the
/// skeleton baseline to find "frequent" structure).
class PathCounter {
 public:
  /// Counts each path of `value` once.
  void Add(const json::Value& value);

  /// Number of values added.
  size_t total() const { return total_; }

  const std::map<std::string, size_t>& counts() const { return counts_; }

 private:
  std::map<std::string, size_t> counts_;
  size_t total_ = 0;
};

/// Fraction of `required` contained in `provided` (1.0 when required empty).
double Coverage(const std::set<std::string>& required,
                const std::set<std::string>& provided);

}  // namespace jsonsi::stats

#endif  // JSONSI_STATS_PATHS_H_
