// Key-as-data detection — automating the paper's Wikidata diagnosis.
//
// Section 6.1 attributes Wikidata's poor fusion behaviour to a design smell:
// "users identifiers are directly encoded as keys, whereas a clean design
// would suggest encoding this information as a value of a specific key".
// The symptom in a fused schema is unmistakable: one record position
// accumulates a huge number of optional fields whose types are all similar
// (they are really entries of a map, not fields of a struct).
//
// This analysis walks a fused schema and reports such positions, so users
// learn *why* their schema is large and *where* the data model encodes data
// in keys — turning the paper's manual post-mortem into a tool.

#ifndef JSONSI_STATS_KEY_ANALYSIS_H_
#define JSONSI_STATS_KEY_ANALYSIS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "types/type.h"

namespace jsonsi::stats {

/// Detection thresholds.
struct KeyAnalysisOptions {
  /// Minimum number of fields in a record before it is suspicious.
  size_t min_fields = 32;
  /// Minimum fraction of the record's fields whose types share the most
  /// common KIND SIGNATURE (the set of kinds in the field type's union —
  /// map entries are similar in shape, not structurally identical).
  double min_uniformity = 0.8;
  /// Minimum fraction of optional fields (map entries are almost never all
  /// present).
  double min_optional_fraction = 0.8;
};

/// One flagged position.
struct KeyAsDataFinding {
  /// Dotted path of the record position ("" = root, "claims", "a.b[]").
  std::string path;
  size_t field_count = 0;
  /// Fraction of fields whose type has the dominant kind signature.
  double uniformity = 0;
  double optional_fraction = 0;
  /// The dominant kind signature, e.g. "array" or "Num + Str".
  std::string dominant_kinds;
};

/// Scans `schema` for record positions that look like maps keyed by data.
/// Findings are ordered by field_count descending.
std::vector<KeyAsDataFinding> DetectKeyAsData(
    const types::TypeRef& schema, const KeyAnalysisOptions& options = {});

}  // namespace jsonsi::stats

#endif  // JSONSI_STATS_KEY_ANALYSIS_H_
