// Distinct-type counting and type-size statistics — the measurement layer
// behind Tables 2-5 of the paper (#types, min/max/avg inferred size, fused
// size).

#ifndef JSONSI_STATS_TYPE_STATS_H_
#define JSONSI_STATS_TYPE_STATS_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "types/type.h"

namespace jsonsi::stats {

/// A deduplicated set of types (structural equality, cached hashes).
class DistinctTypeSet {
 public:
  /// Inserts a type; returns true when it was new.
  bool Add(const types::TypeRef& t) { return set_.insert(t).second; }

  /// Merges another set into this one (for per-partition accumulation).
  void Merge(const DistinctTypeSet& other) {
    set_.insert(other.set_.begin(), other.set_.end());
  }

  size_t size() const { return set_.size(); }

  std::vector<types::TypeRef> ToVector() const {
    return {set_.begin(), set_.end()};
  }

 private:
  std::unordered_set<types::TypeRef, types::TypeRefHash, types::TypeRefEq>
      set_;
};

/// min / max / mean over the AST sizes of a set of types.
struct SizeStats {
  size_t count = 0;
  size_t min = 0;
  size_t max = 0;
  double avg = 0;
};

/// Computes size statistics over `ts` (count==0 gives all-zero stats).
SizeStats ComputeSizeStats(const std::vector<types::TypeRef>& ts);

/// The full row of Tables 2-5 for one (dataset, size) cell.
struct TableRow {
  size_t record_count = 0;
  size_t distinct_types = 0;
  SizeStats inferred;     // over the distinct inferred types
  size_t fused_size = 0;  // AST size of the fused type
};

}  // namespace jsonsi::stats

#endif  // JSONSI_STATS_TYPE_STATS_H_
