#include "stats/paths.h"

namespace jsonsi::stats {
namespace {

void CollectValuePaths(const json::Value& value, const std::string& prefix,
                       std::set<std::string>* out) {
  switch (value.kind()) {
    case json::ValueKind::kRecord:
      for (const json::Field& f : value.fields()) {
        std::string path = prefix.empty() ? f.key : prefix + "." + f.key;
        out->insert(path);
        CollectValuePaths(*f.value, path, out);
      }
      return;
    case json::ValueKind::kArray: {
      std::string path = prefix + "[]";
      if (!value.elements().empty()) out->insert(path);
      for (const json::ValueRef& e : value.elements()) {
        CollectValuePaths(*e, path, out);
      }
      return;
    }
    default:
      return;
  }
}

void CollectTypePaths(const types::Type& type, const std::string& prefix,
                      std::set<std::string>* out) {
  switch (type.node()) {
    case types::TypeNode::kRecord:
      for (const types::FieldType& f : type.fields()) {
        std::string path = prefix.empty() ? f.key : prefix + "." + f.key;
        out->insert(path);
        CollectTypePaths(*f.type, path, out);
      }
      return;
    case types::TypeNode::kArrayExact: {
      std::string path = prefix + "[]";
      if (!type.elements().empty()) out->insert(path);
      for (const types::TypeRef& e : type.elements()) {
        CollectTypePaths(*e, path, out);
      }
      return;
    }
    case types::TypeNode::kArrayStar: {
      if (!type.body()->is_empty()) {
        std::string path = prefix + "[]";
        out->insert(path);
        CollectTypePaths(*type.body(), path, out);
      }
      return;
    }
    case types::TypeNode::kUnion:
      for (const types::TypeRef& alt : type.alternatives()) {
        CollectTypePaths(*alt, prefix, out);
      }
      return;
    default:
      return;
  }
}

void CountValuePaths(const json::Value& value, const std::string& prefix,
                     std::set<std::string>* seen) {
  // Dedup within one value so a path is counted once per record.
  switch (value.kind()) {
    case json::ValueKind::kRecord:
      for (const json::Field& f : value.fields()) {
        std::string path = prefix.empty() ? f.key : prefix + "." + f.key;
        seen->insert(path);
        CountValuePaths(*f.value, path, seen);
      }
      return;
    case json::ValueKind::kArray: {
      std::string path = prefix + "[]";
      if (!value.elements().empty()) seen->insert(path);
      for (const json::ValueRef& e : value.elements()) {
        CountValuePaths(*e, path, seen);
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace

std::set<std::string> ValuePaths(const json::Value& value) {
  std::set<std::string> out;
  CollectValuePaths(value, "", &out);
  return out;
}

std::set<std::string> TypePaths(const types::Type& type) {
  std::set<std::string> out;
  CollectTypePaths(type, "", &out);
  return out;
}

void PathCounter::Add(const json::Value& value) {
  std::set<std::string> seen;
  CountValuePaths(value, "", &seen);
  for (const std::string& path : seen) ++counts_[path];
  ++total_;
}

double Coverage(const std::set<std::string>& required,
                const std::set<std::string>& provided) {
  if (required.empty()) return 1.0;
  size_t hit = 0;
  for (const std::string& path : required) {
    if (provided.count(path)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(required.size());
}

}  // namespace jsonsi::stats
