#include "types/explain.h"

#include "types/membership.h"
#include "types/printer.h"

namespace jsonsi::types {
namespace {

using json::Value;
using json::ValueKind;

const char* ValueKindLabel(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kNum:
      return "num";
    case ValueKind::kStr:
      return "str";
    case ValueKind::kRecord:
      return "record";
    case ValueKind::kArray:
      return "array";
  }
  return "?";
}

// Paper kind of a value (same numbering as types::Kind).
Kind ValueKindOf(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return Kind::kNull;
    case ValueKind::kBool:
      return Kind::kBool;
    case ValueKind::kNum:
      return Kind::kNum;
    case ValueKind::kStr:
      return Kind::kStr;
    case ValueKind::kRecord:
      return Kind::kRecord;
    case ValueKind::kArray:
      return Kind::kArray;
  }
  return Kind::kNull;
}

std::string Join(const std::string& prefix, const std::string& step) {
  return prefix.empty() ? step : prefix + "." + step;
}

std::optional<Mismatch> ExplainAt(const Value& value, const Type& type,
                                  const std::string& path);

std::optional<Mismatch> ExplainRecord(const Value& value, const Type& type,
                                      const std::string& path) {
  const auto& vfields = value.fields();
  const auto& tfields = type.fields();
  size_t vi = 0;
  size_t ti = 0;
  while (vi < vfields.size() && ti < tfields.size()) {
    int cmp = vfields[vi].key.compare(tfields[ti].key);
    if (cmp == 0) {
      if (auto m = ExplainAt(*vfields[vi].value, *tfields[ti].type,
                             Join(path, vfields[vi].key))) {
        return m;
      }
      ++vi;
      ++ti;
    } else if (cmp < 0) {
      return Mismatch{path, "unexpected field \"" + vfields[vi].key +
                                "\" (not declared by the schema)"};
    } else {
      if (!tfields[ti].optional) {
        return Mismatch{path,
                        "missing mandatory field \"" + tfields[ti].key + "\""};
      }
      ++ti;
    }
  }
  if (vi < vfields.size()) {
    return Mismatch{path, "unexpected field \"" + vfields[vi].key +
                              "\" (not declared by the schema)"};
  }
  for (; ti < tfields.size(); ++ti) {
    if (!tfields[ti].optional) {
      return Mismatch{path,
                      "missing mandatory field \"" + tfields[ti].key + "\""};
    }
  }
  return std::nullopt;
}

std::optional<Mismatch> ExplainAt(const Value& value, const Type& type,
                                  const std::string& path) {
  if (Matches(value, type)) return std::nullopt;
  switch (type.node()) {
    case TypeNode::kNull:
    case TypeNode::kBool:
    case TypeNode::kNum:
    case TypeNode::kStr:
      return Mismatch{path, std::string("expected ") + ToString(type) +
                                ", found " + ValueKindLabel(value.kind())};
    case TypeNode::kEmpty:
      return Mismatch{path, "no value can match the empty type"};
    case TypeNode::kRecord:
      if (!value.is_record()) {
        return Mismatch{path, std::string("expected a record, found ") +
                                  ValueKindLabel(value.kind())};
      }
      return ExplainRecord(value, type, path);
    case TypeNode::kArrayExact: {
      if (!value.is_array()) {
        return Mismatch{path, std::string("expected an array, found ") +
                                  ValueKindLabel(value.kind())};
      }
      const auto& elems = value.elements();
      const auto& types = type.elements();
      if (elems.size() != types.size()) {
        return Mismatch{path, "expected exactly " +
                                  std::to_string(types.size()) +
                                  " array elements, found " +
                                  std::to_string(elems.size())};
      }
      for (size_t i = 0; i < elems.size(); ++i) {
        if (auto m = ExplainAt(*elems[i], *types[i],
                               path + "[" + std::to_string(i) + "]")) {
          return m;
        }
      }
      return std::nullopt;  // unreachable: Matches was false
    }
    case TypeNode::kArrayStar: {
      if (!value.is_array()) {
        return Mismatch{path, std::string("expected an array, found ") +
                                  ValueKindLabel(value.kind())};
      }
      const auto& elems = value.elements();
      for (size_t i = 0; i < elems.size(); ++i) {
        if (auto m = ExplainAt(*elems[i], *type.body(),
                               path + "[" + std::to_string(i) + "]")) {
          return m;
        }
      }
      return std::nullopt;  // unreachable
    }
    case TypeNode::kUnion: {
      // Descend into the alternative of the value's kind when present —
      // that is where the informative mismatch lives.
      Kind vk = ValueKindOf(value);
      for (const TypeRef& alt : type.alternatives()) {
        if (alt->kind() == vk) return ExplainAt(value, *alt, path);
      }
      return Mismatch{path, std::string("expected ") + ToString(type) +
                                ", found " + ValueKindLabel(value.kind())};
    }
  }
  return Mismatch{path, "mismatch"};
}

}  // namespace

std::optional<Mismatch> Explain(const Value& value, const Type& type) {
  return ExplainAt(value, type, "");
}

}  // namespace jsonsi::types
