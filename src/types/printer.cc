#include "types/printer.h"

#include "support/string_util.h"

namespace jsonsi::types {
namespace {

bool IsPlainKey(std::string_view key) {
  if (key.empty()) return false;
  auto alpha = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  auto alnum = [&](char c) { return alpha(c) || (c >= '0' && c <= '9'); };
  if (!alpha(key[0])) return false;
  for (char c : key.substr(1)) {
    if (!alnum(c)) return false;
  }
  return true;
}

void AppendKey(std::string_view key, std::string* out) {
  if (IsPlainKey(key)) {
    *out += key;
  } else {
    out->push_back('"');
    AppendJsonEscaped(key, out);
    out->push_back('"');
  }
}

void AppendType(const Type& t, const PrintOptions& opts, int depth,
                std::string* out);

void AppendIndent(const PrintOptions& opts, int depth, std::string* out) {
  out->push_back('\n');
  out->append(static_cast<size_t>(depth) * opts.indent_width, ' ');
}

// Field types that are unions print parenthesized so the trailing '?' (an
// optional-field marker) cannot be misread as part of the union.
void AppendFieldType(const TypeRef& t, const PrintOptions& opts, int depth,
                     std::string* out) {
  if (t->is_union()) {
    out->push_back('(');
    AppendType(*t, opts, depth, out);
    out->push_back(')');
  } else {
    AppendType(*t, opts, depth, out);
  }
}

void AppendType(const Type& t, const PrintOptions& opts, int depth,
                std::string* out) {
  switch (t.node()) {
    case TypeNode::kNull:
      *out += "Null";
      return;
    case TypeNode::kBool:
      *out += "Bool";
      return;
    case TypeNode::kNum:
      *out += "Num";
      return;
    case TypeNode::kStr:
      *out += "Str";
      return;
    case TypeNode::kEmpty:
      *out += "Empty";
      return;
    case TypeNode::kRecord: {
      if (t.fields().empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const FieldType& f : t.fields()) {
        if (!first) *out += opts.multiline ? "," : ", ";
        first = false;
        if (opts.multiline) AppendIndent(opts, depth + 1, out);
        AppendKey(f.key, out);
        *out += ": ";
        AppendFieldType(f.type, opts, depth + 1, out);
        if (f.optional) out->push_back('?');
      }
      if (opts.multiline) AppendIndent(opts, depth, out);
      out->push_back('}');
      return;
    }
    case TypeNode::kArrayExact: {
      out->push_back('[');
      bool first = true;
      for (const TypeRef& e : t.elements()) {
        if (!first) *out += ", ";
        first = false;
        // Union elements need parens so ',' stays unambiguous to readers.
        if (e->is_union()) {
          out->push_back('(');
          AppendType(*e, opts, depth, out);
          out->push_back(')');
        } else {
          AppendType(*e, opts, depth, out);
        }
      }
      out->push_back(']');
      return;
    }
    case TypeNode::kArrayStar: {
      *out += "[(";
      AppendType(*t.body(), opts, depth, out);
      *out += ")*]";
      return;
    }
    case TypeNode::kUnion: {
      bool first = true;
      for (const TypeRef& alt : t.alternatives()) {
        if (!first) *out += " + ";
        first = false;
        AppendType(*alt, opts, depth, out);
      }
      return;
    }
  }
}

}  // namespace

std::string ToString(const Type& type, const PrintOptions& options) {
  std::string out;
  AppendType(type, options, 0, &out);
  return out;
}

}  // namespace jsonsi::types
