// Member sampling: generate random values belonging to [[T]].
//
// The inverse direction of membership — given a type, produce values inside
// its denotation. Used by the property suites to probe semantics-level
// claims from the other side (every sampled member of T must match any U
// with T <: U; exported JSON Schemas must accept sampled members), and handy
// for producing synthetic data conforming to an inferred schema.
//
// Sampling the empty type (or [Empty*] element positions) is impossible by
// construction; SampleMember returns nullptr for Empty and never enters an
// Empty star body (it emits the empty array instead).

#ifndef JSONSI_TYPES_SAMPLER_H_
#define JSONSI_TYPES_SAMPLER_H_

#include "json/value.h"
#include "support/rng.h"
#include "types/type.h"

namespace jsonsi::types {

/// Sampling knobs.
struct SampleOptions {
  /// Maximum elements drawn for a starred array position.
  size_t max_star_elements = 4;
  /// Probability that an optional field is present in a sampled record.
  double optional_presence = 0.5;
};

/// Draws one member of [[type]] (deterministic per RNG state). Returns
/// nullptr iff the type is Empty (which has no members).
json::ValueRef SampleMember(const Type& type, Rng& rng,
                            const SampleOptions& options = {});
inline json::ValueRef SampleMember(const TypeRef& type, Rng& rng,
                                   const SampleOptions& options = {}) {
  return SampleMember(*type, rng, options);
}

}  // namespace jsonsi::types

#endif  // JSONSI_TYPES_SAMPLER_H_
