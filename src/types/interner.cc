#include "types/interner.h"

#include "telemetry/telemetry.h"

namespace jsonsi::types {

namespace {

std::atomic<bool> g_interning_enabled{true};

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

bool InterningEnabled() {
  return g_interning_enabled.load(std::memory_order_relaxed);
}

void SetInterningEnabled(bool enabled) {
  g_interning_enabled.store(enabled, std::memory_order_relaxed);
}

TypeInterner::TypeInterner(const InternerOptions& options) : options_(options) {
  size_t shards = RoundUpPow2(options_.num_shards ? options_.num_shards : 1);
  shard_mask_ = shards - 1;
  per_shard_capacity_ =
      options_.capacity ? (options_.capacity + shards - 1) / shards : 1;
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  shards_ = std::vector<Shard>(shards);
}

TypeInterner& TypeInterner::Global() {
  static TypeInterner* instance = new TypeInterner();
  return *instance;
}

TypeRef TypeInterner::Intern(TypeRef t) {
  if (!t || t->size() > options_.max_type_size) {
    pass_through_.fetch_add(1, std::memory_order_relaxed);
    JSONSI_COUNTER("intern.pass_through").Increment();
    return t;
  }
  Shard& shard = ShardFor(t->hash());
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.set.find(t);
  if (it != shard.set.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    JSONSI_COUNTER("intern.hits").Increment();
    return *it;
  }
  if (shard.set.size() >= per_shard_capacity_) {
    // Hash-cons eviction is always safe: the displaced shape just loses its
    // shared representative; nodes stay alive through their own TypeRefs.
    shard.set.erase(shard.set.begin());
    evictions_.fetch_add(1, std::memory_order_relaxed);
    JSONSI_COUNTER("intern.evictions").Increment();
  }
  shard.set.insert(t);
  misses_.fetch_add(1, std::memory_order_relaxed);
  JSONSI_COUNTER("intern.misses").Increment();
  return t;
}

bool TypeInterner::Contains(const TypeRef& t) const {
  if (!t) return false;
  Shard& shard = ShardFor(t->hash());
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.set.find(t);
  return it != shard.set.end() && it->get() == t.get();
}

InternerStats TypeInterner::stats() const {
  InternerStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.pass_through = pass_through_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.size += shard.set.size();
  }
  return s;
}

void TypeInterner::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.set.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  pass_through_.store(0, std::memory_order_relaxed);
}

}  // namespace jsonsi::types
