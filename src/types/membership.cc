#include "types/membership.h"

namespace jsonsi::types {
namespace {

using json::Value;
using json::ValueKind;

bool MatchesRecord(const Value& value, const Type& type) {
  if (!value.is_record()) return false;
  // Both field lists are key-sorted; walk them in lockstep. Closed-record
  // semantics: value keys must be a subset of declared keys, and mandatory
  // declared keys must all be present.
  const auto& vfields = value.fields();
  const auto& tfields = type.fields();
  size_t vi = 0;
  size_t ti = 0;
  while (vi < vfields.size() && ti < tfields.size()) {
    int cmp = vfields[vi].key.compare(tfields[ti].key);
    if (cmp == 0) {
      if (!Matches(*vfields[vi].value, *tfields[ti].type)) return false;
      ++vi;
      ++ti;
    } else if (cmp < 0) {
      return false;  // value has a key the type does not declare
    } else {
      if (!tfields[ti].optional) return false;  // missing mandatory field
      ++ti;
    }
  }
  if (vi < vfields.size()) return false;  // leftover undeclared keys
  for (; ti < tfields.size(); ++ti) {
    if (!tfields[ti].optional) return false;
  }
  return true;
}

}  // namespace

bool Matches(const Value& value, const Type& type) {
  switch (type.node()) {
    case TypeNode::kNull:
      return value.is_null();
    case TypeNode::kBool:
      return value.is_bool();
    case TypeNode::kNum:
      return value.is_num();
    case TypeNode::kStr:
      return value.is_str();
    case TypeNode::kEmpty:
      return false;
    case TypeNode::kRecord:
      return MatchesRecord(value, type);
    case TypeNode::kArrayExact: {
      if (!value.is_array()) return false;
      const auto& elems = value.elements();
      const auto& types = type.elements();
      if (elems.size() != types.size()) return false;
      for (size_t i = 0; i < elems.size(); ++i) {
        if (!Matches(*elems[i], *types[i])) return false;
      }
      return true;
    }
    case TypeNode::kArrayStar: {
      if (!value.is_array()) return false;
      for (const json::ValueRef& e : value.elements()) {
        if (!Matches(*e, *type.body())) return false;
      }
      return true;
    }
    case TypeNode::kUnion: {
      for (const TypeRef& alt : type.alternatives()) {
        if (Matches(value, *alt)) return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace jsonsi::types
