#include "types/type_parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace jsonsi::types {
namespace {

class TypeParser {
 public:
  explicit TypeParser(std::string_view text) : text_(text) {}

  Result<TypeRef> Run() {
    Result<TypeRef> t = ParseUnion();
    if (!t.ok()) return t;
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing content");
    return t;
  }

 private:
  Status Error(std::string message) const {
    return Status::ParseError(message + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char PeekNonWs() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Result<TypeRef> ParseUnion() {
    std::vector<TypeRef> alts;
    Result<TypeRef> first = ParseSingle();
    if (!first.ok()) return first;
    alts.push_back(std::move(first).value());
    while (Consume('+')) {
      Result<TypeRef> next = ParseSingle();
      if (!next.ok()) return next;
      alts.push_back(std::move(next).value());
    }
    if (alts.size() == 1) return alts.front();
    return Type::Union(std::move(alts));
  }

  Result<TypeRef> ParseSingle() {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of type");
    char c = text_[pos_];
    if (c == '{') return ParseRecord();
    if (c == '[') return ParseArray();
    if (c == '(') {
      ++pos_;
      Result<TypeRef> inner = ParseUnion();
      if (!inner.ok()) return inner;
      if (!Consume(')')) return Error("expected ')'");
      return inner;
    }
    return ParseName();
  }

  Result<TypeRef> ParseName() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    std::string_view name = text_.substr(start, pos_ - start);
    if (name == "Null") return Type::Null();
    if (name == "Bool") return Type::Bool();
    if (name == "Num") return Type::Num();
    if (name == "Str") return Type::Str();
    if (name == "Empty") return Type::Empty();
    pos_ = start;
    return Error("expected a type");
  }

  Result<TypeRef> ParseRecord() {
    ++pos_;  // '{'
    std::vector<FieldType> fields;
    if (Consume('}')) return Type::RecordUnchecked({});
    while (true) {
      Result<std::string> key = ParseKey();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Error("expected ':' after field key");
      Result<TypeRef> type = ParseUnion();
      if (!type.ok()) return type;
      bool optional = Consume('?');
      fields.push_back(
          {std::move(key).value(), std::move(type).value(), optional});
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in record type");
    }
    Result<TypeRef> record = Type::Record(std::move(fields));
    if (!record.ok()) return Error(record.status().message());
    return record;
  }

  Result<std::string> ParseKey() {
    SkipWs();
    if (pos_ >= text_.size()) return Status(Error("expected field key"));
    if (text_[pos_] == '"') return ParseQuotedKey();
    size_t start = pos_;
    auto head = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    };
    auto tail = [&](char c) { return head(c) || (c >= '0' && c <= '9'); };
    if (!head(text_[pos_])) return Status(Error("expected field key"));
    ++pos_;
    while (pos_ < text_.size() && tail(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> ParseQuotedKey() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          default:
            return Status(Error("unsupported escape in quoted key"));
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Status(Error("unterminated quoted key"));
  }

  Result<TypeRef> ParseArray() {
    ++pos_;  // '['
    if (Consume(']')) return Type::ArrayExact({});
    // A leading '(' may open either a simplified array "[(T)*]" or a
    // parenthesized first element of an exact array "[(T + U), ...]".
    if (PeekNonWs() == '(') {
      size_t save = pos_;
      ++pos_;  // '('
      Result<TypeRef> inner = ParseUnion();
      if (!inner.ok()) return inner;
      if (!Consume(')')) return Error("expected ')'");
      if (Consume('*')) {
        if (!Consume(']')) return Error("expected ']' after '*'");
        return Type::ArrayStar(std::move(inner).value());
      }
      // Not a star: rewind and parse as a plain exact array. (Cheap — the
      // lookahead only re-parses the first element.)
      pos_ = save;
    }
    std::vector<TypeRef> elements;
    while (true) {
      Result<TypeRef> e = ParseUnion();
      if (!e.ok()) return e;
      elements.push_back(std::move(e).value());
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array type");
    }
    return Type::ArrayExact(std::move(elements));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<TypeRef> ParseType(std::string_view text) {
  return TypeParser(text).Run();
}

}  // namespace jsonsi::types
