// Hash-consing of type nodes.
//
// The Map phase emits the *same* handful of structural types millions of
// times on real datasets (GitHub events repeat a few dozen shapes; Twitter a
// few hundred), yet every `InferType` call allocates a fresh node tree and
// every equality test walks both trees. `TypeInterner` canonicalizes
// structurally equal types to one shared node: after interning, equality of
// interned types is a pointer compare (the `this == &other` fast path of
// `Type::Equals`), the fusion memo (fusion/fuse_cache.h) can key on node
// identity, and repeated shapes share one allocation instead of millions.
//
// Design constraints:
//   * Thread-safe and sharded: the table is consulted from every inference
//     worker concurrently, so it is split into shards (selected by high hash
//     bits) each guarded by its own mutex. Lookup cost is one cached-hash
//     probe; structural comparison runs only on hash collision.
//   * Bounded: datasets whose types are mostly *distinct* (Wikidata's
//     key-as-data records) would otherwise grow the table — and the lifetime
//     of every dead type — without bound. Each shard holds at most
//     capacity/num_shards entries; inserting into a full shard evicts an
//     arbitrary resident first (hash-cons eviction is always safe: an
//     evicted shape simply gets a new representative later, and previously
//     returned TypeRefs keep their nodes alive on their own).
//   * Size-capped entries: types whose AST size exceeds `max_type_size` are
//     passed through un-interned — giant one-off accumulators are poor
//     sharing candidates and would churn the table.
//   * Never wrong: Intern() returns a node structurally equal to its input
//     (possibly the input itself). All optimizations that build on interning
//     are validated by the differential suite in tests/interning_test.cc.
//
// The process-global toggle `SetInterningEnabled` is the escape hatch wired
// to `jsi --no-intern`; it also gates the fusion memo and the TreeFuser
// dedup layer (fusion/), so one switch restores the pre-interning pipeline.

#ifndef JSONSI_TYPES_INTERNER_H_
#define JSONSI_TYPES_INTERNER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "types/type.h"

namespace jsonsi::types {

/// Table shape knobs. Defaults suit the bench workloads; the CLI and tests
/// use the global instance with defaults.
struct InternerOptions {
  /// Number of independently locked shards; rounded up to a power of two.
  size_t num_shards = 16;
  /// Total resident entries across all shards.
  size_t capacity = 1 << 16;
  /// Types with size() above this are passed through un-interned.
  size_t max_type_size = 4096;
};

/// Point-in-time accounting; counters are cumulative since construction or
/// the last Clear().
struct InternerStats {
  uint64_t hits = 0;          // Intern() found an existing representative
  uint64_t misses = 0;        // Intern() inserted a new representative
  uint64_t evictions = 0;     // residents displaced by inserts into full shards
  uint64_t pass_through = 0;  // inputs skipped (too large or interning off)
  size_t size = 0;            // resident entries right now

  double HitRate() const {
    uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

/// Sharded hash-consing table. Thread-safe; see file comment.
class TypeInterner {
 public:
  explicit TypeInterner(const InternerOptions& options = {});

  /// The process-global instance used by inference and fusion.
  static TypeInterner& Global();

  /// Returns the canonical representative of `t`: an existing structurally
  /// equal resident when there is one, otherwise `t` itself (now resident).
  /// Null and over-size inputs pass through unchanged.
  TypeRef Intern(TypeRef t);

  /// True when `t` is the canonical resident for its shape right now.
  bool Contains(const TypeRef& t) const;

  InternerStats stats() const;

  /// Drops all residents and zeroes the counters. Outstanding TypeRefs
  /// remain valid (they own their nodes); only future sharing is reset.
  void Clear();

  const InternerOptions& options() const { return options_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<TypeRef, TypeRefHash, TypeRefEq> set;
  };

  Shard& ShardFor(uint64_t hash) const {
    // High bits pick the shard; low bits index buckets inside the shard's
    // set, so the two decisions stay independent.
    return shards_[(hash >> 48) & shard_mask_];
  }

  InternerOptions options_;
  size_t shard_mask_ = 0;
  size_t per_shard_capacity_ = 0;
  mutable std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> pass_through_{0};
};

/// Process-global switch for the whole interning/memoization stack (type
/// interning at inference, the fusion memo, TreeFuser dedup). Defaults to
/// enabled; `jsi --no-intern` and the differential tests turn it off.
bool InterningEnabled();
void SetInterningEnabled(bool enabled);

/// RAII toggle for tests and scoped comparisons; restores the previous
/// setting on destruction.
class ScopedInterning {
 public:
  explicit ScopedInterning(bool enabled) : previous_(InterningEnabled()) {
    SetInterningEnabled(enabled);
  }
  ~ScopedInterning() { SetInterningEnabled(previous_); }
  ScopedInterning(const ScopedInterning&) = delete;
  ScopedInterning& operator=(const ScopedInterning&) = delete;

 private:
  bool previous_;
};

}  // namespace jsonsi::types

#endif  // JSONSI_TYPES_INTERNER_H_
