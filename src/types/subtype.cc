#include "types/subtype.h"

namespace jsonsi::types {
namespace {

bool SubtypeRecord(const Type& a, const Type& b) {
  // Both field lists are key-sorted; walk in lockstep.
  const auto& fa = a.fields();
  const auto& fb = b.fields();
  size_t i = 0;
  size_t j = 0;
  while (i < fa.size() && j < fb.size()) {
    int cmp = fa[i].key.compare(fb[j].key);
    if (cmp == 0) {
      // Left-mandatory may become right-optional, not vice versa: if the
      // left field is optional, left admits records lacking it, so the
      // right must admit them too.
      if (fa[i].optional && !fb[j].optional) return false;
      if (!IsSubtypeOf(*fa[i].type, *fb[j].type)) return false;
      ++i;
      ++j;
    } else if (cmp < 0) {
      // Left-only field: closed right-hand records never admit this key.
      // Sound only if the left field can never occur — i.e. never, since
      // even optional fields occur in some member. (Unless the field type
      // is Empty, in which case an optional field can only be absent.)
      if (!(fa[i].optional && fa[i].type->is_empty())) return false;
      ++i;
    } else {
      if (!fb[j].optional) return false;  // right mandates a key left lacks
      ++j;
    }
  }
  for (; i < fa.size(); ++i) {
    if (!(fa[i].optional && fa[i].type->is_empty())) return false;
  }
  for (; j < fb.size(); ++j) {
    if (!fb[j].optional) return false;
  }
  return true;
}

bool SubtypeArray(const Type& a, const Type& b) {
  if (a.is_array_exact() && b.is_array_exact()) {
    const auto& ea = a.elements();
    const auto& eb = b.elements();
    if (ea.size() != eb.size()) return false;
    for (size_t i = 0; i < ea.size(); ++i) {
      if (!IsSubtypeOf(*ea[i], *eb[i])) return false;
    }
    return true;
  }
  if (a.is_array_exact() && b.is_array_star()) {
    for (const TypeRef& e : a.elements()) {
      if (!IsSubtypeOf(*e, *b.body())) return false;
    }
    return true;
  }
  if (a.is_array_star() && b.is_array_star()) {
    return a.body()->is_empty() || IsSubtypeOf(*a.body(), *b.body());
  }
  // star <: exact only when both denote exactly { [] }.
  return a.body()->is_empty() && b.elements().empty();
}

}  // namespace

bool IsSubtypeOf(const Type& a, const Type& b) {
  if (&a == &b || a.Equals(b)) return true;
  if (a.is_empty()) return true;
  if (a.is_union()) {
    // Every alternative must be included.
    for (const TypeRef& alt : a.alternatives()) {
      if (!IsSubtypeOf(*alt, b)) return false;
    }
    return true;
  }
  if (b.is_union()) {
    // Sufficient (and complete for normal b, which has at most one
    // alternative of a's kind): a must fit one alternative.
    for (const TypeRef& alt : b.alternatives()) {
      if (IsSubtypeOf(a, *alt)) return true;
    }
    return false;
  }
  if (b.is_empty()) return false;  // only Empty <: Empty (handled above)
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Kind::kNull:
    case Kind::kBool:
    case Kind::kNum:
    case Kind::kStr:
      return true;  // same basic kind, Equals already failed only on != shapes
    case Kind::kRecord:
      return SubtypeRecord(a, b);
    case Kind::kArray:
      return SubtypeArray(a, b);
  }
  return false;
}

}  // namespace jsonsi::types
