#include "types/type.h"

#include <algorithm>
#include <cassert>

#include "support/hash.h"

namespace jsonsi::types {
namespace {

constexpr uint64_t kNodeSeed[] = {
    0x428a2f98d728ae22ULL,  // kNull
    0x7137449123ef65cdULL,  // kBool
    0xb5c0fbcfec4d3b2fULL,  // kNum
    0xe9b5dba58189dbbcULL,  // kStr
    0x3956c25bf348b538ULL,  // kRecord
    0x59f111f1b605d019ULL,  // kArrayExact
    0x923f82a4af194f9bULL,  // kArrayStar
    0xab1c5ed5da6d8118ULL,  // kUnion
    0xd807aa98a3030242ULL,  // kEmpty
};

uint64_t SeedFor(TypeNode node) { return kNodeSeed[static_cast<size_t>(node)]; }

}  // namespace

// All factories are static members of Type, so they may construct nodes and
// fill the private state directly; no other code can.

namespace {
// Helper visible only here; takes the pieces and finishes a node. Defined as
// a lambda-style free function operating on a Type* via friend-less access is
// impossible, so each factory fills its own node inline.
}  // namespace

TypeRef Type::Null() {
  static const TypeRef t = [] {
    auto n = std::shared_ptr<Type>(new Type());
    n->node_ = TypeNode::kNull;
    n->hash_ = SeedFor(TypeNode::kNull);
    return n;
  }();
  return t;
}

TypeRef Type::Bool() {
  static const TypeRef t = [] {
    auto n = std::shared_ptr<Type>(new Type());
    n->node_ = TypeNode::kBool;
    n->hash_ = SeedFor(TypeNode::kBool);
    return n;
  }();
  return t;
}

TypeRef Type::Num() {
  static const TypeRef t = [] {
    auto n = std::shared_ptr<Type>(new Type());
    n->node_ = TypeNode::kNum;
    n->hash_ = SeedFor(TypeNode::kNum);
    return n;
  }();
  return t;
}

TypeRef Type::Str() {
  static const TypeRef t = [] {
    auto n = std::shared_ptr<Type>(new Type());
    n->node_ = TypeNode::kStr;
    n->hash_ = SeedFor(TypeNode::kStr);
    return n;
  }();
  return t;
}

TypeRef Type::Empty() {
  static const TypeRef t = [] {
    auto n = std::shared_ptr<Type>(new Type());
    n->node_ = TypeNode::kEmpty;
    n->hash_ = SeedFor(TypeNode::kEmpty);
    return n;
  }();
  return t;
}

TypeRef Type::Basic(Kind kind) {
  switch (kind) {
    case Kind::kNull:
      return Null();
    case Kind::kBool:
      return Bool();
    case Kind::kNum:
      return Num();
    case Kind::kStr:
      return Str();
    default:
      assert(false && "Basic() requires a basic kind");
      return Null();
  }
}

Result<TypeRef> Type::Record(std::vector<FieldType> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const FieldType& a, const FieldType& b) {
              return a.key < b.key;
            });
  for (size_t i = 1; i < fields.size(); ++i) {
    if (fields[i - 1].key == fields[i].key) {
      return Status::InvalidArgument("duplicate record-type key: \"" +
                                     fields[i].key + "\"");
    }
  }
  return RecordUnchecked(std::move(fields));
}

TypeRef Type::RecordUnchecked(std::vector<FieldType> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const FieldType& a, const FieldType& b) {
              return a.key < b.key;
            });
  return RecordFromSorted(std::move(fields));
}

TypeRef Type::RecordFromSorted(std::vector<FieldType> fields) {
#ifndef NDEBUG
  for (size_t i = 1; i < fields.size(); ++i) {
    assert(fields[i - 1].key < fields[i].key &&
           "fields must be key-sorted and unique");
  }
#endif
  auto n = std::shared_ptr<Type>(new Type());
  n->node_ = TypeNode::kRecord;
  uint64_t h = SeedFor(TypeNode::kRecord);
  size_t size = 1;
  for (const FieldType& f : fields) {
    h = HashCombine(h, HashBytes(f.key));
    h = HashCombine(h, f.type->hash());
    h = HashCombine(h, f.optional ? 0x3b9aca07ULL : 0x2545f491ULL);
    size += 1 + f.type->size();
  }
  n->hash_ = h;
  n->size_ = size;
  n->fields_ = std::move(fields);
  return n;
}

TypeRef Type::ArrayExact(std::vector<TypeRef> elements) {
  auto n = std::shared_ptr<Type>(new Type());
  n->node_ = TypeNode::kArrayExact;
  uint64_t h = SeedFor(TypeNode::kArrayExact);
  size_t size = 1;
  for (const TypeRef& e : elements) {
    h = HashCombine(h, e->hash());
    size += e->size();
  }
  n->hash_ = h;
  n->size_ = size;
  n->children_ = std::move(elements);
  return n;
}

TypeRef Type::ArrayStar(TypeRef body) {
  auto n = std::shared_ptr<Type>(new Type());
  n->node_ = TypeNode::kArrayStar;
  n->hash_ = HashCombine(SeedFor(TypeNode::kArrayStar), body->hash());
  n->size_ = 1 + body->size();
  n->children_.push_back(std::move(body));
  return n;
}

TypeRef Type::Union(std::vector<TypeRef> alternatives) {
  // Flatten nested unions and drop eps (o() semantics of Figure 5).
  std::vector<TypeRef> flat;
  flat.reserve(alternatives.size());
  for (TypeRef& alt : alternatives) {
    assert(alt != nullptr);
    if (alt->is_empty()) continue;
    if (alt->is_union()) {
      // Alternatives of a union node are already flat and canonical.
      for (const TypeRef& sub : alt->alternatives()) flat.push_back(sub);
    } else {
      flat.push_back(std::move(alt));
    }
  }
  std::sort(flat.begin(), flat.end(), [](const TypeRef& a, const TypeRef& b) {
    return Compare(*a, *b) < 0;
  });
  // Collapse exact duplicates: T + T = T (sound; keeps canonical forms small
  // even for hand-built non-normal unions).
  flat.erase(std::unique(flat.begin(), flat.end(),
                         [](const TypeRef& a, const TypeRef& b) {
                           return TypeEquals(a, b);
                         }),
             flat.end());
  if (flat.empty()) return Empty();
  if (flat.size() == 1) return flat.front();
  auto n = std::shared_ptr<Type>(new Type());
  n->node_ = TypeNode::kUnion;
  uint64_t h = SeedFor(TypeNode::kUnion);
  size_t size = 1;
  for (const TypeRef& alt : flat) {
    h = HashCombine(h, alt->hash());
    size += alt->size();
  }
  n->hash_ = h;
  n->size_ = size;
  n->children_ = std::move(flat);
  return n;
}

Kind Type::kind() const {
  switch (node_) {
    case TypeNode::kNull:
      return Kind::kNull;
    case TypeNode::kBool:
      return Kind::kBool;
    case TypeNode::kNum:
      return Kind::kNum;
    case TypeNode::kStr:
      return Kind::kStr;
    case TypeNode::kRecord:
      return Kind::kRecord;
    case TypeNode::kArrayExact:
    case TypeNode::kArrayStar:
      return Kind::kArray;
    case TypeNode::kUnion:
    case TypeNode::kEmpty:
      break;
  }
  assert(false && "kind() is undefined for union/empty types");
  return Kind::kNull;
}

const FieldType* Type::FindField(std::string_view key) const {
  assert(is_record());
  auto it = std::lower_bound(
      fields_.begin(), fields_.end(), key,
      [](const FieldType& f, std::string_view k) { return f.key < k; });
  if (it != fields_.end() && it->key == key) return &*it;
  return nullptr;
}

size_t Type::Depth() const {
  switch (node_) {
    case TypeNode::kNull:
    case TypeNode::kBool:
    case TypeNode::kNum:
    case TypeNode::kStr:
    case TypeNode::kEmpty:
      return 1;
    case TypeNode::kRecord: {
      size_t d = 0;
      for (const FieldType& f : fields_) d = std::max(d, f.type->Depth());
      return 1 + d;
    }
    case TypeNode::kArrayExact:
    case TypeNode::kArrayStar: {
      size_t d = 0;
      for (const TypeRef& c : children_) d = std::max(d, c->Depth());
      return 1 + d;
    }
    case TypeNode::kUnion: {
      // A union is not a structural level: its depth is its deepest addend.
      size_t d = 0;
      for (const TypeRef& c : children_) d = std::max(d, c->Depth());
      return d;
    }
  }
  return 1;
}

bool Type::Equals(const Type& other) const {
  if (this == &other) return true;
  if (node_ != other.node_ || hash_ != other.hash_ || size_ != other.size_) {
    return false;
  }
  switch (node_) {
    case TypeNode::kNull:
    case TypeNode::kBool:
    case TypeNode::kNum:
    case TypeNode::kStr:
    case TypeNode::kEmpty:
      return true;
    case TypeNode::kRecord: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); ++i) {
        const FieldType& a = fields_[i];
        const FieldType& b = other.fields_[i];
        if (a.optional != b.optional || a.key != b.key) return false;
        if (!a.type->Equals(*b.type)) return false;
      }
      return true;
    }
    case TypeNode::kArrayExact:
    case TypeNode::kArrayStar:
    case TypeNode::kUnion: {
      if (children_.size() != other.children_.size()) return false;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (!children_[i]->Equals(*other.children_[i])) return false;
      }
      return true;
    }
  }
  return false;
}

int Compare(const Type& a, const Type& b) {
  if (&a == &b) return 0;
  if (a.node() != b.node()) {
    return static_cast<int>(a.node()) < static_cast<int>(b.node()) ? -1 : 1;
  }
  switch (a.node()) {
    case TypeNode::kNull:
    case TypeNode::kBool:
    case TypeNode::kNum:
    case TypeNode::kStr:
    case TypeNode::kEmpty:
      return 0;
    case TypeNode::kRecord: {
      const auto& fa = a.fields();
      const auto& fb = b.fields();
      if (fa.size() != fb.size()) return fa.size() < fb.size() ? -1 : 1;
      for (size_t i = 0; i < fa.size(); ++i) {
        if (int c = fa[i].key.compare(fb[i].key); c != 0) return c < 0 ? -1 : 1;
        if (fa[i].optional != fb[i].optional) return fa[i].optional ? 1 : -1;
        if (int c = Compare(*fa[i].type, *fb[i].type); c != 0) return c;
      }
      return 0;
    }
    case TypeNode::kArrayExact:
    case TypeNode::kArrayStar:
    case TypeNode::kUnion: {
      // children_ holds elements / body / alternatives respectively; all
      // three compare element-wise.
      const Type* nodes[2] = {&a, &b};
      const std::vector<TypeRef>* cs[2];
      for (int i = 0; i < 2; ++i) {
        const Type& t = *nodes[i];
        cs[i] = t.is_array_exact()
                    ? &t.elements()
                    : (t.is_union() ? &t.alternatives() : nullptr);
      }
      if (a.is_array_star()) {
        return Compare(*a.body(), *b.body());
      }
      const auto& ca = *cs[0];
      const auto& cb = *cs[1];
      if (ca.size() != cb.size()) return ca.size() < cb.size() ? -1 : 1;
      for (size_t i = 0; i < ca.size(); ++i) {
        if (int c = Compare(*ca[i], *cb[i]); c != 0) return c;
      }
      return 0;
    }
  }
  return 0;
}

bool TypeEquals(const TypeRef& a, const TypeRef& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return a->Equals(*b);
}

namespace {

bool IsNormalImpl(const Type& t, bool star_body) {
  switch (t.node()) {
    case TypeNode::kNull:
    case TypeNode::kBool:
    case TypeNode::kNum:
    case TypeNode::kStr:
      return true;
    case TypeNode::kEmpty:
      // eps is legal only directly under a star ([eps*], the simplified form
      // of the empty array type).
      return star_body;
    case TypeNode::kRecord:
      for (const FieldType& f : t.fields()) {
        if (!IsNormalImpl(*f.type, /*star_body=*/false)) return false;
      }
      return true;
    case TypeNode::kArrayExact:
      for (const TypeRef& e : t.elements()) {
        if (!IsNormalImpl(*e, /*star_body=*/false)) return false;
      }
      return true;
    case TypeNode::kArrayStar:
      return IsNormalImpl(*t.body(), /*star_body=*/true);
    case TypeNode::kUnion: {
      bool seen[6] = {false, false, false, false, false, false};
      for (const TypeRef& alt : t.alternatives()) {
        // Canonical unions never nest unions or contain eps, so kind() is
        // well defined for every alternative.
        size_t k = static_cast<size_t>(alt->kind());
        if (seen[k]) return false;
        seen[k] = true;
        if (!IsNormalImpl(*alt, /*star_body=*/false)) return false;
      }
      return true;
    }
  }
  return true;
}

}  // namespace

bool IsNormal(const Type& t) { return IsNormalImpl(t, /*star_body=*/false); }

std::vector<TypeRef> Flatten(const TypeRef& t) {
  if (t->is_empty()) return {};
  if (t->is_union()) return t->alternatives();
  return {t};
}

}  // namespace jsonsi::types
