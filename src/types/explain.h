// Mismatch explanation: WHY does a value not belong to a type?
//
// `Matches` (membership.h) answers yes/no; validation workflows need the
// failing position. `Explain` returns the first (leftmost-deepest) point
// where the value falls outside the type's denotation, with a dotted path
// and a human-readable reason — what powers `jsi check`'s diagnostics.
//
// For union types the explanation descends into the alternative with the
// matching top-level kind when one exists (the informative branch); when no
// alternative has the value's kind the mismatch is reported at the union
// itself.

#ifndef JSONSI_TYPES_EXPLAIN_H_
#define JSONSI_TYPES_EXPLAIN_H_

#include <optional>
#include <string>

#include "json/value.h"
#include "types/type.h"

namespace jsonsi::types {

/// One explained mismatch.
struct Mismatch {
  /// Dotted path to the failing position ("" = the root value).
  std::string path;
  /// Human-readable reason, e.g. "expected Num + Str, found bool" or
  /// "missing mandatory field \"id\"".
  std::string reason;
};

/// Returns the first mismatch, or nullopt when `value` matches `type`.
/// Consistent with Matches: Explain(v, t).has_value() == !Matches(v, t).
std::optional<Mismatch> Explain(const json::Value& value, const Type& type);
inline std::optional<Mismatch> Explain(const json::ValueRef& value,
                                       const TypeRef& type) {
  return Explain(*value, *type);
}

}  // namespace jsonsi::types

#endif  // JSONSI_TYPES_EXPLAIN_H_
