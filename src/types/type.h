// The JSON type (schema) language of Figure 3 of the paper.
//
//   T   ::= BT | RT | AT | SAT | eps | T + T        top-level types
//   BT  ::= Null | Bool | Num | Str                 basic types
//   RT  ::= {l1 : T1 [?], ..., ln : Tn [?]}         record types
//   AT  ::= [T1, ..., Tn]                           (exact) array types
//   SAT ::= [T*]                                    simplified array types
//
// plus the paper's kind() partition (Section 5.2):
//
//   kind(Null)=0  kind(Bool)=1  kind(Num)=2  kind(Str)=3
//   kind(RT)=4    kind(AT)=kind(SAT)=5
//
// Types are immutable, shared via TypeRef, and canonicalized at construction:
//   * record fields are sorted by key (records are sets of fields),
//   * union alternatives are flattened (no nested unions), stripped of eps,
//     and sorted by the total structural order `Compare`,
// so that structural equality is plain member-wise comparison, and the
// commutativity/associativity theorems of Section 5.2 become literal `==`
// checks on the canonical forms.
//
// "Normal types" (the invariant all paper algorithms maintain) additionally
// have at most one alternative per kind in every union, and use eps only as
// the body of a simplified array type; `IsNormal` checks this.
//
// Every node caches a structural hash and its AST size (the paper's type-size
// metric, Section 6.2) at construction, so distinct-type counting and the
// size statistics of Tables 2-5 are cheap at dataset scale.

#ifndef JSONSI_TYPES_TYPE_H_
#define JSONSI_TYPES_TYPE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace jsonsi::types {

class Type;

/// Shared handle to an immutable type node.
using TypeRef = std::shared_ptr<const Type>;

/// The paper's kind() partition; defined for non-union, non-empty types.
enum class Kind : uint8_t {
  kNull = 0,
  kBool = 1,
  kNum = 2,
  kStr = 3,
  kRecord = 4,
  kArray = 5,  // covers both exact (AT) and simplified (SAT) array types
};

/// Concrete AST node shapes (finer than Kind: distinguishes AT from SAT and
/// includes the union and empty nodes).
enum class TypeNode : uint8_t {
  kNull,
  kBool,
  kNum,
  kStr,
  kRecord,
  kArrayExact,  // AT  = [T1, ..., Tn]
  kArrayStar,   // SAT = [T*]
  kUnion,       // T1 + ... + Tn (flattened, n >= 2)
  kEmpty,       // eps
};

/// One field of a record type: `key : type` or `key : type ?`.
struct FieldType {
  std::string key;
  TypeRef type;
  bool optional = false;
};

/// An immutable schema/type node.
class Type {
 public:
  // -- Factories (all results are canonical) ---------------------------------

  static TypeRef Null();
  static TypeRef Bool();
  static TypeRef Num();
  static TypeRef Str();
  /// The empty type eps (denotes no values; used as body of `[eps*]`).
  static TypeRef Empty();
  /// Basic type for a kind in {kNull..kStr}.
  static TypeRef Basic(Kind kind);

  /// Record type. Fields are sorted by key; duplicate keys are a checked
  /// error (record types inherit the well-formedness rule of records).
  static Result<TypeRef> Record(std::vector<FieldType> fields);
  /// Unchecked record factory for trusted call sites; asserts in debug.
  static TypeRef RecordUnchecked(std::vector<FieldType> fields);
  /// Fast path for producers whose fields are ALREADY key-sorted and unique
  /// (the fusion merge, inference over key-sorted values). Skips the sort —
  /// measurable at scale: fusing wide records (Wikidata's thousands of
  /// key-as-data fields) re-sorts the accumulator on every merge otherwise.
  /// Sortedness is asserted in debug builds.
  static TypeRef RecordFromSorted(std::vector<FieldType> fields);

  /// Exact array type [T1, ..., Tn] (produced by initial inference).
  static TypeRef ArrayExact(std::vector<TypeRef> elements);
  /// Simplified array type [T*] (produced by fusion/collapse).
  static TypeRef ArrayStar(TypeRef body);

  /// Union type, canonicalized: nested unions are flattened, eps alternatives
  /// dropped, alternatives sorted by Compare. Zero alternatives yield eps and
  /// one alternative yields that alternative itself, so the result is never a
  /// degenerate union node. Exact structural duplicates are collapsed
  /// (T + T = T); distinct same-kind alternatives are kept (the type is then
  /// non-normal, which IsNormal reports).
  static TypeRef Union(std::vector<TypeRef> alternatives);

  // -- Observers --------------------------------------------------------------

  TypeNode node() const { return node_; }
  bool is_basic() const { return node_ <= TypeNode::kStr; }
  bool is_record() const { return node_ == TypeNode::kRecord; }
  bool is_array_exact() const { return node_ == TypeNode::kArrayExact; }
  bool is_array_star() const { return node_ == TypeNode::kArrayStar; }
  bool is_array() const { return is_array_exact() || is_array_star(); }
  bool is_union() const { return node_ == TypeNode::kUnion; }
  bool is_empty() const { return node_ == TypeNode::kEmpty; }

  /// The paper's kind(). Requires a non-union, non-empty type.
  Kind kind() const;

  /// Requires is_record(). Key-sorted.
  const std::vector<FieldType>& fields() const { return fields_; }
  /// Requires is_array_exact().
  const std::vector<TypeRef>& elements() const { return children_; }
  /// Requires is_array_star().
  const TypeRef& body() const { return children_.front(); }
  /// Requires is_union(). Canonically sorted, size() >= 2.
  const std::vector<TypeRef>& alternatives() const { return children_; }

  /// Field lookup by key; nullptr when absent. Requires is_record().
  const FieldType* FindField(std::string_view key) const;

  /// Structural hash, cached. Equal types hash equally.
  uint64_t hash() const { return hash_; }

  /// AST size, the paper's succinctness metric (Tables 2-5). Counting rule:
  /// every type node is 1; each record field adds 1 (the field node) plus the
  /// size of its type (the `?` marker is free); exact arrays and unions add
  /// the sizes of their members; a star adds 1 plus its body.
  size_t size() const { return size_; }

  /// Maximum nesting depth: basic/eps = 1; records/arrays = 1 + max child.
  size_t Depth() const;

  /// Deep structural equality on canonical forms.
  bool Equals(const Type& other) const;

 private:
  Type() = default;

  TypeNode node_ = TypeNode::kNull;
  std::vector<FieldType> fields_;   // kRecord
  std::vector<TypeRef> children_;   // kArrayExact elements / kArrayStar body /
                                    // kUnion alternatives
  uint64_t hash_ = 0;
  size_t size_ = 1;
};

/// Total structural order on types; canonical and deterministic. Orders by
/// node shape first (Null < Bool < Num < Str < Record < ArrayExact <
/// ArrayStar < Union < Empty), then structurally. Returns <0, 0, >0.
int Compare(const Type& a, const Type& b);

/// Deep equality through refs (null-safe).
bool TypeEquals(const TypeRef& a, const TypeRef& b);

/// Whether `t` satisfies the normal-type invariant of Section 5.2: every
/// union has at most one alternative per kind (and no nested unions or eps —
/// guaranteed by construction), and eps occurs only as a star body.
bool IsNormal(const Type& t);
inline bool IsNormal(const TypeRef& t) { return IsNormal(*t); }

/// o(T) of Figure 5: flattens a type into its list of non-union addends
/// (eps -> empty list). Canonical order is preserved.
std::vector<TypeRef> Flatten(const TypeRef& t);

/// Hash/equality functors for unordered containers keyed on TypeRef.
struct TypeRefHash {
  size_t operator()(const TypeRef& t) const {
    return static_cast<size_t>(t->hash());
  }
};
struct TypeRefEq {
  bool operator()(const TypeRef& a, const TypeRef& b) const {
    return TypeEquals(a, b);
  }
};

}  // namespace jsonsi::types

#endif  // JSONSI_TYPES_TYPE_H_
