// Syntactic subtype checker for the paper's type language.
//
// Section 4 defines sub-typing semantically: T <: U iff [[T]] subset [[U]]
// (Definition 4.1), and the paper notes "We don't use any subtype checking
// algorithm in this work" — it only needs the notion to STATE correctness.
// This module provides the executable counterpart: a structural, sound
// checker (IsSubtypeOf(T, U) == true implies [[T]] subset [[U]]).
//
// The checker is deliberately conservative (it may answer false for some
// semantically valid inclusions involving exotic unions), but it is complete
// on the types the pipeline produces: for all inferred/fused T and U,
// IsSubtypeOf(T, Fuse(T, U)) holds — which upgrades Theorem 5.2 from the
// sampled-membership test to a whole-schema check in the test suite.
//
// Rules (closed-record semantics per Section 4):
//   Empty <: anything
//   B <: B                                      (same basic type)
//   T <: U1 + ... + Un  if T <: some Ui         (T non-union)
//   T1 + ... + Tn <: U  iff every Ti <: U
//   {..} <: {..}        if every field l:T[m] of the left has a counterpart
//                       l:U[n] on the right with T <: U, never weakening
//                       optional to mandatory; and every right-only field is
//                       optional
//   [T1..Tn] <: [U1..Un]  pointwise
//   [T1..Tn] <: [U*]      if every Ti <: U
//   [T*]     <: [U*]      if T <: U (or T = Empty)
//   [Empty*] <: []        (both denote exactly the empty array)

#ifndef JSONSI_TYPES_SUBTYPE_H_
#define JSONSI_TYPES_SUBTYPE_H_

#include "types/type.h"

namespace jsonsi::types {

/// Sound structural subtype test: true implies [[a]] subset [[b]].
bool IsSubtypeOf(const Type& a, const Type& b);
inline bool IsSubtypeOf(const TypeRef& a, const TypeRef& b) {
  return IsSubtypeOf(*a, *b);
}

}  // namespace jsonsi::types

#endif  // JSONSI_TYPES_SUBTYPE_H_
