#include "types/sampler.h"

#include <vector>

namespace jsonsi::types {

using json::Value;
using json::ValueRef;

ValueRef SampleMember(const Type& type, Rng& rng,
                      const SampleOptions& options) {
  switch (type.node()) {
    case TypeNode::kNull:
      return Value::Null();
    case TypeNode::kBool:
      return Value::Bool(rng.Chance(0.5));
    case TypeNode::kNum:
      return Value::Num(static_cast<double>(rng.Range(-1000000, 1000000)));
    case TypeNode::kStr:
      return Value::Str(rng.Ident(1 + rng.Below(8)));
    case TypeNode::kEmpty:
      return nullptr;  // [[Empty]] = {}
    case TypeNode::kRecord: {
      std::vector<json::Field> fields;
      for (const FieldType& f : type.fields()) {
        if (f.optional && !rng.Chance(options.optional_presence)) continue;
        ValueRef member = SampleMember(*f.type, rng, options);
        if (!member) {
          // A mandatory Empty-typed field would make the record type itself
          // uninhabited; an optional one can only be absent.
          if (!f.optional) return nullptr;
          continue;
        }
        fields.push_back({f.key, std::move(member)});
      }
      return Value::RecordUnchecked(std::move(fields));
    }
    case TypeNode::kArrayExact: {
      std::vector<ValueRef> elements;
      elements.reserve(type.elements().size());
      for (const TypeRef& e : type.elements()) {
        ValueRef member = SampleMember(*e, rng, options);
        if (!member) return nullptr;  // uninhabited element position
        elements.push_back(std::move(member));
      }
      return Value::Array(std::move(elements));
    }
    case TypeNode::kArrayStar: {
      if (type.body()->is_empty()) return Value::Array({});  // [[ [Empty*] ]]
      size_t n = rng.Below(options.max_star_elements + 1);
      std::vector<ValueRef> elements;
      elements.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        ValueRef member = SampleMember(*type.body(), rng, options);
        if (!member) return Value::Array({});  // body uninhabited: stay empty
        elements.push_back(std::move(member));
      }
      return Value::Array(std::move(elements));
    }
    case TypeNode::kUnion: {
      // Uniform over alternatives; retry others if the picked one is
      // uninhabited (cannot loop forever: alternatives are finitely many).
      const auto& alts = type.alternatives();
      size_t start = rng.Below(alts.size());
      for (size_t i = 0; i < alts.size(); ++i) {
        ValueRef member =
            SampleMember(*alts[(start + i) % alts.size()], rng, options);
        if (member) return member;
      }
      return nullptr;
    }
  }
  return nullptr;
}

}  // namespace jsonsi::types
