// Decidable membership test `V in [[T]]` implementing the type semantics of
// Section 4 of the paper.
//
// The paper states the correctness of inference (Lemma 5.1) and fusion
// (Theorem 5.2) in terms of the semantics function [[.]] and subtyping.
// [[T]] is an infinite set, so the library exposes the decidable membership
// predicate instead; the property-based test suites use it as the executable
// witness of both theorems (for all sampled V: V in [[Infer(V)]], and
// membership is preserved by Fuse).
//
// Semantics implemented (Figure 3's semantic equations):
//   * [[Null/Bool/Num/Str]]: values of that basic kind;
//   * record types are *closed*: a record matches iff every one of its fields
//     is declared with a matching type, and every mandatory declared field is
//     present;
//   * [[ [T1,...,Tn] ]]: arrays of exactly n elements, pointwise;
//   * [[ [T*] ]]: arrays of any length whose elements all belong to [[T]]
//     (so [[ [Empty*] ]] = { [] });
//   * [[T + U]] = [[T]] u [[U]];   [[Empty]] = {}.

#ifndef JSONSI_TYPES_MEMBERSHIP_H_
#define JSONSI_TYPES_MEMBERSHIP_H_

#include "json/value.h"
#include "types/type.h"

namespace jsonsi::types {

/// Returns true iff `value` belongs to the denotation of `type`.
bool Matches(const json::Value& value, const Type& type);
inline bool Matches(const json::ValueRef& value, const TypeRef& type) {
  return Matches(*value, *type);
}

}  // namespace jsonsi::types

#endif  // JSONSI_TYPES_MEMBERSHIP_H_
