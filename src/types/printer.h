// Human-readable rendering of types in the paper's notation:
//
//   Null  Bool  Num  Str                       basic types
//   {a: Num, b: (Str + Null), c: Str?}         record types ('?' = optional)
//   [Num, Str]                                 exact array types
//   [(Str + {E: Str})*]                        simplified array types
//   Num + Bool                                 union types
//   Empty                                      the empty type (eps)
//
// Round-trips with types::ParseType.

#ifndef JSONSI_TYPES_PRINTER_H_
#define JSONSI_TYPES_PRINTER_H_

#include <string>

#include "types/type.h"

namespace jsonsi::types {

/// Printer knobs.
struct PrintOptions {
  /// Pretty-print records across multiple indented lines.
  bool multiline = false;
  /// Indent width when multiline.
  int indent_width = 2;
};

/// Renders `type` in the paper's surface syntax.
std::string ToString(const Type& type, const PrintOptions& options = {});
inline std::string ToString(const TypeRef& type,
                            const PrintOptions& options = {}) {
  return ToString(*type, options);
}

}  // namespace jsonsi::types

#endif  // JSONSI_TYPES_PRINTER_H_
