// Parser for the type surface syntax emitted by types::ToString.
//
// Grammar (whitespace-insensitive):
//
//   Type    := Single ('+' Single)*
//   Single  := 'Null' | 'Bool' | 'Num' | 'Str' | 'Empty'
//            | Record | Array | '(' Type ')'
//   Record  := '{' [Field (',' Field)*] '}'
//   Field   := Key ':' Type ['?']
//   Key     := identifier | JSON string
//   Array   := '[' ']'                          empty exact array type
//            | '[' '(' Type ')' '*' ']'         simplified array type
//            | '[' Type (',' Type)* ']'         exact array type
//
// Used by tests (readable fixtures), the CLI (schema round-trips) and the
// incremental-inference example (persisted schemas).

#ifndef JSONSI_TYPES_TYPE_PARSER_H_
#define JSONSI_TYPES_TYPE_PARSER_H_

#include <string_view>

#include "support/status.h"
#include "types/type.h"

namespace jsonsi::types {

/// Parses a type expression; errors carry character offsets.
Result<TypeRef> ParseType(std::string_view text);

}  // namespace jsonsi::types

#endif  // JSONSI_TYPES_TYPE_PARSER_H_
