// Structural schema diffing — what changed between two inferred schemas?
//
// Motivation from the paper: Section 3 discusses Scherzinger et al. [21],
// whose NoSQL-evolution tracker "is currently limited to only detect
// mismatches between base types" and which "claim[s] that a wider knowledge
// of schema information is needed to enable the detection of other kinds of
// changes, like, for instance, the removal or renaming of attributes". The
// fused schemas of this library ARE that wider knowledge; this module
// derives the change report from them: field additions/removals, optionality
// changes, type-kind broadening/narrowing and array shape changes, at any
// nesting depth.
//
// Combined with incremental inference it yields a schema-drift monitor: keep
// the running schema, fuse each new batch, and diff consecutive versions
// (see repository/schema_repository.h and the schema_drift_monitor example).

#ifndef JSONSI_DIFF_SCHEMA_DIFF_H_
#define JSONSI_DIFF_SCHEMA_DIFF_H_

#include <string>
#include <vector>

#include "annotate/refine.h"
#include "types/type.h"

namespace jsonsi::diff {

/// The kinds of schema change the differ reports.
enum class ChangeKind {
  kFieldAdded,        // path exists only in the new schema
  kFieldRemoved,      // path exists only in the old schema
  kBecameOptional,    // mandatory -> optional
  kBecameMandatory,   // optional -> mandatory
  kKindsBroadened,    // position accepts new kinds (e.g. Num -> Num + Str)
  kKindsNarrowed,     // position lost kinds
  kArrayShapeChanged, // exact <-> starred array form
  // Refinement drift (annotated runs only): changes in the discriminated
  // tagged-union structure recovered by annotate/refine.h.
  kDiscriminatorAdded,    // position became a discriminated union
  kDiscriminatorRemoved,  // position no longer discriminates
  kDiscriminatorChanged,  // a different field discriminates now
  kVariantAdded,          // a new discriminator value group appeared
  kVariantRemoved,        // a discriminator value group disappeared
};

/// Stable lowercase name ("field-added", ...).
const char* ChangeKindName(ChangeKind kind);

/// One reported change, anchored at a dotted path ("user.tags[]").
struct SchemaChange {
  std::string path;
  ChangeKind kind;
  /// Human-readable detail, e.g. "Num -> Num + Str".
  std::string detail;
};

/// Computes the change list from `before` to `after`. Deterministic order:
/// paths lexicographically, then change kind.
std::vector<SchemaChange> DiffSchemas(const types::TypeRef& before,
                                      const types::TypeRef& after);

/// Computes refinement drift between two annotated runs (`jsi diff --data`):
/// discriminators appearing/disappearing/moving and variant groups added or
/// removed. Variants are identified by their discriminator value sets. Same
/// path conventions and ordering as DiffSchemas; concatenate and re-sort to
/// mix with structural changes (FormatChanges renders either).
std::vector<SchemaChange> DiffRefinements(
    const annotate::RefinementMap& before,
    const annotate::RefinementMap& after);

/// Renders the change list one line per change ("~ user.id: kinds broadened
/// (Num -> Num + Str)").
std::string FormatChanges(const std::vector<SchemaChange>& changes);

}  // namespace jsonsi::diff

#endif  // JSONSI_DIFF_SCHEMA_DIFF_H_
