#include "diff/schema_diff.h"

#include <algorithm>
#include <set>

#include "fusion/fuse.h"
#include "types/printer.h"

namespace jsonsi::diff {

using types::FieldType;
using types::Type;
using types::TypeRef;

namespace {

// The set of basic kinds plus record/array presence at one schema position.
struct KindSet {
  bool kinds[6] = {false, false, false, false, false, false};
  const Type* record = nullptr;
  const Type* array = nullptr;

  static KindSet Of(const TypeRef& t) {
    KindSet ks;
    for (const TypeRef& alt : types::Flatten(t)) {
      ks.kinds[static_cast<size_t>(alt->kind())] = true;
      if (alt->is_record()) ks.record = alt.get();
      if (alt->is_array()) ks.array = alt.get();
    }
    return ks;
  }

  std::string Names() const {
    static const char* kNames[6] = {"Null", "Bool",   "Num",
                                    "Str",  "record", "array"};
    std::string out;
    for (size_t k = 0; k < 6; ++k) {
      if (!kinds[k]) continue;
      if (!out.empty()) out += " + ";
      out += kNames[k];
    }
    return out.empty() ? "Empty" : out;
  }
};

struct Differ {
  std::vector<SchemaChange>* out;

  void Emit(const std::string& path, ChangeKind kind, std::string detail) {
    out->push_back({path.empty() ? "<root>" : path, kind, std::move(detail)});
  }

  void AddedSubtree(const TypeRef& t, const std::string& prefix) {
    KindSet ks = KindSet::Of(t);
    if (ks.record) {
      for (const FieldType& f : ks.record->fields()) {
        std::string path = prefix.empty() ? f.key : prefix + "." + f.key;
        Emit(path, ChangeKind::kFieldAdded,
             types::ToString(*f.type) + (f.optional ? "?" : ""));
        AddedSubtree(f.type, path);
      }
    }
    if (ks.array) ArraySubtree(*ks.array, prefix, /*added=*/true);
  }

  void RemovedSubtree(const TypeRef& t, const std::string& prefix) {
    KindSet ks = KindSet::Of(t);
    if (ks.record) {
      for (const FieldType& f : ks.record->fields()) {
        std::string path = prefix.empty() ? f.key : prefix + "." + f.key;
        Emit(path, ChangeKind::kFieldRemoved,
             types::ToString(*f.type) + (f.optional ? "?" : ""));
        RemovedSubtree(f.type, path);
      }
    }
    if (ks.array) ArraySubtree(*ks.array, prefix, /*added=*/false);
  }

  void ArraySubtree(const Type& array, const std::string& prefix, bool added) {
    TypeRef body = BodyOf(array);
    if (body->is_empty()) return;
    if (added) {
      AddedSubtree(body, prefix + "[]");
    } else {
      RemovedSubtree(body, prefix + "[]");
    }
  }

  // Pools an array alternative's element content into one body type for
  // position-insensitive comparison.
  static TypeRef BodyOf(const Type& array) {
    if (array.is_array_star()) return array.body();
    TypeRef acc = Type::Empty();
    for (const TypeRef& e : array.elements()) acc = fusion::Fuse(acc, e);
    return acc;
  }

  void Compare(const TypeRef& before, const TypeRef& after,
               const std::string& prefix) {
    if (before->Equals(*after)) return;
    KindSet kb = KindSet::Of(before);
    KindSet ka = KindSet::Of(after);
    bool broadened = false, narrowed = false;
    for (size_t k = 0; k < 6; ++k) {
      broadened |= !kb.kinds[k] && ka.kinds[k];
      narrowed |= kb.kinds[k] && !ka.kinds[k];
    }
    std::string transition = kb.Names() + " -> " + ka.Names();
    if (broadened) {
      Emit(prefix, ChangeKind::kKindsBroadened, transition);
    }
    if (narrowed) {
      Emit(prefix, ChangeKind::kKindsNarrowed, transition);
    }
    // Records: field-level diff when both sides have a record alternative.
    if (kb.record && ka.record) {
      CompareRecords(*kb.record, *ka.record, prefix);
    } else if (ka.record) {
      AddedSubtree(after, prefix);
    } else if (kb.record) {
      RemovedSubtree(before, prefix);
    }
    // Arrays: shape change plus content diff on pooled bodies.
    if (kb.array && ka.array) {
      if (kb.array->node() != ka.array->node()) {
        Emit(prefix + "[]", ChangeKind::kArrayShapeChanged,
             std::string(kb.array->is_array_exact() ? "exact" : "starred") +
                 " -> " +
                 (ka.array->is_array_exact() ? "exact" : "starred"));
      }
      Compare(BodyOf(*kb.array), BodyOf(*ka.array), prefix + "[]");
    }
  }

  void CompareRecords(const Type& before, const Type& after,
                      const std::string& prefix) {
    const auto& fb = before.fields();
    const auto& fa = after.fields();
    size_t i = 0;
    size_t j = 0;
    auto path_of = [&](const std::string& key) {
      return prefix.empty() ? key : prefix + "." + key;
    };
    while (i < fb.size() && j < fa.size()) {
      int cmp = fb[i].key.compare(fa[j].key);
      if (cmp == 0) {
        std::string path = path_of(fb[i].key);
        if (!fb[i].optional && fa[j].optional) {
          Emit(path, ChangeKind::kBecameOptional, "");
        } else if (fb[i].optional && !fa[j].optional) {
          Emit(path, ChangeKind::kBecameMandatory, "");
        }
        Compare(fb[i].type, fa[j].type, path);
        ++i;
        ++j;
      } else if (cmp < 0) {
        std::string path = path_of(fb[i].key);
        Emit(path, ChangeKind::kFieldRemoved,
             types::ToString(*fb[i].type) + (fb[i].optional ? "?" : ""));
        RemovedSubtree(fb[i].type, path);
        ++i;
      } else {
        std::string path = path_of(fa[j].key);
        Emit(path, ChangeKind::kFieldAdded,
             types::ToString(*fa[j].type) + (fa[j].optional ? "?" : ""));
        AddedSubtree(fa[j].type, path);
        ++j;
      }
    }
    for (; i < fb.size(); ++i) {
      std::string path = path_of(fb[i].key);
      Emit(path, ChangeKind::kFieldRemoved,
           types::ToString(*fb[i].type) + (fb[i].optional ? "?" : ""));
      RemovedSubtree(fb[i].type, path);
    }
    for (; j < fa.size(); ++j) {
      std::string path = path_of(fa[j].key);
      Emit(path, ChangeKind::kFieldAdded,
           types::ToString(*fa[j].type) + (fa[j].optional ? "?" : ""));
      AddedSubtree(fa[j].type, path);
    }
  }
};

}  // namespace

const char* ChangeKindName(ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kFieldAdded:
      return "field-added";
    case ChangeKind::kFieldRemoved:
      return "field-removed";
    case ChangeKind::kBecameOptional:
      return "became-optional";
    case ChangeKind::kBecameMandatory:
      return "became-mandatory";
    case ChangeKind::kKindsBroadened:
      return "kinds-broadened";
    case ChangeKind::kKindsNarrowed:
      return "kinds-narrowed";
    case ChangeKind::kArrayShapeChanged:
      return "array-shape-changed";
    case ChangeKind::kDiscriminatorAdded:
      return "discriminator-added";
    case ChangeKind::kDiscriminatorRemoved:
      return "discriminator-removed";
    case ChangeKind::kDiscriminatorChanged:
      return "discriminator-changed";
    case ChangeKind::kVariantAdded:
      return "variant-added";
    case ChangeKind::kVariantRemoved:
      return "variant-removed";
  }
  return "?";
}

std::vector<SchemaChange> DiffSchemas(const types::TypeRef& before,
                                      const types::TypeRef& after) {
  std::vector<SchemaChange> changes;
  Differ differ{&changes};
  differ.Compare(before, after, "");
  std::stable_sort(changes.begin(), changes.end(),
                   [](const SchemaChange& a, const SchemaChange& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return changes;
}

std::vector<SchemaChange> DiffRefinements(
    const annotate::RefinementMap& before,
    const annotate::RefinementMap& after) {
  // A variant is identified by its discriminator value set, rendered for
  // humans ("\"a\" | \"b\"").
  auto variant_label = [](const annotate::RefinedVariant& v) {
    std::string label;
    for (size_t i = 0; i < v.values.size(); ++i) {
      if (i) label += " | ";
      label += annotate::DecodeScalarDisplay(v.values[i]);
    }
    return label;
  };
  std::vector<SchemaChange> changes;
  auto emit = [&](const std::string& path, ChangeKind kind,
                  std::string detail) {
    changes.push_back(
        {path.empty() ? "<root>" : path, kind, std::move(detail)});
  };
  auto ib = before.begin();
  auto ia = after.begin();
  while (ib != before.end() || ia != after.end()) {
    int cmp = ib == before.end()   ? 1
              : ia == after.end() ? -1
                                  : ib->first.compare(ia->first);
    if (cmp < 0) {
      emit(ib->first, ChangeKind::kDiscriminatorRemoved,
           "\"" + ib->second.discriminator + "\"");
      ++ib;
      continue;
    }
    if (cmp > 0) {
      emit(ia->first, ChangeKind::kDiscriminatorAdded,
           "\"" + ia->second.discriminator + "\", " +
               std::to_string(ia->second.variants.size()) + " variants");
      ++ia;
      continue;
    }
    const annotate::Refinement& rb = ib->second;
    const annotate::Refinement& ra = ia->second;
    if (rb.discriminator != ra.discriminator) {
      emit(ib->first, ChangeKind::kDiscriminatorChanged,
           "\"" + rb.discriminator + "\" -> \"" + ra.discriminator + "\"");
    } else {
      // Same discriminator: compare variant groups by value set.
      std::set<std::string> vb, va;
      for (const annotate::RefinedVariant& v : rb.variants) {
        vb.insert(variant_label(v));
      }
      for (const annotate::RefinedVariant& v : ra.variants) {
        va.insert(variant_label(v));
      }
      for (const std::string& label : vb) {
        if (!va.count(label)) {
          emit(ib->first, ChangeKind::kVariantRemoved,
               rb.discriminator + " = " + label);
        }
      }
      for (const std::string& label : va) {
        if (!vb.count(label)) {
          emit(ia->first, ChangeKind::kVariantAdded,
               ra.discriminator + " = " + label);
        }
      }
    }
    ++ib;
    ++ia;
  }
  std::stable_sort(changes.begin(), changes.end(),
                   [](const SchemaChange& a, const SchemaChange& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return changes;
}

std::string FormatChanges(const std::vector<SchemaChange>& changes) {
  std::string out;
  for (const SchemaChange& c : changes) {
    switch (c.kind) {
      case ChangeKind::kFieldAdded:
      case ChangeKind::kDiscriminatorAdded:
      case ChangeKind::kVariantAdded:
        out += "+ ";
        break;
      case ChangeKind::kFieldRemoved:
      case ChangeKind::kDiscriminatorRemoved:
      case ChangeKind::kVariantRemoved:
        out += "- ";
        break;
      default:
        out += "~ ";
    }
    out += c.path;
    out += ": ";
    out += ChangeKindName(c.kind);
    if (!c.detail.empty()) {
      out += " (";
      out += c.detail;
      out += ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace jsonsi::diff
