// Tagged-union refinement from collected annotations.
//
// The paper's normal form fuses {type:"a", x:Num} and {type:"b", y:Str}
// into ONE record with every field optional — precise about labels, silent
// about which fields co-occur. Klessinger et al. (PAPERS.md) recover the
// co-occurrence structure when a discriminator field exists: a field,
// present in every variant, whose observed value sets partition the record
// shapes. The Annotation shape map carries exactly the evidence needed —
// per key-set signature, the complete value sample of every always-present
// scalar field — so refinement is a pure function of the annotation:
//
//   1. candidate discriminators = scalar fields present in every record of
//      every shape whose value samples are complete (not truncated);
//   2. group shapes that share any candidate value (union-find) — the
//      candidate partitions the position iff that leaves >= 2 groups;
//   3. the best candidate (most groups, then smallest name) becomes the
//      discriminator; each group becomes a variant with its value set,
//      record count, and per-key presence.
//
// Truncation makes the analysis conservative, never wrong: a truncated
// shape map or value sample disqualifies the position/candidate instead of
// risking a variant that silently excludes unseen records. Because the
// annotation is merge-order-independent, so is the refinement — serial and
// parallel runs produce identical RefinementMaps (asserted in
// tests/annotation_pipeline_test.cc).
//
// Consumers: `jsi infer --annotate` and `--stats` (report), the JSON Schema
// exporter (oneOf + const/enum encoding), and `jsi diff --data`
// (discriminator/variant drift).

#ifndef JSONSI_ANNOTATE_REFINE_H_
#define JSONSI_ANNOTATE_REFINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "annotate/annotation.h"

namespace jsonsi::annotate {

/// One alternative of a refined union: the discriminator values selecting
/// it, how many records it covers, and which keys those records carried.
struct RefinedVariant {
  /// Encoded discriminator values (sorted; decode with
  /// DecodeScalarDisplay/DecodeScalarValue).
  std::vector<std::string> values;
  uint64_t count = 0;
  /// key -> number of the variant's records carrying the key (== count
  /// means mandatory within the variant).
  std::map<std::string, uint64_t> key_presence;

  friend bool operator==(const RefinedVariant&,
                         const RefinedVariant&) = default;
};

/// A discriminated union detected at one record position.
struct Refinement {
  std::string discriminator;
  /// Sorted by first (smallest) discriminator value.
  std::vector<RefinedVariant> variants;

  friend bool operator==(const Refinement&, const Refinement&) = default;
};

/// Dotted schema path -> refinement. Paths follow diff/schema_diff.h
/// conventions: "" is the root, "a.b" nests fields, "[]" marks array
/// element positions ("items[]" is the body of field `items`).
using RefinementMap = std::map<std::string, Refinement>;

/// Detects every discriminated union in the annotation tree.
RefinementMap RefineTaggedUnions(const Annotation& root);

/// Multi-line report, deterministic ("<root>: discriminated by \"type\"
/// into 2 variants" plus one line per variant).
std::string FormatRefinements(const RefinementMap& refinements);

}  // namespace jsonsi::annotate

#endif  // JSONSI_ANNOTATE_REFINE_H_
