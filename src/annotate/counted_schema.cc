#include "annotate/counted_schema.h"

#include <vector>

#include "support/string_util.h"

namespace jsonsi::annotate {

using json::Value;
using json::ValueKind;
using types::FieldType;
using types::Type;
using types::TypeRef;

namespace {

void ObserveInto(ProfileNode* node, const Value& value, uint64_t ordinal) {
  switch (value.kind()) {
    case ValueKind::kNull:
      ++node->null_count;
      return;
    case ValueKind::kBool:
      ++node->bool_count;
      return;
    case ValueKind::kNum:
      ++node->num_count;
      node->num_stats.Observe(value.num_value());
      return;
    case ValueKind::kStr:
      ++node->str_count;
      node->str_len_stats.Observe(
          static_cast<double>(value.str_value().size()));
      return;
    case ValueKind::kRecord: {
      ++node->record_count;
      for (const json::Field& f : value.fields()) {
        ProfileNode::FieldProfile& fp = node->fields[f.key];
        if (!fp.node) {
          fp.node = std::make_unique<ProfileNode>();
          fp.first_seen = ordinal;
        }
        fp.first_seen = std::min(fp.first_seen, ordinal);
        ++fp.present_count;
        ObserveInto(fp.node.get(), *f.value, ordinal);
      }
      return;
    }
    case ValueKind::kArray: {
      ++node->array_count;
      node->array_len_stats.Observe(
          static_cast<double>(value.elements().size()));
      if (!node->array_body) {
        node->array_body = std::make_unique<ProfileNode>();
      }
      for (const json::ValueRef& e : value.elements()) {
        ObserveInto(node->array_body.get(), *e, ordinal);
      }
      return;
    }
  }
}

void MergeInto(ProfileNode* dst, const ProfileNode& src) {
  dst->null_count += src.null_count;
  dst->bool_count += src.bool_count;
  dst->num_count += src.num_count;
  dst->str_count += src.str_count;
  dst->record_count += src.record_count;
  dst->array_count += src.array_count;
  dst->num_stats.MergeFrom(src.num_stats);
  dst->str_len_stats.MergeFrom(src.str_len_stats);
  dst->array_len_stats.MergeFrom(src.array_len_stats);
  for (const auto& [key, sfp] : src.fields) {
    ProfileNode::FieldProfile& dfp = dst->fields[key];
    if (!dfp.node) {
      dfp.node = std::make_unique<ProfileNode>();
      dfp.first_seen = sfp.first_seen;
    }
    dfp.first_seen = std::min(dfp.first_seen, sfp.first_seen);
    dfp.present_count += sfp.present_count;
    MergeInto(dfp.node.get(), *sfp.node);
  }
  if (src.array_body) {
    if (!dst->array_body) dst->array_body = std::make_unique<ProfileNode>();
    MergeInto(dst->array_body.get(), *src.array_body);
  }
}

TypeRef ProjectType(const ProfileNode& node) {
  std::vector<TypeRef> alts;
  if (node.null_count) alts.push_back(Type::Null());
  if (node.bool_count) alts.push_back(Type::Bool());
  if (node.num_count) alts.push_back(Type::Num());
  if (node.str_count) alts.push_back(Type::Str());
  if (node.record_count) {
    std::vector<FieldType> fields;
    fields.reserve(node.fields.size());
    for (const auto& [key, fp] : node.fields) {
      fields.push_back({key, ProjectType(*fp.node),
                        fp.present_count < node.record_count});
    }
    // The map is key-sorted already.
    alts.push_back(Type::RecordFromSorted(std::move(fields)));
  }
  if (node.array_count) {
    TypeRef body = node.array_body && node.array_body->total()
                       ? ProjectType(*node.array_body)
                       : Type::Empty();
    alts.push_back(Type::ArrayStar(std::move(body)));
  }
  return Type::Union(std::move(alts));
}

std::string Range(const MinMax& mm) {
  if (!mm.seen) return "";
  return FormatJsonNumber(mm.min) + ".." + FormatJsonNumber(mm.max);
}

void Render(const ProfileNode& node, bool stats, int depth, std::string* out);

void RenderKind(const char* name, uint64_t count, uint64_t total,
                const std::string& range, bool stats, bool* first,
                std::string* out) {
  if (count == 0) return;
  if (!*first) *out += " + ";
  *first = false;
  *out += name;
  // Per-kind counts matter only when the position actually varies.
  // (Appended piecewise: operator+(const char*, std::string&&) trips the
  // GCC 12 -Wrestrict false positive, as in datagen.)
  out->push_back('[');
  *out += std::to_string(count);
  out->push_back(']');
  (void)total;
  if (stats && !range.empty()) {
    out->push_back('{');
    *out += range;
    out->push_back('}');
  }
}

void Render(const ProfileNode& node, bool stats, int depth,
            std::string* out) {
  bool first = true;
  RenderKind("Null", node.null_count, node.total(), "", stats, &first, out);
  RenderKind("Bool", node.bool_count, node.total(), "", stats, &first, out);
  RenderKind("Num", node.num_count, node.total(), Range(node.num_stats),
             stats, &first, out);
  RenderKind("Str", node.str_count, node.total(),
             stats ? "len " + Range(node.str_len_stats) : "", stats, &first,
             out);
  if (node.record_count) {
    if (!first) *out += " + ";
    first = false;
    *out += "{";
    bool first_field = true;
    for (const auto& [key, fp] : node.fields) {
      if (!first_field) *out += ", ";
      first_field = false;
      *out += key + ": ";
      Render(*fp.node, stats, depth + 1, out);
      if (fp.present_count < node.record_count) *out += "?";
      *out += " [" + std::to_string(fp.present_count) + "/" +
              std::to_string(node.record_count) + ", first@" +
              std::to_string(fp.first_seen) + "]";
    }
    *out += "}";
  }
  if (node.array_count) {
    if (!first) *out += " + ";
    first = false;
    *out += "[(";
    if (node.array_body && node.array_body->total()) {
      Render(*node.array_body, stats, depth + 1, out);
    } else {
      *out += "Empty";
    }
    *out += ")*]";
    if (stats) {
      *out += "{len " + Range(node.array_len_stats) + "}";
    }
  }
  if (first) *out += "Empty";  // nothing observed at this position
}

}  // namespace

SchemaProfiler::SchemaProfiler() : root_(std::make_unique<ProfileNode>()) {}
SchemaProfiler::~SchemaProfiler() = default;
SchemaProfiler::SchemaProfiler(SchemaProfiler&&) noexcept = default;
SchemaProfiler& SchemaProfiler::operator=(SchemaProfiler&&) noexcept = default;

void SchemaProfiler::Observe(const Value& value, uint64_t ordinal) {
  ObserveInto(root_.get(), value, ordinal);
  ++count_;
}

void SchemaProfiler::Merge(const SchemaProfiler& other) {
  MergeInto(root_.get(), *other.root_);
  count_ += other.count_;
}

TypeRef SchemaProfiler::ToType() const {
  if (count_ == 0) return Type::Empty();
  return ProjectType(*root_);
}

std::string SchemaProfiler::ToString(bool show_value_stats) const {
  std::string out;
  Render(*root_, show_value_stats, 0, &out);
  return out;
}

}  // namespace jsonsi::annotate
