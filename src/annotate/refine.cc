#include "annotate/refine.h"

#include <algorithm>
#include <numeric>
#include <string_view>
#include <utility>

#include "telemetry/telemetry.h"

namespace jsonsi::annotate {

namespace {

// Minimal union-find over shape indices (at most kShapeCap of them).
struct UnionFind {
  std::vector<size_t> parent;

  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void Union(size_t a, size_t b) { parent[Find(a)] = parent[Find(b)]; }
};

// Splits a shape signature (keys joined by '\x1f', trailing separator)
// back into its keys.
std::vector<std::string_view> SignatureKeys(std::string_view signature) {
  std::vector<std::string_view> keys;
  size_t pos = 0;
  while (pos < signature.size()) {
    size_t sep = signature.find('\x1f', pos);
    if (sep == std::string_view::npos) break;  // malformed; ignore tail
    keys.push_back(signature.substr(pos, sep - pos));
    pos = sep + 1;
  }
  return keys;
}

// How many disjoint groups `key`'s value sets split the shapes into
// (0 = not a valid discriminator).
size_t GroupCount(const std::vector<const ShapeInfo*>& shapes,
                  const std::string& key, UnionFind* uf) {
  std::map<std::string_view, size_t> owner;
  for (size_t i = 0; i < shapes.size(); ++i) {
    auto it = shapes[i]->field_values.find(key);
    if (it == shapes[i]->field_values.end()) return 0;
    const DistinctSample& sample = it->second;
    // The field must be a scalar in every record of the shape, with a
    // complete value set — otherwise an unseen value could select the
    // wrong variant.
    if (sample.truncated || sample.observations != shapes[i]->count) {
      return 0;
    }
    for (const std::string& v : sample.values) {
      auto [slot, inserted] = owner.emplace(v, i);
      if (!inserted) uf->Union(i, slot->second);
    }
  }
  size_t groups = 0;
  for (size_t i = 0; i < shapes.size(); ++i) {
    if (uf->Find(i) == i) ++groups;
  }
  return groups;
}

void RefineNode(const std::string& path, const Annotation& node,
                RefinementMap* out) {
  // Refinement needs the COMPLETE shape census: a truncated map could hide
  // a shape the discriminator does not cover.
  if (node.shapes.size() >= 2 && !node.shapes_truncated) {
    std::vector<std::string_view> signatures;
    std::vector<const ShapeInfo*> shapes;
    signatures.reserve(node.shapes.size());
    shapes.reserve(node.shapes.size());
    for (const auto& [signature, info] : node.shapes) {
      signatures.push_back(signature);
      shapes.push_back(&info);
    }
    // Candidate discriminators come from the first shape's sampled scalar
    // fields; GroupCount re-checks presence and completeness per shape.
    std::string best_key;
    size_t best_groups = 0;
    UnionFind best_uf(0);
    for (const auto& [key, sample] : shapes[0]->field_values) {
      UnionFind uf(shapes.size());
      size_t groups = GroupCount(shapes, key, &uf);
      if (groups >= 2 && (groups > best_groups ||
                          (groups == best_groups && key < best_key))) {
        best_key = key;
        best_groups = groups;
        best_uf = std::move(uf);
      }
    }
    if (best_groups >= 2) {
      std::map<size_t, RefinedVariant> groups;  // root index -> variant
      for (size_t i = 0; i < shapes.size(); ++i) {
        RefinedVariant& variant = groups[best_uf.Find(i)];
        variant.count += shapes[i]->count;
        // Plain set union, NOT DistinctSample::MergeFrom: each shape's
        // sample is complete, and the variant's value set must stay
        // complete even when the union outgrows the sample cap.
        const std::vector<std::string>& sample_values =
            shapes[i]->field_values.at(best_key).values;
        std::vector<std::string> merged;
        merged.reserve(variant.values.size() + sample_values.size());
        std::set_union(variant.values.begin(), variant.values.end(),
                       sample_values.begin(), sample_values.end(),
                       std::back_inserter(merged));
        variant.values = std::move(merged);
        for (std::string_view key : SignatureKeys(signatures[i])) {
          variant.key_presence[std::string(key)] += shapes[i]->count;
        }
      }
      Refinement refinement;
      refinement.discriminator = best_key;
      refinement.variants.reserve(groups.size());
      for (auto& [root, variant] : groups) {
        refinement.variants.push_back(std::move(variant));
      }
      std::sort(refinement.variants.begin(), refinement.variants.end(),
                [](const RefinedVariant& a, const RefinedVariant& b) {
                  return a.values < b.values;
                });
      (*out)[path] = std::move(refinement);
    }
  }
  for (const auto& [key, info] : node.fields) {
    if (!info.node) continue;
    RefineNode(path.empty() ? key : path + "." + key, *info.node, out);
  }
  if (node.items) RefineNode(path + "[]", *node.items, out);
}

}  // namespace

RefinementMap RefineTaggedUnions(const Annotation& root) {
  RefinementMap out;
  RefineNode("", root, &out);
  if (telemetry::Enabled() && !out.empty()) {
    JSONSI_COUNTER("annotate.refined_unions").Add(out.size());
  }
  return out;
}

std::string FormatRefinements(const RefinementMap& refinements) {
  std::string out;
  for (const auto& [path, refinement] : refinements) {
    out += path.empty() ? "<root>" : path;
    out += ": discriminated by \"" + refinement.discriminator + "\" into " +
           std::to_string(refinement.variants.size()) + " variants\n";
    for (const RefinedVariant& variant : refinement.variants) {
      out += "  " + refinement.discriminator + " = ";
      for (size_t i = 0; i < variant.values.size(); ++i) {
        if (i) out += " | ";
        out += DecodeScalarDisplay(variant.values[i]);
      }
      out += ": " + std::to_string(variant.count) + " record" +
             (variant.count == 1 ? "" : "s") + ", fields {";
      bool first = true;
      for (const auto& [key, present] : variant.key_presence) {
        if (!first) out += ", ";
        first = false;
        out += key;
        if (present < variant.count) out += "?";
      }
      out += "}\n";
    }
  }
  return out;
}

}  // namespace jsonsi::annotate
