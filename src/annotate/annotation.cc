#include "annotate/annotation.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <system_error>

#include "support/hash.h"

namespace jsonsi::annotate {

using json::Value;
using json::ValueKind;
using json::ValueRef;

// -- Scalar encodings -------------------------------------------------------

std::string EncodeNull() { return "z"; }

std::string EncodeBool(bool b) { return b ? "b1" : "b0"; }

std::string EncodeNum(double n) {
  // Shortest round-trip form, the same on every path because every path
  // parses numbers through the same std::from_chars scan.
  if (n == 0) n = 0.0;  // one encoding for -0.0/0.0, matching MinMax
  char buf[32];
  std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), n);
  std::string out = "n";
  out.append(buf, r.ptr);
  return out;
}

std::string EncodeStr(std::string_view unescaped) {
  std::string out = "s";
  out.append(unescaped);
  return out;
}

std::string DecodeScalarDisplay(const std::string& encoded) {
  if (encoded.empty()) return "?";
  switch (encoded.front()) {
    case 'z':
      return "null";
    case 'b':
      return encoded == "b1" ? "true" : "false";
    case 'n':
      return encoded.substr(1);
    case 's': {
      std::string out = "\"";
      out.append(encoded, 1, std::string::npos);
      out.push_back('"');
      return out;
    }
    default:
      return "?";
  }
}

json::ValueRef DecodeScalarValue(const std::string& encoded) {
  if (encoded.empty()) return Value::Null();
  switch (encoded.front()) {
    case 'z':
      return Value::Null();
    case 'b':
      return Value::Bool(encoded == "b1");
    case 'n': {
      double d = 0;
      std::from_chars(encoded.data() + 1, encoded.data() + encoded.size(), d);
      return Value::Num(d);
    }
    case 's':
      return Value::Str(encoded.substr(1));
    default:
      return Value::Null();
  }
}

// -- MinMax -----------------------------------------------------------------

void MinMax::Observe(double v) {
  if (v == 0) v = 0.0;  // canonicalize -0.0 so merge order cannot show
  if (!seen) {
    seen = true;
    min = max = v;
    return;
  }
  min = std::min(min, v);
  max = std::max(max, v);
}

void MinMax::MergeFrom(const MinMax& other) {
  if (!other.seen) return;
  if (!seen) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

bool MinMax::Equals(const MinMax& other) const {
  if (seen != other.seen) return false;
  return !seen || (min == other.min && max == other.max);
}

void MinMaxU64::Observe(uint64_t v) {
  if (!seen) {
    seen = true;
    min = max = v;
    return;
  }
  min = std::min(min, v);
  max = std::max(max, v);
}

void MinMaxU64::MergeFrom(const MinMaxU64& other) {
  if (!other.seen) return;
  if (!seen) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

bool MinMaxU64::Equals(const MinMaxU64& other) const {
  if (seen != other.seen) return false;
  return !seen || (min == other.min && max == other.max);
}

// -- DistinctSample ---------------------------------------------------------

void DistinctSample::Observe(std::string_view encoded) {
  ++observations;
  if (encoded.size() > kMaxSampledScalarBytes) {
    // Counted, sketched by the caller, but not kept: the predicate depends
    // only on the value, so every merge order drops exactly the same
    // values and sets the same flag.
    truncated = true;
    return;
  }
  auto it = std::lower_bound(values.begin(), values.end(), encoded);
  if (it != values.end() && *it == encoded) return;
  if (values.size() >= kDistinctSampleCap) {
    truncated = true;
    if (it == values.end()) return;  // larger than everything kept
    values.insert(it, std::string(encoded));
    values.pop_back();
    return;
  }
  values.insert(it, std::string(encoded));
}

void DistinctSample::MergeFrom(const DistinctSample& other) {
  observations += other.observations;
  truncated = truncated || other.truncated;
  if (other.values.empty()) return;
  std::vector<std::string> merged;
  merged.reserve(values.size() + other.values.size());
  std::set_union(values.begin(), values.end(), other.values.begin(),
                 other.values.end(), std::back_inserter(merged));
  if (merged.size() > kDistinctSampleCap) {
    merged.resize(kDistinctSampleCap);
    truncated = true;
  }
  values = std::move(merged);
}

bool DistinctSample::Equals(const DistinctSample& other) const {
  return observations == other.observations && truncated == other.truncated &&
         values == other.values;
}

// -- DistinctSketch ---------------------------------------------------------

void DistinctSketch::Observe(std::string_view encoded) {
  uint64_t h = HashBytes(encoded);
  size_t idx = static_cast<size_t>(h & (kSketchRegisters - 1));
  uint64_t w = h >> 8;  // 56 payload bits
  uint8_t rank =
      w == 0 ? 57 : static_cast<uint8_t>(std::countl_zero(w) - 8 + 1);
  registers[idx] = std::max(registers[idx], rank);
}

void DistinctSketch::MergeFrom(const DistinctSketch& other) {
  for (size_t i = 0; i < kSketchRegisters; ++i) {
    registers[i] = std::max(registers[i], other.registers[i]);
  }
}

double DistinctSketch::Estimate() const {
  constexpr double m = static_cast<double>(kSketchRegisters);
  constexpr double alpha = 0.7213 / (1.0 + 1.079 / m);
  double sum = 0;
  size_t zeros = 0;
  for (uint8_t r : registers) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Linear-counting correction for the small-cardinality regime.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

bool DistinctSketch::Equals(const DistinctSketch& other) const {
  return registers == other.registers;
}

// -- ShapeInfo --------------------------------------------------------------

void ShapeInfo::ObserveField(const std::string& key,
                             std::string_view encoded) {
  auto it = field_values.find(key);
  if (it == field_values.end()) {
    if (field_values.size() >= kShapeFieldCap) {
      auto last = std::prev(field_values.end());
      fields_truncated = true;
      if (key > last->first) return;  // beyond the kept bottom-K of keys
      field_values.erase(last);
    }
    it = field_values.emplace(key, DistinctSample{}).first;
  }
  it->second.Observe(encoded);
}

void ShapeInfo::MergeFrom(const ShapeInfo& other) {
  count += other.count;
  fields_truncated = fields_truncated || other.fields_truncated;
  for (const auto& [key, sample] : other.field_values) {
    field_values[key].MergeFrom(sample);
  }
  while (field_values.size() > kShapeFieldCap) {
    field_values.erase(std::prev(field_values.end()));
    fields_truncated = true;
  }
}

bool ShapeInfo::Equals(const ShapeInfo& other) const {
  if (count != other.count || fields_truncated != other.fields_truncated ||
      field_values.size() != other.field_values.size()) {
    return false;
  }
  auto it = other.field_values.begin();
  for (const auto& [key, sample] : field_values) {
    if (key != it->first || !sample.Equals(it->second)) return false;
    ++it;
  }
  return true;
}

// -- Annotation -------------------------------------------------------------

void Annotation::ObserveScalar(std::string_view encoded) {
  sample.Observe(encoded);
  sketch.Observe(encoded);
}

void Annotation::ObserveNull() {
  ++count;
  ++null_count;
  ObserveScalar(EncodeNull());
}

void Annotation::ObserveBool(bool b) {
  ++count;
  ++bool_count;
  if (b) ++true_count;
  ObserveScalar(EncodeBool(b));
}

void Annotation::ObserveNum(double n) {
  ++count;
  ++num_count;
  num_range.Observe(n);
  ObserveScalar(EncodeNum(n));
}

void Annotation::ObserveStr(std::string_view unescaped) {
  ++count;
  ++str_count;
  str_len.Observe(unescaped.size());
  ObserveScalar(EncodeStr(unescaped));
}

void Annotation::ObserveRecordOpen() {
  ++count;
  ++record_count;
}

void Annotation::ObserveArray(uint64_t length) {
  ++count;
  ++array_count;
  array_len.Observe(length);
}

Annotation* Annotation::ObserveFieldEntry(std::string_view key) {
  auto it = fields.find(key);
  if (it == fields.end()) {
    it = fields.emplace(std::string(key), FieldInfo{}).first;
    it->second.node = std::make_unique<Annotation>();
  }
  ++it->second.present;
  return it->second.node.get();
}

Annotation* Annotation::ItemsEntry() {
  if (!items) items = std::make_unique<Annotation>();
  return items.get();
}

void Annotation::ObserveShape(
    const std::string& signature,
    const std::vector<std::pair<std::string, std::string>>& scalar_fields) {
  auto it = shapes.find(signature);
  if (it == shapes.end()) {
    if (shapes.size() >= kShapeCap) {
      auto last = std::prev(shapes.end());
      shapes_truncated = true;
      if (signature > last->first) return;
      shapes.erase(last);
    }
    it = shapes.emplace(signature, ShapeInfo{}).first;
  }
  ShapeInfo& info = it->second;
  ++info.count;
  for (const auto& [key, encoded] : scalar_fields) {
    info.ObserveField(key, encoded);
  }
}

void Annotation::MergeFrom(const Annotation& other) {
  count += other.count;
  null_count += other.null_count;
  bool_count += other.bool_count;
  true_count += other.true_count;
  num_count += other.num_count;
  str_count += other.str_count;
  record_count += other.record_count;
  array_count += other.array_count;
  num_range.MergeFrom(other.num_range);
  str_len.MergeFrom(other.str_len);
  array_len.MergeFrom(other.array_len);
  sample.MergeFrom(other.sample);
  sketch.MergeFrom(other.sketch);
  for (const auto& [key, info] : other.fields) {
    auto it = fields.find(key);
    if (it == fields.end()) it = fields.emplace(key, FieldInfo{}).first;
    it->second.present += info.present;
    if (info.node) {
      if (!it->second.node) it->second.node = std::make_unique<Annotation>();
      it->second.node->MergeFrom(*info.node);
    }
  }
  if (other.items) ItemsEntry()->MergeFrom(*other.items);
  shapes_truncated = shapes_truncated || other.shapes_truncated;
  for (const auto& [signature, info] : other.shapes) {
    shapes[signature].MergeFrom(info);
  }
  while (shapes.size() > kShapeCap) {
    shapes.erase(std::prev(shapes.end()));
    shapes_truncated = true;
  }
}

namespace {

bool NodePtrEquals(const Annotation* a, const Annotation* b) {
  if (a == b) return true;  // both absent (or literally the same node)
  static const Annotation kIdentity;
  return (a ? *a : kIdentity).Equals(b ? *b : kIdentity);
}

}  // namespace

bool Annotation::Equals(const Annotation& other) const {
  if (count != other.count || null_count != other.null_count ||
      bool_count != other.bool_count || true_count != other.true_count ||
      num_count != other.num_count || str_count != other.str_count ||
      record_count != other.record_count ||
      array_count != other.array_count) {
    return false;
  }
  if (!num_range.Equals(other.num_range) || !str_len.Equals(other.str_len) ||
      !array_len.Equals(other.array_len) || !sample.Equals(other.sample) ||
      !sketch.Equals(other.sketch)) {
    return false;
  }
  if (fields.size() != other.fields.size()) return false;
  {
    auto it = other.fields.begin();
    for (const auto& [key, info] : fields) {
      if (key != it->first || info.present != it->second.present ||
          !NodePtrEquals(info.node.get(), it->second.node.get())) {
        return false;
      }
      ++it;
    }
  }
  if (!NodePtrEquals(items.get(), other.items.get())) return false;
  if (shapes_truncated != other.shapes_truncated ||
      shapes.size() != other.shapes.size()) {
    return false;
  }
  auto it = other.shapes.begin();
  for (const auto& [signature, info] : shapes) {
    if (signature != it->first || !info.Equals(it->second)) return false;
    ++it;
  }
  return true;
}

Annotation Annotation::Clone() const {
  Annotation out;
  out.MergeFrom(*this);
  return out;
}

uint64_t Annotation::TreeNodes() const {
  uint64_t n = 1;
  for (const auto& [key, info] : fields) {
    if (info.node) n += info.node->TreeNodes();
  }
  if (items) n += items->TreeNodes();
  return n;
}

// -- DOM collection ---------------------------------------------------------

void ObserveValue(const Value& value, Annotation* node) {
  switch (value.kind()) {
    case ValueKind::kNull:
      node->ObserveNull();
      return;
    case ValueKind::kBool:
      node->ObserveBool(value.bool_value());
      return;
    case ValueKind::kNum:
      node->ObserveNum(value.num_value());
      return;
    case ValueKind::kStr:
      node->ObserveStr(value.str_value());
      return;
    case ValueKind::kRecord: {
      node->ObserveRecordOpen();
      std::string signature;
      std::vector<std::pair<std::string, std::string>> scalars;
      for (const json::Field& f : value.fields()) {
        signature.append(f.key);
        signature.push_back('\x1f');
        ObserveValue(*f.value, node->ObserveFieldEntry(f.key));
        switch (f.value->kind()) {
          case ValueKind::kNull:
            scalars.emplace_back(f.key, EncodeNull());
            break;
          case ValueKind::kBool:
            scalars.emplace_back(f.key, EncodeBool(f.value->bool_value()));
            break;
          case ValueKind::kNum:
            scalars.emplace_back(f.key, EncodeNum(f.value->num_value()));
            break;
          case ValueKind::kStr:
            scalars.emplace_back(f.key, EncodeStr(f.value->str_value()));
            break;
          default:
            break;
        }
      }
      node->ObserveShape(signature, scalars);
      return;
    }
    case ValueKind::kArray: {
      node->ObserveArray(value.elements().size());
      if (value.elements().empty()) return;
      Annotation* child = node->ItemsEntry();
      for (const ValueRef& e : value.elements()) ObserveValue(*e, child);
      return;
    }
  }
}

// -- Rendering --------------------------------------------------------------

namespace {

void AppendUnsignedRange(const char* label, const MinMaxU64& r,
                         std::vector<std::string>* parts) {
  if (!r.seen) return;
  parts->push_back(std::string(label) + " [" + std::to_string(r.min) + ".." +
                   std::to_string(r.max) + "]");
}

void AppendNode(const std::string& path, const Annotation& a,
                uint64_t present, uint64_t parent_records, std::string* out) {
  std::vector<std::string> parts;
  if (parent_records > 0) {
    parts.push_back("present " + std::to_string(present) + "/" +
                    std::to_string(parent_records));
  } else {
    parts.push_back("values " + std::to_string(a.count));
  }
  auto kind = [&](const char* name, uint64_t n) {
    if (n > 0) parts.push_back(std::string(name) + " " + std::to_string(n));
  };
  kind("null", a.null_count);
  kind("bool", a.bool_count);
  kind("num", a.num_count);
  kind("str", a.str_count);
  kind("record", a.record_count);
  kind("array", a.array_count);
  if (a.num_range.seen) {
    parts.push_back("num [" + EncodeNum(a.num_range.min).substr(1) + ".." +
                    EncodeNum(a.num_range.max).substr(1) + "]");
  }
  AppendUnsignedRange("strlen", a.str_len, &parts);
  AppendUnsignedRange("arraylen", a.array_len, &parts);
  if (a.sample.observations > 0) {
    std::string d = "distinct ";
    if (a.sample.complete()) {
      d += std::to_string(a.sample.values.size());
    } else {
      d += "~" + std::to_string(
                     static_cast<uint64_t>(a.sketch.Estimate() + 0.5));
    }
    if (!a.sample.values.empty()) {
      d += " {";
      for (size_t i = 0; i < a.sample.values.size(); ++i) {
        if (i) d += ", ";
        d += DecodeScalarDisplay(a.sample.values[i]);
      }
      if (a.sample.truncated) d += ", ...";
      d += "}";
    }
    parts.push_back(std::move(d));
  }
  if (!a.shapes.empty()) {
    parts.push_back("shapes " + std::to_string(a.shapes.size()) +
                    (a.shapes_truncated ? "+" : ""));
  }
  out->append(path.empty() ? "<root>" : path);
  out->append(": ");
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out->append(" | ");
    out->append(parts[i]);
  }
  out->push_back('\n');
  for (const auto& [key, info] : a.fields) {
    if (!info.node) continue;
    AppendNode(path.empty() ? key : path + "." + key, *info.node,
               info.present, a.record_count, out);
  }
  if (a.items) {
    AppendNode(path + "[]", *a.items, 0, 0, out);
  }
}

}  // namespace

std::string FormatAnnotation(const Annotation& root) {
  std::string out;
  AppendNode("", root, 0, 0, &out);
  return out;
}

}  // namespace jsonsi::annotate
