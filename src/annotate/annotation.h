// The Annotation monoid lattice — value statistics carried alongside types.
//
// The paper's Fuse operator is a commutative-monoid fold over per-record
// types (Theorems 5.4/5.5 are exactly the associativity/commutativity the
// parallel tree-reduce needs). JSONoid (PAPERS.md) observes that the same
// fold can carry *any* commutative monoid beside the type: per-position
// record counts, null counts, numeric min/max, string-length bounds,
// distinct-value samples, cardinality sketches. This module is that lattice.
//
// An Annotation is a tree shaped like the schema (a field map plus one
// array-items child per position), NOT like any one record — the annotation
// of a dataset is the monoid fold of its records' annotations. Every
// component is an associative + commutative merge with an identity (the
// default-constructed node), so
//
//     serial fold == chunked fold == parallel tree-reduce fold
//
// holds *exactly*, not approximately — the same discipline as the SIMD and
// chunk parity suites, asserted by tests/annotation_pipeline_test.cc.
// The bounded components are designed so truncation cannot break this:
//
//   * DistinctSample keeps the K lexicographically smallest encoded values.
//     bottomK(A ∪ B) depends only on (bottomK(A), bottomK(B)), so the kept
//     set is a pure function of the underlying value set regardless of
//     merge order; the `truncated` flag is exact (distinct > K, or a value
//     was too large to sample) and also order-independent.
//   * The shape map and per-shape sample maps are bounded the same way
//     (bottom-K by key). A key that survives the merged bound provably has
//     its exact merged statistics: if fewer than K keys precede it in the
//     union, fewer than K precede it on each side, so neither side evicted
//     it.
//   * The HLL-style sketch merges by register-wise max; min/max ranges and
//     counters merge by min/max/addition.
//
// Annotations live OUTSIDE the interned Type nodes on purpose: two
// structurally equal types hash-cons to one node, so statistics cannot be
// stored per node without conflating positions. Keying the annotation tree
// by schema position instead means interning and fusion memoization can
// never lose or double-count an observation — the accumulators merge even
// when every type involved is pointer-identical (asserted with interning
// and memoization on/off in tests/annotation_test.cc).
//
// Collection is opt-in (`--annotate`, InferenceOptions::annotate) so the
// DOM-free hot path keeps its PR-5/PR-8 throughput by default.

#ifndef JSONSI_ANNOTATE_ANNOTATION_H_
#define JSONSI_ANNOTATE_ANNOTATION_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "json/value.h"

namespace jsonsi::annotate {

/// Bounded-sample knobs. Small on purpose: the samples exist to drive
/// tagged-union refinement (discriminator fields have a handful of values)
/// and enum export, not to be a column store.
inline constexpr size_t kDistinctSampleCap = 16;
/// Encoded scalar values longer than this are counted but not sampled (the
/// sample is marked truncated). The predicate depends only on the value, so
/// truncation stays order-independent.
inline constexpr size_t kMaxSampledScalarBytes = 64;
/// Bounds on the per-record-position shape map (distinct key-set
/// signatures) and the per-shape scalar-field sample maps.
inline constexpr size_t kShapeCap = 64;
inline constexpr size_t kShapeFieldCap = 32;
/// HLL register count (precision p = 8, standard error ~6.5%).
inline constexpr size_t kSketchRegisters = 256;

// -- Scalar encodings -------------------------------------------------------
//
// Sampled scalar values are stored as tag-prefixed strings so one ordered
// container holds mixed kinds deterministically:
//   "z" null · "b0"/"b1" bool · "n<shortest-round-trip double>" number ·
//   "s<unescaped bytes>" string.
// Both the DOM parser and the direct tokenizer produce doubles through the
// same std::from_chars scan, so the two paths encode identically.

std::string EncodeNull();
std::string EncodeBool(bool b);
std::string EncodeNum(double n);
std::string EncodeStr(std::string_view unescaped);
/// Human-readable rendering of an encoded scalar ("null", "true", "42",
/// "\"id\"").
std::string DecodeScalarDisplay(const std::string& encoded);
/// The encoded scalar as a JSON value (for `const`/`enum` export).
json::ValueRef DecodeScalarValue(const std::string& encoded);

// -- Component monoids ------------------------------------------------------

/// Min/max over doubles. Identity: `seen == false`.
struct MinMax {
  bool seen = false;
  double min = 0;
  double max = 0;

  void Observe(double v);
  void MergeFrom(const MinMax& other);
  bool Equals(const MinMax& other) const;
};

/// Min/max over unsigned lengths. Identity: `seen == false`.
struct MinMaxU64 {
  bool seen = false;
  uint64_t min = 0;
  uint64_t max = 0;

  void Observe(uint64_t v);
  void MergeFrom(const MinMaxU64& other);
  bool Equals(const MinMaxU64& other) const;
};

/// Bottom-K distinct-value sample with an exact truncation flag.
struct DistinctSample {
  /// Sorted, deduplicated encoded values — the K smallest ever observed.
  std::vector<std::string> values;
  /// True iff the sample is incomplete: more than K distinct values exist,
  /// or some value was too large to sample. Exact and order-independent.
  bool truncated = false;
  /// Number of scalar observations feeding this sample (not distinct).
  uint64_t observations = 0;

  /// True when `values` is the complete distinct-value set.
  bool complete() const { return !truncated; }

  void Observe(std::string_view encoded);
  void MergeFrom(const DistinctSample& other);
  bool Equals(const DistinctSample& other) const;
};

/// HLL-style cardinality sketch: 256 registers of leading-zero ranks,
/// merged by register-wise max (exactly order-independent).
struct DistinctSketch {
  std::array<uint8_t, kSketchRegisters> registers{};

  void Observe(std::string_view encoded);
  void MergeFrom(const DistinctSketch& other);
  /// Standard HLL estimate with the small-range (linear counting)
  /// correction. A derived quantity — equality compares registers.
  double Estimate() const;
  bool Equals(const DistinctSketch& other) const;
};

/// Per-shape statistics: how many records had exactly this key set, and a
/// bounded map of scalar-field samples used for discriminator detection.
struct ShapeInfo {
  uint64_t count = 0;
  /// key -> distinct sample of the scalar values that key held in records
  /// of this shape. Bounded to the kShapeFieldCap smallest keys.
  std::map<std::string, DistinctSample> field_values;
  bool fields_truncated = false;

  void ObserveField(const std::string& key, std::string_view encoded);
  void MergeFrom(const ShapeInfo& other);
  bool Equals(const ShapeInfo& other) const;
};

// -- The annotation node ----------------------------------------------------

/// One schema position's accumulated statistics plus its children. The
/// default-constructed node is the monoid identity.
class Annotation {
 public:
  /// A record field's accumulator plus its presence count (how many parent
  /// records carried the key — the denominator for optionality ratios).
  struct FieldInfo {
    uint64_t present = 0;
    std::unique_ptr<Annotation> node;
  };

  Annotation() = default;
  Annotation(Annotation&&) = default;
  Annotation& operator=(Annotation&&) = default;

  // -- Per-record observation (one value at this position) --
  void ObserveNull();
  void ObserveBool(bool b);
  void ObserveNum(double n);
  /// `unescaped` is the decoded string payload; its length feeds the
  /// string-length bounds.
  void ObserveStr(std::string_view unescaped);
  void ObserveRecordOpen();
  void ObserveArray(uint64_t length);
  /// Returns the accumulator for field `key`, creating it on first use and
  /// bumping its presence count.
  Annotation* ObserveFieldEntry(std::string_view key);
  /// Returns the shared accumulator for array elements at this position.
  Annotation* ItemsEntry();
  /// Registers one record instance's key-set signature (its sorted keys
  /// joined by '\x1f') and its scalar fields' encoded values.
  void ObserveShape(
      const std::string& signature,
      const std::vector<std::pair<std::string, std::string>>& scalar_fields);

  // -- Monoid operations --
  void MergeFrom(const Annotation& other);
  bool Equals(const Annotation& other) const;
  /// Deep copy (Annotation is move-only; copying is explicit).
  Annotation Clone() const;
  /// Nodes in this annotation tree (this node included).
  uint64_t TreeNodes() const;

  // -- Accumulated state (public: this is a data carrier) --
  uint64_t count = 0;  // values observed at this position
  uint64_t null_count = 0;
  uint64_t bool_count = 0;
  uint64_t true_count = 0;
  uint64_t num_count = 0;
  uint64_t str_count = 0;
  uint64_t record_count = 0;
  uint64_t array_count = 0;
  MinMax num_range;
  MinMaxU64 str_len;
  MinMaxU64 array_len;
  /// Distinct sample + sketch over the *scalar* values at this position.
  DistinctSample sample;
  DistinctSketch sketch;
  /// Record children, keyed by field name.
  std::map<std::string, FieldInfo, std::less<>> fields;
  /// Array element child (all elements pool into one position).
  std::unique_ptr<Annotation> items;
  /// Key-set signature -> per-shape statistics, bounded to the kShapeCap
  /// smallest signatures.
  std::map<std::string, ShapeInfo> shapes;
  bool shapes_truncated = false;

 private:
  void ObserveScalar(std::string_view encoded);
};

/// DOM-walk collection: folds `value`'s annotation into `node`. The exact
/// counterpart of the tokenizer-driven collection in DirectInferType —
/// differential-tested for equality on both paths.
void ObserveValue(const json::Value& value, Annotation* node);

/// Multi-line human-readable digest ("path: count, kinds, ranges, sample"),
/// deterministic.
std::string FormatAnnotation(const Annotation& root);

}  // namespace jsonsi::annotate

#endif  // JSONSI_ANNOTATE_ANNOTATION_H_
