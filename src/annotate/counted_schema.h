// Statistics-annotated schemas — the paper's stated future work:
// "In the near future we plan to enrich schemas with statistical and
// provenance information about the input data." (Section 7)
//
// SchemaProfiler observes a stream of JSON values and maintains, per schema
// position:
//   * per-kind occurrence counts (how often the position held Null / Bool /
//     Num / Str / a record / an array),
//   * per-field presence counts (how many of the records seen at this
//     position carried the field) — the quantitative version of '?',
//   * value statistics: numeric min/max, string length min/max, array
//     length min/max,
//   * provenance: the ordinal of the first record that exhibited each field
//     (which record introduced this structure?).
//
// Like Fuse, profile merging is associative and commutative (it is pointwise
// counter addition), so profiles distribute across partitions exactly the
// way schemas do, and profiles of disjoint batches combine exactly.
//
// The profile projects onto the paper's type language (`ToType`), and the
// projection provably carries the same information as the fusion pipeline:
// for the same inputs, ToType() equals the star-normalized fused type (a
// property the test suite checks).

#ifndef JSONSI_ANNOTATE_COUNTED_SCHEMA_H_
#define JSONSI_ANNOTATE_COUNTED_SCHEMA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "annotate/annotation.h"  // MinMax — shared with the monoid lattice
#include "json/value.h"
#include "types/type.h"

namespace jsonsi::annotate {

/// One annotated schema position.
struct ProfileNode {
  // Per-kind occurrence counts at this position.
  uint64_t null_count = 0;
  uint64_t bool_count = 0;
  uint64_t num_count = 0;
  uint64_t str_count = 0;
  uint64_t record_count = 0;
  uint64_t array_count = 0;

  /// Total observations at this position.
  uint64_t total() const {
    return null_count + bool_count + num_count + str_count + record_count +
           array_count;
  }

  MinMax num_stats;        // over numeric values
  MinMax str_len_stats;    // over string lengths
  MinMax array_len_stats;  // over array lengths

  struct FieldProfile {
    std::unique_ptr<ProfileNode> node;
    uint64_t present_count = 0;
    /// Ordinal (as passed to Observe) of the first record carrying the
    /// field — the provenance hook.
    uint64_t first_seen = 0;
  };
  /// Sub-profiles of record fields seen at this position (key-sorted map).
  std::map<std::string, FieldProfile> fields;
  /// Sub-profile of all array elements seen at this position.
  std::unique_ptr<ProfileNode> array_body;
};

/// Accumulates an annotated schema over a value stream.
class SchemaProfiler {
 public:
  SchemaProfiler();
  ~SchemaProfiler();
  SchemaProfiler(SchemaProfiler&&) noexcept;
  SchemaProfiler& operator=(SchemaProfiler&&) noexcept;

  /// Observes one record. `ordinal` identifies the record for provenance;
  /// use a global position (row number, offset) — monotonicity not required.
  void Observe(const json::Value& value, uint64_t ordinal);

  /// Merges another profile into this one (associative, commutative).
  /// Counters add; first_seen takes the minimum.
  void Merge(const SchemaProfiler& other);

  /// Number of records observed.
  uint64_t record_count() const { return count_; }

  /// Root of the profile tree (valid until the profiler is destroyed).
  const ProfileNode& root() const { return *root_; }

  /// Projects the profile onto the paper's type language. Arrays project to
  /// simplified (starred) types; field optionality is presence < total.
  types::TypeRef ToType() const;

  /// Renders the annotated schema, e.g.
  ///   {battery: Num? [2/3, first@1, 85..87], celsius: (Num[2] + Str[1])}
  /// `show_value_stats` adds numeric/length ranges.
  std::string ToString(bool show_value_stats = true) const;

 private:
  std::unique_ptr<ProfileNode> root_;
  uint64_t count_ = 0;
};

}  // namespace jsonsi::annotate

#endif  // JSONSI_ANNOTATE_COUNTED_SCHEMA_H_
