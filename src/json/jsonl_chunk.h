// Chunked JSON-Lines ingestion — the parallel counterpart of jsonl.h.
//
// A JSONL buffer is embarrassingly parallel to parse once it is cut on line
// boundaries: SplitJsonLines() produces ~N byte ranges that never split a
// line (CRLF pairs stay whole, a UTF-8 BOM stays in the first chunk), each
// chunk parses independently on any thread (ParseJsonLinesChunk), and a
// final sequential replay (ReplayChunkPolicy) re-applies the degraded-mode
// MalformedLinePolicy of PR 1 over the concatenated outcomes.
//
// The replay is what makes the parallel read *exactly* equivalent to a
// serial ReadJsonLines over the whole buffer — not merely "same values on
// clean input":
//
//   * kFail aborts at the stream's first malformed line with the same
//     "line N: <parse message>" status, and the merged IngestStats describe
//     precisely the prefix a serial reader would have consumed (chunk
//     workers scan past the error; the replay truncates their accounting at
//     the abort point using per-malformed-line snapshots).
//   * kFailAboveRate re-makes every rate decision on cumulative stream
//     counts (including IngestOptions::rate_baseline), so the abort point,
//     the error message's M/N counts, and the recorded-error prefix all
//     match the serial reader bit for bit.
//   * kSkip merges everything; stats accumulate with line numbers and byte
//     offsets rebased chunk by chunk (IngestStats::Absorb), so error
//     reports read as if one reader had scanned the whole buffer.
//
// The splitter and per-chunk parser live here in src/json/ and know nothing
// about threads; the engine/core layers own the scheduling (see
// core::SchemaInferencer::InferFromJsonLines and
// core::StreamingInferencer::AddJsonLinesParallel).

#ifndef JSONSI_JSON_JSONL_CHUNK_H_
#define JSONSI_JSON_JSONL_CHUNK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "json/jsonl.h"
#include "json/value.h"
#include "support/status.h"

namespace jsonsi::json {

/// One half-open byte range [begin, end) of the input buffer.
struct ChunkSpan {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
};

/// Cuts `text` into at most `max_chunks` contiguous spans, each ending just
/// after a '\n' (the final span may end at end-of-buffer instead). Spans are
/// never empty, never split a line — a boundary that would land mid-line
/// (or between the '\r' and '\n' of a CRLF pair) advances to the next
/// newline — and concatenate back to exactly `text`. Returns fewer spans
/// when the input has fewer lines than requested; an empty input yields no
/// spans.
std::vector<ChunkSpan> SplitJsonLines(std::string_view text,
                                      size_t max_chunks);

/// The policy-relevant half of one chunk's outcome: everything the
/// sequential replay needs to re-make the degraded-mode decisions,
/// independent of what the chunk worker produced per record (DOM values
/// here, inferred types in inference/direct_infer.h). Chunk workers fill
/// it with *chunk-local* line numbers and byte offsets; ReplayChunkPolicy
/// rebases them into stream coordinates.
struct ChunkIngest {
  /// Chunk-local ingestion report (policy-free: malformed lines are always
  /// counted and skipped at this stage; the global policy runs at replay).
  IngestStats stats;

  /// Snapshot of the chunk-local counters taken immediately *after* each
  /// malformed line — enough for the replay to re-make every policy
  /// decision, and to truncate this chunk's accounting at an abort point.
  struct MalformedAt {
    uint64_t lines_read = 0;   // local line number of the malformed line
    uint64_t blank_lines = 0;
    uint64_t records = 0;      // records parsed before this line
    uint64_t malformed_lines = 0;  // including this line
    uint64_t bytes_read = 0;   // local offset just past this line
    uint64_t line_begin = 0;   // local offset of this line's first byte
  };
  std::vector<MalformedAt> malformed;

  /// Parse message of the chunk's first malformed line (kFail needs it even
  /// when IngestOptions::max_recorded_errors is 0).
  std::string first_error_message;
};

/// Everything one DOM-parsing chunk contributes to the merged read.
/// Produced by ParseJsonLinesChunk.
struct ChunkOutcome : ChunkIngest {
  /// Values parsed from the chunk, in line order.
  std::vector<ValueRef> values;
};

/// Parses one chunk in isolation. Pure and thread-safe: may run
/// concurrently with other chunks of the same buffer. `first_chunk` marks
/// the chunk holding the stream's first line (only it tolerates a UTF-8
/// BOM). `max_recorded_errors` bounds the per-chunk error list exactly like
/// IngestOptions::max_recorded_errors bounds the serial reader's.
ChunkOutcome ParseJsonLinesChunk(std::string_view chunk,
                                 const ParseOptions& parse,
                                 size_t max_recorded_errors,
                                 bool first_chunk);

/// Decision of the sequential policy replay over parsed chunks.
struct ChunkReplay {
  /// OK, or the status a serial reader of the whole buffer would return.
  Status status;
  /// Chunks fully included before the abort (all of them when status is OK
  /// or when only the end-of-input rate check failed).
  size_t full_chunks = 0;
  /// Records of chunk `full_chunks` that a serial reader would still have
  /// ingested before aborting inside it (0 unless aborted mid-chunk).
  size_t partial_records = 0;
};

/// Replays `options.on_malformed` (with `options.rate_baseline`) over the
/// outcomes in stream order and merges their reports into `*stats` exactly
/// as a serial ReadJsonLines would have accumulated them — truncated at the
/// abort point when the replay aborts. Outcomes must be in chunk order and
/// cover the buffer contiguously. Also publishes the ingest.* telemetry
/// counters for the merged read (once, not per chunk).
ChunkReplay ReplayChunkPolicy(const std::vector<ChunkOutcome>& outcomes,
                              const IngestOptions& options,
                              IngestStats* stats);

/// Payload-agnostic core of the replay: non-owning views of the chunks'
/// policy halves, in chunk order. The DOM overload above and the typed
/// (direct-inference) ingestion path both funnel into this.
ChunkReplay ReplayChunkPolicy(const std::vector<const ChunkIngest*>& outcomes,
                              const IngestOptions& options,
                              IngestStats* stats);

/// Concatenates the values the replay decided to keep (full chunks plus the
/// partial prefix of the aborting chunk), moving them out of `outcomes`.
/// This matches what a serial degraded-mode reader would have delivered to
/// its sink before the abort.
std::vector<ValueRef> TakeIncludedValues(std::vector<ChunkOutcome>&& outcomes,
                                         const ChunkReplay& replay);

}  // namespace jsonsi::json

#endif  // JSONSI_JSON_JSONL_CHUNK_H_
