#include "json/value.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "support/hash.h"

namespace jsonsi::json {
namespace {

// Per-kind seeds so that e.g. the empty record and the empty array hash
// differently.
constexpr uint64_t kKindSeed[] = {
    0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL, 0x3c6ef372fe94f82bULL,
    0xa54ff53a5f1d36f1ULL, 0x510e527fade682d1ULL, 0x9b05688c2b3e6c1fULL,
};

uint64_t SeedFor(ValueKind kind) {
  return kKindSeed[static_cast<size_t>(kind)];
}

}  // namespace

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kNum:
      return "num";
    case ValueKind::kStr:
      return "str";
    case ValueKind::kRecord:
      return "record";
    case ValueKind::kArray:
      return "array";
  }
  return "?";
}

ValueRef Value::Null() {
  static const ValueRef instance = [] {
    auto v = std::shared_ptr<Value>(new Value());
    v->kind_ = ValueKind::kNull;
    v->hash_ = SeedFor(ValueKind::kNull);
    return v;
  }();
  return instance;
}

ValueRef Value::Bool(bool b) {
  static const ValueRef kTrue = [] {
    auto v = std::shared_ptr<Value>(new Value());
    v->kind_ = ValueKind::kBool;
    v->num_ = 1;
    v->hash_ = HashCombine(SeedFor(ValueKind::kBool), 1);
    return v;
  }();
  static const ValueRef kFalse = [] {
    auto v = std::shared_ptr<Value>(new Value());
    v->kind_ = ValueKind::kBool;
    v->num_ = 0;
    v->hash_ = HashCombine(SeedFor(ValueKind::kBool), 0);
    return v;
  }();
  return b ? kTrue : kFalse;
}

ValueRef Value::Num(double n) {
  auto v = std::shared_ptr<Value>(new Value());
  v->kind_ = ValueKind::kNum;
  v->num_ = n;
  v->hash_ = HashCombine(SeedFor(ValueKind::kNum), std::bit_cast<uint64_t>(n));
  return v;
}

ValueRef Value::Str(std::string s) {
  auto v = std::shared_ptr<Value>(new Value());
  v->kind_ = ValueKind::kStr;
  v->hash_ = HashCombine(SeedFor(ValueKind::kStr), HashBytes(s));
  v->str_ = std::move(s);
  return v;
}

Result<ValueRef> Value::Record(std::vector<Field> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const Field& a, const Field& b) { return a.key < b.key; });
  for (size_t i = 1; i < fields.size(); ++i) {
    if (fields[i - 1].key == fields[i].key) {
      return Status::InvalidArgument("duplicate record key: \"" +
                                     fields[i].key + "\"");
    }
  }
  return RecordUnchecked(std::move(fields));
}

ValueRef Value::RecordUnchecked(std::vector<Field> fields) {
  std::sort(fields.begin(), fields.end(),
            [](const Field& a, const Field& b) { return a.key < b.key; });
#ifndef NDEBUG
  for (size_t i = 1; i < fields.size(); ++i) {
    assert(fields[i - 1].key != fields[i].key && "duplicate record key");
  }
#endif
  auto v = std::shared_ptr<Value>(new Value());
  v->kind_ = ValueKind::kRecord;
  uint64_t h = SeedFor(ValueKind::kRecord);
  for (const Field& f : fields) {
    h = HashCombine(h, HashBytes(f.key));
    h = HashCombine(h, f.value->hash());
  }
  v->hash_ = h;
  v->fields_ = std::move(fields);
  return v;
}

ValueRef Value::Array(std::vector<ValueRef> elements) {
  auto v = std::shared_ptr<Value>(new Value());
  v->kind_ = ValueKind::kArray;
  uint64_t h = SeedFor(ValueKind::kArray);
  for (const ValueRef& e : elements) h = HashCombine(h, e->hash());
  v->hash_ = h;
  v->elements_ = std::move(elements);
  return v;
}

double Value::num_value() const {
  assert(is_num());
  return num_;
}

const Value* Value::Find(std::string_view key) const {
  assert(is_record());
  auto it = std::lower_bound(
      fields_.begin(), fields_.end(), key,
      [](const Field& f, std::string_view k) { return f.key < k; });
  if (it != fields_.end() && it->key == key) return it->value.get();
  return nullptr;
}

bool Value::Equals(const Value& other) const {
  if (this == &other) return true;
  if (kind_ != other.kind_ || hash_ != other.hash_) return false;
  switch (kind_) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kBool:
    case ValueKind::kNum:
      // Note: NaN payloads never occur (the parser rejects non-finite
      // numbers), so bitwise-insensitive == is correct here.
      return num_ == other.num_;
    case ValueKind::kStr:
      return str_ == other.str_;
    case ValueKind::kRecord: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].key != other.fields_[i].key) return false;
        if (!fields_[i].value->Equals(*other.fields_[i].value)) return false;
      }
      return true;
    }
    case ValueKind::kArray: {
      if (elements_.size() != other.elements_.size()) return false;
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (!elements_[i]->Equals(*other.elements_[i])) return false;
      }
      return true;
    }
  }
  return false;
}

size_t Value::TreeSize() const {
  switch (kind_) {
    case ValueKind::kNull:
    case ValueKind::kBool:
    case ValueKind::kNum:
    case ValueKind::kStr:
      return 1;
    case ValueKind::kRecord: {
      size_t n = 1;
      for (const Field& f : fields_) n += 1 + f.value->TreeSize();
      return n;
    }
    case ValueKind::kArray: {
      size_t n = 1;
      for (const ValueRef& e : elements_) n += e->TreeSize();
      return n;
    }
  }
  return 1;
}

bool ValueEquals(const ValueRef& a, const ValueRef& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return a->Equals(*b);
}

}  // namespace jsonsi::json
