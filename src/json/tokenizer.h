// Pull-style, zero-allocation JSON tokenizer over string_view.
//
// This is the lexical half of the DOM-free inference kernel: it turns JSON
// text into a stream of tokens without materializing values — number
// payloads are validated and handed back as lexeme slices, string payloads
// are validated (full escape / surrogate checking) but only unescaped into
// a caller-provided buffer on request (record keys need the unescaped
// form for duplicate detection; value strings never do). All scanning is
// shared with the DOM parser via json/scan.h, including the SWAR fast
// paths, so error messages and line/column positions are byte-identical
// to Parse(...).
//
// The tokenizer is deliberately context-free only where JSON is: callers
// (the grammar driver in inference/direct_infer.cc) must not pull a token
// at positions where the grammar expects specific punctuation, because the
// parser's errors there ("expected record key string", ...) are reported
// before any lexing happens. The cursor accessors (AtEnd/Peek/Advance/
// SkipWhitespace/ErrorHere) exist for exactly that.

#ifndef JSONSI_JSON_TOKENIZER_H_
#define JSONSI_JSON_TOKENIZER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "json/scan.h"
#include "json/simd/structural.h"
#include "support/status.h"

namespace jsonsi::json {

enum class TokenKind {
  kNull,
  kTrue,
  kFalse,
  kNumber,    // text = the full number lexeme (validated, finite)
  kString,    // text = raw contents between the quotes (escapes validated)
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kColon,
  kComma,
  kEnd,       // end of input
};

/// One token. `text` aliases the tokenizer's input — zero-copy; `offset`,
/// `line`, `column` locate the token's first byte (for kEnd: the end of
/// input), matching the position Parse(...) would report an error at.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string_view text;
  size_t offset = 0;
  size_t line = 1;
  size_t column = 1;
};

class Tokenizer {
 public:
  /// Builds the stage-1 structural index over `text` when a vector SIMD
  /// kernel is active and the document spans at least one 64-byte block
  /// (simd::ShouldIndex); the cursor's bulk skips then consume the
  /// precomputed bit planes. Under the scalar kernel — or for short
  /// documents — the PR-5 SWAR paths run unchanged.
  explicit Tokenizer(std::string_view text) {
    cursor_.text = text;
    if (simd::ShouldIndex(text.size())) {
      index_.Build(text);
      cursor_.index = &index_;
    }
  }

  /// The stage-1 index, or nullptr when this document is unindexed.
  const simd::StructuralIndex* index() const { return cursor_.index; }

  /// Skips whitespace and lexes one token into `*token`. Number tokens are
  /// fully validated (range-checked via from_chars); string tokens are
  /// escape-validated, and when `unescaped` is non-null the unescaped
  /// contents are appended to it (the buffer is NOT cleared — callers
  /// clear it, so they can reuse one allocation across tokens).
  Status Next(Token* token, std::string* unescaped = nullptr);

  // Cursor pass-throughs for grammar drivers that must look before lexing.
  bool AtEnd() const { return cursor_.AtEnd(); }
  char Peek() const { return cursor_.Peek(); }
  void Advance() { cursor_.Advance(); }
  void SkipWhitespace() { cursor_.SkipWhitespace(); }
  size_t pos() const { return cursor_.pos; }

  /// Error at the current cursor position, Parse(...)-formatted.
  Status ErrorHere(const std::string& message) const {
    return cursor_.Error(message);
  }

  /// Error positioned at a previously returned token's first byte.
  static Status ErrorAt(const Token& token, const std::string& message) {
    return Status::ParseError(message + " at line " +
                              std::to_string(token.line) + ", column " +
                              std::to_string(token.column));
  }

 private:
  scan::Cursor cursor_;
  simd::StructuralIndex index_;
};

}  // namespace jsonsi::json

#endif  // JSONSI_JSON_TOKENIZER_H_
