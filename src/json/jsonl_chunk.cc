#include "json/jsonl_chunk.h"

#include <algorithm>

#include "json/line_scan.h"
#include "json/parser.h"
#include "json/simd/kernel.h"
#include "telemetry/telemetry.h"

namespace jsonsi::json {
namespace {

// Mirror of jsonl.cc's per-read telemetry publication: one bulk add per
// merged parallel read, under the same counter names, so serial and chunked
// ingestion are indistinguishable to exporters.
void RecordIngestTelemetry(const IngestStats& stats) {
  if (!telemetry::Enabled()) return;
  JSONSI_COUNTER("ingest.reads").Increment();
  JSONSI_COUNTER("ingest.lines").Add(stats.lines_read);
  JSONSI_COUNTER("ingest.blank_lines").Add(stats.blank_lines);
  JSONSI_COUNTER("ingest.records").Add(stats.records);
  JSONSI_COUNTER("ingest.malformed_lines").Add(stats.malformed_lines);
  JSONSI_COUNTER("ingest.bytes").Add(stats.bytes_read);
}

}  // namespace

std::vector<ChunkSpan> SplitJsonLines(std::string_view text,
                                      size_t max_chunks) {
  std::vector<ChunkSpan> spans;
  if (text.empty()) return spans;
  max_chunks = std::max<size_t>(1, max_chunks);
  // Aim for equal byte shares; every boundary then advances to the next
  // '\n' so no line (or CRLF pair) is ever split. Short inputs simply
  // produce fewer chunks.
  const size_t target = std::max<size_t>(1, text.size() / max_chunks);
  size_t begin = 0;
  while (begin < text.size() && spans.size() + 1 < max_chunks) {
    size_t want = begin + target;
    if (want >= text.size()) break;
    size_t nl = simd::FindNewline(text, want - 1);
    if (nl >= text.size() || nl + 1 >= text.size()) break;
    spans.push_back(ChunkSpan{begin, nl + 1});
    begin = nl + 1;
  }
  spans.push_back(ChunkSpan{begin, text.size()});
  return spans;
}

ChunkOutcome ParseJsonLinesChunk(std::string_view chunk,
                                 const ParseOptions& parse,
                                 size_t max_recorded_errors,
                                 bool first_chunk) {
  JSONSI_SPAN("ingest.chunk");
  ChunkOutcome out;
  size_t pos = 0;
  // Identical line-splitting loop to the serial string_view reader in
  // jsonl.cc: '\n'-delimited, the byte offset advances past the consumed
  // newline, a trailing '\n' yields no final empty line.
  while (pos < chunk.size()) {
    size_t nl = simd::FindNewline(chunk, pos);
    size_t end = nl;
    std::string_view line = chunk.substr(pos, end - pos);
    uint64_t line_start = pos;
    pos = nl < chunk.size() ? nl + 1 : chunk.size();
    out.stats.bytes_read = pos;
    // Every line is fully processed at the chunk stage (the abort decision
    // is the replay's); the resume offset tracks the scan.
    out.stats.bytes_consumed = pos;
    ++out.stats.lines_read;
    line = internal::UndecorateLine(line,
                                    first_chunk && out.stats.lines_read == 1);
    if (internal::IsBlankLine(line)) {
      ++out.stats.blank_lines;
      continue;
    }
    Result<ValueRef> value = Parse(line, parse);
    if (value.ok()) {
      ++out.stats.records;
      out.values.push_back(std::move(value).value());
      continue;
    }
    // Malformed: record unconditionally (the policy runs at replay time) and
    // snapshot the local counters so the replay can truncate here.
    ++out.stats.malformed_lines;
    if (out.stats.malformed_lines == 1) {
      out.first_error_message = value.status().message();
    }
    if (out.stats.errors.size() < max_recorded_errors) {
      out.stats.errors.push_back(IngestError{
          out.stats.lines_read, line_start, value.status().message()});
    }
    out.malformed.push_back(ChunkOutcome::MalformedAt{
        out.stats.lines_read, out.stats.blank_lines, out.stats.records,
        out.stats.malformed_lines, out.stats.bytes_read, line_start});
  }
  return out;
}

namespace {

// Truncates chunk `o`'s accounting at malformed-line snapshot `at` and folds
// it into `*stats` — the prefix a serial reader would have consumed before
// aborting on that line.
void AbsorbTruncated(const ChunkIngest& o, const ChunkIngest::MalformedAt& at,
                     size_t max_recorded_errors, IngestStats* stats) {
  IngestStats prefix;
  prefix.lines_read = at.lines_read;
  prefix.blank_lines = at.blank_lines;
  prefix.records = at.records;
  prefix.malformed_lines = at.malformed_lines;
  prefix.bytes_read = at.bytes_read;
  // The aborting line itself was not consumed: a resumed read restarts at
  // its first byte, exactly like the serial LineIngester's abort.
  prefix.bytes_consumed = at.line_begin;
  for (const IngestError& e : o.stats.errors) {
    if (e.line_number > at.lines_read) break;
    prefix.errors.push_back(e);
  }
  stats->Absorb(prefix, max_recorded_errors);
}

Status RateError(const IngestOptions& options, const IngestStats& stats) {
  uint64_t base_records =
      options.rate_baseline ? options.rate_baseline->records : 0;
  uint64_t base_malformed =
      options.rate_baseline ? options.rate_baseline->malformed_lines : 0;
  uint64_t malformed = base_malformed + stats.malformed_lines;
  uint64_t non_blank =
      base_records + base_malformed + stats.records + stats.malformed_lines;
  std::string msg = "malformed-line rate " + std::to_string(malformed) + "/" +
                    std::to_string(non_blank) + " exceeds tolerated rate";
  // Mirror of LineIngester::RateError: cite the stream's globally-first
  // recorded error, preferring the baseline's (already stream-global) over
  // this read's (rebased), so batched and one-shot reads abort identically.
  if (options.rate_baseline && !options.rate_baseline->errors.empty()) {
    const IngestError& first = options.rate_baseline->errors.front();
    msg += "; first error at line " + std::to_string(first.line_number) +
           ": " + first.message;
  } else if (!stats.errors.empty()) {
    uint64_t base_lines =
        options.rate_baseline ? options.rate_baseline->lines_read : 0;
    msg += "; first error at line " +
           std::to_string(base_lines + stats.errors.front().line_number) +
           ": " + stats.errors.front().message;
  }
  return Status::ParseError(std::move(msg));
}

}  // namespace

ChunkReplay ReplayChunkPolicy(const std::vector<ChunkOutcome>& outcomes,
                              const IngestOptions& options,
                              IngestStats* stats) {
  std::vector<const ChunkIngest*> views;
  views.reserve(outcomes.size());
  for (const ChunkOutcome& o : outcomes) views.push_back(&o);
  return ReplayChunkPolicy(views, options, stats);
}

ChunkReplay ReplayChunkPolicy(const std::vector<const ChunkIngest*>& outcomes,
                              const IngestOptions& options,
                              IngestStats* stats) {
  IngestStats local;
  if (!stats) stats = &local;
  *stats = IngestStats{};
  ChunkReplay replay;
  const uint64_t base_records =
      options.rate_baseline ? options.rate_baseline->records : 0;
  const uint64_t base_malformed =
      options.rate_baseline ? options.rate_baseline->malformed_lines : 0;
  const auto exceeded = [&options](uint64_t malformed, uint64_t non_blank) {
    return static_cast<double>(malformed) >
           options.max_error_rate * static_cast<double>(non_blank);
  };

  for (size_t c = 0; c < outcomes.size(); ++c) {
    const ChunkIngest& o = *outcomes[c];
    if (options.on_malformed != MalformedLinePolicy::kSkip) {
      for (const ChunkIngest::MalformedAt& at : o.malformed) {
        // Stream-cumulative counts at the moment this line failed, exactly
        // as the serial LineIngester would have seen them.
        uint64_t malformed_at = stats->malformed_lines + at.malformed_lines;
        uint64_t records_at = stats->records + at.records;
        bool abort = false;
        if (options.on_malformed == MalformedLinePolicy::kFail) {
          abort = true;
        } else {  // kFailAboveRate
          uint64_t cum_non_blank =
              base_records + base_malformed + records_at + malformed_at;
          uint64_t cum_malformed = base_malformed + malformed_at;
          abort = cum_non_blank >= options.min_lines_for_rate &&
                  exceeded(cum_malformed, cum_non_blank);
        }
        if (abort) {
          AbsorbTruncated(o, at, options.max_recorded_errors, stats);
          replay.full_chunks = c;
          replay.partial_records = at.records;
          if (options.on_malformed == MalformedLinePolicy::kFail) {
            // Baseline lines keep the number stream-global under batching.
            uint64_t base_lines =
                options.rate_baseline ? options.rate_baseline->lines_read : 0;
            replay.status = Status::ParseError(
                "line " + std::to_string(base_lines + stats->lines_read) +
                ": " + o.first_error_message);
          } else {
            replay.status = RateError(options, *stats);
          }
          RecordIngestTelemetry(*stats);
          return replay;
        }
      }
    }
    stats->Absorb(o.stats, options.max_recorded_errors);
  }

  replay.full_chunks = outcomes.size();
  replay.partial_records = 0;
  replay.status = Status::OK();
  // End-of-input rate check, mirroring LineIngester::Finish(): short inputs
  // (below min_lines_for_rate) are still policed once the read completes.
  // Interior batches of a longer stream defer this to the final batch.
  if (options.on_malformed == MalformedLinePolicy::kFailAboveRate &&
      options.end_of_stream && base_malformed + stats->malformed_lines > 0) {
    uint64_t cum_malformed = base_malformed + stats->malformed_lines;
    uint64_t cum_non_blank = base_records + base_malformed + stats->records +
                             stats->malformed_lines;
    if (exceeded(cum_malformed, cum_non_blank)) {
      replay.status = RateError(options, *stats);
    }
  }
  RecordIngestTelemetry(*stats);
  return replay;
}

std::vector<ValueRef> TakeIncludedValues(std::vector<ChunkOutcome>&& outcomes,
                                         const ChunkReplay& replay) {
  size_t total = 0;
  for (size_t c = 0; c < replay.full_chunks && c < outcomes.size(); ++c) {
    total += outcomes[c].values.size();
  }
  total += replay.partial_records;
  std::vector<ValueRef> values;
  values.reserve(total);
  for (size_t c = 0; c < replay.full_chunks && c < outcomes.size(); ++c) {
    auto& chunk_values = outcomes[c].values;
    values.insert(values.end(),
                  std::make_move_iterator(chunk_values.begin()),
                  std::make_move_iterator(chunk_values.end()));
  }
  if (replay.partial_records > 0 && replay.full_chunks < outcomes.size()) {
    auto& chunk_values = outcomes[replay.full_chunks].values;
    size_t keep = std::min(replay.partial_records, chunk_values.size());
    values.insert(values.end(), std::make_move_iterator(chunk_values.begin()),
                  std::make_move_iterator(chunk_values.begin() + keep));
  }
  return values;
}

}  // namespace jsonsi::json
