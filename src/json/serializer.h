// JSON serialization: compact and pretty printers for the Value model.
//
// The serializer is used by the dataset generators (to measure the on-disk
// byte sizes reported in Table 1), by the examples and by the CLI.

#ifndef JSONSI_JSON_SERIALIZER_H_
#define JSONSI_JSON_SERIALIZER_H_

#include <string>

#include "json/value.h"

namespace jsonsi::json {

/// Compact single-line serialization (`{"a":1,"b":[true]}`).
std::string ToJson(const Value& value);
inline std::string ToJson(const ValueRef& value) { return ToJson(*value); }

/// Appends the compact serialization to `*out` (avoids re-allocation when
/// writing many records to one buffer/file).
void AppendJson(const Value& value, std::string* out);

/// Indented multi-line serialization for human consumption.
std::string ToPrettyJson(const Value& value, int indent_width = 2);
inline std::string ToPrettyJson(const ValueRef& value, int indent_width = 2) {
  return ToPrettyJson(*value, indent_width);
}

/// Number of bytes the compact serialization of `value` occupies, without
/// materializing the string. Used for Table 1 size accounting at scale.
size_t SerializedSize(const Value& value);

}  // namespace jsonsi::json

#endif  // JSONSI_JSON_SERIALIZER_H_
