// JSON value model — the data syntax of Figure 2 of the paper.
//
//   V ::= B | R | A
//   B ::= null | true | false | n | s
//   R ::= {l1:V1, ..., ln:Vn}     (set of fields; keys mutually distinct)
//   A ::= [V1, ..., Vn]           (ordered list)
//
// Values are immutable and shared via ValueRef (shared_ptr<const Value>), so
// generated datasets can alias common substructure cheaply and values can be
// passed through the map/reduce engine without copies.
//
// Records are *sets* of fields: the paper identifies two records that only
// differ in field order, so Value canonicalizes record fields by sorting on
// the key at construction. Key uniqueness (well-formedness) is enforced: the
// checked factory returns an error for duplicates and the parser rejects
// duplicate keys.
//
// Every value carries a structural hash computed bottom-up at construction,
// making hash-based deduplication O(length of the value) overall.

#ifndef JSONSI_JSON_VALUE_H_
#define JSONSI_JSON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace jsonsi::json {

class Value;

/// Shared handle to an immutable JSON value.
using ValueRef = std::shared_ptr<const Value>;

/// The six value shapes of the JSON data model.
enum class ValueKind : uint8_t {
  kNull = 0,
  kBool = 1,
  kNum = 2,
  kStr = 3,
  kRecord = 4,
  kArray = 5,
};

/// Returns "null", "bool", "num", "str", "record" or "array".
const char* ValueKindName(ValueKind kind);

/// One key/value association inside a record.
struct Field {
  std::string key;
  ValueRef value;
};

/// An immutable JSON value (basic, record, or array).
class Value {
 public:
  // -- Factories ------------------------------------------------------------

  /// The null value (a shared singleton).
  static ValueRef Null();
  /// A boolean value (shared singletons for true/false).
  static ValueRef Bool(bool b);
  /// A number value. JSON does not distinguish int/float and neither does the
  /// type language (a single `Num` type), so numbers are doubles.
  static ValueRef Num(double n);
  /// A string value.
  static ValueRef Str(std::string s);
  /// A record. Fields are sorted by key; duplicate keys are a checked error
  /// (records must be well-formed per Section 4 of the paper).
  static Result<ValueRef> Record(std::vector<Field> fields);
  /// Unchecked record factory for trusted construction sites (generators,
  /// tests) where keys are known distinct. Asserts in debug builds.
  static ValueRef RecordUnchecked(std::vector<Field> fields);
  /// An array of the given elements.
  static ValueRef Array(std::vector<ValueRef> elements);

  // -- Observers ------------------------------------------------------------

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_bool() const { return kind_ == ValueKind::kBool; }
  bool is_num() const { return kind_ == ValueKind::kNum; }
  bool is_str() const { return kind_ == ValueKind::kStr; }
  bool is_record() const { return kind_ == ValueKind::kRecord; }
  bool is_array() const { return kind_ == ValueKind::kArray; }

  /// Requires is_bool().
  bool bool_value() const { return num_ != 0; }
  /// Requires is_num().
  double num_value() const;
  /// Requires is_str().
  const std::string& str_value() const { return str_; }
  /// Requires is_record(). Fields are sorted by key.
  const std::vector<Field>& fields() const { return fields_; }
  /// Requires is_array().
  const std::vector<ValueRef>& elements() const { return elements_; }

  /// Record field lookup by key; nullptr when absent. Requires is_record().
  const Value* Find(std::string_view key) const;

  /// Structural hash, cached at construction. Equal values hash equally.
  uint64_t hash() const { return hash_; }

  /// Deep structural equality (records compare as sets of fields — both are
  /// key-sorted, so this is a linear scan).
  bool Equals(const Value& other) const;

  /// Number of nodes in the value tree (records contribute 1 + one node per
  /// field; used for dataset statistics).
  size_t TreeSize() const;

 private:
  friend ValueRef MakeValueForTesting();
  Value() = default;

  ValueKind kind_ = ValueKind::kNull;
  double num_ = 0;                  // kBool (0/1) and kNum payload
  std::string str_;                 // kStr payload
  std::vector<Field> fields_;       // kRecord payload, key-sorted
  std::vector<ValueRef> elements_;  // kArray payload
  uint64_t hash_ = 0;
};

/// Deep equality through refs (null-safe: two nulls are equal).
bool ValueEquals(const ValueRef& a, const ValueRef& b);

/// Hash/equality functors for unordered containers keyed on ValueRef.
struct ValueRefHash {
  size_t operator()(const ValueRef& v) const {
    return static_cast<size_t>(v->hash());
  }
};
struct ValueRefEq {
  bool operator()(const ValueRef& a, const ValueRef& b) const {
    return ValueEquals(a, b);
  }
};

}  // namespace jsonsi::json

#endif  // JSONSI_JSON_VALUE_H_
