// JSON-Lines ingestion: one JSON value per line, the standard layout of
// crawled datasets (GitHub events, Twitter firehose dumps, Wikidata exports).
//
// Real crawls are dirty: truncated lines at chunk boundaries, interleaved
// log output, encoding accidents. Aborting a multi-GB read on the first bad
// line (the default, and the only behaviour this module used to have) is
// rarely what a production pipeline wants, so ingestion takes a
// MalformedLinePolicy and reports an IngestStats: how many lines were read,
// skipped, and where the first errors were (line number, byte offset,
// parser message). Windows line endings (trailing '\r') and a UTF-8 BOM on
// the first line are tolerated everywhere.

#ifndef JSONSI_JSON_JSONL_H_
#define JSONSI_JSON_JSONL_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "json/parser.h"
#include "json/value.h"
#include "support/status.h"

namespace jsonsi::json {

/// Per-record sink. Return false to stop early (e.g. record-count limits).
using RecordSink = std::function<bool(ValueRef value)>;

/// Per-line processor for generic (DOM-free) ingestion. Called once per
/// undecorated non-blank line. Return ok(true) to continue, ok(false) to
/// stop the read early, or an error Status to classify the line as
/// malformed — the message then feeds the IngestStats report and the
/// MalformedLinePolicy machinery exactly like a parse failure does on the
/// DOM path.
using LineFn = std::function<Result<bool>(std::string_view line)>;

/// What to do with a line that fails to parse.
enum class MalformedLinePolicy {
  /// Abort the read with a ParseError carrying the line number (default —
  /// the strict behaviour).
  kFail,
  /// Count and skip malformed lines; the read always succeeds.
  kSkip,
  /// Skip malformed lines while their fraction of non-blank lines stays at
  /// or below IngestOptions::max_error_rate; abort once it is exceeded
  /// (checked once at least min_lines_for_rate lines have been seen, and
  /// again at end of input). Guards against silently "ingesting" a file
  /// that is mostly garbage, e.g. a binary file passed by mistake.
  kFailAboveRate,
};

struct IngestStats;

/// Ingestion configuration.
struct IngestOptions {
  ParseOptions parse;
  MalformedLinePolicy on_malformed = MalformedLinePolicy::kFail;
  /// kFailAboveRate: tolerated malformed fraction of non-blank lines.
  double max_error_rate = 0.01;
  /// kFailAboveRate: no early rate check before this many non-blank lines
  /// (avoids spurious aborts on the first lines of a sparse prefix).
  uint64_t min_lines_for_rate = 100;
  /// At most this many IngestError entries are recorded in IngestStats.
  size_t max_recorded_errors = 8;
  /// Totals from earlier chunks of the same logical stream. When set,
  /// kFailAboveRate decisions (rate and min_lines_for_rate) are made on the
  /// cumulative stream — baseline plus the current read — not on the chunk
  /// alone, so feeding one stream in batches neither forgives a
  /// slowly-accumulating error rate nor aborts a late chunk whose few lines
  /// are locally bad while the stream as a whole is clean. The baseline is
  /// read at decision points only; it is never mutated, and must outlive the
  /// read. Callers accumulate with IngestStats::Absorb between chunks (see
  /// core::StreamingInferencer).
  const IngestStats* rate_baseline = nullptr;
  /// This read continues an earlier read of the same logical stream (a
  /// follow-up batch, or a checkpoint resume at a mid-file offset): its
  /// first line is an interior line of the stream, so first-line-only
  /// decorations (the UTF-8 BOM) are not stripped from it. Batched and
  /// one-shot reads of the same bytes then classify every line identically.
  ///
  /// When a rate_baseline is also set, abort messages number lines on the
  /// whole stream (baseline lines_read + this read's position) and rate
  /// aborts cite the stream's first recorded error, so a batched feed
  /// reports byte-identical errors to a one-shot read of the same bytes.
  bool continuation = false;
  /// False marks this read as an interior batch of a longer stream: more
  /// input follows, so the end-of-read rate validation (which polices
  /// streams still below min_lines_for_rate when the input ends) is
  /// deferred to the read that carries end_of_stream — a batched feed then
  /// aborts exactly where the one-shot read would. Mid-read policy
  /// decisions are unaffected.
  bool end_of_stream = true;
};

/// One rejected line.
struct IngestError {
  uint64_t line_number = 0;  // 1-based
  uint64_t byte_offset = 0;  // offset of the line's first byte in the input
  std::string message;
};

/// Degraded-mode ingestion report.
struct IngestStats {
  uint64_t lines_read = 0;       // all lines seen, blank ones included
  uint64_t blank_lines = 0;
  uint64_t records = 0;          // successfully parsed
  uint64_t malformed_lines = 0;  // rejected (skipped or fatal)
  uint64_t bytes_read = 0;
  /// Byte offset just past the last line whose processing completed without
  /// aborting the read (its trailing '\n' included). This is the exact
  /// resume offset for checkpoint/restart: re-reading the source from here
  /// revisits nothing and misses nothing. Equal to bytes_read on a
  /// successful read; on an abort it stops at the start of the aborting
  /// line, whereas bytes_read covers the bytes actually scanned.
  uint64_t bytes_consumed = 0;
  /// First IngestOptions::max_recorded_errors rejections.
  std::vector<IngestError> errors;

  /// Malformed fraction of non-blank lines seen so far (0 when none seen).
  double ErrorRate() const;

  /// Folds a follow-up read's stats into this one, shifting the other's
  /// line numbers and byte offsets past this report's totals — so per-chunk
  /// reads of one logical stream accumulate a coherent report. Assumes the
  /// follow-up read started at this report's bytes_read; after an aborted
  /// read (bytes_read > bytes_consumed) call RewindToConsumed() first, since
  /// a resumed read restarts at bytes_consumed.
  void Absorb(const IngestStats& other, size_t max_recorded_errors);

  /// Rewinds the report to its consumed prefix. After an aborted read the
  /// aborting line was scanned but not consumed: it is counted in
  /// lines_read/malformed_lines, its error may be recorded, and bytes_read
  /// covers it while bytes_consumed stops at its first byte. A resumed read
  /// restarts at bytes_consumed and re-scans that line, so this backs out
  /// its counts (and restores bytes_read == bytes_consumed) to keep the
  /// cumulative report — and the kFailAboveRate baseline and Absorb's
  /// offset rebasing — exact across the resume. No-op after a clean read.
  void RewindToConsumed();
};

/// Reads JSON-Lines from a stream, invoking `sink` per parsed record. Blank
/// lines are skipped. Malformed lines are handled per
/// `options.on_malformed`; `stats`, when provided, receives the ingestion
/// report (also on failure, describing everything read up to the abort).
Status ReadJsonLines(std::istream& in, const RecordSink& sink,
                     const IngestOptions& options,
                     IngestStats* stats = nullptr);

/// Strict-mode convenience (MalformedLinePolicy::kFail): the first malformed
/// line aborts with its line number.
Status ReadJsonLines(std::istream& in, const RecordSink& sink,
                     const ParseOptions& options = {});

/// Zero-copy counterpart over an in-memory buffer: lines are string_view
/// slices of `text`, no per-line copies are made.
Status ReadJsonLines(std::string_view text, const RecordSink& sink,
                     const IngestOptions& options,
                     IngestStats* stats = nullptr);

/// Generic degraded-mode ingestion over an in-memory buffer: the same
/// line splitting, BOM/CRLF tolerance, blank-line skipping, policy
/// enforcement and reporting as ReadJsonLines, with per-line handling
/// delegated to `fn` instead of the DOM parser. The DOM-free direct
/// inference path (inference/direct_infer.h) rides on this.
Status IngestJsonLines(std::string_view text, const LineFn& fn,
                       const IngestOptions& options,
                       IngestStats* stats = nullptr);

/// Reads an entire JSON-Lines file into memory.
Result<std::vector<ValueRef>> ReadJsonLinesFile(
    const std::string& path, const IngestOptions& options,
    IngestStats* stats = nullptr);
Result<std::vector<ValueRef>> ReadJsonLinesFile(
    const std::string& path, const ParseOptions& options = {});

/// Parses every line of `text` as one JSON value (zero-copy line slicing).
Result<std::vector<ValueRef>> ParseJsonLines(std::string_view text,
                                             const IngestOptions& options,
                                             IngestStats* stats = nullptr);
Result<std::vector<ValueRef>> ParseJsonLines(std::string_view text,
                                             const ParseOptions& options = {});

/// Writes values as JSON-Lines text (compact, '\n'-separated, trailing '\n').
std::string ToJsonLines(const std::vector<ValueRef>& values);

}  // namespace jsonsi::json

#endif  // JSONSI_JSON_JSONL_H_
