// JSON-Lines ingestion: one JSON value per line, the standard layout of
// crawled datasets (GitHub events, Twitter firehose dumps, Wikidata exports).

#ifndef JSONSI_JSON_JSONL_H_
#define JSONSI_JSON_JSONL_H_

#include <functional>
#include <istream>
#include <string>
#include <vector>

#include "json/parser.h"
#include "json/value.h"
#include "support/status.h"

namespace jsonsi::json {

/// Per-record sink. Return false to stop early (e.g. record-count limits).
using RecordSink = std::function<bool(ValueRef value)>;

/// Reads JSON-Lines from a stream, invoking `sink` per parsed record. Blank
/// lines are skipped. The first malformed line aborts with its line number.
Status ReadJsonLines(std::istream& in, const RecordSink& sink,
                     const ParseOptions& options = {});

/// Reads an entire JSON-Lines file into memory.
Result<std::vector<ValueRef>> ReadJsonLinesFile(
    const std::string& path, const ParseOptions& options = {});

/// Parses every line of `text` as one JSON value.
Result<std::vector<ValueRef>> ParseJsonLines(std::string_view text,
                                             const ParseOptions& options = {});

/// Writes values as JSON-Lines text (compact, '\n'-separated, trailing '\n').
std::string ToJsonLines(const std::vector<ValueRef>& values);

}  // namespace jsonsi::json

#endif  // JSONSI_JSON_JSONL_H_
