// Internal line-scanning helpers shared by the serial JSON-Lines reader
// (jsonl.cc) and the chunked parallel reader (jsonl_chunk.cc). Both must
// agree byte-for-byte on what constitutes a line, a blank line, and a BOM,
// or the chunked path's serial-parity guarantee breaks.

#ifndef JSONSI_JSON_LINE_SCAN_H_
#define JSONSI_JSON_LINE_SCAN_H_

#include <string_view>

namespace jsonsi::json::internal {

inline constexpr std::string_view kUtf8Bom = "\xEF\xBB\xBF";

/// True when the line holds only spaces, tabs, or a stray '\r'.
inline bool IsBlankLine(std::string_view line) {
  for (char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

/// Strips the BOM/CRLF decorations every reader tolerates: a UTF-8 BOM on
/// the stream's first line, and a trailing '\r' (CRLF input) on any line.
inline std::string_view UndecorateLine(std::string_view line,
                                       bool stream_first_line) {
  if (stream_first_line && line.substr(0, kUtf8Bom.size()) == kUtf8Bom) {
    line.remove_prefix(kUtf8Bom.size());
  }
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  return line;
}

}  // namespace jsonsi::json::internal

#endif  // JSONSI_JSON_LINE_SCAN_H_
