#include "json/tokenizer.h"

namespace jsonsi::json {

Status Tokenizer::Next(Token* token, std::string* unescaped) {
  cursor_.SkipWhitespace();
  token->offset = cursor_.pos;
  token->line = cursor_.line;
  token->column = cursor_.Column();
  token->text = {};
  if (cursor_.AtEnd()) {
    token->kind = TokenKind::kEnd;
    return Status::OK();
  }
  switch (cursor_.Peek()) {
    case '{':
      token->kind = TokenKind::kLBrace;
      cursor_.Advance();
      return Status::OK();
    case '}':
      token->kind = TokenKind::kRBrace;
      cursor_.Advance();
      return Status::OK();
    case '[':
      token->kind = TokenKind::kLBracket;
      cursor_.Advance();
      return Status::OK();
    case ']':
      token->kind = TokenKind::kRBracket;
      cursor_.Advance();
      return Status::OK();
    case ':':
      token->kind = TokenKind::kColon;
      cursor_.Advance();
      return Status::OK();
    case ',':
      token->kind = TokenKind::kComma;
      cursor_.Advance();
      return Status::OK();
    case 'n':
      if (scan::ConsumeLiteral(cursor_, "null")) {
        token->kind = TokenKind::kNull;
        return Status::OK();
      }
      return cursor_.Error("invalid literal (expected 'null')");
    case 't':
      if (scan::ConsumeLiteral(cursor_, "true")) {
        token->kind = TokenKind::kTrue;
        return Status::OK();
      }
      return cursor_.Error("invalid literal (expected 'true')");
    case 'f':
      if (scan::ConsumeLiteral(cursor_, "false")) {
        token->kind = TokenKind::kFalse;
        return Status::OK();
      }
      return cursor_.Error("invalid literal (expected 'false')");
    case '"': {
      size_t start = cursor_.pos;
      JSONSI_RETURN_IF_ERROR(scan::ScanString(cursor_, unescaped));
      token->kind = TokenKind::kString;
      // Raw contents between the quotes; payload is validated, not copied.
      token->text =
          cursor_.text.substr(start + 1, cursor_.pos - start - 2);
      return Status::OK();
    }
    default: {
      // Everything else lexes as a number — including stray punctuation,
      // which then fails with "invalid number" at the token start, exactly
      // like the DOM parser's ParseNumber fallthrough.
      size_t start = cursor_.pos;
      double value = 0;
      JSONSI_RETURN_IF_ERROR(scan::ScanNumber(cursor_, &value));
      token->kind = TokenKind::kNumber;
      token->text = cursor_.text.substr(start, cursor_.pos - start);
      return Status::OK();
    }
  }
}

}  // namespace jsonsi::json
