// SIMD kernel registry for the structural-index tokenizer front-end.
//
// Stage 1 of the two-stage scan (json/simd/structural.h) classifies input
// in 64-byte blocks. The classification routine is selected ONCE per
// process from the instruction sets the CPU actually supports — AVX2 and
// SSE4 on x86-64, NEON on aarch64 — with the PR-5 SWAR scanner as the
// always-correct scalar fallback (a scalar-forced run never builds an
// index at all; the cursor fast paths in json/scan.h run unchanged, which
// is what makes scalar the parity reference).
//
// Selection order is avx2 > sse4 > neon > scalar, overridable two ways:
//   * JSI_FORCE_KERNEL=<name> in the environment (read once, lazily);
//   * ForceKernel(name) — the CLI's --simd flag and the tests.
// Forcing a kernel the CPU (or build) does not have falls back to scalar
// with a warning on stderr rather than failing: a pinned deployment config
// must keep working when the fleet gains older machines. Unknown names are
// rejected with an InvalidArgument listing the valid spellings.
//
// Every kernel must be observationally identical: the differential suite
// tests/simd_parity_test.cc runs the adversarial gallery under each
// available kernel and asserts byte-identical Status messages, positions,
// IngestStats, and inferred types against the scalar path.

#ifndef JSONSI_JSON_SIMD_KERNEL_H_
#define JSONSI_JSON_SIMD_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace jsonsi::json::simd {

enum class Kernel : int {
  kScalar = 0,
  kSSE4 = 1,
  kAVX2 = 2,
  kNEON = 3,
};

/// Per-byte classification of one 64-byte block, one bit per byte in
/// little-endian bit order (bit i describes byte i). Produced by the
/// per-ISA classify routines; consumed by simd::StructuralIndex.
struct BlockMasks {
  uint64_t ws = 0;         // ' ', '\t', '\n', '\r'
  uint64_t nl = 0;         // '\n'
  uint64_t digit = 0;      // '0'..'9'
  uint64_t quote = 0;      // '"'
  uint64_t backslash = 0;  // '\\'
  uint64_t control = 0;    // bytes < 0x20 (unsigned)
  uint64_t punct = 0;      // '{' '}' '[' ']' ':' ','
};

/// Classifies exactly 64 bytes starting at `block`.
using ClassifyFn = void (*)(const char* block, BlockMasks* out);

/// First index of `byte` in [p, p+n), or `n` when absent.
using FindByteFn = size_t (*)(const char* p, size_t n, char byte);

/// Output planes of one index build; each points at `blocks` words (word b
/// covers bytes [64*b, 64*b + 64) of the input).
struct IndexPlanes {
  uint64_t* nonws;
  uint64_t* newline;
  uint64_t* digit;
  uint64_t* stop;
  uint64_t* structural;
};

/// Block-to-block carries of the in-string masking: whether an odd-length
/// backslash run ends exactly at the block boundary, and the all-ones /
/// all-zeros "currently inside a string" state.
struct ScanCarries {
  uint64_t ends_odd_backslash = 0;
  uint64_t in_string = 0;
};

/// Builds all planes over `blocks` full 64-byte blocks in one pass. This is
/// the hot stage-1 entry: each ISA compiles the entire loop — classify,
/// carry propagation, plane stores — as one target-attributed function, so
/// nothing spills per block. The (padded) tail block is NOT handled here;
/// StructuralIndex::Build finishes it with one classify call on a padded
/// copy (same kernel — all classifiers are bit-identical by contract).
using BuildFn = void (*)(const char* data, size_t blocks,
                         const IndexPlanes& out, ScanCarries* carry);

struct KernelOps {
  Kernel id;
  const char* name;
  ClassifyFn classify;
  FindByteFn find_byte;
  BuildFn build;
};

/// Stable lowercase name ("scalar", "sse4", "avx2", "neon").
const char* KernelName(Kernel k);

/// True when the kernel is compiled in AND the CPU supports it. kScalar is
/// always available.
bool KernelAvailable(Kernel k);

/// Every available kernel, scalar first — what the parity suite iterates.
std::vector<Kernel> AvailableKernels();

/// Best available kernel (avx2 > sse4 > neon > scalar).
Kernel DetectBestKernel();

/// The kernel in effect for this process. First call resolves
/// JSI_FORCE_KERNEL (unknown value: warning, auto-detect; unavailable
/// value: warning, scalar) and publishes the `infer.simd.kernel` gauge.
Kernel ActiveKernel();

/// Ops vtable of ActiveKernel(). The scalar entry is valid too (it backs
/// tail blocks and the cross-kernel bitmap tests).
const KernelOps& ActiveOps();

/// Ops for a specific kernel; scalar ops when `k` is not available.
const KernelOps& OpsFor(Kernel k);

/// Forces the kernel by name ("auto" re-runs detection). Unknown names
/// return InvalidArgument; known-but-unavailable kernels fall back to
/// scalar with a warning on stderr and return OK.
Status ForceKernel(std::string_view name);

/// Forces a specific kernel (falls back to scalar when unavailable).
void SetKernel(Kernel k);

/// Drops the cached selection so the next ActiveKernel() re-reads
/// JSI_FORCE_KERNEL. Tests only.
void ResetKernelForTesting();

/// First index of '\n' at or after `from`, or `text.size()` when there is
/// none — a dispatched memchr used by the JSONL chunk splitter and the
/// chunk workers' line loops.
size_t FindNewline(std::string_view text, size_t from);

/// True when documents of `size` bytes should get a structural index:
/// a vector kernel is active, the host is little-endian, and the document
/// spans at least one full 64-byte block. Scalar runs never index — the
/// SWAR cursor fast paths ARE the scalar kernel.
bool ShouldIndex(size_t size);

/// Counter "infer.simd.bytes.<name>" for per-kernel byte accounting
/// (resolved once per kernel, cheap to call on the hot path).
void AddKernelBytes(uint64_t bytes);

}  // namespace jsonsi::json::simd

#endif  // JSONSI_JSON_SIMD_KERNEL_H_
