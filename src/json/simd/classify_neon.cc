// NEON (aarch64) block classifier: four 16-byte vectors per 64-byte block.
// NEON has no pmovmskb; the bit-gather uses the standard and-with-bit-
// position + three pairwise-add reduction, yielding the same little-endian
// bit order as the x86 kernels. NEON byte comparisons (vcleq_u8 etc.) are
// natively unsigned, so no signed-compare pitfalls here. Parity-gated by
// tests/simd_parity_test.cc on ARM hosts.

#include "json/simd/classify_internal.h"
#include "json/simd/plane_combine.h"

#if defined(JSONSI_SIMD_ARM)

#include <arm_neon.h>

namespace jsonsi::json::simd::internal {
namespace {

inline uint64_t Mask16(uint8x16_t m) {
  const uint8x16_t bit = {0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80,
                          0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80};
  uint8x16_t masked = vandq_u8(m, bit);
  uint8x16_t sum = vpaddq_u8(masked, masked);
  sum = vpaddq_u8(sum, sum);
  sum = vpaddq_u8(sum, sum);
  return static_cast<uint64_t>(
      vgetq_lane_u16(vreinterpretq_u16_u8(sum), 0));
}

inline uint8x16_t Eq(uint8x16_t v, uint8_t b) {
  return vceqq_u8(v, vdupq_n_u8(b));
}

// always_inline body shared by the ops entry point and the build loop (see
// classify_avx2.cc for why).
__attribute__((always_inline)) inline void ClassifyBody(const char* block,
                                                        BlockMasks* out) {
  *out = BlockMasks{};
  for (size_t i = 0; i < 4; ++i) {
    uint8x16_t v =
        vld1q_u8(reinterpret_cast<const uint8_t*>(block) + i * 16);
    uint64_t shift = i * 16;
    uint8x16_t nl = Eq(v, '\n');
    uint8x16_t ws = vorrq_u8(vorrq_u8(Eq(v, ' '), Eq(v, '\t')),
                             vorrq_u8(nl, Eq(v, '\r')));
    uint8x16_t digit =
        vandq_u8(vcgeq_u8(v, vdupq_n_u8('0')), vcleq_u8(v, vdupq_n_u8('9')));
    uint8x16_t punct =
        vorrq_u8(vorrq_u8(vorrq_u8(Eq(v, '{'), Eq(v, '}')),
                          vorrq_u8(Eq(v, '['), Eq(v, ']'))),
                 vorrq_u8(Eq(v, ':'), Eq(v, ',')));
    out->ws |= Mask16(ws) << shift;
    out->nl |= Mask16(nl) << shift;
    out->digit |= Mask16(digit) << shift;
    out->quote |= Mask16(Eq(v, '"')) << shift;
    out->backslash |= Mask16(Eq(v, '\\')) << shift;
    out->control |= Mask16(vcltq_u8(v, vdupq_n_u8(0x20))) << shift;
    out->punct |= Mask16(punct) << shift;
  }
}

void ClassifyNEON(const char* block, BlockMasks* out) {
  ClassifyBody(block, out);
}

size_t FindByteNEON(const char* p, size_t n, char byte) {
  const uint8x16_t needle = vdupq_n_u8(static_cast<uint8_t>(byte));
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint8x16_t v = vld1q_u8(reinterpret_cast<const uint8_t*>(p) + i);
    uint64_t hits = Mask16(vceqq_u8(v, needle));
    if (hits != 0) {
      return i + static_cast<size_t>(__builtin_ctzll(hits));
    }
  }
  for (; i < n; ++i) {
    if (p[i] == byte) return i;
  }
  return n;
}

// The hot stage-1 loop; NEON is baseline on aarch64, so no target
// attribute is needed for the classifier to inline.
void BuildNEON(const char* data, size_t blocks, const IndexPlanes& out,
               ScanCarries* carry) {
  for (size_t b = 0; b < blocks; ++b) {
    BlockMasks m;
    ClassifyBody(data + b * 64, &m);
    CombineBlock(m, ~uint64_t{0}, b, out, carry);
  }
}

}  // namespace

const KernelOps kNEONOps = {Kernel::kNEON, "neon", ClassifyNEON,
                            FindByteNEON, BuildNEON};

}  // namespace jsonsi::json::simd::internal

#endif  // JSONSI_SIMD_ARM
