// Internal glue between the kernel registry (kernel.cc) and the per-ISA
// classify translation units. Each TU defines one KernelOps value; which
// ones exist depends on the target architecture, so the arch probe macros
// live here and every party guards on them identically.

#ifndef JSONSI_JSON_SIMD_CLASSIFY_INTERNAL_H_
#define JSONSI_JSON_SIMD_CLASSIFY_INTERNAL_H_

#include "json/simd/kernel.h"

#if defined(__x86_64__) || defined(__i386__)
#define JSONSI_SIMD_X86 1
#elif defined(__aarch64__)
#define JSONSI_SIMD_ARM 1
#endif

namespace jsonsi::json::simd::internal {

// Always present: SWAR classify + libc memchr. Also backs the tail block
// of every index build and the cross-kernel bitmap tests.
extern const KernelOps kScalarOps;

#if defined(JSONSI_SIMD_X86)
extern const KernelOps kSSE4Ops;
extern const KernelOps kAVX2Ops;
#endif
#if defined(JSONSI_SIMD_ARM)
extern const KernelOps kNEONOps;
#endif

}  // namespace jsonsi::json::simd::internal

#endif  // JSONSI_JSON_SIMD_CLASSIFY_INTERNAL_H_
