// Scalar (SWAR) block classifier: the portable reference every vector
// kernel is differentially tested against, and the routine that classifies
// the padded tail block of every index build. Reuses the exact carry-free
// byte masks of json/scan.h, so a bit set here is set iff the PR-5 SWAR
// cursor paths would have stopped on (or matched) that byte.

#include <cstring>

#include "json/scan.h"
#include "json/simd/classify_internal.h"
#include "json/simd/plane_combine.h"

namespace jsonsi::json::simd::internal {
namespace {

using jsonsi::json::scan::swar::DigitMask;
using jsonsi::json::scan::swar::EqMask;
using jsonsi::json::scan::swar::kHighs;
using jsonsi::json::scan::swar::LoadWord;
using jsonsi::json::scan::swar::LtMask;
using jsonsi::json::scan::swar::WhitespaceMask;

// Compresses a 0x80-per-matching-lane SWAR mask into 8 little-endian bits
// (bit j = byte j), the SWAR stand-in for pmovmskb.
inline uint64_t Movemask8(uint64_t lanes) {
  return ((lanes >> 7) * 0x0102040810204080ull) >> 56;
}

void ClassifyScalar(const char* block, BlockMasks* out) {
  *out = BlockMasks{};
  for (size_t i = 0; i < 8; ++i) {
    uint64_t w = LoadWord(block + i * 8);
    uint64_t shift = i * 8;
    out->ws |= Movemask8(WhitespaceMask(w)) << shift;
    out->nl |= Movemask8(EqMask(w, '\n')) << shift;
    out->digit |= Movemask8(DigitMask(w)) << shift;
    out->quote |= Movemask8(EqMask(w, '"')) << shift;
    out->backslash |= Movemask8(EqMask(w, '\\')) << shift;
    out->control |= Movemask8(LtMask(w, 0x20)) << shift;
    out->punct |= Movemask8(EqMask(w, '{') | EqMask(w, '}') |
                            EqMask(w, '[') | EqMask(w, ']') |
                            EqMask(w, ':') | EqMask(w, ',')) << shift;
  }
}

size_t FindByteScalar(const char* p, size_t n, char byte) {
  const void* hit = std::memchr(p, static_cast<unsigned char>(byte), n);
  return hit == nullptr
             ? n
             : static_cast<size_t>(static_cast<const char*>(hit) - p);
}

void BuildScalar(const char* data, size_t blocks, const IndexPlanes& out,
                 ScanCarries* carry) {
  for (size_t b = 0; b < blocks; ++b) {
    BlockMasks m;
    ClassifyScalar(data + b * 64, &m);
    CombineBlock(m, ~uint64_t{0}, b, out, carry);
  }
}

}  // namespace

const KernelOps kScalarOps = {Kernel::kScalar, "scalar", ClassifyScalar,
                              FindByteScalar, BuildScalar};

}  // namespace jsonsi::json::simd::internal
