// Shared block-combine step of every stage-1 index build: takes one
// block's raw BlockMasks and folds it into the output planes, threading
// the backslash-run and in-string carries across blocks. Pulled into a
// header (no target attributes, plain integer ops) so each per-ISA build
// loop inlines it next to its vector classifier — the whole of stage 1
// then compiles to one straight-line function per ISA with no per-block
// calls or mask spills.

#ifndef JSONSI_JSON_SIMD_PLANE_COMBINE_H_
#define JSONSI_JSON_SIMD_PLANE_COMBINE_H_

#include <cstdint>

#include "json/simd/kernel.h"

namespace jsonsi::json::simd::internal {

// Marks the character *after* every odd-length backslash run, i.e. every
// escaped character — simdjson's find_odd_backslash_sequences. The carry
// in `*ends_odd` (0 or 1) propagates a run that crosses the 64-byte block
// boundary.
inline uint64_t OddBackslashEnds(uint64_t bs, uint64_t* ends_odd) {
  constexpr uint64_t kEven = 0x5555555555555555ull;
  constexpr uint64_t kOdd = ~kEven;
  uint64_t start_edges = bs & ~(bs << 1);
  uint64_t even_start_mask = kEven ^ *ends_odd;
  uint64_t even_starts = start_edges & even_start_mask;
  uint64_t odd_starts = start_edges & ~even_start_mask;
  uint64_t even_carries = bs + even_starts;
  uint64_t odd_carries;
  bool overflow = __builtin_add_overflow(bs, odd_starts, &odd_carries);
  odd_carries |= *ends_odd;
  *ends_odd = overflow ? 1 : 0;
  uint64_t even_carry_ends = even_carries & ~bs;
  uint64_t odd_carry_ends = odd_carries & ~bs;
  return (even_carry_ends & kOdd) | (odd_carry_ends & kEven);
}

// Cumulative XOR from bit 0 upward: bit i of the result is the parity of
// bits [0, i] of `x`. The portable carry-less-multiply-by-all-ones.
inline uint64_t PrefixXor(uint64_t x) {
  x ^= x << 1;
  x ^= x << 2;
  x ^= x << 4;
  x ^= x << 8;
  x ^= x << 16;
  x ^= x << 32;
  return x;
}

// Folds block `b`'s masks into the planes. `valid` limits the block to the
// document's real bytes (all-ones except for the padded tail block).
// Templated on the prefix-XOR so x86 build loops substitute a carry-less
// multiply (PCLMULQDQ, ~3 cycles) for the 12-op shift chain — the chain is
// loop-carried through `carry`, so its latency bounds build throughput.
template <uint64_t (*PrefixXorFn)(uint64_t)>
inline void CombineBlockT(const BlockMasks& m, uint64_t valid, size_t b,
                          const IndexPlanes& out, ScanCarries* carry) {
  const uint64_t ws = m.ws & valid;
  out.nonws[b] = ~ws & valid;
  out.newline[b] = m.nl & valid;
  out.digit[b] = m.digit & valid;
  const uint64_t quote = m.quote & valid;
  const uint64_t backslash = m.backslash & valid;
  out.stop[b] = quote | backslash | (m.control & valid);

  // In-string masking with cross-block carries: escaped quotes are
  // dropped, remaining quotes toggle string state via prefix-XOR. The
  // quote bit itself lands "inside", the closing quote "outside", so
  // punctuation between quotes — and only there — is masked out. Both
  // branches skip the (serial) carry math for the common all-text and
  // no-quote blocks; they are well-predicted on real corpora.
  uint64_t escaped;
  if ((backslash | carry->ends_odd_backslash) == 0) {
    escaped = 0;
  } else {
    escaped = OddBackslashEnds(backslash, &carry->ends_odd_backslash);
  }
  const uint64_t quotes = quote & ~escaped;
  uint64_t in_string;
  if (quotes == 0) {
    in_string = carry->in_string;
  } else {
    in_string = PrefixXorFn(quotes) ^ carry->in_string;
    carry->in_string =
        static_cast<uint64_t>(static_cast<int64_t>(in_string) >> 63);
  }
  out.structural[b] = m.punct & valid & ~in_string;
}

inline void CombineBlock(const BlockMasks& m, uint64_t valid, size_t b,
                         const IndexPlanes& out, ScanCarries* carry) {
  CombineBlockT<PrefixXor>(m, valid, b, out, carry);
}

}  // namespace jsonsi::json::simd::internal

#endif  // JSONSI_JSON_SIMD_PLANE_COMBINE_H_
