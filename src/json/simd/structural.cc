#include "json/simd/structural.h"

#include <cstring>

#include "json/simd/classify_internal.h"
#include "json/simd/plane_combine.h"

namespace jsonsi::json::simd {

namespace {

// Thread-local recycling of index buffers (LIFO, so nested tokenizers on
// one thread each get their own buffer back). Oversized buffers are not
// pooled: one pathological multi-megabyte line must not pin its bitmaps
// for the life of the thread.
constexpr size_t kPoolSlots = 4;
constexpr size_t kPoolMaxWords = (1u << 20) / 8;  // ~1 MiB of bitmap words

thread_local std::vector<std::vector<uint64_t>> t_pool;

}  // namespace

StructuralIndex::StructuralIndex() {
  if (!t_pool.empty()) {
    storage_ = std::move(t_pool.back());
    t_pool.pop_back();
  }
}

StructuralIndex::~StructuralIndex() {
  if (storage_.capacity() > 0 && storage_.capacity() <= kPoolMaxWords &&
      t_pool.size() < kPoolSlots) {
    t_pool.push_back(std::move(storage_));
  }
}

void StructuralIndex::Build(std::string_view text, Kernel kernel) {
  const KernelOps& ops = OpsFor(kernel);
  kernel_ = ops.id;
  size_ = text.size();
  words_ = (size_ + 63) / 64;
  storage_.resize(words_ * kPlanes);

  IndexPlanes planes{mutable_plane(kNonWs), mutable_plane(kNewline),
                     mutable_plane(kDigit), mutable_plane(kStop),
                     mutable_plane(kStructural)};
  ScanCarries carry;

  // Full blocks run in one per-ISA pass (classify + carry propagation +
  // plane stores fused into one target-compiled loop, see BuildFn).
  const size_t full_blocks = size_ / 64;
  ops.build(text.data(), full_blocks, planes, &carry);

  if (words_ > full_blocks) {
    // Padded tail: copied into a zero-filled block and classified with the
    // same kernel as the full blocks (all classifiers are bit-identical by
    // the parity contract, and NUL padding is plain control-class bytes);
    // bits past the end are masked off.
    char buf[64] = {0};
    const size_t tail = size_ - full_blocks * 64;
    std::memcpy(buf, text.data() + full_blocks * 64, tail);
    BlockMasks m;
    ops.classify(buf, &m);
    const uint64_t valid =
        tail == 64 ? ~uint64_t{0} : ((uint64_t{1} << tail) - 1);
    internal::CombineBlock(m, valid, full_blocks, planes, &carry);
  }
}

uint64_t StructuralIndex::StructuralCount() const {
  uint64_t count = 0;
  const uint64_t* s = plane(kStructural);
  for (size_t w = 0; w < words_; ++w) {
    count += static_cast<uint64_t>(std::popcount(s[w]));
  }
  return count;
}

void StructuralIndex::CountNewlines(size_t pos, size_t target, size_t* count,
                                    size_t* last) const {
  *count = 0;
  *last = 0;
  if (target <= pos) return;
  const uint64_t* nl = plane(kNewline);
  size_t w_begin = pos >> 6;
  size_t w_end = (target - 1) >> 6;
  for (size_t w = w_begin; w <= w_end && w < words_; ++w) {
    uint64_t word = nl[w];
    if (w == w_begin) word &= ~uint64_t{0} << (pos & 63);
    if (w == w_end && ((target & 63) != 0)) {
      word &= (uint64_t{1} << (target & 63)) - 1;
    }
    if (word == 0) continue;
    *count += static_cast<size_t>(std::popcount(word));
    *last = (w << 6) + 63 - static_cast<size_t>(std::countl_zero(word));
  }
}

}  // namespace jsonsi::json::simd
