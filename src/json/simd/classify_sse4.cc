// SSE4 block classifier: four 16-byte vectors per 64-byte block, one
// pcmpeqb per character class, pmovmskb to gather little-endian bit masks.
// Built with a function-level target attribute so the rest of the binary
// keeps the portable baseline; runtime dispatch (json/simd/kernel.cc) only
// selects this kernel when the CPU reports SSE4.2.
//
// Byte comparisons that involve ordering use unsigned idioms (min_epu8 /
// max_epu8) — pcmpgtb is signed and would misclassify UTF-8 continuation
// bytes >= 0x80, which the parity suite's Utf8ContinuationBytes sweep
// exists to catch.

#include "json/simd/classify_internal.h"
#include "json/simd/plane_combine.h"

#if defined(JSONSI_SIMD_X86)

#include <immintrin.h>

namespace jsonsi::json::simd::internal {
namespace {

#define JSONSI_TARGET_SSE4 __attribute__((target("sse4.2")))

JSONSI_TARGET_SSE4 inline uint64_t Mask16(__m128i m) {
  return static_cast<uint64_t>(
      static_cast<unsigned>(_mm_movemask_epi8(m)));
}

JSONSI_TARGET_SSE4 inline __m128i Eq(__m128i v, char b) {
  return _mm_cmpeq_epi8(v, _mm_set1_epi8(b));
}

// Unsigned v <= bound, per byte.
JSONSI_TARGET_SSE4 inline __m128i LeU(__m128i v, uint8_t bound) {
  return _mm_cmpeq_epi8(
      _mm_min_epu8(v, _mm_set1_epi8(static_cast<char>(bound))), v);
}

// Whitespace / punctuation via single pshufb lookups — see the table
// derivations in classify_avx2.cc (identical 16-byte tables, half width).
JSONSI_TARGET_SSE4 inline __m128i WhitespaceV(__m128i v) {
  const __m128i table =
      _mm_setr_epi8(' ', 100, 100, 100, 17, 100, 113, 2, 100, '\t', '\n',
                    112, 100, '\r', 100, 100);
  return _mm_cmpeq_epi8(_mm_shuffle_epi8(table, v), v);
}

JSONSI_TARGET_SSE4 inline __m128i PunctV(__m128i v, __m128i control) {
  const __m128i table = _mm_setr_epi8(1, 1, 1, 1, 1, 1, 1, 1, 1, 1, ':',
                                      '{', ',', '}', 1, 1);
  __m128i curlified = _mm_or_si128(v, _mm_set1_epi8(0x20));
  __m128i hit = _mm_cmpeq_epi8(_mm_shuffle_epi8(table, curlified), curlified);
  return _mm_andnot_si128(control, hit);
}

// always_inline body shared by the ops entry point and the build loop (see
// classify_avx2.cc for why).
JSONSI_TARGET_SSE4 __attribute__((always_inline)) inline void ClassifyBody(
    const char* block, BlockMasks* out) {
  *out = BlockMasks{};
  for (size_t i = 0; i < 4; ++i) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + i * 16));
    uint64_t shift = i * 16;
    // '0' <= v <= '9', unsigned: v <= '9' and NOT v <= '/' ('0' - 1).
    __m128i digit = _mm_andnot_si128(LeU(v, '0' - 1), LeU(v, '9'));
    __m128i control = LeU(v, 0x1F);
    out->ws |= Mask16(WhitespaceV(v)) << shift;
    out->nl |= Mask16(Eq(v, '\n')) << shift;
    out->digit |= Mask16(digit) << shift;
    out->quote |= Mask16(Eq(v, '"')) << shift;
    out->backslash |= Mask16(Eq(v, '\\')) << shift;
    out->control |= Mask16(control) << shift;
    out->punct |= Mask16(PunctV(v, control)) << shift;
  }
}

JSONSI_TARGET_SSE4 void ClassifySSE4(const char* block, BlockMasks* out) {
  ClassifyBody(block, out);
}

JSONSI_TARGET_SSE4 size_t FindByteSSE4(const char* p, size_t n, char byte) {
  const __m128i needle = _mm_set1_epi8(byte);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    int hits = _mm_movemask_epi8(_mm_cmpeq_epi8(v, needle));
    if (hits != 0) {
      return i + static_cast<size_t>(__builtin_ctz(
                     static_cast<unsigned>(hits)));
    }
  }
  for (; i < n; ++i) {
    if (p[i] == byte) return i;
  }
  return n;
}

// The hot stage-1 loop: ClassifySSE4 and CombineBlock both inline here
// (same target on the former, no target on the latter), so each block is
// classified in registers and folded straight into the planes.
JSONSI_TARGET_SSE4 void BuildSSE4(const char* data, size_t blocks,
                                  const IndexPlanes& out,
                                  ScanCarries* carry) {
  for (size_t b = 0; b < blocks; ++b) {
    BlockMasks m;
    ClassifyBody(data + b * 64, &m);
    CombineBlock(m, ~uint64_t{0}, b, out, carry);
  }
}

#undef JSONSI_TARGET_SSE4

}  // namespace

const KernelOps kSSE4Ops = {Kernel::kSSE4, "sse4", ClassifySSE4,
                            FindByteSSE4, BuildSSE4};

}  // namespace jsonsi::json::simd::internal

#endif  // JSONSI_SIMD_X86
