// Stage 1 of the two-stage scan: a structural-character index over the
// whole document, built in one vectorized pass of 64-byte blocks by the
// active SIMD kernel (json/simd/kernel.h), then consumed by the pull
// tokenizer's bulk skips (stage 2, json/scan.h) instead of rescanning.
//
// The index stores one bit per input byte in five planes:
//
//   nonws       NOT JSON whitespace            -> SkipWhitespace jumps
//   newline     '\n'                           -> exact line/column upkeep
//   digit       '0'..'9'                       -> ScanNumber digit runs
//   stop        '"' | '\\' | control (< 0x20)  -> plain string runs
//   structural  {}[]:, OUTSIDE strings         -> per-record shape stats
//
// The structural plane is the full simdjson-style computation: odd-length
// backslash runs are resolved with an add-carry that propagates across
// block boundaries, unescaped quotes toggle an in-string mask via a
// prefix-XOR, and punctuation inside strings is masked out. The first four
// planes are per-byte predicates identical to the PR-5 SWAR masks, which
// is what makes every index-driven bulk skip byte-identical to the scalar
// cursor loops — including error positions (frozen API, differential-
// tested by tests/simd_parity_test.cc).
//
// Error-exactness is also why stage 2 jumps on whitespace/stop planes and
// NOT structural-to-structural the way simdjson does: on malformed input
// ("[1 2]") the frozen contract reports the error at the first non-
// whitespace byte, which a structural jump would sail past.

#ifndef JSONSI_JSON_SIMD_STRUCTURAL_H_
#define JSONSI_JSON_SIMD_STRUCTURAL_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "json/simd/kernel.h"

namespace jsonsi::json::simd {

class StructuralIndex {
 public:
  // Pooled storage: index buffers recycle through a small thread-local
  // free list so per-line tokenization does not pay one malloc per record.
  StructuralIndex();
  ~StructuralIndex();
  StructuralIndex(const StructuralIndex&) = delete;
  StructuralIndex& operator=(const StructuralIndex&) = delete;

  /// Builds all planes over `text` with OpsFor(kernel); the tail is
  /// classified through the same kernel on a zero-padded copy. Reusable.
  void Build(std::string_view text, Kernel kernel);
  void Build(std::string_view text) { Build(text, ActiveKernel()); }

  size_t size() const { return size_; }
  size_t words() const { return words_; }
  Kernel kernel() const { return kernel_; }

  /// Raw planes for the cross-kernel bitmap tests; word i covers bytes
  /// [64*i, 64*i + 64), bits past size() are zero.
  const uint64_t* nonws_plane() const { return plane(kNonWs); }
  const uint64_t* newline_plane() const { return plane(kNewline); }
  const uint64_t* digit_plane() const { return plane(kDigit); }
  const uint64_t* stop_plane() const { return plane(kStop); }
  const uint64_t* structural_plane() const { return plane(kStructural); }

  /// Number of structural characters outside strings in the document.
  uint64_t StructuralCount() const;

  // --- Bulk-skip queries (stage 2). All results are clamped to size(). ---

  /// First position >= pos holding a non-whitespace byte.
  size_t NextNonWhitespace(size_t pos) const {
    return FindNextSet(plane(kNonWs), pos);
  }

  /// First position >= pos holding a non-digit byte.
  size_t NextNonDigit(size_t pos) const {
    return FindNextClear(plane(kDigit), pos);
  }

  /// First position >= pos holding '"', '\\', or a control character.
  size_t NextStringStop(size_t pos) const {
    return FindNextSet(plane(kStop), pos);
  }

  /// Newlines in [pos, target): count and the position of the last one
  /// (meaningful only when *count > 0). Powers the exact line/line_start
  /// bookkeeping of bulk whitespace skips.
  void CountNewlines(size_t pos, size_t target, size_t* count,
                     size_t* last) const;

 private:
  enum Plane { kNonWs = 0, kNewline, kDigit, kStop, kStructural, kPlanes };

  const uint64_t* plane(size_t p) const {
    return storage_.data() + p * words_;
  }
  uint64_t* mutable_plane(size_t p) { return storage_.data() + p * words_; }

  size_t FindNextSet(const uint64_t* bm, size_t pos) const {
    size_t w = pos >> 6;
    if (w >= words_) return size_;
    uint64_t word = bm[w] & (~uint64_t{0} << (pos & 63));
    while (word == 0) {
      if (++w >= words_) return size_;
      word = bm[w];
    }
    return (w << 6) + static_cast<size_t>(std::countr_zero(word));
  }

  size_t FindNextClear(const uint64_t* bm, size_t pos) const {
    size_t w = pos >> 6;
    if (w >= words_) return size_;
    uint64_t word = ~bm[w] & (~uint64_t{0} << (pos & 63));
    while (word == 0) {
      if (++w >= words_) return size_;
      word = ~bm[w];
    }
    size_t found = (w << 6) + static_cast<size_t>(std::countr_zero(word));
    return found < size_ ? found : size_;
  }

  std::vector<uint64_t> storage_;  // kPlanes planes of words_ words each
  size_t size_ = 0;
  size_t words_ = 0;
  Kernel kernel_ = Kernel::kScalar;
};

}  // namespace jsonsi::json::simd

#endif  // JSONSI_JSON_SIMD_STRUCTURAL_H_
