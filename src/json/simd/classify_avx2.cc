// AVX2 block classifier: two 32-byte vectors per 64-byte block — the same
// comparison structure as the SSE4 kernel at twice the width. See
// classify_sse4.cc for the unsigned-comparison rationale; everything here
// is parity-gated by tests/simd_parity_test.cc against the scalar kernel.

#include "json/simd/classify_internal.h"
#include "json/simd/plane_combine.h"

#if defined(JSONSI_SIMD_X86)

#include <immintrin.h>

namespace jsonsi::json::simd::internal {
namespace {

#define JSONSI_TARGET_AVX2 __attribute__((target("avx2")))

JSONSI_TARGET_AVX2 inline uint64_t Mask32(__m256i m) {
  return static_cast<uint64_t>(
      static_cast<unsigned>(_mm256_movemask_epi8(m)));
}

JSONSI_TARGET_AVX2 inline __m256i Eq(__m256i v, char b) {
  return _mm256_cmpeq_epi8(v, _mm256_set1_epi8(b));
}

// Unsigned v <= bound, per byte.
JSONSI_TARGET_AVX2 inline __m256i LeU(__m256i v, uint8_t bound) {
  return _mm256_cmpeq_epi8(
      _mm256_min_epu8(v, _mm256_set1_epi8(static_cast<char>(bound))), v);
}

// Whitespace via one shuffle: pshufb indexes by the low nibble (high-bit
// bytes map to 0), and the table is built so table[b & 0xF] == b holds for
// exactly ' ', '\t', '\n', '\r' — the filler values have low nibbles that
// can never index their own slot.
JSONSI_TARGET_AVX2 inline __m256i WhitespaceV(__m256i v) {
  const __m256i table = _mm256_setr_epi8(
      ' ', 100, 100, 100, 17, 100, 113, 2, 100, '\t', '\n', 112, 100, '\r',
      100, 100, ' ', 100, 100, 100, 17, 100, 113, 2, 100, '\t', '\n', 112,
      100, '\r', 100, 100);
  return _mm256_cmpeq_epi8(_mm256_shuffle_epi8(table, v), v);
}

// Structural punctuation via one shuffle: OR-ing 0x20 folds '[' onto '{'
// and ']' onto '}', leaving four candidates 0x2C/0x3A/0x7B/0x7D with
// distinct low nibbles. Control bytes 0x0C/0x1A also curlify onto
// ','/':' — callers mask those out with the control plane.
JSONSI_TARGET_AVX2 inline __m256i PunctV(__m256i v, __m256i control) {
  const __m256i table = _mm256_setr_epi8(
      1, 1, 1, 1, 1, 1, 1, 1, 1, 1, ':', '{', ',', '}', 1, 1, 1, 1, 1, 1, 1,
      1, 1, 1, 1, 1, ':', '{', ',', '}', 1, 1);
  __m256i curlified = _mm256_or_si256(v, _mm256_set1_epi8(0x20));
  __m256i hit =
      _mm256_cmpeq_epi8(_mm256_shuffle_epi8(table, curlified), curlified);
  return _mm256_andnot_si256(control, hit);
}

// always_inline body shared by the ops entry point and the build loop —
// without it gcc keeps the (address-taken) classify as an out-of-line call
// per block, which costs the build pass ~2x.
JSONSI_TARGET_AVX2 __attribute__((always_inline)) inline void ClassifyBody(
    const char* block, BlockMasks* out) {
  *out = BlockMasks{};
  for (size_t i = 0; i < 2; ++i) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(block + i * 32));
    uint64_t shift = i * 32;
    __m256i digit = _mm256_andnot_si256(LeU(v, '0' - 1), LeU(v, '9'));
    __m256i control = LeU(v, 0x1F);
    out->ws |= Mask32(WhitespaceV(v)) << shift;
    out->nl |= Mask32(Eq(v, '\n')) << shift;
    out->digit |= Mask32(digit) << shift;
    out->quote |= Mask32(Eq(v, '"')) << shift;
    out->backslash |= Mask32(Eq(v, '\\')) << shift;
    out->control |= Mask32(control) << shift;
    out->punct |= Mask32(PunctV(v, control)) << shift;
  }
}

JSONSI_TARGET_AVX2 void ClassifyAVX2(const char* block, BlockMasks* out) {
  ClassifyBody(block, out);
}

JSONSI_TARGET_AVX2 size_t FindByteAVX2(const char* p, size_t n, char byte) {
  const __m256i needle = _mm256_set1_epi8(byte);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    unsigned hits = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)));
    if (hits != 0) return i + static_cast<size_t>(__builtin_ctz(hits));
  }
  for (; i < n; ++i) {
    if (p[i] == byte) return i;
  }
  return n;
}

#define JSONSI_TARGET_AVX2_CLMUL __attribute__((target("avx2,pclmul")))

// Prefix-XOR as a carry-less multiply by all-ones: one 3-cycle PCLMULQDQ
// instead of a 12-op shift chain. The chain is loop-carried (next block's
// in-string state depends on it), so its latency is the build's critical
// path. Dispatch guarantees pclmul is present whenever avx2 is selected.
JSONSI_TARGET_AVX2_CLMUL inline uint64_t PrefixXorClmul(uint64_t x) {
  __m128i v = _mm_set_epi64x(0, static_cast<long long>(x));
  __m128i ones = _mm_set1_epi8(static_cast<char>(0xFF));
  return static_cast<uint64_t>(
      _mm_cvtsi128_si64(_mm_clmulepi64_si128(v, ones, 0)));
}

// The hot stage-1 loop: ClassifyBody and the combine step both inline
// here, so each 64-byte block is classified in ymm registers and folded
// straight into the planes without a per-block call or BlockMasks spill.
JSONSI_TARGET_AVX2_CLMUL void BuildAVX2(const char* data, size_t blocks,
                                        const IndexPlanes& out,
                                        ScanCarries* carry) {
  for (size_t b = 0; b < blocks; ++b) {
    BlockMasks m;
    ClassifyBody(data + b * 64, &m);
    CombineBlockT<PrefixXorClmul>(m, ~uint64_t{0}, b, out, carry);
  }
}

#undef JSONSI_TARGET_AVX2_CLMUL

#undef JSONSI_TARGET_AVX2

}  // namespace

const KernelOps kAVX2Ops = {Kernel::kAVX2, "avx2", ClassifyAVX2,
                            FindByteAVX2, BuildAVX2};

}  // namespace jsonsi::json::simd::internal

#endif  // JSONSI_SIMD_X86
