#include "json/simd/kernel.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "json/simd/classify_internal.h"
#include "telemetry/telemetry.h"

namespace jsonsi::json::simd {

namespace {

// -1 = not yet resolved (next ActiveKernel() reads JSI_FORCE_KERNEL).
std::atomic<int> g_active{-1};
std::mutex g_init_mutex;

bool CpuSupports(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return true;
#if defined(JSONSI_SIMD_X86)
    case Kernel::kSSE4:
      return __builtin_cpu_supports("sse4.2");
    case Kernel::kAVX2:
      // BuildAVX2 uses PCLMULQDQ for its prefix-XOR; every AVX2 CPU ships
      // it, but the dispatch check keeps that an invariant, not a hope.
      return __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("pclmul");
#endif
#if defined(JSONSI_SIMD_ARM)
    case Kernel::kNEON:
      return true;  // NEON is baseline on aarch64
#endif
    default:
      return false;
  }
}

void PublishKernelGauge(Kernel k) {
  if (!telemetry::Enabled()) return;
  JSONSI_GAUGE("infer.simd.kernel").Set(static_cast<int64_t>(k));
}

Kernel Resolve(Kernel k) {
  g_active.store(static_cast<int>(k), std::memory_order_relaxed);
  PublishKernelGauge(k);
  return k;
}

// Applies JSI_FORCE_KERNEL under the init mutex. Unknown names warn and
// fall through to detection; unavailable kernels warn and pin scalar —
// the env override must never make a binary fail to start.
Kernel InitFromEnv() {
  std::lock_guard<std::mutex> lock(g_init_mutex);
  int cached = g_active.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<Kernel>(cached);
  const char* env = std::getenv("JSI_FORCE_KERNEL");
  if (env != nullptr && *env != '\0' &&
      std::strcmp(env, "auto") != 0) {
    Kernel k;
    if (std::strcmp(env, "scalar") == 0) {
      k = Kernel::kScalar;
    } else if (std::strcmp(env, "sse4") == 0) {
      k = Kernel::kSSE4;
    } else if (std::strcmp(env, "avx2") == 0) {
      k = Kernel::kAVX2;
    } else if (std::strcmp(env, "neon") == 0) {
      k = Kernel::kNEON;
    } else {
      std::fprintf(stderr,
                   "jsonsi: JSI_FORCE_KERNEL=%s is not a known SIMD kernel "
                   "(auto, scalar, sse4, avx2, neon); auto-detecting\n",
                   env);
      return Resolve(DetectBestKernel());
    }
    if (!KernelAvailable(k)) {
      std::fprintf(stderr,
                   "jsonsi: SIMD kernel '%s' (JSI_FORCE_KERNEL) is not "
                   "available on this CPU; falling back to scalar\n",
                   env);
      k = Kernel::kScalar;
    }
    return Resolve(k);
  }
  return Resolve(DetectBestKernel());
}

}  // namespace

const char* KernelName(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return "scalar";
    case Kernel::kSSE4:
      return "sse4";
    case Kernel::kAVX2:
      return "avx2";
    case Kernel::kNEON:
      return "neon";
  }
  return "scalar";
}

bool KernelAvailable(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return true;
#if defined(JSONSI_SIMD_X86)
    case Kernel::kSSE4:
    case Kernel::kAVX2:
      return CpuSupports(k);
#endif
#if defined(JSONSI_SIMD_ARM)
    case Kernel::kNEON:
      return true;
#endif
    default:
      return false;
  }
}

std::vector<Kernel> AvailableKernels() {
  std::vector<Kernel> kernels{Kernel::kScalar};
  for (Kernel k : {Kernel::kSSE4, Kernel::kAVX2, Kernel::kNEON}) {
    if (KernelAvailable(k)) kernels.push_back(k);
  }
  return kernels;
}

Kernel DetectBestKernel() {
  for (Kernel k : {Kernel::kAVX2, Kernel::kSSE4, Kernel::kNEON}) {
    if (KernelAvailable(k)) return k;
  }
  return Kernel::kScalar;
}

Kernel ActiveKernel() {
  int k = g_active.load(std::memory_order_relaxed);
  if (k >= 0) return static_cast<Kernel>(k);
  return InitFromEnv();
}

const KernelOps& OpsFor(Kernel k) {
  switch (k) {
#if defined(JSONSI_SIMD_X86)
    case Kernel::kSSE4:
      return internal::kSSE4Ops;
    case Kernel::kAVX2:
      return internal::kAVX2Ops;
#endif
#if defined(JSONSI_SIMD_ARM)
    case Kernel::kNEON:
      return internal::kNEONOps;
#endif
    default:
      return internal::kScalarOps;
  }
}

const KernelOps& ActiveOps() { return OpsFor(ActiveKernel()); }

Status ForceKernel(std::string_view name) {
  if (name == "auto") {
    Resolve(DetectBestKernel());
    return Status::OK();
  }
  Kernel k;
  if (name == "scalar") {
    k = Kernel::kScalar;
  } else if (name == "sse4") {
    k = Kernel::kSSE4;
  } else if (name == "avx2") {
    k = Kernel::kAVX2;
  } else if (name == "neon") {
    k = Kernel::kNEON;
  } else {
    return Status::InvalidArgument(
        "unknown SIMD kernel '" + std::string(name) +
        "' (expected auto, scalar, sse4, avx2, or neon)");
  }
  SetKernel(k);
  return Status::OK();
}

void SetKernel(Kernel k) {
  if (!KernelAvailable(k)) {
    std::fprintf(stderr,
                 "jsonsi: SIMD kernel '%s' is not available on this CPU; "
                 "falling back to scalar\n",
                 KernelName(k));
    k = Kernel::kScalar;
  }
  Resolve(k);
}

void ResetKernelForTesting() {
  g_active.store(-1, std::memory_order_relaxed);
}

size_t FindNewline(std::string_view text, size_t from) {
  if (from >= text.size()) return text.size();
  return from + ActiveOps().find_byte(text.data() + from, text.size() - from,
                                      '\n');
}

bool ShouldIndex(size_t size) {
  if constexpr (std::endian::native != std::endian::little) return false;
  return size >= 64 && ActiveKernel() != Kernel::kScalar;
}

void AddKernelBytes(uint64_t bytes) {
  // One counter per kernel so BENCH_direct_infer.json rows and Prometheus
  // scrapes attribute ingested bytes to the ISA that scanned them. The
  // kernel can change mid-process (tests, --simd), hence one cached
  // instrument per name rather than one per call site.
  static std::atomic<telemetry::Counter*> counters[4] = {};
  Kernel k = ActiveKernel();
  int i = static_cast<int>(k);
  telemetry::Counter* c = counters[i].load(std::memory_order_acquire);
  if (c == nullptr) {
    // GetCounter returns the same instrument for the same name, so a
    // racing double-resolve is harmless.
    c = &telemetry::MetricsRegistry::Global().GetCounter(
        std::string("infer.simd.bytes.") + KernelName(k));
    counters[i].store(c, std::memory_order_release);
  }
  c->Add(bytes);
}

}  // namespace jsonsi::json::simd
