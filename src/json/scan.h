// Shared low-level scanning for RFC 8259 literals: the single source of
// truth for number and string lexing used by both the DOM parser
// (json/parser.cc) and the DOM-free tokenizer (json/tokenizer.cc).
//
// The scanner is a small cursor (position + line/column accounting) plus
// free functions that consume one literal each. Hot loops use SWAR
// (SIMD-within-a-register) fast paths that classify 8 bytes per step:
// whitespace runs, plain (unescaped, non-control) string runs, and digit
// runs. The masks are exact — no borrow/carry false positives — so the
// fast paths are behaviour-preserving down to the error positions:
// a '\n' can never hide inside a bulk-advanced run (it is a control
// character inside strings, a separator elsewhere), which keeps the
// line/line_start bookkeeping byte-identical to the per-character loop.
//
// Everything in this header reports errors with the exact messages and
// "at line L, column C" suffix historically produced by Parse(...); the
// degraded-mode ingestion policies compare those strings across the DOM
// and direct paths, so treat every message here as frozen API.
//
// When a SIMD structural index (json/simd/structural.h) is attached to the
// cursor, the three bulk skips below consume its precomputed bit planes —
// one find-next-bit per run instead of rescanning — and the SWAR loops
// become the tail/fallback path. The planes encode exactly the same
// per-byte predicates as the SWAR masks, so positions, newline accounting,
// and therefore error strings are identical either way (enforced by
// tests/simd_parity_test.cc across every available kernel).

#ifndef JSONSI_JSON_SCAN_H_
#define JSONSI_JSON_SCAN_H_

#include <bit>
#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "json/simd/structural.h"
#include "support/status.h"

namespace jsonsi::json::scan {

namespace swar {

inline constexpr uint64_t kOnes = 0x0101010101010101ull;
inline constexpr uint64_t kHighs = 0x8080808080808080ull;

inline constexpr bool kLittleEndian =
    std::endian::native == std::endian::little;

inline uint64_t LoadWord(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

/// 0x80 in every byte lane that is zero, 0x00 elsewhere. Exact: the
/// classic (x - kOnes) & ~x & kHighs trick has false positives above the
/// first zero byte; this formulation is carry-free because
/// (x & 0x7F) + 0x7F never overflows a lane.
inline uint64_t ZeroMask(uint64_t x) {
  uint64_t y = (x & ~kHighs) + ~kHighs;
  return ~(y | x) & kHighs;
}

/// 0x80 per lane equal to byte `b`.
inline uint64_t EqMask(uint64_t w, uint8_t b) {
  return ZeroMask(w ^ (kOnes * b));
}

/// 0x80 per lane whose byte is strictly below `n` (n <= 0x80). Exact for
/// the same carry-free reason as ZeroMask.
inline uint64_t LtMask(uint64_t x, uint8_t n) {
  uint64_t low = (x & ~kHighs) + kOnes * static_cast<uint8_t>(0x80 - n);
  return ~(low | x) & kHighs;
}

/// Index of the first marked lane in a (little-endian) mask of 0x80s.
inline size_t FirstMarked(uint64_t mask) {
  return static_cast<size_t>(std::countr_zero(mask)) / 8;
}

/// Index of the last marked lane.
inline size_t LastMarked(uint64_t mask) {
  return static_cast<size_t>(63 - std::countl_zero(mask)) / 8;
}

/// Mask limited to the first `n` lanes (n in [0, 8]).
inline uint64_t PrefixLanes(uint64_t mask, size_t n) {
  if (n >= 8) return mask;
  return mask & ((uint64_t{1} << (8 * n)) - 1);
}

/// JSON insignificant whitespace: ' ', '\t', '\n', '\r'.
inline uint64_t WhitespaceMask(uint64_t w) {
  return EqMask(w, ' ') | EqMask(w, '\t') | EqMask(w, '\n') | EqMask(w, '\r');
}

/// ASCII digit lanes.
inline uint64_t DigitMask(uint64_t w) {
  return LtMask(w, '9' + 1) & ~LtMask(w, '0') & kHighs;
}

/// Lanes that stop a plain string run: '"', '\\', or a control character.
inline uint64_t StringStopMask(uint64_t w) {
  return EqMask(w, '"') | EqMask(w, '\\') | LtMask(w, 0x20);
}

}  // namespace swar

/// Scanning cursor: a view plus the position/line bookkeeping every error
/// message depends on. `line_start` is the byte offset of the current
/// line's first character, so Column() is 1-based.
struct Cursor {
  std::string_view text;
  size_t pos = 0;
  size_t line = 1;
  size_t line_start = 0;
  /// Optional stage-1 structural index covering exactly `text` (owned by
  /// the tokenizer). When set, the bulk skips jump via its bit planes.
  const simd::StructuralIndex* index = nullptr;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void Advance() {
    if (text[pos] == '\n') {
      ++line;
      line_start = pos + 1;
    }
    ++pos;
  }

  size_t Column() const { return pos - line_start + 1; }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at line " + std::to_string(line) +
                              ", column " + std::to_string(Column()));
  }

  /// Skips JSON whitespace, counting newlines. With a structural index:
  /// one jump to the next non-whitespace bit, newlines recovered exactly
  /// from the newline plane (popcount, line_start after the last one).
  /// Without: SWAR classifies 8 bytes per step with the same bookkeeping.
  void SkipWhitespace() {
    if (index != nullptr) {
      size_t target = index->NextNonWhitespace(pos);
      if (target > pos) {
        size_t newlines, last;
        index->CountNewlines(pos, target, &newlines, &last);
        if (newlines > 0) {
          line += newlines;
          line_start = last + 1;
        }
        pos = target;
      }
      return;
    }
    if constexpr (swar::kLittleEndian) {
      while (pos + 8 <= text.size()) {
        uint64_t w = swar::LoadWord(text.data() + pos);
        uint64_t ws = swar::WhitespaceMask(w);
        uint64_t non_ws = ~ws & swar::kHighs;
        size_t n = non_ws == 0 ? 8 : swar::FirstMarked(non_ws);
        if (n > 0) {
          uint64_t nl = swar::PrefixLanes(swar::EqMask(w, '\n'), n);
          if (nl != 0) {
            line += static_cast<size_t>(std::popcount(nl));
            line_start = pos + swar::LastMarked(nl) + 1;
          }
          pos += n;
        }
        if (non_ws != 0) return;
      }
    }
    while (!AtEnd()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      Advance();
    }
  }
};

inline bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Consumes `literal` if it is next; false (cursor untouched) otherwise.
inline bool ConsumeLiteral(Cursor& c, std::string_view literal) {
  if (c.text.substr(c.pos, literal.size()) != literal) return false;
  // Literals contain no newline; bulk advance keeps line accounting exact.
  c.pos += literal.size();
  return true;
}

namespace internal {

/// Advances past a run of ASCII digits. Digits never include '\n', so the
/// bulk advance is line-accounting exact.
inline void SkipDigits(Cursor& c) {
  if (c.index != nullptr) {
    c.pos = c.index->NextNonDigit(c.pos);
    return;
  }
  if constexpr (swar::kLittleEndian) {
    while (c.pos + 8 <= c.text.size()) {
      uint64_t w = swar::LoadWord(c.text.data() + c.pos);
      uint64_t digits = swar::DigitMask(w);
      if (digits == swar::kHighs) {
        c.pos += 8;
        continue;
      }
      uint64_t stop = ~digits & swar::kHighs;
      c.pos += swar::FirstMarked(stop);
      return;
    }
  }
  while (!c.AtEnd() && IsDigit(c.Peek())) c.Advance();
}

inline void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

inline Status ScanHex4(Cursor& c, uint32_t* out) {
  uint32_t cp = 0;
  for (int i = 0; i < 4; ++i) {
    if (c.AtEnd()) return c.Error("unterminated unicode escape");
    char ch = c.Peek();
    uint32_t digit;
    if (ch >= '0' && ch <= '9') {
      digit = static_cast<uint32_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      digit = static_cast<uint32_t>(ch - 'a' + 10);
    } else if (ch >= 'A' && ch <= 'F') {
      digit = static_cast<uint32_t>(ch - 'A' + 10);
    } else {
      return c.Error("invalid hex digit in unicode escape");
    }
    cp = cp * 16 + digit;
    c.Advance();
  }
  *out = cp;
  return Status::OK();
}

/// The 4 hex digits after "\u"; combines surrogate pairs.
inline Status ScanUnicodeEscape(Cursor& c, uint32_t* out) {
  uint32_t cp = 0;
  JSONSI_RETURN_IF_ERROR(ScanHex4(c, &cp));
  if (cp >= 0xD800 && cp <= 0xDBFF) {
    // High surrogate: a low surrogate escape must follow.
    if (c.text.substr(c.pos, 2) != "\\u") {
      return c.Error("unpaired high surrogate");
    }
    c.Advance();
    c.Advance();
    uint32_t lo = 0;
    JSONSI_RETURN_IF_ERROR(ScanHex4(c, &lo));
    if (lo < 0xDC00 || lo > 0xDFFF) {
      return c.Error("invalid low surrogate");
    }
    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
  } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
    return c.Error("unpaired low surrogate");
  }
  *out = cp;
  return Status::OK();
}

/// Advances past the longest plain run (no quote, no backslash, no control
/// character), appending it to `out` when non-null. Plain runs cannot
/// contain '\n' (it is a control character), so bulk advances are exact.
inline void SkipPlainStringRun(Cursor& c, std::string* out) {
  size_t start = c.pos;
  if (c.index != nullptr) {
    // One jump to the next '"' / '\\' / control bit — a whole plain run
    // costs O(1) regardless of length. Plain runs cannot contain '\n'.
    c.pos = c.index->NextStringStop(c.pos);
    if (out && c.pos > start) out->append(c.text, start, c.pos - start);
    return;
  }
  if constexpr (swar::kLittleEndian) {
    while (c.pos + 8 <= c.text.size()) {
      uint64_t w = swar::LoadWord(c.text.data() + c.pos);
      uint64_t stop = swar::StringStopMask(w);
      if (stop == 0) {
        c.pos += 8;
        continue;
      }
      c.pos += swar::FirstMarked(stop);
      if (out && c.pos > start) out->append(c.text, start, c.pos - start);
      return;
    }
  }
  while (!c.AtEnd()) {
    unsigned char ch = static_cast<unsigned char>(c.Peek());
    if (ch == '"' || ch == '\\' || ch < 0x20) break;
    ++c.pos;
  }
  if (out && c.pos > start) out->append(c.text, start, c.pos - start);
}

}  // namespace internal

/// Scans one JSON number with the cursor on its first character ('-' or a
/// digit). On success the cursor sits just past the number and `*out`
/// holds its finite double value. Errors (messages frozen): "invalid
/// number", "leading zeros are not allowed", "digit expected after '.'",
/// "digit expected in exponent", "number out of range".
inline Status ScanNumber(Cursor& c, double* out) {
  size_t start = c.pos;
  if (!c.AtEnd() && c.Peek() == '-') c.Advance();
  if (c.AtEnd() || !IsDigit(c.Peek())) return c.Error("invalid number");
  if (c.Peek() == '0') {
    c.Advance();
    if (!c.AtEnd() && IsDigit(c.Peek())) {
      return c.Error("leading zeros are not allowed");
    }
  } else {
    internal::SkipDigits(c);
  }
  if (!c.AtEnd() && c.Peek() == '.') {
    c.Advance();
    if (c.AtEnd() || !IsDigit(c.Peek())) {
      return c.Error("digit expected after '.'");
    }
    internal::SkipDigits(c);
  }
  if (!c.AtEnd() && (c.Peek() == 'e' || c.Peek() == 'E')) {
    c.Advance();
    if (!c.AtEnd() && (c.Peek() == '+' || c.Peek() == '-')) c.Advance();
    if (c.AtEnd() || !IsDigit(c.Peek())) {
      return c.Error("digit expected in exponent");
    }
    internal::SkipDigits(c);
  }
  std::string_view lexeme = c.text.substr(start, c.pos - start);
  double value = 0;
  auto [ptr, ec] =
      std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), value);
  if (ec == std::errc::result_out_of_range) {
    // RFC 8259 lets implementations clamp; we follow IEEE and use ±inf...
    // except JSON has no infinity, so reject to keep values finite.
    return c.Error("number out of range");
  }
  if (ec != std::errc() || ptr != lexeme.data() + lexeme.size()) {
    return c.Error("invalid number");
  }
  assert(std::isfinite(value));
  *out = value;
  return Status::OK();
}

/// Scans one JSON string with the cursor on the opening quote. On success
/// the cursor sits just past the closing quote. When `out` is non-null the
/// unescaped contents are appended to it (surrogate pairs combined and
/// re-encoded as UTF-8); when null the string is validated and skipped
/// without copying a byte.
inline Status ScanString(Cursor& c, std::string* out) {
  c.Advance();  // '"'
  while (true) {
    internal::SkipPlainStringRun(c, out);
    if (c.AtEnd()) return c.Error("unterminated string");
    unsigned char ch = static_cast<unsigned char>(c.Peek());
    if (ch == '"') {
      c.Advance();
      return Status::OK();
    }
    if (ch == '\\') {
      c.Advance();
      if (c.AtEnd()) return c.Error("unterminated escape");
      char esc = c.Peek();
      c.Advance();
      switch (esc) {
        case '"':
          if (out) out->push_back('"');
          break;
        case '\\':
          if (out) out->push_back('\\');
          break;
        case '/':
          if (out) out->push_back('/');
          break;
        case 'b':
          if (out) out->push_back('\b');
          break;
        case 'f':
          if (out) out->push_back('\f');
          break;
        case 'n':
          if (out) out->push_back('\n');
          break;
        case 'r':
          if (out) out->push_back('\r');
          break;
        case 't':
          if (out) out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          JSONSI_RETURN_IF_ERROR(internal::ScanUnicodeEscape(c, &cp));
          if (out) internal::AppendUtf8(cp, out);
          break;
        }
        default:
          return c.Error("invalid escape character");
      }
      continue;
    }
    // ch < 0x20: SkipPlainStringRun stops on nothing else.
    return c.Error("unescaped control character in string");
  }
}

}  // namespace jsonsi::json::scan

#endif  // JSONSI_JSON_SCAN_H_
