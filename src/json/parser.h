// RFC 8259 JSON text parser producing the Value model.
//
// This is the substrate the paper delegates to Json4s: it turns JSON text
// into the data-model values of Figure 2. It is a single-pass recursive-
// descent parser with:
//   * precise line/column error positions,
//   * full string escape handling including \uXXXX surrogate pairs -> UTF-8,
//   * a configurable nesting-depth limit (stack safety on adversarial input),
//   * rejection of duplicate record keys (the paper's well-formedness rule).

#ifndef JSONSI_JSON_PARSER_H_
#define JSONSI_JSON_PARSER_H_

#include <cstddef>
#include <string_view>

#include "json/value.h"
#include "support/status.h"

namespace jsonsi::json {

/// Parser knobs. Defaults accept standard JSON documents.
struct ParseOptions {
  /// Maximum record/array nesting before the parser fails (stack safety).
  size_t max_depth = 512;
  /// Maximum document size in bytes; 0 = unlimited. Documents larger than
  /// this are rejected before any parsing work, with an identical error on
  /// the DOM (Parse) and DOM-free (DirectInferType) paths — so JSON-Lines
  /// ingestion can cap per-line cost under the MalformedLinePolicy instead
  /// of aborting (`jsi infer --max-line-bytes`).
  size_t max_document_bytes = 0;
  /// When false, trailing non-whitespace after the top-level value is an
  /// error. ParseMany-style callers set this and use `consumed`.
  bool allow_trailing_content = false;
};

/// The rejection both parsing paths return for a document over
/// ParseOptions::max_document_bytes — a single construction point, so the
/// DOM and direct paths cannot drift apart.
inline Status DocumentTooLarge(size_t size, size_t limit) {
  return Status::ParseError("document size " + std::to_string(size) +
                            " exceeds limit of " + std::to_string(limit) +
                            " bytes at line 1, column 1");
}

/// Parses exactly one JSON value from `text` (surrounded by optional
/// whitespace). Errors carry "line L, column C" positions.
Result<ValueRef> Parse(std::string_view text, const ParseOptions& options = {});

/// Parses one JSON value from the front of `text`, writing the number of
/// bytes consumed (value plus leading whitespace) to `*consumed`. Used by the
/// JSON-Lines reader and by streaming ingestion.
Result<ValueRef> ParsePrefix(std::string_view text, size_t* consumed,
                             const ParseOptions& options = {});

}  // namespace jsonsi::json

#endif  // JSONSI_JSON_PARSER_H_
