// RFC 8259 JSON text parser producing the Value model.
//
// This is the substrate the paper delegates to Json4s: it turns JSON text
// into the data-model values of Figure 2. It is a single-pass recursive-
// descent parser with:
//   * precise line/column error positions,
//   * full string escape handling including \uXXXX surrogate pairs -> UTF-8,
//   * a configurable nesting-depth limit (stack safety on adversarial input),
//   * rejection of duplicate record keys (the paper's well-formedness rule).

#ifndef JSONSI_JSON_PARSER_H_
#define JSONSI_JSON_PARSER_H_

#include <cstddef>
#include <string_view>

#include "json/value.h"
#include "support/status.h"

namespace jsonsi::json {

/// Parser knobs. Defaults accept standard JSON documents.
struct ParseOptions {
  /// Maximum record/array nesting before the parser fails (stack safety).
  size_t max_depth = 512;
  /// When false, trailing non-whitespace after the top-level value is an
  /// error. ParseMany-style callers set this and use `consumed`.
  bool allow_trailing_content = false;
};

/// Parses exactly one JSON value from `text` (surrounded by optional
/// whitespace). Errors carry "line L, column C" positions.
Result<ValueRef> Parse(std::string_view text, const ParseOptions& options = {});

/// Parses one JSON value from the front of `text`, writing the number of
/// bytes consumed (value plus leading whitespace) to `*consumed`. Used by the
/// JSON-Lines reader and by streaming ingestion.
Result<ValueRef> ParsePrefix(std::string_view text, size_t* consumed,
                             const ParseOptions& options = {});

}  // namespace jsonsi::json

#endif  // JSONSI_JSON_PARSER_H_
