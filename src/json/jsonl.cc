#include "json/jsonl.h"

#include <algorithm>
#include <fstream>

#include "json/line_scan.h"
#include "json/serializer.h"
#include "telemetry/telemetry.h"

namespace jsonsi::json {
namespace {

// Applies the malformed-line policy and maintains the IngestStats while the
// drivers below feed it one line at a time. Lines arrive raw; this class
// owns BOM/CRLF tolerance and blank-line skipping. Per-line semantics are
// delegated to a LineFn: the DOM readers parse into a Value and call a
// RecordSink, the direct-inference path folds a type, both behind the same
// policy and reporting machinery.
class LineIngester {
 public:
  LineIngester(const LineFn& fn, const IngestOptions& options,
               IngestStats* stats)
      : fn_(fn), options_(options), stats_(stats) {}

  // Processes one line. Returns an error to abort the read; sets done()
  // when the line fn asked to stop.
  Status OnLine(std::string_view line, uint64_t byte_offset) {
    ++stats_->lines_read;
    line = internal::UndecorateLine(
        line, !options_.continuation && stats_->lines_read == 1);
    if (internal::IsBlankLine(line)) {
      ++stats_->blank_lines;
      return Consumed();
    }
    Result<bool> value = fn_(line);
    if (value.ok()) {
      ++stats_->records;
      if (!value.value()) done_ = true;
      return Consumed();
    }

    ++stats_->malformed_lines;
    if (stats_->errors.size() < options_.max_recorded_errors) {
      stats_->errors.push_back(IngestError{stats_->lines_read, byte_offset,
                                           value.status().message()});
    }
    switch (options_.on_malformed) {
      case MalformedLinePolicy::kFail:
        return Status::ParseError(
            "line " + std::to_string(BaselineLines() + stats_->lines_read) +
            ": " + value.status().message());
      case MalformedLinePolicy::kSkip:
        return Consumed();
      case MalformedLinePolicy::kFailAboveRate: {
        if (CumulativeNonBlank() >= options_.min_lines_for_rate &&
            RateExceeded()) {
          return RateError();
        }
        return Consumed();
      }
    }
    return Consumed();
  }

  // End-of-input check: kFailAboveRate re-validates the final rate, so short
  // inputs (below min_lines_for_rate) are still policed. Interior batches
  // of a longer stream (!end_of_stream) defer this to the final batch.
  Status Finish() {
    if (options_.on_malformed == MalformedLinePolicy::kFailAboveRate &&
        options_.end_of_stream && CumulativeMalformed() > 0 &&
        RateExceeded()) {
      return RateError();
    }
    return Status::OK();
  }

  bool done() const { return done_; }

 private:
  // A line's processing finished without aborting the read: the resume
  // offset advances past it. The drivers set bytes_read to the offset just
  // past the current line (newline included) before calling OnLine.
  Status Consumed() {
    stats_->bytes_consumed = stats_->bytes_read;
    return Status::OK();
  }

  // Rate decisions run on the whole logical stream: this read's stats plus
  // any rate_baseline carried over from earlier chunks of the same stream.
  uint64_t CumulativeNonBlank() const {
    uint64_t base = options_.rate_baseline
                        ? options_.rate_baseline->records +
                              options_.rate_baseline->malformed_lines
                        : 0;
    return base + stats_->records + stats_->malformed_lines;
  }

  uint64_t CumulativeMalformed() const {
    uint64_t base =
        options_.rate_baseline ? options_.rate_baseline->malformed_lines : 0;
    return base + stats_->malformed_lines;
  }

  bool RateExceeded() const {
    return static_cast<double>(CumulativeMalformed()) >
           options_.max_error_rate * static_cast<double>(CumulativeNonBlank());
  }

  // Lines the stream read before this batch began (0 for one-shot reads);
  // added to per-read line numbers so abort messages stay stream-global.
  uint64_t BaselineLines() const {
    return options_.rate_baseline ? options_.rate_baseline->lines_read : 0;
  }

  Status RateError() const {
    std::string msg = "malformed-line rate " +
                      std::to_string(CumulativeMalformed()) + "/" +
                      std::to_string(CumulativeNonBlank()) +
                      " exceeds tolerated rate";
    // Cite the stream's globally-first recorded error: an earlier batch's
    // if the baseline has one (its line number is already stream-global),
    // else this read's first, rebased past the baseline.
    if (options_.rate_baseline && !options_.rate_baseline->errors.empty()) {
      const IngestError& first = options_.rate_baseline->errors.front();
      msg += "; first error at line " + std::to_string(first.line_number) +
             ": " + first.message;
    } else if (!stats_->errors.empty()) {
      msg += "; first error at line " +
             std::to_string(BaselineLines() +
                            stats_->errors.front().line_number) +
             ": " + stats_->errors.front().message;
    }
    return Status::ParseError(std::move(msg));
  }

  const LineFn& fn_;
  const IngestOptions& options_;
  IngestStats* stats_;
  bool done_ = false;
};

// The LineFn of the DOM ingestion path: parse each line into a Value and
// forward it to the RecordSink.
LineFn ParseToSink(const RecordSink& sink, const ParseOptions& parse) {
  return [&sink, parse](std::string_view line) -> Result<bool> {
    Result<ValueRef> value = Parse(line, parse);
    if (!value.ok()) return value.status();
    return sink(std::move(value).value());
  };
}

// Bulk-publishes one read's ingestion report to the global registry: a
// handful of counter adds per read (not per line), so degraded-mode readers
// are observable at zero per-line cost.
void RecordIngestTelemetry(const IngestStats& stats) {
  if (!telemetry::Enabled()) return;
  JSONSI_COUNTER("ingest.reads").Increment();
  JSONSI_COUNTER("ingest.lines").Add(stats.lines_read);
  JSONSI_COUNTER("ingest.blank_lines").Add(stats.blank_lines);
  JSONSI_COUNTER("ingest.records").Add(stats.records);
  JSONSI_COUNTER("ingest.malformed_lines").Add(stats.malformed_lines);
  JSONSI_COUNTER("ingest.bytes").Add(stats.bytes_read);
}

}  // namespace

double IngestStats::ErrorRate() const {
  uint64_t non_blank = records + malformed_lines;
  return non_blank == 0
             ? 0.0
             : static_cast<double>(malformed_lines) /
                   static_cast<double>(non_blank);
}

void IngestStats::Absorb(const IngestStats& other,
                         size_t max_recorded_errors) {
  for (const IngestError& e : other.errors) {
    if (errors.size() >= max_recorded_errors) break;
    errors.push_back(IngestError{e.line_number + lines_read,
                                 e.byte_offset + bytes_read, e.message});
  }
  lines_read += other.lines_read;
  blank_lines += other.blank_lines;
  records += other.records;
  malformed_lines += other.malformed_lines;
  // The other read's offsets rebase past this report's scanned bytes; an
  // empty follow-up read leaves the resume offset where it was.
  if (other.lines_read > 0) bytes_consumed = bytes_read + other.bytes_consumed;
  bytes_read += other.bytes_read;
}

void IngestStats::RewindToConsumed() {
  if (bytes_read <= bytes_consumed) return;
  // Exactly one line is ever scanned but not consumed: the one whose
  // processing aborted the read (blank and successfully-parsed lines are
  // always consumed, so that line was counted as malformed).
  bytes_read = bytes_consumed;
  if (lines_read > 0) --lines_read;
  if (malformed_lines > 0) --malformed_lines;
  while (!errors.empty() && errors.back().line_number > lines_read) {
    errors.pop_back();
  }
}

Status ReadJsonLines(std::istream& in, const RecordSink& sink,
                     const IngestOptions& options, IngestStats* stats) {
  IngestStats local;
  if (!stats) stats = &local;
  *stats = IngestStats{};
  LineFn fn = ParseToSink(sink, options.parse);
  Status status = [&] {
    JSONSI_SPAN("ingest.read");
    LineIngester ingester(fn, options, stats);
    std::string line;
    uint64_t offset = 0;
    while (std::getline(in, line)) {
      uint64_t line_start = offset;
      offset += line.size() + (in.eof() ? 0 : 1);  // +1 for the consumed '\n'
      stats->bytes_read = offset;
      JSONSI_RETURN_IF_ERROR(ingester.OnLine(line, line_start));
      if (ingester.done()) return Status::OK();
    }
    return ingester.Finish();
  }();
  RecordIngestTelemetry(*stats);
  return status;
}

Status ReadJsonLines(std::istream& in, const RecordSink& sink,
                     const ParseOptions& options) {
  IngestOptions strict;
  strict.parse = options;
  return ReadJsonLines(in, sink, strict, nullptr);
}

Status ReadJsonLines(std::string_view text, const RecordSink& sink,
                     const IngestOptions& options, IngestStats* stats) {
  LineFn fn = ParseToSink(sink, options.parse);
  return IngestJsonLines(text, fn, options, stats);
}

Status IngestJsonLines(std::string_view text, const LineFn& fn,
                       const IngestOptions& options, IngestStats* stats) {
  IngestStats local;
  if (!stats) stats = &local;
  *stats = IngestStats{};
  Status status = [&] {
    JSONSI_SPAN("ingest.read");
    LineIngester ingester(fn, options, stats);
    size_t pos = 0;
    while (pos < text.size()) {
      size_t nl = text.find('\n', pos);
      size_t end = nl == std::string_view::npos ? text.size() : nl;
      std::string_view line = text.substr(pos, end - pos);
      uint64_t line_start = pos;
      pos = nl == std::string_view::npos ? text.size() : nl + 1;
      stats->bytes_read = pos;
      JSONSI_RETURN_IF_ERROR(ingester.OnLine(line, line_start));
      if (ingester.done()) return Status::OK();
    }
    return ingester.Finish();
  }();
  RecordIngestTelemetry(*stats);
  return status;
}

Result<std::vector<ValueRef>> ReadJsonLinesFile(const std::string& path,
                                                const IngestOptions& options,
                                                IngestStats* stats) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::vector<ValueRef> values;
  Status st = ReadJsonLines(
      in,
      [&](ValueRef v) {
        values.push_back(std::move(v));
        return true;
      },
      options, stats);
  if (!st.ok()) return st;
  return values;
}

Result<std::vector<ValueRef>> ReadJsonLinesFile(const std::string& path,
                                                const ParseOptions& options) {
  IngestOptions strict;
  strict.parse = options;
  return ReadJsonLinesFile(path, strict, nullptr);
}

Result<std::vector<ValueRef>> ParseJsonLines(std::string_view text,
                                             const IngestOptions& options,
                                             IngestStats* stats) {
  std::vector<ValueRef> values;
  Status st = ReadJsonLines(
      text,
      [&](ValueRef v) {
        values.push_back(std::move(v));
        return true;
      },
      options, stats);
  if (!st.ok()) return st;
  return values;
}

Result<std::vector<ValueRef>> ParseJsonLines(std::string_view text,
                                             const ParseOptions& options) {
  IngestOptions strict;
  strict.parse = options;
  return ParseJsonLines(text, strict, nullptr);
}

std::string ToJsonLines(const std::vector<ValueRef>& values) {
  std::string out;
  for (const ValueRef& v : values) {
    AppendJson(*v, &out);
    out.push_back('\n');
  }
  return out;
}

}  // namespace jsonsi::json
