#include "json/jsonl.h"

#include <fstream>
#include <sstream>

#include "json/serializer.h"

namespace jsonsi::json {
namespace {

bool IsBlank(std::string_view line) {
  for (char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

Status ReadJsonLines(std::istream& in, const RecordSink& sink,
                     const ParseOptions& options) {
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsBlank(line)) continue;
    Result<ValueRef> value = Parse(line, options);
    if (!value.ok()) {
      return Status::ParseError("line " + std::to_string(line_number) + ": " +
                                value.status().message());
    }
    if (!sink(std::move(value).value())) break;
  }
  return Status::OK();
}

Result<std::vector<ValueRef>> ReadJsonLinesFile(const std::string& path,
                                                const ParseOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::vector<ValueRef> values;
  Status st = ReadJsonLines(
      in,
      [&](ValueRef v) {
        values.push_back(std::move(v));
        return true;
      },
      options);
  if (!st.ok()) return st;
  return values;
}

Result<std::vector<ValueRef>> ParseJsonLines(std::string_view text,
                                             const ParseOptions& options) {
  std::istringstream in{std::string(text)};
  std::vector<ValueRef> values;
  Status st = ReadJsonLines(
      in,
      [&](ValueRef v) {
        values.push_back(std::move(v));
        return true;
      },
      options);
  if (!st.ok()) return st;
  return values;
}

std::string ToJsonLines(const std::vector<ValueRef>& values) {
  std::string out;
  for (const ValueRef& v : values) {
    AppendJson(*v, &out);
    out.push_back('\n');
  }
  return out;
}

}  // namespace jsonsi::json
