#include "json/serializer.h"

#include "support/string_util.h"

namespace jsonsi::json {
namespace {

void AppendIndent(int depth, int width, std::string* out) {
  out->push_back('\n');
  out->append(static_cast<size_t>(depth) * width, ' ');
}

void AppendPretty(const Value& value, int depth, int width, std::string* out) {
  switch (value.kind()) {
    case ValueKind::kNull:
      *out += "null";
      return;
    case ValueKind::kBool:
      *out += value.bool_value() ? "true" : "false";
      return;
    case ValueKind::kNum:
      *out += FormatJsonNumber(value.num_value());
      return;
    case ValueKind::kStr:
      out->push_back('"');
      AppendJsonEscaped(value.str_value(), out);
      out->push_back('"');
      return;
    case ValueKind::kRecord: {
      if (value.fields().empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const Field& f : value.fields()) {
        if (!first) out->push_back(',');
        first = false;
        AppendIndent(depth + 1, width, out);
        out->push_back('"');
        AppendJsonEscaped(f.key, out);
        *out += "\": ";
        AppendPretty(*f.value, depth + 1, width, out);
      }
      AppendIndent(depth, width, out);
      out->push_back('}');
      return;
    }
    case ValueKind::kArray: {
      if (value.elements().empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      bool first = true;
      for (const ValueRef& e : value.elements()) {
        if (!first) out->push_back(',');
        first = false;
        AppendIndent(depth + 1, width, out);
        AppendPretty(*e, depth + 1, width, out);
      }
      AppendIndent(depth, width, out);
      out->push_back(']');
      return;
    }
  }
}

size_t EscapedSize(std::string_view text) {
  size_t n = 0;
  for (unsigned char c : text) {
    switch (c) {
      case '"':
      case '\\':
      case '\b':
      case '\f':
      case '\n':
      case '\r':
      case '\t':
        n += 2;
        break;
      default:
        n += (c < 0x20) ? 6 : 1;
    }
  }
  return n;
}

}  // namespace

void AppendJson(const Value& value, std::string* out) {
  switch (value.kind()) {
    case ValueKind::kNull:
      *out += "null";
      return;
    case ValueKind::kBool:
      *out += value.bool_value() ? "true" : "false";
      return;
    case ValueKind::kNum:
      *out += FormatJsonNumber(value.num_value());
      return;
    case ValueKind::kStr:
      out->push_back('"');
      AppendJsonEscaped(value.str_value(), out);
      out->push_back('"');
      return;
    case ValueKind::kRecord: {
      out->push_back('{');
      bool first = true;
      for (const Field& f : value.fields()) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        AppendJsonEscaped(f.key, out);
        *out += "\":";
        AppendJson(*f.value, out);
      }
      out->push_back('}');
      return;
    }
    case ValueKind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const ValueRef& e : value.elements()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJson(*e, out);
      }
      out->push_back(']');
      return;
    }
  }
}

std::string ToJson(const Value& value) {
  std::string out;
  AppendJson(value, &out);
  return out;
}

std::string ToPrettyJson(const Value& value, int indent_width) {
  std::string out;
  AppendPretty(value, 0, indent_width, &out);
  return out;
}

size_t SerializedSize(const Value& value) {
  switch (value.kind()) {
    case ValueKind::kNull:
      return 4;
    case ValueKind::kBool:
      return value.bool_value() ? 4 : 5;
    case ValueKind::kNum:
      return FormatJsonNumber(value.num_value()).size();
    case ValueKind::kStr:
      return 2 + EscapedSize(value.str_value());
    case ValueKind::kRecord: {
      size_t n = 2;  // {}
      const auto& fields = value.fields();
      if (!fields.empty()) n += fields.size() - 1;  // commas
      for (const Field& f : fields) {
        n += 2 + EscapedSize(f.key) + 1;  // "key":
        n += SerializedSize(*f.value);
      }
      return n;
    }
    case ValueKind::kArray: {
      size_t n = 2;  // []
      const auto& elems = value.elements();
      if (!elems.empty()) n += elems.size() - 1;
      for (const ValueRef& e : elems) n += SerializedSize(*e);
      return n;
    }
  }
  return 0;
}

}  // namespace jsonsi::json
