#include "json/parser.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace jsonsi::json {
namespace {

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Result<ValueRef> ParseDocument(size_t* consumed) {
    SkipWhitespace();
    Result<ValueRef> value = ParseValue(0);
    if (!value.ok()) return value;
    if (consumed) {
      *consumed = pos_;
    } else {
      SkipWhitespace();
      if (pos_ != text_.size()) {
        return Error("trailing content after JSON value");
      }
    }
    return value;
  }

 private:
  Status Error(std::string message) const {
    return Status::ParseError(message + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(Column()));
  }

  size_t Column() const { return pos_ - line_start_ + 1; }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      line_start_ = pos_ + 1;
    }
    ++pos_;
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      Advance();
    }
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    for (size_t i = 0; i < literal.size(); ++i) Advance();
    return true;
  }

  Result<ValueRef> ParseValue(size_t depth) {
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case 'n':
        if (ConsumeLiteral("null")) return Value::Null();
        return Error("invalid literal (expected 'null')");
      case 't':
        if (ConsumeLiteral("true")) return Value::Bool(true);
        return Error("invalid literal (expected 'true')");
      case 'f':
        if (ConsumeLiteral("false")) return Value::Bool(false);
        return Error("invalid literal (expected 'false')");
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return Value::Str(std::move(s).value());
      }
      case '{':
        return ParseRecord(depth);
      case '[':
        return ParseArray(depth);
      default:
        return ParseNumber();
    }
  }

  Result<ValueRef> ParseRecord(size_t depth) {
    if (depth >= options_.max_depth) return Error("nesting too deep");
    Advance();  // '{'
    std::vector<Field> fields;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      Advance();
      return Value::RecordUnchecked({});
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected record key string");
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Error("expected ':' after key");
      Advance();
      SkipWhitespace();
      Result<ValueRef> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      fields.push_back({std::move(key).value(), std::move(value).value()});
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated record");
      if (Peek() == ',') {
        Advance();
        continue;
      }
      if (Peek() == '}') {
        Advance();
        break;
      }
      return Error("expected ',' or '}' in record");
    }
    Result<ValueRef> record = Value::Record(std::move(fields));
    if (!record.ok()) {
      // Re-wrap with position info: duplicate keys are a parse-level
      // well-formedness violation per Section 4.
      return Error(record.status().message());
    }
    return record;
  }

  Result<ValueRef> ParseArray(size_t depth) {
    if (depth >= options_.max_depth) return Error("nesting too deep");
    Advance();  // '['
    std::vector<ValueRef> elements;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      Advance();
      return Value::Array({});
    }
    while (true) {
      SkipWhitespace();
      Result<ValueRef> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      elements.push_back(std::move(value).value());
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        Advance();
        continue;
      }
      if (Peek() == ']') {
        Advance();
        break;
      }
      return Error("expected ',' or ']' in array");
    }
    return Value::Array(std::move(elements));
  }

  Result<ValueRef> ParseNumber() {
    size_t start = pos_;
    if (!AtEnd() && Peek() == '-') Advance();
    if (AtEnd() || !IsDigit(Peek())) return Error("invalid number");
    if (Peek() == '0') {
      Advance();
      if (!AtEnd() && IsDigit(Peek())) {
        return Error("leading zeros are not allowed");
      }
    } else {
      while (!AtEnd() && IsDigit(Peek())) Advance();
    }
    if (!AtEnd() && Peek() == '.') {
      Advance();
      if (AtEnd() || !IsDigit(Peek())) return Error("digit expected after '.'");
      while (!AtEnd() && IsDigit(Peek())) Advance();
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      Advance();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) Advance();
      if (AtEnd() || !IsDigit(Peek())) {
        return Error("digit expected in exponent");
      }
      while (!AtEnd() && IsDigit(Peek())) Advance();
    }
    std::string_view lexeme = text_.substr(start, pos_ - start);
    double value = 0;
    auto [ptr, ec] =
        std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), value);
    if (ec == std::errc::result_out_of_range) {
      // RFC 8259 lets implementations clamp; we follow IEEE and use ±inf...
      // except JSON has no infinity, so reject to keep values finite.
      return Error("number out of range");
    }
    if (ec != std::errc() || ptr != lexeme.data() + lexeme.size()) {
      return Error("invalid number");
    }
    assert(std::isfinite(value));
    return Value::Num(value);
  }

  Result<std::string> ParseString() {
    Advance();  // '"'
    std::string out;
    while (true) {
      if (AtEnd()) return Status(Error("unterminated string"));
      unsigned char c = static_cast<unsigned char>(Peek());
      if (c == '"') {
        Advance();
        return out;
      }
      if (c == '\\') {
        Advance();
        if (AtEnd()) return Status(Error("unterminated escape"));
        char esc = Peek();
        Advance();
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            Result<uint32_t> cp = ParseUnicodeEscape();
            if (!cp.ok()) return cp.status();
            AppendUtf8(cp.value(), &out);
            break;
          }
          default:
            return Status(Error("invalid escape character"));
        }
        continue;
      }
      if (c < 0x20) {
        return Status(Error("unescaped control character in string"));
      }
      out.push_back(static_cast<char>(c));
      Advance();
    }
  }

  // Parses the 4 hex digits after "\u"; combines surrogate pairs.
  Result<uint32_t> ParseUnicodeEscape() {
    Result<uint32_t> first = ParseHex4();
    if (!first.ok()) return first;
    uint32_t cp = first.value();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate escape must follow.
      if (text_.substr(pos_, 2) != "\\u") {
        return Status(Error("unpaired high surrogate"));
      }
      Advance();
      Advance();
      Result<uint32_t> second = ParseHex4();
      if (!second.ok()) return second;
      uint32_t lo = second.value();
      if (lo < 0xDC00 || lo > 0xDFFF) {
        return Status(Error("invalid low surrogate"));
      }
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      return Status(Error("unpaired low surrogate"));
    }
    return cp;
  }

  Result<uint32_t> ParseHex4() {
    uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) return Status(Error("unterminated unicode escape"));
      char c = Peek();
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Status(Error("invalid hex digit in unicode escape"));
      }
      cp = cp * 16 + digit;
      Advance();
    }
    return cp;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  static bool IsDigit(char c) { return c >= '0' && c <= '9'; }

  std::string_view text_;
  ParseOptions options_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t line_start_ = 0;
};

// Per-document accounting shared by both entry points: one relaxed counter
// increment per call (plus one per error), a bulk byte add.
void RecordParseTelemetry(std::string_view text, const Result<ValueRef>& r) {
  if (!telemetry::Enabled()) return;
  JSONSI_COUNTER("parse.calls").Increment();
  JSONSI_COUNTER("parse.bytes").Add(text.size());
  if (!r.ok()) JSONSI_COUNTER("parse.errors").Increment();
}

}  // namespace

Result<ValueRef> Parse(std::string_view text, const ParseOptions& options) {
  Parser parser(text, options);
  Result<ValueRef> result = [&] {
    if (options.allow_trailing_content) {
      size_t ignored = 0;
      return parser.ParseDocument(&ignored);
    }
    return parser.ParseDocument(nullptr);
  }();
  RecordParseTelemetry(text, result);
  return result;
}

Result<ValueRef> ParsePrefix(std::string_view text, size_t* consumed,
                             const ParseOptions& options) {
  Parser parser(text, options);
  Result<ValueRef> result = parser.ParseDocument(consumed);
  RecordParseTelemetry(text, result);
  return result;
}

}  // namespace jsonsi::json
