#include "json/parser.h"

#include <string>
#include <utility>
#include <vector>

#include "json/scan.h"
#include "telemetry/telemetry.h"

namespace jsonsi::json {
namespace {

// Recursive-descent grammar driver over the shared scanning layer
// (json/scan.h). All literal lexing — numbers, strings, whitespace,
// keyword literals — lives in scan.h so the DOM-free tokenizer and this
// parser cannot drift apart; this class only owns the grammar and the
// Value construction.
class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : options_(options) {
    cursor_.text = text;
  }

  Result<ValueRef> ParseDocument(size_t* consumed) {
    cursor_.SkipWhitespace();
    Result<ValueRef> value = ParseValue(0);
    if (!value.ok()) return value;
    if (consumed) {
      *consumed = cursor_.pos;
    } else {
      cursor_.SkipWhitespace();
      if (cursor_.pos != cursor_.text.size()) {
        return Error("trailing content after JSON value");
      }
    }
    return value;
  }

 private:
  Status Error(std::string message) const { return cursor_.Error(message); }

  bool AtEnd() const { return cursor_.AtEnd(); }
  char Peek() const { return cursor_.Peek(); }
  void Advance() { cursor_.Advance(); }
  void SkipWhitespace() { cursor_.SkipWhitespace(); }

  Result<ValueRef> ParseValue(size_t depth) {
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case 'n':
        if (scan::ConsumeLiteral(cursor_, "null")) return Value::Null();
        return Error("invalid literal (expected 'null')");
      case 't':
        if (scan::ConsumeLiteral(cursor_, "true")) return Value::Bool(true);
        return Error("invalid literal (expected 'true')");
      case 'f':
        if (scan::ConsumeLiteral(cursor_, "false")) return Value::Bool(false);
        return Error("invalid literal (expected 'false')");
      case '"': {
        std::string s;
        JSONSI_RETURN_IF_ERROR(scan::ScanString(cursor_, &s));
        return Value::Str(std::move(s));
      }
      case '{':
        return ParseRecord(depth);
      case '[':
        return ParseArray(depth);
      default: {
        double number = 0;
        JSONSI_RETURN_IF_ERROR(scan::ScanNumber(cursor_, &number));
        return Value::Num(number);
      }
    }
  }

  Result<ValueRef> ParseRecord(size_t depth) {
    if (depth >= options_.max_depth) return Error("nesting too deep");
    Advance();  // '{'
    std::vector<Field> fields;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      Advance();
      return Value::RecordUnchecked({});
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected record key string");
      std::string key;
      JSONSI_RETURN_IF_ERROR(scan::ScanString(cursor_, &key));
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Error("expected ':' after key");
      Advance();
      SkipWhitespace();
      Result<ValueRef> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      fields.push_back({std::move(key), std::move(value).value()});
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated record");
      if (Peek() == ',') {
        Advance();
        continue;
      }
      if (Peek() == '}') {
        Advance();
        break;
      }
      return Error("expected ',' or '}' in record");
    }
    Result<ValueRef> record = Value::Record(std::move(fields));
    if (!record.ok()) {
      // Re-wrap with position info: duplicate keys are a parse-level
      // well-formedness violation per Section 4.
      return Error(record.status().message());
    }
    return record;
  }

  Result<ValueRef> ParseArray(size_t depth) {
    if (depth >= options_.max_depth) return Error("nesting too deep");
    Advance();  // '['
    std::vector<ValueRef> elements;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      Advance();
      return Value::Array({});
    }
    while (true) {
      SkipWhitespace();
      Result<ValueRef> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      elements.push_back(std::move(value).value());
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        Advance();
        continue;
      }
      if (Peek() == ']') {
        Advance();
        break;
      }
      return Error("expected ',' or ']' in array");
    }
    return Value::Array(std::move(elements));
  }

  ParseOptions options_;
  scan::Cursor cursor_;
};

// Per-document accounting shared by both entry points: one relaxed counter
// increment per call (plus one per error), a bulk byte add.
void RecordParseTelemetry(std::string_view text, const Result<ValueRef>& r) {
  if (!telemetry::Enabled()) return;
  JSONSI_COUNTER("parse.calls").Increment();
  JSONSI_COUNTER("parse.bytes").Add(text.size());
  if (!r.ok()) JSONSI_COUNTER("parse.errors").Increment();
}

}  // namespace

Result<ValueRef> Parse(std::string_view text, const ParseOptions& options) {
  if (options.max_document_bytes != 0 &&
      text.size() > options.max_document_bytes) {
    return DocumentTooLarge(text.size(), options.max_document_bytes);
  }
  Parser parser(text, options);
  Result<ValueRef> result = [&] {
    if (options.allow_trailing_content) {
      size_t ignored = 0;
      return parser.ParseDocument(&ignored);
    }
    return parser.ParseDocument(nullptr);
  }();
  RecordParseTelemetry(text, result);
  return result;
}

Result<ValueRef> ParsePrefix(std::string_view text, size_t* consumed,
                             const ParseOptions& options) {
  Parser parser(text, options);
  Result<ValueRef> result = parser.ParseDocument(consumed);
  RecordParseTelemetry(text, result);
  return result;
}

}  // namespace jsonsi::json
