// Small string helpers shared by the JSON serializer, the type printer and
// the benchmark table writers.

#ifndef JSONSI_SUPPORT_STRING_UTIL_H_
#define JSONSI_SUPPORT_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jsonsi {

/// Appends `text` to `out` with JSON string escaping (quotes, backslash,
/// control characters as \uXXXX shorthand where JSON defines one).
void AppendJsonEscaped(std::string_view text, std::string* out);

/// Renders a double with the shortest representation that round-trips,
/// matching how JSON numbers are conventionally serialized. Integral values
/// within the safe range print without a fractional part.
std::string FormatJsonNumber(double value);

/// "1234567" -> "1,234,567" (for table output).
std::string WithThousands(int64_t value);

/// Fixed-point format with `digits` decimals.
std::string FormatFixed(double value, int digits);

/// Human-readable byte count: "14MB", "1.3GB" (decimal units, like Table 1).
std::string HumanBytes(uint64_t bytes);

/// Splits on a delimiter, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view text, char delim);

}  // namespace jsonsi

#endif  // JSONSI_SUPPORT_STRING_UTIL_H_
