// Hashing helpers: 64-bit mixing and combination for structural hashes.
//
// Type and value nodes cache a structural hash computed at construction, so
// distinct-type counting over millions of records is O(1) amortized per
// lookup. The mixers below are the finalizers of SplitMix64, which have good
// avalanche behaviour and need no external dependencies.

#ifndef JSONSI_SUPPORT_HASH_H_
#define JSONSI_SUPPORT_HASH_H_

#include <cstdint>
#include <string_view>

namespace jsonsi {

/// SplitMix64 finalizer: bijective 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Order-dependent combination of two hashes.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// FNV-1a over bytes; stable across platforms.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace jsonsi

#endif  // JSONSI_SUPPORT_HASH_H_
