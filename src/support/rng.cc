#include "support/rng.h"

#include <algorithm>
#include <cmath>

namespace jsonsi {
namespace {

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64Next(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  // Lemire's multiply-shift; the tiny modulo bias is irrelevant for workload
  // synthesis and keeps the generator branch-free and reproducible.
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(Next()) * bound) >> 64);
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  // Inverse-CDF sampling over the truncated zeta distribution. n is small in
  // all generator call sites (< a few thousand), so the linear scan is fine.
  double target = NextDouble();
  double norm = 0.0;
  for (uint64_t r = 0; r < n; ++r) norm += 1.0 / std::pow(r + 1.0, s);
  double acc = 0.0;
  for (uint64_t r = 0; r < n; ++r) {
    acc += (1.0 / std::pow(r + 1.0, s)) / norm;
    if (target < acc) return r;
  }
  return n - 1;
}

ZipfTable::ZipfTable(uint64_t n, double s) {
  cdf_.reserve(n);
  double acc = 0.0;
  for (uint64_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(r + 1.0, s);
    cdf_.push_back(acc);
  }
  for (double& c : cdf_) c /= acc;
}

uint64_t ZipfTable::Sample(Rng& rng) const {
  double target = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), target);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

std::string Rng::Ident(size_t length) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) out.push_back(kAlpha[Below(26)]);
  return out;
}

std::string Rng::Words(size_t words) {
  std::string out;
  out.reserve(words * 6);
  for (size_t i = 0; i < words; ++i) {
    if (i) out.push_back(' ');
    out += Ident(2 + Below(7));
  }
  return out;
}

}  // namespace jsonsi
