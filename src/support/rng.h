// Deterministic pseudo-random number generation for workload synthesis.
//
// The dataset generators must be reproducible across runs and platforms so
// that the experiment tables are stable; std::mt19937 distributions are not
// guaranteed identical across standard libraries, so we implement both the
// generator (xoshiro256**) and the distributions we need.

#ifndef JSONSI_SUPPORT_RNG_H_
#define JSONSI_SUPPORT_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace jsonsi {

/// xoshiro256** seeded via SplitMix64. Deterministic for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  /// bound must be > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Chance(double p);

  /// Zipf-like rank in [0, n): rank r chosen with weight 1/(r+1)^s.
  /// O(n) per draw — use ZipfTable for hot paths.
  uint64_t Zipf(uint64_t n, double s);

  /// Lowercase ASCII identifier of the given length.
  std::string Ident(size_t length);

  /// Space-separated lowercase pseudo-words totalling roughly `words` words.
  /// Models prose fields (NYTimes snippets/paragraphs).
  std::string Words(size_t words);

  /// Picks one element uniformly. Requires non-empty items.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Below(items.size())];
  }

 private:
  uint64_t state_[4];
};

/// Precomputed Zipf(n, s) sampler: O(n) construction, O(log n) per draw.
/// The generators share static instances, so sampling skewed key spaces
/// (thousands of Wikidata property ids per record) stays cheap.
class ZipfTable {
 public:
  ZipfTable(uint64_t n, double s);

  /// Rank in [0, n) with probability proportional to 1/(rank+1)^s.
  uint64_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace jsonsi

#endif  // JSONSI_SUPPORT_RNG_H_
