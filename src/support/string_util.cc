#include "support/string_util.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace jsonsi {

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

std::string FormatJsonNumber(double value) {
  // Integral doubles in the 53-bit-safe range print as integers, which is
  // what every mainstream JSON serializer emits for them.
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), static_cast<int64_t>(value));
    (void)ec;
    return std::string(buf, ptr);
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  return std::string(buf, ptr);
}

std::string WithThousands(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  if (value < 0) out.push_back('-');
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  out.append(digits, 0, lead);
  for (size_t i = lead; i < digits.size(); i += 3) {
    out.push_back(',');
    out.append(digits, i, 3);
  }
  return out;
}

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1000.0 && unit < 4) {
    v /= 1000.0;
    ++unit;
  }
  // One decimal below 10, none above (matches "1.3GB" / "14MB" in Table 1).
  if (v < 10.0 && unit > 0) return FormatFixed(v, 1) + units[unit];
  return FormatFixed(v, 0) + units[unit];
}

std::vector<std::string_view> Split(std::string_view text, char delim) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      pieces.push_back(text.substr(start));
      return pieces;
    }
    pieces.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace jsonsi
