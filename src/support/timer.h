// Wall-clock stopwatch used by the experiment harnesses.

#ifndef JSONSI_SUPPORT_TIMER_H_
#define JSONSI_SUPPORT_TIMER_H_

#include <chrono>

namespace jsonsi {

/// Monotonic stopwatch; starts at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace jsonsi

#endif  // JSONSI_SUPPORT_TIMER_H_
