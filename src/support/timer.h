// Monotonic-clock utilities: the single source of wall-clock truth for the
// experiment harnesses, the retry machinery, and the telemetry subsystem.
// Everything that times or sleeps goes through these helpers so the clock
// (steady_clock) is chosen exactly once.

#ifndef JSONSI_SUPPORT_TIMER_H_
#define JSONSI_SUPPORT_TIMER_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace jsonsi {

/// The one monotonic clock used across jsonsi.
using MonotonicClock = std::chrono::steady_clock;

/// Nanoseconds on the monotonic clock; the timestamp unit of telemetry
/// spans and histograms.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          MonotonicClock::now().time_since_epoch())
          .count());
}

/// Blocks the calling thread for `seconds` (no-op for non-positive values).
/// Shared by retry backoff and any harness that needs a real pause.
inline void SleepForSeconds(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Monotonic stopwatch; starts at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicClock::now()) {}

  void Reset() { start_ = MonotonicClock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(MonotonicClock::now() - start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            MonotonicClock::now() - start_)
            .count());
  }

 private:
  MonotonicClock::time_point start_;
};

}  // namespace jsonsi

#endif  // JSONSI_SUPPORT_TIMER_H_
