// Minimal Status / Result<T> error-handling vocabulary used across jsonsi.
//
// Fallible operations return Status (no payload) or Result<T> (payload or
// error). Neither throws; callers must inspect ok() before using a Result's
// value. This mirrors the Status idiom used by Arrow and RocksDB, scaled to
// the needs of this library.

#ifndef JSONSI_SUPPORT_STATUS_H_
#define JSONSI_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace jsonsi {

/// Coarse error taxonomy. Parse errors carry positions via their message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kOutOfRange,
  kNotFound,
  kInternal,
};

/// Returns a stable human-readable name ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation with no payload.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Status is cheap to copy for OK (no allocation) and small
/// otherwise.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Accessing value() on an
/// error result is a programming bug (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: allows `return Status::ParseError(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace jsonsi

/// Propagates an error status from an expression, RETURN_IF_ERROR style.
#define JSONSI_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::jsonsi::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // JSONSI_SUPPORT_STATUS_H_
