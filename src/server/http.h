// Minimal blocking-socket HTTP/1.1 — just enough protocol for a local
// schema-inference endpoint, with zero third-party dependencies.
//
// Server side: ReadHttpRequest pulls one request off a connected socket
// (request line, headers, Content-Length body; no chunked encoding) and
// WriteHttpResponse sends one response. Reads poll in short slices so a
// drain flag can interrupt an *idle* keep-alive connection without cutting
// off a request that is already on the wire — the server's graceful-
// shutdown contract is "finish what was started, accept nothing new".
//
// Client side: HttpConnection is the matching keep-alive client used by the
// integration tests and the throughput bench, plus a one-shot HttpCall
// convenience. Both sides speak through the same parser, so the tests
// exercise exactly the framing the server emits.

#ifndef JSONSI_SERVER_HTTP_H_
#define JSONSI_SERVER_HTTP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "support/status.h"

namespace jsonsi::server {

/// One parsed request. Header names are lowercased; values are trimmed.
struct HttpRequest {
  std::string method;   // "GET", "POST", "DELETE", ...
  std::string target;   // origin-form: path + optional "?query"
  std::string body;
  std::map<std::string, std::string> headers;
  /// HTTP/1.1 keep-alive default, overridden by a "connection: close"
  /// header (or "connection: keep-alive" on HTTP/1.0).
  bool keep_alive = true;

  /// Target split helpers: path without the query string, and the raw query.
  std::string_view Path() const;
  std::string_view Query() const;
  /// Value of `key` in the query string ("" when absent); no %-decoding —
  /// the API's identifiers are plain tokens.
  std::string QueryParam(std::string_view key) const;
};

/// One response to serialize.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Read-side limits and pacing.
struct HttpLimits {
  size_t max_header_bytes = 64 * 1024;
  /// Per-request body cap; an over-limit request is rejected (413) before
  /// buffering the body. Ingest batches stream as multiple requests.
  size_t max_body_bytes = 64ull << 20;
  /// Poll slice while waiting for bytes; bounds drain-flag latency.
  int poll_interval_ms = 100;
  /// Once `stop` is observed mid-request, how long an in-flight request may
  /// keep trickling in before the connection is abandoned.
  int drain_grace_ms = 5000;
};

/// Reads one request from `fd`. Status taxonomy:
///   NotFound     — clean end of conversation: peer closed before sending a
///                  byte, or `stop` tripped while the connection was idle.
///                  Close the socket, nothing to answer.
///   ParseError   — malformed framing (answer 400 and close).
///   OutOfRange   — header/body over limits (answer 413 and close).
///   Internal     — socket error.
Result<HttpRequest> ReadHttpRequest(int fd, const HttpLimits& limits,
                                    const std::atomic<bool>* stop = nullptr);

/// Serializes one response. `keep_alive` controls the Connection header —
/// it must match what the handler will actually do with the socket.
Status WriteHttpResponse(int fd, const HttpResponse& response,
                         bool keep_alive);

/// "OK", "Not Found", ... for the status line (400 for unknown codes).
const char* HttpStatusText(int status);

/// Keep-alive HTTP/1.1 client over one TCP connection.
class HttpConnection {
 public:
  HttpConnection() = default;
  ~HttpConnection();
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  Status Connect(const std::string& host, uint16_t port);
  /// Sends one request and reads the response. The connection stays open
  /// for the next call unless the server answered "connection: close".
  Result<HttpResponse> Call(const std::string& method,
                            const std::string& target,
                            const std::string& body = "",
                            const std::string& content_type =
                                "application/json");
  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string host_;
  uint16_t port_ = 0;
};

/// One-shot convenience: connect, send, read, close.
Result<HttpResponse> HttpCall(const std::string& host, uint16_t port,
                              const std::string& method,
                              const std::string& target,
                              const std::string& body = "",
                              const std::string& content_type =
                                  "application/json");

}  // namespace jsonsi::server

#endif  // JSONSI_SERVER_HTTP_H_
