#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "support/string_util.h"

namespace jsonsi::server {
namespace {

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

// Blocking-with-poll receive of more bytes into `buffer`. Returns:
//   >0  bytes appended
//    0  peer closed
//   -1  stop tripped and grace policy says give up (idle or expired)
//   -2  socket error
int ReceiveMore(int fd, const HttpLimits& limits,
                const std::atomic<bool>* stop, bool request_started,
                int* grace_spent_ms, std::string* buffer) {
  for (;;) {
    const bool stopping =
        stop != nullptr && stop->load(std::memory_order_acquire);
    if (stopping) {
      // Idle connection: nothing of a request read yet — drop immediately.
      if (!request_started) return -1;
      // Mid-request: allow a bounded grace for the rest to arrive.
      if (*grace_spent_ms >= limits.drain_grace_ms) return -1;
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    int ready = poll(&pfd, 1, limits.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return -2;
    }
    if (ready == 0) {
      if (stopping) *grace_spent_ms += limits.poll_interval_ms;
      continue;
    }
    char chunk[16 * 1024];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return -2;
    }
    if (n == 0) return 0;
    buffer->append(chunk, static_cast<size_t>(n));
    return static_cast<int>(n);
  }
}

Status SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = send(fd, data.data() + sent, data.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send failed: ") +
                              std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Parses "Name: value" header lines in [begin, end) of `text` into `headers`
// (names lowercased, values trimmed). Lines are CRLF-separated.
Status ParseHeaderLines(std::string_view text,
                        std::map<std::string, std::string>* headers) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("malformed header line: " +
                                std::string(line.substr(0, 64)));
    }
    (*headers)[ToLower(Trim(line.substr(0, colon)))] =
        std::string(Trim(line.substr(colon + 1)));
  }
  return Status::OK();
}

Result<size_t> ParseContentLength(
    const std::map<std::string, std::string>& headers, size_t max_bytes) {
  auto it = headers.find("content-length");
  if (it == headers.end()) {
    if (headers.count("transfer-encoding")) {
      return Status::ParseError("chunked transfer encoding not supported");
    }
    return size_t{0};
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::ParseError("bad content-length: " + it->second);
  }
  if (max_bytes != 0 && v > max_bytes) {
    return Status::OutOfRange("body of " + std::to_string(v) +
                              " bytes exceeds the " +
                              std::to_string(max_bytes) + "-byte limit");
  }
  return static_cast<size_t>(v);
}

}  // namespace

std::string_view HttpRequest::Path() const {
  std::string_view t = target;
  size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view HttpRequest::Query() const {
  std::string_view t = target;
  size_t q = t.find('?');
  return q == std::string_view::npos ? std::string_view() : t.substr(q + 1);
}

std::string HttpRequest::QueryParam(std::string_view key) const {
  for (std::string_view pair : Split(Query(), '&')) {
    size_t eq = pair.find('=');
    std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name != key) continue;
    return eq == std::string_view::npos ? std::string("")
                                        : std::string(pair.substr(eq + 1));
  }
  return "";
}

Result<HttpRequest> ReadHttpRequest(int fd, const HttpLimits& limits,
                                    const std::atomic<bool>* stop) {
  std::string buffer;
  int grace_spent_ms = 0;
  size_t header_end;
  // Phase 1: accumulate until the blank line terminating the headers.
  for (;;) {
    header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buffer.size() > limits.max_header_bytes) {
      return Status::OutOfRange("request headers exceed " +
                                std::to_string(limits.max_header_bytes) +
                                " bytes");
    }
    int got = ReceiveMore(fd, limits, stop, /*request_started=*/
                          !buffer.empty(), &grace_spent_ms, &buffer);
    if (got == 0) {
      if (buffer.empty()) return Status::NotFound("connection closed");
      return Status::ParseError("connection closed mid-request");
    }
    if (got == -1) return Status::NotFound("connection drained for shutdown");
    if (got == -2) {
      return Status::Internal(std::string("recv failed: ") +
                              std::strerror(errno));
    }
  }

  // Request line: METHOD SP target SP HTTP/1.x
  size_t line_end = buffer.find("\r\n");
  std::string_view request_line =
      std::string_view(buffer).substr(0, line_end);
  std::vector<std::string_view> parts;
  for (std::string_view p : Split(request_line, ' ')) {
    if (!p.empty()) parts.push_back(p);
  }
  if (parts.size() != 3 || parts[2].substr(0, 5) != "HTTP/") {
    return Status::ParseError("malformed request line: " +
                              std::string(request_line.substr(0, 128)));
  }
  HttpRequest request;
  request.method = std::string(parts[0]);
  request.target = std::string(parts[1]);
  const bool http11 = parts[2] == "HTTP/1.1";
  JSONSI_RETURN_IF_ERROR(ParseHeaderLines(
      std::string_view(buffer).substr(line_end + 2,
                                      header_end - (line_end + 2)),
      &request.headers));

  auto connection = request.headers.find("connection");
  if (connection != request.headers.end()) {
    std::string value = ToLower(connection->second);
    request.keep_alive = value != "close" && (http11 || value == "keep-alive");
  } else {
    request.keep_alive = http11;
  }

  // Phase 2: the body, Content-Length bytes past the header terminator.
  Result<size_t> length =
      ParseContentLength(request.headers, limits.max_body_bytes);
  if (!length.ok()) return length.status();
  const size_t body_begin = header_end + 4;
  while (buffer.size() - body_begin < length.value()) {
    int got = ReceiveMore(fd, limits, stop, /*request_started=*/true,
                          &grace_spent_ms, &buffer);
    if (got == 0) return Status::ParseError("connection closed mid-body");
    if (got == -1) return Status::NotFound("connection drained for shutdown");
    if (got == -2) {
      return Status::Internal(std::string("recv failed: ") +
                              std::strerror(errno));
    }
  }
  request.body = buffer.substr(body_begin, length.value());
  return request;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 422: return "Unprocessable Content";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Bad Request";
  }
}

Status WriteHttpResponse(int fd, const HttpResponse& response,
                         bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     HttpStatusText(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  head += "\r\n";
  JSONSI_RETURN_IF_ERROR(SendAll(fd, head));
  return SendAll(fd, response.body);
}

// -- Client ----------------------------------------------------------------

HttpConnection::~HttpConnection() { Close(); }

void HttpConnection::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status HttpConnection::Connect(const std::string& host, uint16_t port) {
  Close();
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    Status st = Status::Internal("connect to " + host + ":" +
                                 std::to_string(port) + " failed: " +
                                 std::strerror(errno));
    close(fd);
    return st;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  host_ = host;
  port_ = port;
  return Status::OK();
}

Result<HttpResponse> HttpConnection::Call(const std::string& method,
                                          const std::string& target,
                                          const std::string& body,
                                          const std::string& content_type) {
  if (fd_ < 0 && !host_.empty()) {
    // The server closed the previous exchange; transparently reconnect.
    JSONSI_RETURN_IF_ERROR(Connect(host_, port_));
  }
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  std::string head = method + " " + target + " HTTP/1.1\r\n";
  head += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  if (!body.empty() || method == "POST") {
    head += "Content-Type: " + content_type + "\r\n";
    head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  head += "\r\n";
  Status sent = SendAll(fd_, head);
  if (sent.ok()) sent = SendAll(fd_, body);
  if (!sent.ok()) {
    Close();
    return sent;
  }

  // Response: status line + headers + Content-Length body, read through the
  // same buffered machinery as the server side.
  std::string buffer;
  HttpLimits limits;
  int grace = 0;
  size_t header_end;
  for (;;) {
    header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    int got = ReceiveMore(fd_, limits, nullptr, !buffer.empty(), &grace,
                          &buffer);
    if (got <= 0) {
      Close();
      return Status::ParseError("connection closed reading response");
    }
  }
  size_t line_end = buffer.find("\r\n");
  std::string_view status_line = std::string_view(buffer).substr(0, line_end);
  if (status_line.substr(0, 5) != "HTTP/" || status_line.size() < 12) {
    Close();
    return Status::ParseError("malformed status line: " +
                              std::string(status_line.substr(0, 64)));
  }
  HttpResponse response;
  response.status = std::atoi(std::string(status_line.substr(9, 3)).c_str());
  std::map<std::string, std::string> headers;
  Status parsed = ParseHeaderLines(
      std::string_view(buffer).substr(line_end + 2,
                                      header_end - (line_end + 2)),
      &headers);
  if (!parsed.ok()) {
    Close();
    return parsed;
  }
  auto ct = headers.find("content-type");
  if (ct != headers.end()) response.content_type = ct->second;
  Result<size_t> length = ParseContentLength(headers, /*max_bytes=*/0);
  if (!length.ok()) {
    Close();
    return length.status();
  }
  const size_t body_begin = header_end + 4;
  while (buffer.size() - body_begin < length.value()) {
    int got = ReceiveMore(fd_, limits, nullptr, true, &grace, &buffer);
    if (got <= 0) {
      Close();
      return Status::ParseError("connection closed reading response body");
    }
  }
  response.body = buffer.substr(body_begin, length.value());
  auto connection = headers.find("connection");
  if (connection != headers.end() && ToLower(connection->second) == "close") {
    Close();
  }
  return response;
}

Result<HttpResponse> HttpCall(const std::string& host, uint16_t port,
                              const std::string& method,
                              const std::string& target,
                              const std::string& body,
                              const std::string& content_type) {
  HttpConnection connection;
  JSONSI_RETURN_IF_ERROR(connection.Connect(host, port));
  return connection.Call(method, target, body, content_type);
}

}  // namespace jsonsi::server
