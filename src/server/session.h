// Per-tenant inference sessions for the `jsi serve` daemon.
//
// A Session wraps one StreamingInferencer — its own MalformedLinePolicy,
// parser budgets (max_line_bytes / max_depth), soft memory watermark, and
// optional checkpoint file — behind a mutex, so one tenant's ingest batches
// serialize while *different* tenants run fully concurrent on the server's
// thread pool. What tenants share is deliberate and process-global: the
// TypeInterner and FuseCache, so structurally similar traffic amortizes
// across sessions (the same tables the parallel pipeline already shares
// across worker threads — identity-preserving, so isolation is not
// weakened, only allocations).
//
// Session lifecycle mirrors the one-shot CLI exactly:
//   * a policy abort (kFail, or kFailAboveRate over budget) freezes the
//     session: the pre-abort schema stays queryable, further ingests are
//     rejected — the same pre-abort state a checkpointed `jsi infer` saves;
//   * a session created with a checkpoint path is durable: the server's
//     drain path saves it on shutdown, and `"resume": true` on create
//     restores it — schemas across a server restart equal an uninterrupted
//     stream by associativity of fusion;
//   * closing a session with a `source` name publishes its schema to the
//     server's SchemaRepository (when one is configured), versioning drift.

#ifndef JSONSI_SERVER_SESSION_H_
#define JSONSI_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/streaming_inferencer.h"
#include "json/jsonl.h"
#include "support/status.h"

namespace jsonsi::server {

/// Tenant-supplied session configuration (the POST /v1/sessions body).
struct SessionConfig {
  /// Policy, budgets, watermark, direct/DOM switch.
  core::StreamingOptions streaming;
  /// Non-empty => durable: drained on shutdown, restorable with `resume`.
  std::string checkpoint_path;
  /// Restore checkpoint_path before the first ingest (the file must exist).
  bool resume = false;
  /// Worker threads per ingest batch: 1 = serial, 0 = hardware concurrency,
  /// N = chunk-parallel on N workers (AddJsonLinesParallel semantics —
  /// byte-identical results either way).
  size_t ingest_threads = 1;
  /// Repository source name to publish the final schema under on close
  /// ("" = do not publish).
  std::string source;
};

/// Parses the JSON body of POST /v1/sessions ("" or "{}" = all defaults).
/// Recognized keys: "policy" ("fail" | "skip" | "fail-above-rate"),
/// "max_error_rate", "min_lines_for_rate", "max_line_bytes", "max_depth",
/// "memory_watermark_mb", "checkpoint", "resume", "threads", "source",
/// "direct" (bool), "count_distinct" (bool). Unknown keys are rejected so
/// typos fail loudly.
Result<SessionConfig> ParseSessionConfig(std::string_view body);

/// Point-in-time session accounting for responses and reports.
struct SessionInfo {
  std::string id;
  uint64_t records = 0;
  json::IngestStats ingest;
  bool aborted = false;
  std::string abort_message;
  bool durable = false;
  bool memory_degraded = false;
};

/// One tenant's streaming-inference state. Thread-safe; ingest batches to
/// the same session serialize on the session mutex.
class Session {
 public:
  Session(std::string id, SessionConfig config);

  /// Restores the checkpoint when the config asked to resume.
  Status Open();

  /// Appends one JSONL batch. A policy abort freezes the session (the error
  /// is returned now and remembered; later ingests get Conflict-flavored
  /// InvalidArgument). Durable sessions are NOT checkpointed per batch —
  /// only on Checkpoint()/drain — matching `--checkpoint-every` batching.
  Status Ingest(std::string_view text);

  /// Consistent snapshot of the running schema (O(log n) fuse work).
  core::Schema Snapshot() const;

  /// Current accounting.
  SessionInfo Info() const;

  /// Saves the checkpoint now (no-op OK for non-durable sessions). Also
  /// saves a frozen session's pre-abort state, like the CLI does.
  Status Checkpoint() const;

  const std::string& id() const { return id_; }
  const SessionConfig& config() const { return config_; }

 private:
  const std::string id_;
  const SessionConfig config_;
  mutable std::mutex mu_;
  core::StreamingInferencer stream_;
  bool aborted_ = false;
  Status abort_status_;
};

/// The server's id -> Session table.
class SessionManager {
 public:
  /// Creates (and Opens) a session; ids are "s-1", "s-2", ...
  Result<std::shared_ptr<Session>> Create(const SessionConfig& config);

  /// nullptr when unknown.
  std::shared_ptr<Session> Find(const std::string& id) const;

  /// Removes and returns the session (so the caller can publish/checkpoint
  /// it after unlinking); NotFound when unknown.
  Result<std::shared_ptr<Session>> Remove(const std::string& id);

  /// All live sessions, id-sorted.
  std::vector<std::shared_ptr<Session>> All() const;

  /// Checkpoints every durable session; returns the first failure but
  /// attempts all of them (the drain path must not stop at one bad disk).
  Status CheckpointAll() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
};

}  // namespace jsonsi::server

#endif  // JSONSI_SERVER_SESSION_H_
