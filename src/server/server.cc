#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "export/json_schema.h"
#include "support/string_util.h"
#include "telemetry/telemetry.h"

namespace jsonsi::server {
namespace {

HttpResponse ErrorResponse(int status, const std::string& message) {
  JSONSI_COUNTER("server.http_errors").Increment();
  std::string body = "{\"error\": ";
  body.push_back('"');
  AppendJsonEscaped(message, &body);
  body.append("\"}\n");
  return HttpResponse{status, "application/json", std::move(body)};
}

void AppendField(const char* key, const std::string& raw_value,
                 std::string* out) {
  if (out->back() != '{') out->append(", ");
  out->push_back('"');
  out->append(key);
  out->append("\": ");
  out->append(raw_value);
}

void AppendStrField(const char* key, std::string_view value,
                    std::string* out) {
  std::string quoted = "\"";
  AppendJsonEscaped(value, &quoted);
  quoted.push_back('"');
  AppendField(key, quoted, out);
}

// Shared accounting block of the ingest/info/close responses.
void AppendSessionAccounting(const SessionInfo& info, std::string* out) {
  AppendField("records", std::to_string(info.records), out);
  AppendField("lines_read", std::to_string(info.ingest.lines_read), out);
  AppendField("blank_lines", std::to_string(info.ingest.blank_lines), out);
  AppendField("malformed_lines",
              std::to_string(info.ingest.malformed_lines), out);
  AppendField("bytes_consumed",
              std::to_string(info.ingest.bytes_consumed), out);
  AppendField("error_rate", FormatJsonNumber(info.ingest.ErrorRate()), out);
  AppendField("aborted", info.aborted ? "true" : "false", out);
  if (info.aborted) AppendStrField("error", info.abort_message, out);
  AppendField("durable", info.durable ? "true" : "false", out);
  AppendField("memory_degraded", info.memory_degraded ? "true" : "false",
              out);
}

}  // namespace

InferenceServer::InferenceServer(const ServerOptions& options)
    : options_(options) {}

InferenceServer::~InferenceServer() { Stop(); }

Status InferenceServer::Start() {
  if (options_.enable_telemetry) telemetry::SetEnabled(true);
  if (!options_.repository_path.empty()) {
    auto loaded =
        repository::SchemaRepository::LoadFromFile(options_.repository_path);
    // A missing file means a fresh repository; any other failure is real.
    if (loaded.ok()) {
      repo_ = std::move(loaded).value();
    } else if (loaded.status().code() == StatusCode::kNotFound) {
      repo_.emplace();
    } else {
      return loaded.status();
    }
  }

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  const std::string bind_host = options_.bind_address == "localhost"
                                    ? "127.0.0.1"
                                    : options_.bind_address;
  if (inet_pton(AF_INET, bind_host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("not an IPv4 bind address: " +
                                   options_.bind_address);
  }
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::Internal("bind to " + options_.bind_address + ":" +
                                 std::to_string(options_.port) +
                                 " failed: " + std::strerror(errno));
    close(fd);
    return st;
  }
  if (listen(fd, 128) != 0) {
    Status st =
        Status::Internal(std::string("listen failed: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  struct sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) !=
      0) {
    Status st = Status::Internal(std::string("getsockname failed: ") +
                                 std::strerror(errno));
    close(fd);
    return st;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;

  size_t threads = options_.num_threads
                       ? options_.num_threads
                       : std::max(2u, std::thread::hardware_concurrency());
  pool_ = std::make_unique<engine::ThreadPool>(threads);
  stopping_.store(false, std::memory_order_release);
  stopped_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

Status InferenceServer::Stop() {
  if (stopped_) return Status::OK();
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Drain: every connection handler observes stopping_, finishes the
  // request it already started, and closes. Wait() returns once the last
  // one has.
  if (pool_) pool_->Wait();
  // Now the sessions are quiescent; persist every durable one.
  return sessions_.CheckpointAll();
}

void InferenceServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    int ready = poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    JSONSI_COUNTER("server.connections").Increment();
    pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void InferenceServer::HandleConnection(int fd) {
  for (;;) {
    Result<HttpRequest> request =
        ReadHttpRequest(fd, options_.http, &stopping_);
    if (!request.ok()) {
      // NotFound = clean close / idle drain: nothing left to answer.
      if (request.status().code() == StatusCode::kParseError) {
        WriteHttpResponse(fd, ErrorResponse(400, request.status().message()),
                          /*keep_alive=*/false);
      } else if (request.status().code() == StatusCode::kOutOfRange) {
        WriteHttpResponse(fd, ErrorResponse(413, request.status().message()),
                          /*keep_alive=*/false);
      }
      break;
    }
    JSONSI_COUNTER("server.requests").Increment();
    JSONSI_GAUGE("server.requests_inflight").Add(1);
    HttpResponse response = Route(request.value());
    JSONSI_GAUGE("server.requests_inflight").Add(-1);
    const bool keep_alive = request.value().keep_alive &&
                            !stopping_.load(std::memory_order_acquire);
    Status written = WriteHttpResponse(fd, response, keep_alive);
    if (!written.ok() || !keep_alive) break;
  }
  close(fd);
}

HttpResponse InferenceServer::Route(const HttpRequest& request) {
  const std::string_view path = request.Path();
  if (path == "/healthz") {
    if (request.method != "GET") {
      return ErrorResponse(405, "healthz is GET-only");
    }
    return HttpResponse{200, "application/json", "{\"status\": \"ok\"}\n"};
  }
  if (path == "/metrics") {
    if (request.method != "GET") {
      return ErrorResponse(405, "metrics is GET-only");
    }
    return MetricsResponse();
  }
  if (path == "/v1/sessions") {
    if (request.method != "POST") {
      return ErrorResponse(405, "use POST to create a session");
    }
    return CreateSession(request);
  }
  // /v1/sessions/{id}[/verb]
  constexpr std::string_view kPrefix = "/v1/sessions/";
  if (path.substr(0, kPrefix.size()) == kPrefix) {
    std::string_view rest = path.substr(kPrefix.size());
    size_t slash = rest.find('/');
    std::string id(rest.substr(0, slash));
    std::string_view verb =
        slash == std::string_view::npos ? std::string_view() : rest.substr(
            slash + 1);
    if (id.empty()) return ErrorResponse(404, "missing session id");
    if (verb.empty()) {
      if (request.method == "DELETE") return CloseSession(id);
      if (request.method != "GET") {
        return ErrorResponse(405, "use GET or DELETE on a session");
      }
      std::shared_ptr<Session> session = sessions_.Find(id);
      if (!session) return ErrorResponse(404, "no session " + id);
      return SessionInfoResponse(session);
    }
    std::shared_ptr<Session> session = sessions_.Find(id);
    if (!session) return ErrorResponse(404, "no session " + id);
    if (verb == "ingest") {
      if (request.method != "POST") {
        return ErrorResponse(405, "ingest is POST-only");
      }
      return SessionIngest(session, request);
    }
    if (verb == "schema") {
      if (request.method != "GET") {
        return ErrorResponse(405, "schema is GET-only");
      }
      return SessionSchema(session, request);
    }
    return ErrorResponse(404, "unknown session endpoint: " +
                                  std::string(verb));
  }
  return ErrorResponse(404, "unknown path: " + std::string(path));
}

HttpResponse InferenceServer::CreateSession(const HttpRequest& request) {
  Result<SessionConfig> config = ParseSessionConfig(request.body);
  if (!config.ok()) return ErrorResponse(400, config.status().message());
  if (!config.value().source.empty() && !repo_.has_value()) {
    return ErrorResponse(
        400, "session names a \"source\" but the server runs without "
             "--repo; publishing is disabled");
  }
  Result<std::shared_ptr<Session>> session =
      sessions_.Create(config.value());
  if (!session.ok()) return ErrorResponse(400, session.status().message());
  JSONSI_GAUGE("server.sessions_active")
      .Set(static_cast<int64_t>(sessions_.size()));
  std::string body = "{";
  AppendStrField("session", session.value()->id(), &body);
  const SessionInfo info = session.value()->Info();
  AppendField("resumed_records", std::to_string(info.records), &body);
  AppendField("durable", info.durable ? "true" : "false", &body);
  body.append("}\n");
  return HttpResponse{201, "application/json", std::move(body)};
}

HttpResponse InferenceServer::SessionIngest(
    const std::shared_ptr<Session>& session, const HttpRequest& request) {
  if (session->Info().aborted) {
    return ErrorResponse(409, "session " + session->id() +
                                  " is frozen by an earlier policy abort");
  }
  const uint64_t records_before = session->Info().records;
  Status st = session->Ingest(request.body);
  SessionInfo info = session->Info();
  JSONSI_COUNTER("server.ingest_records")
      .Add(info.records - records_before);
  std::string body = "{";
  AppendStrField("session", session->id(), &body);
  AppendSessionAccounting(info, &body);
  body.append("}\n");
  // A policy abort is a tenant-data problem, not a server failure: 422 with
  // the full accounting, mirroring the CLI's stderr report + exit 2.
  return HttpResponse{st.ok() ? 200 : 422, "application/json",
                      std::move(body)};
}

HttpResponse InferenceServer::SessionSchema(
    const std::shared_ptr<Session>& session, const HttpRequest& request) {
  const bool pretty = request.QueryParam("pretty") == "1";
  const std::string format = request.QueryParam("format");
  core::Schema schema = session->Snapshot();
  if (format == "type") {
    return HttpResponse{200, "text/plain; charset=utf-8",
                        schema.ToString(pretty) + "\n"};
  }
  if (!format.empty() && format != "json-schema") {
    return ErrorResponse(400, "unknown format: " + format +
                                  " (want type | json-schema)");
  }
  return HttpResponse{200, "application/schema+json",
                      exporter::ToJsonSchemaText(*schema.type, pretty) +
                          "\n"};
}

HttpResponse InferenceServer::SessionInfoResponse(
    const std::shared_ptr<Session>& session) {
  SessionInfo info = session->Info();
  std::string body = "{";
  AppendStrField("session", info.id, &body);
  AppendSessionAccounting(info, &body);
  body.append("}\n");
  return HttpResponse{200, "application/json", std::move(body)};
}

HttpResponse InferenceServer::CloseSession(const std::string& id) {
  Result<std::shared_ptr<Session>> removed = sessions_.Remove(id);
  if (!removed.ok()) return ErrorResponse(404, removed.status().message());
  JSONSI_GAUGE("server.sessions_active")
      .Set(static_cast<int64_t>(sessions_.size()));
  const std::shared_ptr<Session>& session = removed.value();
  SessionInfo info = session->Info();
  std::string body = "{";
  AppendStrField("closed", id, &body);
  AppendField("records", std::to_string(info.records), &body);
  Status checkpointed = session->Checkpoint();
  if (!checkpointed.ok()) {
    AppendStrField("checkpoint_error", checkpointed.message(), &body);
  }
  if (!session->config().source.empty() && repo_.has_value()) {
    core::Schema schema = session->Snapshot();
    std::lock_guard<std::mutex> lock(repo_mu_);
    Status published = repo_->RegisterBatch(session->config().source,
                                            schema.type, info.records);
    if (published.ok()) {
      published = repo_->SaveToFile(options_.repository_path);
    }
    if (published.ok()) {
      const repository::SchemaVersion* current =
          repo_->Current(session->config().source);
      AppendStrField("published_source", session->config().source, &body);
      AppendField("published_version",
                  std::to_string(current ? current->version : 0), &body);
      JSONSI_COUNTER("server.publishes").Increment();
    } else {
      AppendStrField("publish_error", published.message(), &body);
    }
  }
  body.append("}\n");
  return HttpResponse{200, "application/json", std::move(body)};
}

HttpResponse InferenceServer::MetricsResponse() {
  JSONSI_GAUGE("server.sessions_active")
      .Set(static_cast<int64_t>(sessions_.size()));
  return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                      telemetry::GlobalMetricsPrometheus()};
}

}  // namespace jsonsi::server
