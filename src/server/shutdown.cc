#include "server/shutdown.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <mutex>

namespace jsonsi::server {
namespace {

std::atomic<bool> g_shutdown_requested{false};
// Self-pipe; write end is O_NONBLOCK so a handler never blocks on a full
// pipe (one unread byte already means "latch tripped").
std::atomic<int> g_wake_read_fd{-1};
std::atomic<int> g_wake_write_fd{-1};
std::once_flag g_pipe_once;
std::once_flag g_handlers_once;

void EnsurePipe() {
  std::call_once(g_pipe_once, [] {
    int fds[2];
    if (pipe(fds) != 0) return;  // latch still works via the flag alone
    fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    fcntl(fds[1], F_SETFD, FD_CLOEXEC);
    fcntl(fds[1], F_SETFL, O_NONBLOCK);
    g_wake_read_fd.store(fds[0], std::memory_order_release);
    g_wake_write_fd.store(fds[1], std::memory_order_release);
  });
}

// The only code a signal handler runs: set the flag, poke the pipe.
void TripLatch() {
  g_shutdown_requested.store(true, std::memory_order_release);
  int fd = g_wake_write_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    char byte = 1;
    // Best effort; EAGAIN means a wake byte is already pending.
    [[maybe_unused]] ssize_t n = write(fd, &byte, 1);
  }
}

void HandleSignal(int /*signum*/) { TripLatch(); }

}  // namespace

void InstallShutdownSignalHandlers() {
  EnsurePipe();
  std::call_once(g_handlers_once, [] {
    struct sigaction sa = {};
    sa.sa_handler = HandleSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
  });
}

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_acquire);
}

void RequestShutdown() {
  EnsurePipe();
  TripLatch();
}

int ShutdownWakeFd() {
  EnsurePipe();
  return g_wake_read_fd.load(std::memory_order_acquire);
}

void WaitForShutdown() {
  EnsurePipe();
  while (!ShutdownRequested()) {
    int fd = g_wake_read_fd.load(std::memory_order_acquire);
    if (fd < 0) {
      // No pipe (creation failed): degrade to a flag poll.
      struct timespec ts = {0, 50 * 1000 * 1000};
      nanosleep(&ts, nullptr);
      continue;
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    poll(&pfd, 1, 200);
  }
}

void ResetShutdownForTesting() {
  g_shutdown_requested.store(false, std::memory_order_release);
  int fd = g_wake_read_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    // Drain pending wake bytes so the next WaitForShutdown really blocks.
    char buf[16];
    int flags = fcntl(fd, F_GETFL);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    while (read(fd, buf, sizeof(buf)) > 0) {
    }
    fcntl(fd, F_SETFL, flags);
  }
}

}  // namespace jsonsi::server
