// `jsi serve` — the long-running multi-tenant schema-inference daemon.
//
// The ROADMAP's "inference as a service" unlock: instead of one-shot CLI
// runs, a resident process holds many tenants' StreamingInferencer state and
// exposes it over a local HTTP/1.1 endpoint. An accept thread hands each
// connection to the existing engine::ThreadPool; handlers serialize per
// session and run concurrently across sessions, all sharing the process-
// global TypeInterner + FuseCache so tenants amortize each other's
// structure.
//
// Protocol (docs/server.md):
//   POST   /v1/sessions               create a session (JSON config body)
//   POST   /v1/sessions/{id}/ingest   feed a JSONL batch (streamed through
//                                     AddJsonLines / AddJsonLinesParallel)
//   GET    /v1/sessions/{id}          session accounting (records, stats)
//   GET    /v1/sessions/{id}/schema   JSON Schema (?format=type for the
//                                     paper syntax; ?pretty=1)
//   DELETE /v1/sessions/{id}          close (checkpoint durable state,
//                                     publish to the repository when named)
//   GET    /metrics                   live Prometheus scrape of the global
//                                     telemetry registry
//   GET    /healthz                   liveness probe
//
// Graceful shutdown: Stop() (wired to SIGINT/SIGTERM by the CLI through
// server/shutdown.h) stops accepting, lets every in-flight request finish,
// then checkpoints all durable sessions — a SIGTERM mid-ingest loses no
// checkpointed session state.

#ifndef JSONSI_SERVER_SERVER_H_
#define JSONSI_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "engine/thread_pool.h"
#include "repository/schema_repository.h"
#include "server/http.h"
#include "server/session.h"
#include "support/status.h"

namespace jsonsi::server {

/// Daemon configuration.
struct ServerOptions {
  /// Listen address; loopback by default — the daemon trusts its callers.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back from port()).
  uint16_t port = 0;
  /// Connection-handler pool size (0 = hardware concurrency). Each worker
  /// owns one connection at a time, so this bounds concurrent tenants.
  size_t num_threads = 0;
  /// Path of a SchemaRepository to publish named sessions into on close
  /// ("" = publishing disabled). Loaded at Start, saved after each publish.
  std::string repository_path;
  /// HTTP framing limits (body cap, drain grace).
  HttpLimits http;
  /// Turn the telemetry layer on at Start so /metrics has live counters.
  bool enable_telemetry = true;
};

/// The daemon. Start() returns immediately; Stop() drains and checkpoints.
class InferenceServer {
 public:
  explicit InferenceServer(const ServerOptions& options = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// The bound port (resolves port 0 to the kernel-assigned one).
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, finish in-flight requests, checkpoint
  /// durable sessions. Idempotent; returns the first checkpoint failure.
  Status Stop();

  /// The live session table (exposed for tests and the CLI's exit report).
  SessionManager& sessions() { return sessions_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  HttpResponse Route(const HttpRequest& request);
  HttpResponse CreateSession(const HttpRequest& request);
  HttpResponse SessionIngest(const std::shared_ptr<Session>& session,
                             const HttpRequest& request);
  HttpResponse SessionSchema(const std::shared_ptr<Session>& session,
                             const HttpRequest& request);
  HttpResponse SessionInfoResponse(const std::shared_ptr<Session>& session);
  HttpResponse CloseSession(const std::string& id);
  HttpResponse MetricsResponse();

  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  std::thread accept_thread_;
  std::unique_ptr<engine::ThreadPool> pool_;
  SessionManager sessions_;
  // Publish target; present only when repository_path was configured.
  std::mutex repo_mu_;
  std::optional<repository::SchemaRepository> repo_;
};

}  // namespace jsonsi::server

#endif  // JSONSI_SERVER_SERVER_H_
