// Process-wide graceful-shutdown latch shared by every long-running entry
// point: `jsi serve` drains its connections and checkpoints durable sessions
// when the latch fires, and a checkpointed `jsi infer` saves a final
// checkpoint between batches instead of losing the run.
//
// The latch is a one-way atomic flag plus a self-pipe. Signal handlers for
// SIGINT/SIGTERM only set the flag and write one byte to the pipe (both
// async-signal-safe); everything else — draining requests, saving
// checkpoints, printing reports — happens on normal threads that observe
// ShutdownRequested() or poll ShutdownWakeFd(). RequestShutdown() trips the
// same latch programmatically, so tests and embedders exercise the exact
// drain path a real signal takes.

#ifndef JSONSI_SERVER_SHUTDOWN_H_
#define JSONSI_SERVER_SHUTDOWN_H_

namespace jsonsi::server {

/// Installs SIGINT/SIGTERM handlers that trip the shutdown latch.
/// Idempotent; first call creates the self-pipe.
void InstallShutdownSignalHandlers();

/// True once a shutdown signal was delivered or RequestShutdown() ran.
bool ShutdownRequested();

/// Trips the latch programmatically (same observable effect as a signal).
void RequestShutdown();

/// Read end of the self-pipe: becomes readable when the latch trips, so
/// event loops can poll({server_fd, ShutdownWakeFd()}) instead of spinning.
/// Creates the pipe on first use.
int ShutdownWakeFd();

/// Blocks until the latch trips (poll on the self-pipe). Returns
/// immediately when it already has.
void WaitForShutdown();

/// Re-arms the latch for the next test: clears the flag and drains the
/// pipe. Never used in production paths — shutdown is one-way there.
void ResetShutdownForTesting();

}  // namespace jsonsi::server

#endif  // JSONSI_SERVER_SHUTDOWN_H_
