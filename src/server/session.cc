#include "server/session.h"

#include <utility>

#include "core/checkpoint.h"
#include "core/io_pump.h"
#include "io/pipeline_reader.h"
#include "json/parser.h"
#include "telemetry/telemetry.h"

namespace jsonsi::server {
namespace {

Status BadConfig(const std::string& message) {
  return Status::InvalidArgument("session config: " + message);
}

Result<uint64_t> ConfigU64(const json::Value& value, const std::string& key) {
  if (!value.is_num() || value.num_value() < 0) {
    return BadConfig("\"" + key + "\" must be a non-negative number");
  }
  return static_cast<uint64_t>(value.num_value());
}

Result<bool> ConfigBool(const json::Value& value, const std::string& key) {
  if (!value.is_bool()) return BadConfig("\"" + key + "\" must be a boolean");
  return value.bool_value();
}

Result<std::string> ConfigStr(const json::Value& value,
                              const std::string& key) {
  if (!value.is_str()) return BadConfig("\"" + key + "\" must be a string");
  return value.str_value();
}

}  // namespace

Result<SessionConfig> ParseSessionConfig(std::string_view body) {
  SessionConfig config;
  // Server tenants default to degraded-friendly strictness: the classic
  // strict kFail, exactly like one-shot `jsi infer` with no flags.
  if (body.empty()) return config;
  Result<json::ValueRef> parsed = json::Parse(body);
  if (!parsed.ok()) {
    return BadConfig("body is not JSON: " + parsed.status().message());
  }
  const json::Value& root = *parsed.value();
  if (!root.is_record()) return BadConfig("body must be a JSON object");
  for (const json::Field& field : root.fields()) {
    const std::string& key = field.key;
    const json::Value& value = *field.value;
    if (key == "policy") {
      Result<std::string> policy = ConfigStr(value, key);
      if (!policy.ok()) return policy.status();
      if (policy.value() == "fail") {
        config.streaming.on_malformed = json::MalformedLinePolicy::kFail;
      } else if (policy.value() == "skip") {
        config.streaming.on_malformed = json::MalformedLinePolicy::kSkip;
      } else if (policy.value() == "fail-above-rate") {
        config.streaming.on_malformed =
            json::MalformedLinePolicy::kFailAboveRate;
      } else {
        return BadConfig("unknown \"policy\": " + policy.value() +
                         " (want fail | skip | fail-above-rate)");
      }
    } else if (key == "max_error_rate") {
      if (!value.is_num() || value.num_value() < 0 || value.num_value() > 1) {
        return BadConfig("\"max_error_rate\" must be a number in [0, 1]");
      }
      config.streaming.max_error_rate = value.num_value();
    } else if (key == "min_lines_for_rate") {
      Result<uint64_t> v = ConfigU64(value, key);
      if (!v.ok()) return v.status();
      config.streaming.min_lines_for_rate = v.value();
    } else if (key == "max_line_bytes") {
      Result<uint64_t> v = ConfigU64(value, key);
      if (!v.ok()) return v.status();
      config.streaming.parse.max_document_bytes =
          static_cast<size_t>(v.value());
    } else if (key == "max_depth") {
      Result<uint64_t> v = ConfigU64(value, key);
      if (!v.ok()) return v.status();
      if (v.value() == 0) return BadConfig("\"max_depth\" must be positive");
      config.streaming.parse.max_depth = static_cast<size_t>(v.value());
    } else if (key == "memory_watermark_mb") {
      Result<uint64_t> v = ConfigU64(value, key);
      if (!v.ok()) return v.status();
      config.streaming.soft_memory_limit_bytes = v.value() * (1ull << 20);
    } else if (key == "checkpoint") {
      Result<std::string> v = ConfigStr(value, key);
      if (!v.ok()) return v.status();
      config.checkpoint_path = v.value();
    } else if (key == "resume") {
      Result<bool> v = ConfigBool(value, key);
      if (!v.ok()) return v.status();
      config.resume = v.value();
    } else if (key == "threads") {
      Result<uint64_t> v = ConfigU64(value, key);
      if (!v.ok()) return v.status();
      config.ingest_threads = static_cast<size_t>(v.value());
    } else if (key == "source") {
      Result<std::string> v = ConfigStr(value, key);
      if (!v.ok()) return v.status();
      config.source = v.value();
    } else if (key == "direct") {
      Result<bool> v = ConfigBool(value, key);
      if (!v.ok()) return v.status();
      config.streaming.direct_infer = v.value();
    } else if (key == "count_distinct") {
      Result<bool> v = ConfigBool(value, key);
      if (!v.ok()) return v.status();
      config.streaming.count_distinct_types = v.value();
    } else {
      return BadConfig("unknown key \"" + key + "\"");
    }
  }
  if (config.resume && config.checkpoint_path.empty()) {
    return BadConfig("\"resume\" needs \"checkpoint\"");
  }
  return config;
}

Session::Session(std::string id, SessionConfig config)
    : id_(std::move(id)),
      config_(std::move(config)),
      stream_(config_.streaming) {}

Status Session::Open() {
  if (!config_.resume) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return core::LoadCheckpoint(config_.checkpoint_path, &stream_);
}

Status Session::Ingest(std::string_view text) {
  std::lock_guard<std::mutex> lock(mu_);
  if (aborted_) {
    return Status::InvalidArgument("session " + id_ +
                                   " is frozen by an earlier policy abort: " +
                                   abort_status_.message());
  }
  JSONSI_COUNTER("server.ingest_bytes").Add(text.size());
  // Route the body through the shared ingestion pump (core/io_pump.h): the
  // buffered body is sliced zero-copy into newline-bounded batches, so a
  // body of any size ingests in bounded steps. One body is one logical
  // stream segment — interior batches defer the end-of-read rate check to
  // the body's end, which makes the pump byte-identical to the single Add
  // call this used to be.
  io::MemorySource source(text);
  io::PipelineReader reader(&source, io::IoOptions{});
  core::PumpOptions pump;
  pump.num_threads = config_.ingest_threads;
  Status st = core::PumpJsonLines(reader, stream_, pump);
  if (!st.ok()) {
    // Freeze with the consistent pre-abort state, exactly what a
    // checkpointed CLI run persists before exiting on a policy abort.
    aborted_ = true;
    abort_status_ = st;
  }
  return st;
}

core::Schema Session::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stream_.Snapshot();
}

SessionInfo Session::Info() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionInfo info;
  info.id = id_;
  info.records = stream_.record_count();
  info.ingest = stream_.ingest_stats();
  info.aborted = aborted_;
  info.abort_message = abort_status_.message();
  info.durable = !config_.checkpoint_path.empty();
  info.memory_degraded = stream_.memory_degraded();
  return info;
}

Status Session::Checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.checkpoint_path.empty()) return Status::OK();
  JSONSI_COUNTER("server.checkpoints").Increment();
  return core::SaveCheckpoint(stream_, config_.checkpoint_path);
}

Result<std::shared_ptr<Session>> SessionManager::Create(
    const SessionConfig& config) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string id = "s-" + std::to_string(next_id_++);
    session = std::make_shared<Session>(id, config);
    sessions_[session->id()] = session;
  }
  // Open (checkpoint restore) outside the table lock: disk I/O must not
  // block unrelated tenants' lookups.
  Status opened = session->Open();
  if (!opened.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.erase(session->id());
    return opened;
  }
  JSONSI_COUNTER("server.sessions_opened").Increment();
  return session;
}

std::shared_ptr<Session> SessionManager::Find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Result<std::shared_ptr<Session>> SessionManager::Remove(
    const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session " + id);
  }
  std::shared_ptr<Session> session = std::move(it->second);
  sessions_.erase(it);
  JSONSI_COUNTER("server.sessions_closed").Increment();
  return session;
}

std::vector<std::shared_ptr<Session>> SessionManager::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Session>> all;
  all.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) all.push_back(session);
  return all;
}

Status SessionManager::CheckpointAll() const {
  Status first;
  for (const std::shared_ptr<Session>& session : All()) {
    Status st = session->Checkpoint();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace jsonsi::server
