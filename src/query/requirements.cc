#include "query/requirements.h"

#include <optional>

#include "query/path_expansion.h"
#include "support/string_util.h"
#include "types/printer.h"
#include "types/subtype.h"

namespace jsonsi::query {

using types::Type;
using types::TypeRef;

namespace {

// Resolution of one concrete schema path (as produced by TypePaths): the
// type found at that position and whether any step along the way can be
// absent in a record (an optional field, or an array element step — arrays
// may always be empty).
struct Resolution {
  TypeRef type;
  bool may_be_absent = false;
};

// Picks the record alternative of a (possibly union) type; nullptr if none.
const Type* RecordAlt(const TypeRef& t) {
  for (const TypeRef& alt : types::Flatten(t)) {
    if (alt->is_record()) return alt.get();
  }
  return nullptr;
}

// Picks the array alternative; nullptr if none.
const Type* ArrayAlt(const TypeRef& t) {
  for (const TypeRef& alt : types::Flatten(t)) {
    if (alt->is_array()) return alt.get();
  }
  return nullptr;
}

TypeRef ArrayBody(const Type& array) {
  if (array.is_array_star()) return array.body();
  // Exact arrays: the union of the element types (position-insensitive,
  // which is what a path step selects).
  std::vector<TypeRef> elements = array.elements();
  return Type::Union(std::move(elements));
}

std::optional<Resolution> Resolve(const TypeRef& schema,
                                  const std::string& path) {
  Resolution r{schema, false};
  for (std::string_view segment : Split(path, '.')) {
    // A segment is "<name>[]*": a field name (possibly empty at the root
    // for top-level arrays) followed by zero or more array descents.
    size_t bracket = segment.find("[]");
    std::string_view name = segment.substr(0, bracket);
    if (!name.empty()) {
      const Type* record = RecordAlt(r.type);
      if (!record) return std::nullopt;
      const types::FieldType* field = record->FindField(name);
      if (!field) return std::nullopt;
      r.may_be_absent |= field->optional;
      r.type = field->type;
    }
    while (bracket != std::string_view::npos) {
      const Type* array = ArrayAlt(r.type);
      if (!array) return std::nullopt;
      // An array element step is never guaranteed: arrays may be empty.
      r.may_be_absent = true;
      r.type = ArrayBody(*array);
      bracket = segment.find("[]", bracket + 2);
    }
  }
  return r;
}

}  // namespace

const char* RequirementStatusName(RequirementStatus status) {
  switch (status) {
    case RequirementStatus::kOk:
      return "ok";
    case RequirementStatus::kMissing:
      return "missing";
    case RequirementStatus::kTypeMismatch:
      return "type-mismatch";
    case RequirementStatus::kMayBeAbsent:
      return "may-be-absent";
  }
  return "?";
}

std::vector<RequirementResult> CheckRequirements(
    const TypeRef& schema, const std::vector<FieldRequirement>& requirements) {
  std::vector<RequirementResult> results;
  results.reserve(requirements.size());
  for (const FieldRequirement& req : requirements) {
    RequirementResult result;
    result.requirement = req;
    result.matched_paths = ExpandPathPattern(*schema, req.pattern);
    if (result.matched_paths.empty()) {
      result.status = RequirementStatus::kMissing;
      result.detail = "pattern matches no schema path: the selection can "
                      "never produce data";
      results.push_back(std::move(result));
      continue;
    }
    result.status = RequirementStatus::kOk;
    for (const std::string& path : result.matched_paths) {
      std::optional<Resolution> resolved = Resolve(schema, path);
      if (!resolved) continue;  // defensive; expansion guarantees existence
      if (req.expected && !types::IsSubtypeOf(*resolved->type, *req.expected)) {
        result.status = RequirementStatus::kTypeMismatch;
        result.detail = "at " + path + ": schema has " +
                        types::ToString(*resolved->type) +
                        ", query expects " + types::ToString(*req.expected);
        break;  // mismatch dominates
      }
      if (req.must_be_mandatory && resolved->may_be_absent &&
          result.status == RequirementStatus::kOk) {
        result.status = RequirementStatus::kMayBeAbsent;
        result.detail = "at " + path +
                        ": a step is optional (or an array element), so "
                        "some records lack the value";
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace jsonsi::query
