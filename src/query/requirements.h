// Static checking of a query's data requirements against an inferred
// schema — the analysis Section 1 of the paper sketches: "by identifying
// the data requirements of a query or a program through a simple static
// analysis technique, it is possible to match these requirements with the
// schema", catching type errors and dead selections before any data is
// scanned (the paper's [12] does this for Pig Latin scripts).
//
// A requirement names a path pattern (query/path_expansion.h wildcards
// allowed) together with the type the query expects there, and optionally
// insists the field chain is always present. Checking classifies each
// requirement:
//
//   kOk             every matched position is a subtype of the expectation
//   kMissing        the pattern matches no schema path (dead selection)
//   kTypeMismatch   some matched position can hold values outside the
//                   expectation (the query would need a runtime guard)
//   kMayBeAbsent    types line up, but some step on a matched path is
//                   optional while the requirement demanded mandatory

#ifndef JSONSI_QUERY_REQUIREMENTS_H_
#define JSONSI_QUERY_REQUIREMENTS_H_

#include <string>
#include <vector>

#include "types/type.h"

namespace jsonsi::query {

/// One data requirement of a query.
struct FieldRequirement {
  /// Path pattern ("user.id", "entities.*.indices", "**.ts").
  std::string pattern;
  /// Type the query expects at every matched position (e.g. Num). Null
  /// handle means "any type" (presence-only requirement).
  types::TypeRef expected;
  /// When true, every record must carry the matched paths (no optional
  /// step allowed along the way).
  bool must_be_mandatory = false;
};

enum class RequirementStatus {
  kOk,
  kMissing,
  kTypeMismatch,
  kMayBeAbsent,
};

/// "ok" / "missing" / "type-mismatch" / "may-be-absent".
const char* RequirementStatusName(RequirementStatus status);

/// Outcome for one requirement.
struct RequirementResult {
  FieldRequirement requirement;
  RequirementStatus status = RequirementStatus::kOk;
  /// Concrete schema paths the pattern expanded to.
  std::vector<std::string> matched_paths;
  /// Explanation for non-kOk outcomes ("at user.id: schema has Num + Str,
  /// query expects Num").
  std::string detail;
};

/// Checks every requirement against `schema`. Pure static analysis: no data
/// is touched.
std::vector<RequirementResult> CheckRequirements(
    const types::TypeRef& schema,
    const std::vector<FieldRequirement>& requirements);

}  // namespace jsonsi::query

#endif  // JSONSI_QUERY_REQUIREMENTS_H_
