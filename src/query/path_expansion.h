// Schema-based path-pattern expansion — the query-optimization application
// of complete schemas from Section 1 of the paper: "JSON queries can be
// optimized at compile-time by means of schema-based path rewriting and
// wildcard expansion [16] or projection [9]. These optimizations are not
// possible if the schema hides some of the structural properties of the
// data" — which is why the skeleton approach fails here and the complete
// fused schema works.
//
// Patterns are dotted segment sequences over the schema's label paths
// ("entities.hashtags[].text"):
//   *        matches exactly one segment
//   **       matches any number of segments (including zero)
//   name     matches the segment literally ("hashtags[]" is one segment)
//
// Expansion replaces a wildcard query by the finite set of concrete paths
// that exist in the schema; an empty expansion proves, statically, that the
// query can never select anything.

#ifndef JSONSI_QUERY_PATH_EXPANSION_H_
#define JSONSI_QUERY_PATH_EXPANSION_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "types/type.h"

namespace jsonsi::query {

/// Expands `pattern` against the label paths of `schema`. Results are the
/// matching concrete paths, sorted. An invalid pattern (empty, empty
/// segment, "***") yields an empty result.
std::vector<std::string> ExpandPathPattern(const types::Type& schema,
                                           std::string_view pattern);

/// Core matcher, usable against any path set (e.g. stats::ValuePaths).
bool PathMatchesPattern(std::string_view path, std::string_view pattern);

}  // namespace jsonsi::query

#endif  // JSONSI_QUERY_PATH_EXPANSION_H_
