#include "query/path_expansion.h"

#include "stats/paths.h"
#include "support/string_util.h"

namespace jsonsi::query {
namespace {

bool ValidPattern(const std::vector<std::string_view>& segments) {
  if (segments.empty()) return false;
  for (std::string_view s : segments) {
    if (s.empty()) return false;
    // Reject *** and other malformed wildcard spellings; '*' may otherwise
    // only appear as a whole segment.
    if (s.find('*') != std::string_view::npos && s != "*" && s != "**") {
      return false;
    }
  }
  return true;
}

// Classic two-pointer glob matching over segments with backtracking for the
// last-seen '**'.
bool MatchSegments(const std::vector<std::string_view>& path,
                   const std::vector<std::string_view>& pattern) {
  size_t p = 0;      // position in path
  size_t q = 0;      // position in pattern
  size_t star_q = std::string_view::npos;  // pattern index after last '**'
  size_t star_p = 0;                       // path index to resume from
  while (p < path.size()) {
    if (q < pattern.size() &&
        (pattern[q] == path[p] || pattern[q] == "*")) {
      ++p;
      ++q;
    } else if (q < pattern.size() && pattern[q] == "**") {
      star_q = ++q;
      star_p = p;
    } else if (star_q != std::string_view::npos) {
      // Extend the last '**' by one more segment.
      q = star_q;
      p = ++star_p;
    } else {
      return false;
    }
  }
  while (q < pattern.size() && pattern[q] == "**") ++q;
  return q == pattern.size();
}

}  // namespace

bool PathMatchesPattern(std::string_view path, std::string_view pattern) {
  std::vector<std::string_view> pattern_segments = Split(pattern, '.');
  if (!ValidPattern(pattern_segments)) return false;
  std::vector<std::string_view> path_segments = Split(path, '.');
  return MatchSegments(path_segments, pattern_segments);
}

std::vector<std::string> ExpandPathPattern(const types::Type& schema,
                                           std::string_view pattern) {
  std::vector<std::string_view> pattern_segments = Split(pattern, '.');
  if (!ValidPattern(pattern_segments)) return {};
  std::vector<std::string> out;
  for (const std::string& path : stats::TypePaths(schema)) {
    if (MatchSegments(Split(path, '.'), pattern_segments)) {
      out.push_back(path);
    }
  }
  return out;  // TypePaths is a std::set: already sorted
}

}  // namespace jsonsi::query
