#include "io/input_source.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace jsonsi::io {
namespace {

Status Errno(const std::string& what, const std::string& name) {
  return Status::Internal(what + " failed for " + name + ": " +
                         std::strerror(errno));
}

// read() with EINTR retry; -1 => errno error.
ssize_t ReadFull(int fd, char* buf, size_t len) {
  for (;;) {
    ssize_t n = ::read(fd, buf, len);
    if (n >= 0 || errno != EINTR) return n;
  }
}

}  // namespace

bool ParseIoMode(std::string_view name, IoMode* mode) {
  if (name == "auto") {
    *mode = IoMode::kAuto;
  } else if (name == "mmap") {
    *mode = IoMode::kMmap;
  } else if (name == "read") {
    *mode = IoMode::kRead;
  } else if (name == "stream") {
    *mode = IoMode::kStream;
  } else {
    return false;
  }
  return true;
}

const char* IoModeName(IoMode mode) {
  switch (mode) {
    case IoMode::kAuto:
      return "auto";
    case IoMode::kMmap:
      return "mmap";
    case IoMode::kRead:
      return "read";
    case IoMode::kStream:
      return "stream";
  }
  return "auto";
}

MemorySource::MemorySource(std::string_view data, bool expose_contents)
    : data_(data), expose_contents_(expose_contents) {}

std::optional<std::string_view> MemorySource::Contents() const {
  if (!expose_contents_) return std::nullopt;
  return data_;
}

Result<size_t> MemorySource::Read(char* buf, size_t len) {
  size_t n = std::min(len, data_.size() - pos_);
  std::memcpy(buf, data_.data() + pos_, n);
  pos_ += n;
  return n;
}

Status MemorySource::SkipTo(uint64_t offset) {
  pos_ = static_cast<size_t>(std::min<uint64_t>(offset, data_.size()));
  return Status::OK();
}

MmapSource::MmapSource(std::string name, const char* data, size_t size)
    : name_(std::move(name)), data_(data), size_(size) {}

Result<std::unique_ptr<MmapSource>> MmapSource::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::NotFound("cannot open file: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::Internal("not a mappable regular file: " + path);
  }
  size_t size = static_cast<size_t>(st.st_size);
  const char* data = nullptr;
  if (size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      return Errno("mmap", path);
    }
    // The pipeline scans front to back exactly once: tell the kernel so it
    // reads ahead aggressively and drops pages behind the scan, and prime
    // the first window so the first batch does not fault cold.
    ::madvise(map, size, MADV_SEQUENTIAL);
    ::madvise(map, std::min<size_t>(size, 16ull << 20), MADV_WILLNEED);
    data = static_cast<const char*>(map);
  }
  ::close(fd);  // the mapping keeps the file alive
  return std::unique_ptr<MmapSource>(new MmapSource(path, data, size));
}

MmapSource::~MmapSource() {
  if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
}

Result<size_t> MmapSource::Read(char* buf, size_t len) {
  size_t n = std::min(len, size_ - pos_);
  if (n > 0) std::memcpy(buf, data_ + pos_, n);
  pos_ += n;
  return n;
}

Status MmapSource::SkipTo(uint64_t offset) {
  pos_ = static_cast<size_t>(std::min<uint64_t>(offset, size_));
  return Status::OK();
}

ReadSource::ReadSource(std::string name, int fd, uint64_t size)
    : name_(std::move(name)), fd_(fd), size_(size) {}

Result<std::unique_ptr<ReadSource>> ReadSource::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::NotFound("cannot open file: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::Internal("not a readable regular file: " + path);
  }
#ifdef POSIX_FADV_SEQUENTIAL
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_SEQUENTIAL);
#endif
  return std::unique_ptr<ReadSource>(
      new ReadSource(path, fd, static_cast<uint64_t>(st.st_size)));
}

ReadSource::~ReadSource() {
  if (fd_ >= 0) ::close(fd_);
}

Result<size_t> ReadSource::Read(char* buf, size_t len) {
  size_t total = 0;
  while (total < len) {
    ssize_t n;
    for (;;) {
      n = ::pread(fd_, buf + total, len - total,
                  static_cast<off_t>(pos_ + total));
      if (n >= 0 || errno != EINTR) break;
    }
    if (n < 0) return Errno("pread", name_);
    if (n == 0) break;  // end of file
    total += static_cast<size_t>(n);
  }
  pos_ += total;
  return total;
}

Status ReadSource::SkipTo(uint64_t offset) {
  pos_ = offset;
  return Status::OK();
}

StreamSource::StreamSource(std::string name, int fd, bool close_fd)
    : name_(std::move(name)), fd_(fd), close_fd_(close_fd) {}

StreamSource::~StreamSource() {
  if (close_fd_ && fd_ >= 0) ::close(fd_);
}

Result<size_t> StreamSource::Read(char* buf, size_t len) {
  size_t total = 0;
  // Short reads are normal on pipes; loop so callers see full buffers
  // whenever the producer keeps up (fewer, larger batches downstream).
  while (total < len) {
    ssize_t n = ReadFull(fd_, buf + total, len - total);
    if (n < 0) return Errno("read", name_);
    if (n == 0) break;  // end of stream
    total += static_cast<size_t>(n);
  }
  pos_ += total;
  return total;
}

Status StreamSource::SkipTo(uint64_t offset) {
  // Non-seekable: consume and discard. A resume offset on a pipe means the
  // upstream producer replays the stream from the start.
  if (offset < pos_) {
    return Status::InvalidArgument("cannot seek backwards on stream " +
                                   name_);
  }
  std::vector<char> sink(64 << 10);
  while (pos_ < offset) {
    size_t want =
        static_cast<size_t>(std::min<uint64_t>(sink.size(), offset - pos_));
    ssize_t n = ReadFull(fd_, sink.data(), want);
    if (n < 0) return Errno("read", name_);
    if (n == 0) break;  // stream ended before the offset: EOF at next Read
    pos_ += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

Result<std::unique_ptr<InputSource>> OpenInputSource(
    const std::string& path, const IoOptions& options) {
  if (path == "-") {
    if (options.mode == IoMode::kMmap || options.mode == IoMode::kRead) {
      return Status::InvalidArgument(
          std::string("--io ") + IoModeName(options.mode) +
          " needs a seekable file; stdin only supports auto|stream");
    }
    return std::unique_ptr<InputSource>(
        new StreamSource("<stdin>", STDIN_FILENO, /*close_fd=*/false));
  }
  switch (options.mode) {
    case IoMode::kMmap: {
      Result<std::unique_ptr<MmapSource>> mapped = MmapSource::Open(path);
      if (!mapped.ok()) return mapped.status();
      return std::unique_ptr<InputSource>(std::move(mapped).value());
    }
    case IoMode::kRead: {
      Result<std::unique_ptr<ReadSource>> file = ReadSource::Open(path);
      if (!file.ok()) return file.status();
      return std::unique_ptr<InputSource>(std::move(file).value());
    }
    case IoMode::kStream: {
      int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd < 0) return Status::NotFound("cannot open file: " + path);
      return std::unique_ptr<InputSource>(
          new StreamSource(path, fd, /*close_fd=*/true));
    }
    case IoMode::kAuto: {
      Result<std::unique_ptr<MmapSource>> mapped = MmapSource::Open(path);
      if (mapped.ok()) {
        return std::unique_ptr<InputSource>(std::move(mapped).value());
      }
      if (mapped.status().code() == StatusCode::kNotFound) {
        return mapped.status();
      }
      // Openable but unmappable (unusual filesystem): degrade to pread.
      Result<std::unique_ptr<ReadSource>> file = ReadSource::Open(path);
      if (!file.ok()) return file.status();
      return std::unique_ptr<InputSource>(std::move(file).value());
    }
  }
  return Status::InvalidArgument("unknown io mode");
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::NotFound("cannot open file: " + path);
  struct stat st;
  std::string out;
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
    out.resize(static_cast<size_t>(st.st_size));
    size_t total = 0;
    while (total < out.size()) {
      ssize_t n = ReadFull(fd, out.data() + total, out.size() - total);
      if (n < 0) {
        Status st_err = Errno("read", path);
        ::close(fd);
        return st_err;
      }
      if (n == 0) break;  // truncated concurrently: return what exists
      total += static_cast<size_t>(n);
    }
    out.resize(total);
  } else {
    // Not a regular file (pipe, /proc): size is unknowable, append-read.
    char buf[64 << 10];
    for (;;) {
      ssize_t n = ReadFull(fd, buf, sizeof(buf));
      if (n < 0) {
        Status st_err = Errno("read", path);
        ::close(fd);
        return st_err;
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
  }
  ::close(fd);
  return out;
}

}  // namespace jsonsi::io
