#include "io/pipeline_reader.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace jsonsi::io {
namespace {

// Index of the byte just past the last '\n' in [data, data+len), or 0 when
// there is none. glibc memrchr is vectorized; this runs once per batch.
size_t AfterLastNewline(const char* data, size_t len) {
  const void* nl = ::memrchr(data, '\n', len);
  if (nl == nullptr) return 0;
  return static_cast<size_t>(static_cast<const char*>(nl) - data) + 1;
}

}  // namespace

PipelineReader::PipelineReader(InputSource* source, const IoOptions& options,
                               uint64_t start_offset)
    : source_(source), options_(options) {
  options_.buffer_bytes = std::max<size_t>(1, options_.buffer_bytes);
  options_.num_buffers = std::max<size_t>(2, options_.num_buffers);
  if (std::optional<std::string_view> view = source_->Contents()) {
    sliced_ = true;
    contents_ = *view;
    pos_ = static_cast<size_t>(
        std::min<uint64_t>(start_offset, contents_.size()));
    return;
  }
  skip_status_ = start_offset > 0 ? source_->SkipTo(start_offset)
                                  : Status::OK();
  if (!skip_status_.ok()) return;
  if (options_.overlap) {
    buffers_.resize(options_.num_buffers);
    for (size_t i = 0; i < buffers_.size(); ++i) free_.push_back(i);
    producer_ = std::thread(&PipelineReader::ProducerLoop, this);
  } else {
    buffers_.resize(1);
  }
}

PipelineReader::~PipelineReader() {
  if (producer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    can_fill_.notify_all();
    producer_.join();
  }
}

Result<std::string_view> PipelineReader::Next() {
  if (sliced_) return NextSliced();
  if (!skip_status_.ok()) return skip_status_;
  if (!options_.overlap) return NextSynchronous();

  std::unique_lock<std::mutex> lock(mu_);
  if (consumer_owned_ != SIZE_MAX) {
    // Recycle the buffer handed out by the previous call.
    free_.push_back(consumer_owned_);
    consumer_owned_ = SIZE_MAX;
    can_fill_.notify_one();
  }
  can_consume_.wait(lock, [this] { return !ready_.empty(); });
  Filled next = ready_.front();
  ready_.pop_front();
  if (next.index == SIZE_MAX) {
    // End (or error) marker: leave it queued so further calls repeat it.
    ready_.push_front(next);
    if (!next.status.ok()) return next.status;
    return std::string_view();
  }
  consumer_owned_ = next.index;
  return std::string_view(buffers_[next.index]);
}

Result<std::string_view> PipelineReader::NextSliced() {
  if (pos_ >= contents_.size()) return std::string_view();
  size_t want = std::min(options_.buffer_bytes, contents_.size() - pos_);
  size_t cut = AfterLastNewline(contents_.data() + pos_, want);
  if (cut == 0) {
    // No newline inside the window: extend to the end of this line (or of
    // the input) so the batch still holds only whole lines.
    size_t nl = contents_.find('\n', pos_ + want);
    cut = (nl == std::string_view::npos ? contents_.size() : nl + 1) - pos_;
  }
  std::string_view batch = contents_.substr(pos_, cut);
  pos_ += cut;
  return batch;
}

Result<std::string_view> PipelineReader::NextSynchronous() {
  if (source_eof_ && carry_.empty()) return std::string_view();
  bool eof = false;
  Status st = FillBuffer(0, &eof);
  if (!st.ok()) return st;
  source_eof_ = eof;
  if (buffers_[0].empty()) return std::string_view();
  return std::string_view(buffers_[0]);
}

Status PipelineReader::FillBuffer(size_t index, bool* eof) {
  std::string& buf = buffers_[index];
  buf.clear();
  std::swap(buf, carry_);  // the previous fill's partial tail leads
  *eof = false;
  for (;;) {
    size_t filled = buf.size();
    // Normal fills target one buffer; a line longer than the buffer grows
    // geometrically until its newline arrives.
    size_t target = std::max(options_.buffer_bytes, filled * 2);
    buf.resize(target);
    Result<size_t> got = source_->Read(buf.data() + filled, target - filled);
    if (!got.ok()) return got.status();
    buf.resize(filled + got.value());
    if (got.value() == 0) {
      // Source exhausted: whatever is buffered (possibly a final line with
      // no trailing newline) is the last batch.
      *eof = true;
      return Status::OK();
    }
    if (buf.size() < options_.buffer_bytes) continue;  // short read: top up
    size_t cut = AfterLastNewline(buf.data(), buf.size());
    if (cut == 0) continue;  // one line longer than the buffer: grow
    carry_.assign(buf, cut, buf.size() - cut);
    buf.resize(cut);
    return Status::OK();
  }
}

void PipelineReader::ProducerLoop() {
  for (;;) {
    size_t index;
    {
      std::unique_lock<std::mutex> lock(mu_);
      can_fill_.wait(lock, [this] { return stop_ || !free_.empty(); });
      if (stop_) return;
      index = free_.front();
      free_.pop_front();
    }
    bool eof = false;
    Status st = FillBuffer(index, &eof);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (st.ok() && !buffers_[index].empty()) {
        ready_.push_back(Filled{index, Status::OK()});
      } else if (st.ok()) {
        free_.push_back(index);  // empty fill: only the end marker follows
      }
      if (!st.ok() || eof) {
        if (!done_queued_) {
          ready_.push_back(Filled{SIZE_MAX, st});
          done_queued_ = true;
        }
      }
    }
    can_consume_.notify_one();
    if (!st.ok() || eof) return;
  }
}

}  // namespace jsonsi::io
