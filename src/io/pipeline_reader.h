// Newline-bounded batching with overlapped I/O.
//
// PipelineReader turns an InputSource into a sequence of JSONL batches:
// every batch ends on a line boundary (the final batch may lack its
// trailing newline, exactly like a one-shot buffer), so concatenating the
// batches reproduces the input byte for byte and any line-oriented consumer
// sees the same lines it would see in a single slurp.
//
// Two arms, chosen by the source:
//
//   * zero-copy slicing — when the source is memory-backed (mmap,
//     MemorySource with an exposed view), batches are string_view slices of
//     the mapping; no bytes are copied and no thread is spawned. Overlap
//     comes from the kernel's readahead (madvise(SEQUENTIAL)).
//   * bounded double/triple buffering — otherwise a ring of
//     IoOptions::num_buffers buffers of buffer_bytes each is filled by a
//     background producer thread (IoOptions::overlap; off = synchronous
//     fills inside Next()). The producer carries the partial line at each
//     buffer's tail into the next fill, and grows a buffer when a single
//     line exceeds it, so framing never depends on buffer size. Peak
//     memory is num_buffers * buffer_bytes + one carried line, regardless
//     of input size — this is what makes inference over files larger than
//     RAM (and true stdin streaming) work.
//
// Single consumer: Next() is not thread-safe, and each returned view is
// valid until the following Next() call.

#ifndef JSONSI_IO_PIPELINE_READER_H_
#define JSONSI_IO_PIPELINE_READER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "io/input_source.h"
#include "support/status.h"

namespace jsonsi::io {

class PipelineReader {
 public:
  /// Starts reading `source` at `start_offset` (a checkpoint's
  /// bytes_consumed resume offset; 0 = the beginning). The source must
  /// outlive the reader.
  PipelineReader(InputSource* source, const IoOptions& options,
                 uint64_t start_offset = 0);
  ~PipelineReader();

  PipelineReader(const PipelineReader&) = delete;
  PipelineReader& operator=(const PipelineReader&) = delete;

  /// Returns the next newline-bounded batch, an empty view at end of
  /// input, or the first I/O error. The view is invalidated by the next
  /// call.
  Result<std::string_view> Next();

 private:
  struct Filled {
    size_t index;  // buffer index, or SIZE_MAX for the end/error marker
    Status status;
  };

  void ProducerLoop();
  // Fills buffers_[index] with whole lines (plus the carried tail from the
  // previous fill); sets `*eof` when the source is exhausted after this
  // fill. On success the buffer is ready for the consumer.
  Status FillBuffer(size_t index, bool* eof);
  Result<std::string_view> NextSliced();
  Result<std::string_view> NextSynchronous();

  InputSource* source_;
  IoOptions options_;
  Status skip_status_;

  // Zero-copy slicing arm.
  bool sliced_ = false;
  std::string_view contents_;
  size_t pos_ = 0;

  // Copying arm.
  std::vector<std::string> buffers_;
  std::string carry_;      // partial line carried between fills (producer)
  bool source_eof_ = false;
  size_t consumer_owned_ = SIZE_MAX;  // buffer lent out by the last Next()

  // Producer-consumer state (overlap mode).
  std::mutex mu_;
  std::condition_variable can_fill_;
  std::condition_variable can_consume_;
  std::deque<size_t> free_;
  std::deque<Filled> ready_;
  bool stop_ = false;
  bool done_queued_ = false;
  std::thread producer_;
};

}  // namespace jsonsi::io

#endif  // JSONSI_IO_PIPELINE_READER_H_
