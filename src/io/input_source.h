// Pluggable input sources for the ingestion front-end.
//
// Every file/stdin entry point used to slurp its input into a std::string
// (twice, via ostringstream) before the first byte was tokenized. This
// layer replaces that with a small vocabulary of byte sources:
//
//   MmapSource    a whole-file read-only mapping — the zero-copy fast path.
//                 Contents() exposes the mapping as a string_view, so the
//                 existing buffer pipelines run directly on the page cache
//                 (madvise(SEQUENTIAL) asks the kernel to read ahead).
//   ReadSource    positional pread() on a regular file, for filesystems or
//                 situations where mapping is unavailable or undesirable.
//   StreamSource  plain read() on a (possibly non-seekable) fd — stdin,
//                 pipes, sockets. SkipTo() is read-and-discard.
//   MemorySource  an in-memory buffer behind the same interface, used by
//                 the server's ingest path, tests and fuzzers. Can hide its
//                 Contents() view to force the copying pipeline arm.
//
// Sources deal in raw bytes only; newline framing and batch cutting live in
// PipelineReader (pipeline_reader.h), policy and parsing stay in json/.
// This directory depends on support/ alone.

#ifndef JSONSI_IO_INPUT_SOURCE_H_
#define JSONSI_IO_INPUT_SOURCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "support/status.h"

namespace jsonsi::io {

/// Input-source selection for the file/stdin entry points.
enum class IoMode {
  kAuto,    ///< mmap regular files, stream stdin/pipes, fall back to read.
  kMmap,    ///< require the zero-copy mapping (error if unmappable).
  kRead,    ///< positional pread() pipeline.
  kStream,  ///< sequential read() pipeline (works on any fd).
};

/// "auto" | "mmap" | "read" | "stream" -> mode. False on unknown names.
bool ParseIoMode(std::string_view name, IoMode* mode);
const char* IoModeName(IoMode mode);

/// Source selection plus pipeline buffering knobs (see PipelineReader).
struct IoOptions {
  IoMode mode = IoMode::kAuto;
  /// Target batch size; also the size of each pipeline buffer on the
  /// copying (read/stream) arm. The CLI exposes this as --read-ahead-mb.
  size_t buffer_bytes = 8ull << 20;
  /// Buffers in the producer-consumer ring (>= 2 enables overlap: the
  /// background producer fills buffer N+1 while the consumer infers N).
  size_t num_buffers = 3;
  /// Fill buffers on a background thread, overlapping I/O with inference.
  /// Off = fill synchronously inside Next() (A/B lever for the bench).
  bool overlap = true;
};

/// A readable stream of bytes, optionally memory-backed and/or sized.
class InputSource {
 public:
  virtual ~InputSource() = default;

  /// Whole-input zero-copy view when the source is memory-backed (mmap,
  /// MemorySource); nullopt otherwise. Valid for the source's lifetime.
  virtual std::optional<std::string_view> Contents() const {
    return std::nullopt;
  }

  /// Total size in bytes when known up front (regular files).
  virtual std::optional<uint64_t> SizeBytes() const { return std::nullopt; }

  /// Reads up to `len` bytes at the current position into `buf`; returns
  /// the count actually read, 0 at end of input.
  virtual Result<size_t> Read(char* buf, size_t len) = 0;

  /// Repositions the source at absolute byte `offset` (checkpoint resume).
  /// Non-seekable sources read and discard; skipping past the end is not
  /// an error (the next Read simply reports end of input).
  virtual Status SkipTo(uint64_t offset) = 0;

  /// Diagnostic name ("<stdin>", the file path, "<memory>").
  virtual const std::string& name() const = 0;
};

/// In-memory bytes behind the InputSource interface. Does not own the
/// buffer; the caller keeps it alive. `expose_contents = false` hides the
/// zero-copy view so PipelineReader exercises its copying arm (tests,
/// fuzzers).
class MemorySource : public InputSource {
 public:
  explicit MemorySource(std::string_view data, bool expose_contents = true);

  std::optional<std::string_view> Contents() const override;
  std::optional<uint64_t> SizeBytes() const override { return data_.size(); }
  Result<size_t> Read(char* buf, size_t len) override;
  Status SkipTo(uint64_t offset) override;
  const std::string& name() const override { return name_; }

 private:
  std::string_view data_;
  bool expose_contents_;
  size_t pos_ = 0;
  std::string name_ = "<memory>";
};

/// Read-only mapping of a whole regular file.
class MmapSource : public InputSource {
 public:
  /// Maps `path`; NotFound when it cannot be opened, Internal when it
  /// cannot be mapped (not a regular file, mmap failure).
  static Result<std::unique_ptr<MmapSource>> Open(const std::string& path);
  ~MmapSource() override;

  MmapSource(const MmapSource&) = delete;
  MmapSource& operator=(const MmapSource&) = delete;

  std::optional<std::string_view> Contents() const override {
    return std::string_view(data_, size_);
  }
  std::optional<uint64_t> SizeBytes() const override { return size_; }
  Result<size_t> Read(char* buf, size_t len) override;
  Status SkipTo(uint64_t offset) override;
  const std::string& name() const override { return name_; }

 private:
  MmapSource(std::string name, const char* data, size_t size);

  std::string name_;
  const char* data_ = nullptr;  // nullptr for the empty-file mapping
  size_t size_ = 0;
  size_t pos_ = 0;
};

/// Positional pread() on a regular file (sequential-access fadvise'd).
class ReadSource : public InputSource {
 public:
  static Result<std::unique_ptr<ReadSource>> Open(const std::string& path);
  ~ReadSource() override;

  ReadSource(const ReadSource&) = delete;
  ReadSource& operator=(const ReadSource&) = delete;

  std::optional<uint64_t> SizeBytes() const override { return size_; }
  Result<size_t> Read(char* buf, size_t len) override;
  Status SkipTo(uint64_t offset) override;
  const std::string& name() const override { return name_; }

 private:
  ReadSource(std::string name, int fd, uint64_t size);

  std::string name_;
  int fd_ = -1;
  uint64_t size_ = 0;
  uint64_t pos_ = 0;
};

/// Sequential read() on an fd — stdin, pipes, or files opened elsewhere.
class StreamSource : public InputSource {
 public:
  /// Borrows `fd` (close_fd = false, e.g. stdin) or takes ownership.
  StreamSource(std::string name, int fd, bool close_fd);
  ~StreamSource() override;

  StreamSource(const StreamSource&) = delete;
  StreamSource& operator=(const StreamSource&) = delete;

  Result<size_t> Read(char* buf, size_t len) override;
  Status SkipTo(uint64_t offset) override;
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  int fd_ = -1;
  bool close_fd_ = false;
  uint64_t pos_ = 0;
};

/// Opens `path` ("-" = stdin) under `options.mode`. kAuto maps regular
/// files (falling back to pread when mapping fails) and streams stdin;
/// explicit kMmap/kRead on stdin is an InvalidArgument.
Result<std::unique_ptr<InputSource>> OpenInputSource(const std::string& path,
                                                     const IoOptions& options);

/// Reads a whole file with one stat + one pre-sized read — the replacement
/// for the ostringstream double-copy slurp. NotFound when the file cannot
/// be opened.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace jsonsi::io

#endif  // JSONSI_IO_INPUT_SOURCE_H_
