#include "inference/direct_infer.h"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <iterator>
#include <string>
#include <utility>

#include "json/line_scan.h"
#include "json/simd/kernel.h"
#include "json/tokenizer.h"
#include "telemetry/telemetry.h"
#include "types/interner.h"

namespace jsonsi::inference {

using json::Token;
using json::TokenKind;
using json::Tokenizer;
using types::FieldType;
using types::Type;
using types::TypeRef;

namespace {

// Iterative grammar driver: the parser's recursive descent flattened onto
// an explicit frame stack, producing type nodes where the parser produces
// Values. Every error check runs in the same order and at the same cursor
// position as the recursive parser, so statuses match byte for byte
// (differential-tested). Tokens are pulled only at value positions — at
// key and separator positions the parser reports grammar errors before
// lexing anything, so this driver peeks instead.
class DirectInferrer {
 public:
  DirectInferrer(std::string_view text, const json::ParseOptions& options,
                 annotate::Annotation* ann)
      : tok_(text),
        options_(options),
        intern_(types::InterningEnabled()),
        ann_(ann) {
    if (ann_ != nullptr) ann_targets_.push_back(ann_);
  }

  Result<TypeRef> Infer() {
    TypeRef root;
    JSONSI_RETURN_IF_ERROR(Run(&root));
    if (!options_.allow_trailing_content) {
      tok_.SkipWhitespace();
      if (!tok_.AtEnd()) {
        return tok_.ErrorHere("trailing content after JSON value");
      }
    }
    return root;
  }

 private:
  // One record or array under construction. `start` indexes the shared
  // accumulator (fields_ for records, elems_ for arrays): children pushed
  // past it belong to this frame and are consumed when it closes. When
  // annotating, `ann` is the container's own accumulator and
  // `scalar_start` its slice of scalar_fields_ (shape evidence).
  struct Frame {
    bool is_record;
    size_t start;
    annotate::Annotation* ann = nullptr;
    size_t scalar_start = 0;
  };

  // The accumulator the next value at the cursor observes into: the root,
  // the current field's node, or the enclosing array's items node.
  annotate::Annotation* AnnTarget() { return ann_targets_.back(); }

  Status Run(TypeRef* out) {
    for (;;) {
      // --- Value position: the only place a token is pulled. ---
      Token t;
      TypeRef closed;
      if (ann_ == nullptr) {
        JSONSI_RETURN_IF_ERROR(tok_.Next(&t));
      } else {
        // Annotation needs unescaped string payloads (lengths, samples);
        // the extra buffer changes no validation or error position.
        val_buf_.clear();
        JSONSI_RETURN_IF_ERROR(tok_.Next(&t, &val_buf_));
      }
      switch (t.kind) {
        case TokenKind::kNull:
          closed = Type::Null();
          if (ann_ != nullptr) {
            AnnTarget()->ObserveNull();
            pending_scalar_ = annotate::EncodeNull();
            has_pending_scalar_ = true;
          }
          break;
        case TokenKind::kTrue:
        case TokenKind::kFalse: {
          closed = Type::Bool();
          if (ann_ != nullptr) {
            const bool b = t.kind == TokenKind::kTrue;
            AnnTarget()->ObserveBool(b);
            pending_scalar_ = annotate::EncodeBool(b);
            has_pending_scalar_ = true;
          }
          break;
        }
        case TokenKind::kNumber:
          closed = Type::Num();
          if (ann_ != nullptr) {
            // Re-parse the validated lexeme with the same std::from_chars
            // the DOM parser's ScanNumber uses — bit-identical doubles.
            double d = 0;
            std::from_chars(t.text.data(), t.text.data() + t.text.size(), d);
            AnnTarget()->ObserveNum(d);
            pending_scalar_ = annotate::EncodeNum(d);
            has_pending_scalar_ = true;
          }
          break;
        case TokenKind::kString:
          closed = Type::Str();
          if (ann_ != nullptr) {
            AnnTarget()->ObserveStr(val_buf_);
            pending_scalar_ = annotate::EncodeStr(val_buf_);
            has_pending_scalar_ = true;
          }
          break;
        case TokenKind::kEnd:
          return Tokenizer::ErrorAt(t, "unexpected end of input");
        case TokenKind::kLBrace: {
          if (frames_.size() >= options_.max_depth) {
            return Tokenizer::ErrorAt(t, "nesting too deep");
          }
          tok_.SkipWhitespace();
          if (!tok_.AtEnd() && tok_.Peek() == '}') {
            tok_.Advance();
            if (ann_ != nullptr) {
              annotate::Annotation* a = AnnTarget();
              a->ObserveRecordOpen();
              a->ObserveShape(std::string(), {});
            }
            closed = MakeRecord({});
            break;
          }
          frames_.push_back(Frame{/*is_record=*/true, fields_.size()});
          if (ann_ != nullptr) {
            Frame& f = frames_.back();
            f.ann = AnnTarget();
            f.scalar_start = scalar_fields_.size();
            f.ann->ObserveRecordOpen();
          }
          JSONSI_RETURN_IF_ERROR(ReadKey());
          continue;  // next value = first field value
        }
        case TokenKind::kLBracket: {
          if (frames_.size() >= options_.max_depth) {
            return Tokenizer::ErrorAt(t, "nesting too deep");
          }
          tok_.SkipWhitespace();
          if (!tok_.AtEnd() && tok_.Peek() == ']') {
            tok_.Advance();
            if (ann_ != nullptr) AnnTarget()->ObserveArray(0);
            closed = MakeArray({});
            break;
          }
          frames_.push_back(Frame{/*is_record=*/false, elems_.size()});
          if (ann_ != nullptr) {
            Frame& f = frames_.back();
            f.ann = AnnTarget();
            ann_targets_.push_back(f.ann->ItemsEntry());
          }
          continue;  // next value = first element
        }
        default:
          // Stray punctuation at a value position: the parser falls into
          // ParseNumber and fails at the token's first byte.
          return Tokenizer::ErrorAt(t, "invalid number");
      }

      // --- A value closed: unwind frames until one needs another value. ---
      for (;;) {
        if (frames_.empty()) {
          *out = std::move(closed);
          return Status::OK();
        }
        Frame& frame = frames_.back();
        if (frame.is_record) {
          // fields_.back() is this frame's pending field (nested frames
          // consume their fields before we unwind back here).
          fields_.back().type = std::move(closed);
          if (ann_ != nullptr) {
            ann_targets_.pop_back();  // leave the field position
            if (has_pending_scalar_) {
              scalar_fields_.emplace_back(fields_.back().key,
                                          std::move(pending_scalar_));
              has_pending_scalar_ = false;
            }
          }
          tok_.SkipWhitespace();
          if (tok_.AtEnd()) return tok_.ErrorHere("unterminated record");
          char c = tok_.Peek();
          if (c == ',') {
            tok_.Advance();
            JSONSI_RETURN_IF_ERROR(ReadKey());
            break;  // back to value position
          }
          if (c == '}') {
            tok_.Advance();
            JSONSI_RETURN_IF_ERROR(CloseRecord(&closed));
            continue;  // keep unwinding
          }
          return tok_.ErrorHere("expected ',' or '}' in record");
        }
        elems_.push_back(std::move(closed));
        // Array elements contribute no shape evidence; drop any scalar
        // encoding the element left behind.
        has_pending_scalar_ = false;
        tok_.SkipWhitespace();
        if (tok_.AtEnd()) return tok_.ErrorHere("unterminated array");
        char c = tok_.Peek();
        if (c == ',') {
          tok_.Advance();
          break;  // back to value position
        }
        if (c == ']') {
          tok_.Advance();
          CloseArray(&closed);
          continue;  // keep unwinding
        }
        return tok_.ErrorHere("expected ',' or ']' in array");
      }
    }
  }

  // Key, colon, and the pending-field push. Mirrors the top of the
  // parser's record loop, including the order of its error checks.
  Status ReadKey() {
    tok_.SkipWhitespace();
    if (tok_.AtEnd() || tok_.Peek() != '"') {
      return tok_.ErrorHere("expected record key string");
    }
    Token key;
    key_buf_.clear();
    JSONSI_RETURN_IF_ERROR(tok_.Next(&key, &key_buf_));
    tok_.SkipWhitespace();
    if (tok_.AtEnd() || tok_.Peek() != ':') {
      return tok_.ErrorHere("expected ':' after key");
    }
    tok_.Advance();
    fields_.push_back(FieldType{key_buf_, nullptr, /*optional=*/false});
    if (ann_ != nullptr) {
      // Enter the field position: the next value observes into this node.
      ann_targets_.push_back(frames_.back().ann->ObserveFieldEntry(key_buf_));
    }
    return Status::OK();
  }

  // Pops the top record frame into a record type node. Keys are compared
  // unescaped (so "A" and "A" collide, as on the DOM path), and the
  // duplicate-key message + position match Value::Record's rejection as
  // re-wrapped by the parser: reported just past the closing '}'.
  Status CloseRecord(TypeRef* closed) {
    const Frame frame = frames_.back();
    const size_t start = frame.start;
    frames_.pop_back();
    auto first = fields_.begin() + static_cast<ptrdiff_t>(start);
    std::sort(first, fields_.end(),
              [](const FieldType& a, const FieldType& b) {
                return a.key < b.key;
              });
    for (size_t i = start; i + 1 < fields_.size(); ++i) {
      if (fields_[i].key == fields_[i + 1].key) {
        return tok_.ErrorHere("duplicate record key: \"" + fields_[i].key +
                              "\"");
      }
    }
    if (ann_ != nullptr) {
      // Same signature scheme as the DOM path: each sorted key followed by
      // a separator (so {} and {"":x} stay distinct).
      std::string signature;
      for (size_t i = start; i < fields_.size(); ++i) {
        signature += fields_[i].key;
        signature += '\x1f';
      }
      std::vector<std::pair<std::string, std::string>> scalars(
          std::make_move_iterator(scalar_fields_.begin() +
                                  static_cast<ptrdiff_t>(frame.scalar_start)),
          std::make_move_iterator(scalar_fields_.end()));
      scalar_fields_.resize(frame.scalar_start);
      frame.ann->ObserveShape(signature, scalars);
    }
    std::vector<FieldType> fields(std::make_move_iterator(first),
                                  std::make_move_iterator(fields_.end()));
    fields_.resize(start);
    *closed = MakeRecord(std::move(fields));
    return Status::OK();
  }

  void CloseArray(TypeRef* closed) {
    const Frame frame = frames_.back();
    const size_t start = frame.start;
    frames_.pop_back();
    if (ann_ != nullptr) {
      ann_targets_.pop_back();  // leave the items position
      frame.ann->ObserveArray(elems_.size() - start);
    }
    auto first = elems_.begin() + static_cast<ptrdiff_t>(start);
    std::vector<TypeRef> elements(std::make_move_iterator(first),
                                  std::make_move_iterator(elems_.end()));
    elems_.resize(start);
    *closed = MakeArray(std::move(elements));
  }

  // Same interning policy as InferNode: record/array nodes are hash-consed
  // bottom-up when interning is enabled; leaves are already singletons.
  TypeRef MakeRecord(std::vector<FieldType> fields) {
    TypeRef t = Type::RecordFromSorted(std::move(fields));
    return intern_ ? types::TypeInterner::Global().Intern(std::move(t)) : t;
  }

  TypeRef MakeArray(std::vector<TypeRef> elements) {
    TypeRef t = Type::ArrayExact(std::move(elements));
    return intern_ ? types::TypeInterner::Global().Intern(std::move(t)) : t;
  }

  Tokenizer tok_;
  json::ParseOptions options_;
  const bool intern_;
  std::vector<Frame> frames_;
  std::vector<FieldType> fields_;  // shared field accumulator
  std::vector<TypeRef> elems_;     // shared element accumulator
  std::string key_buf_;            // reused unescape buffer for keys

  // Annotation state — all idle (and ann_targets_ untouched) when ann_ is
  // null, so the default path pays nothing but a branch per token.
  annotate::Annotation* ann_;
  std::vector<annotate::Annotation*> ann_targets_;
  // Shared (key, encoded scalar) accumulator, sliced by Frame::scalar_start
  // exactly like fields_ — the shape evidence for discriminator detection.
  std::vector<std::pair<std::string, std::string>> scalar_fields_;
  std::string val_buf_;         // reused unescape buffer for string values
  std::string pending_scalar_;  // encoding of the value that just closed
  bool has_pending_scalar_ = false;
};

}  // namespace

Result<TypeRef> DirectInferType(std::string_view text,
                                const json::ParseOptions& options) {
  return DirectInferType(text, options, /*ann=*/nullptr);
}

Result<TypeRef> DirectInferType(std::string_view text,
                                const json::ParseOptions& options,
                                annotate::Annotation* ann) {
  if (options.max_document_bytes != 0 &&
      text.size() > options.max_document_bytes) {
    return json::DocumentTooLarge(text.size(), options.max_document_bytes);
  }
  DirectInferrer inferrer(text, options, ann);
  Result<TypeRef> result = inferrer.Infer();
  if (telemetry::Enabled()) {
    JSONSI_COUNTER("infer.direct.bytes").Add(text.size());
    json::simd::AddKernelBytes(text.size());
    if (result.ok()) {
      JSONSI_COUNTER("infer.direct.records").Increment();
      JSONSI_COUNTER("infer.direct.dom_bypassed").Increment();
      JSONSI_HISTOGRAM("infer.type_size").Record(result.value()->size());
      if (ann != nullptr) JSONSI_COUNTER("annotate.records").Increment();
    } else {
      JSONSI_COUNTER("infer.direct.errors").Increment();
    }
  }
  return result;
}

TypedChunkOutcome InferJsonLinesChunk(std::string_view chunk,
                                      const json::ParseOptions& parse,
                                      size_t max_recorded_errors,
                                      bool first_chunk, bool annotate) {
  JSONSI_SPAN("infer.direct.chunk");
  TypedChunkOutcome out;
  if (annotate) out.annotation = std::make_unique<annotate::Annotation>();
  size_t pos = 0;
  // Identical line-splitting loop to json::ParseJsonLinesChunk, with
  // DirectInferType in place of Parse — the only difference between the
  // DOM and DOM-free chunk workers.
  while (pos < chunk.size()) {
    size_t nl = json::simd::FindNewline(chunk, pos);
    size_t end = nl;
    std::string_view line = chunk.substr(pos, end - pos);
    uint64_t line_start = pos;
    pos = nl < chunk.size() ? nl + 1 : chunk.size();
    out.stats.bytes_read = pos;
    // Every line is fully processed at the chunk stage (the abort decision
    // is the replay's); the resume offset tracks the scan.
    out.stats.bytes_consumed = pos;
    ++out.stats.lines_read;
    line = json::internal::UndecorateLine(
        line, first_chunk && out.stats.lines_read == 1);
    if (json::internal::IsBlankLine(line)) {
      ++out.stats.blank_lines;
      continue;
    }
    // When annotating, observe into a per-record tree and fold it into the
    // chunk accumulator only on success: a mid-record parse failure must
    // not leak partial observations into the merge.
    annotate::Annotation rec;
    Result<TypeRef> type = annotate ? DirectInferType(line, parse, &rec)
                                    : DirectInferType(line, parse);
    if (annotate && type.ok()) out.annotation->MergeFrom(rec);
    if (type.ok()) {
      ++out.stats.records;
      out.types.push_back(std::move(type).value());
      continue;
    }
    ++out.stats.malformed_lines;
    if (out.stats.malformed_lines == 1) {
      out.first_error_message = type.status().message();
    }
    if (out.stats.errors.size() < max_recorded_errors) {
      out.stats.errors.push_back(json::IngestError{
          out.stats.lines_read, line_start, type.status().message()});
    }
    out.malformed.push_back(json::ChunkIngest::MalformedAt{
        out.stats.lines_read, out.stats.blank_lines, out.stats.records,
        out.stats.malformed_lines, out.stats.bytes_read, line_start});
  }
  return out;
}

void AnnotateChunkPrefix(std::string_view chunk,
                         const json::ParseOptions& parse, bool first_chunk,
                         size_t records, annotate::Annotation* acc) {
  size_t pos = 0;
  size_t lines_read = 0;
  size_t kept = 0;
  while (pos < chunk.size() && kept < records) {
    size_t nl = json::simd::FindNewline(chunk, pos);
    std::string_view line = chunk.substr(pos, nl - pos);
    pos = nl < chunk.size() ? nl + 1 : chunk.size();
    ++lines_read;
    line = json::internal::UndecorateLine(line, first_chunk && lines_read == 1);
    if (json::internal::IsBlankLine(line)) continue;
    annotate::Annotation rec;
    if (DirectInferType(line, parse, &rec).ok()) {
      acc->MergeFrom(rec);
      ++kept;
    }
  }
}

json::ChunkReplay ReplayChunkPolicy(
    const std::vector<TypedChunkOutcome>& outcomes,
    const json::IngestOptions& options, json::IngestStats* stats) {
  std::vector<const json::ChunkIngest*> views;
  views.reserve(outcomes.size());
  for (const TypedChunkOutcome& o : outcomes) views.push_back(&o);
  return json::ReplayChunkPolicy(views, options, stats);
}

std::vector<TypeRef> TakeIncludedTypes(
    std::vector<TypedChunkOutcome>&& outcomes,
    const json::ChunkReplay& replay) {
  size_t total = 0;
  for (size_t c = 0; c < replay.full_chunks && c < outcomes.size(); ++c) {
    total += outcomes[c].types.size();
  }
  total += replay.partial_records;
  std::vector<TypeRef> types;
  types.reserve(total);
  for (size_t c = 0; c < replay.full_chunks && c < outcomes.size(); ++c) {
    auto& chunk_types = outcomes[c].types;
    types.insert(types.end(), std::make_move_iterator(chunk_types.begin()),
                 std::make_move_iterator(chunk_types.end()));
  }
  if (replay.partial_records > 0 && replay.full_chunks < outcomes.size()) {
    auto& chunk_types = outcomes[replay.full_chunks].types;
    size_t keep = std::min(replay.partial_records, chunk_types.size());
    types.insert(types.end(), std::make_move_iterator(chunk_types.begin()),
                 std::make_move_iterator(chunk_types.begin() + keep));
  }
  return types;
}

}  // namespace jsonsi::inference
