// DOM-free direct inference: fuse JSON parsing and the paper's Map phase
// (Figure 4) into one single pass over the text.
//
// The DOM path materializes a json::Value tree per record, walks it with
// InferType, and throws it away — per-record allocation and pointer
// chasing that dominates typing cost at scale. DirectInferType drives the
// pull tokenizer (json/tokenizer.h) instead and builds the Figure 4 type
// bottom-up on an explicit stack: record and array nodes are assembled as
// they close (and hash-consed right there when interning is enabled),
// string and number payloads are validated but never copied. Error
// messages and line/column positions are byte-identical to Parse(...), so
// the degraded-mode ingestion policies make the same decisions on either
// path — differential-tested in tests/direct_infer_test.cc.
//
// This header also provides the chunk-parallel counterpart of
// json/jsonl_chunk.h: InferJsonLinesChunk produces types instead of DOM
// values, sharing the ChunkIngest policy machinery so the sequential
// replay is the same code on both paths. It lives in inference/ (not
// json/) because it produces types::TypeRef.

#ifndef JSONSI_INFERENCE_DIRECT_INFER_H_
#define JSONSI_INFERENCE_DIRECT_INFER_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

#include "annotate/annotation.h"
#include "json/jsonl.h"
#include "json/jsonl_chunk.h"
#include "json/parser.h"
#include "support/status.h"
#include "types/type.h"

namespace jsonsi::inference {

/// Infers the Figure 4 type of one JSON document without building a DOM.
/// Equivalent to InferType(*Parse(text, options)) — same type (TypeEquals,
/// and pointer-identical under interning), same Status on malformed input —
/// in one pass and O(depth) auxiliary space.
Result<types::TypeRef> DirectInferType(std::string_view text,
                                       const json::ParseOptions& options = {});

/// As above, additionally folding the document's statistics into `ann`
/// (annotate/annotation.h) straight from the token stream — no DOM is
/// materialized for annotation either. The annotation equals the DOM path's
/// ObserveValue(*Parse(text)) exactly (differential-tested and fuzzed): the
/// same std::from_chars scan produces the numbers, string statistics use
/// the unescaped payload, and shape signatures come from the same sorted
/// keys. On a malformed document `ann` holds a partial observation the
/// caller must discard. `ann == nullptr` is the plain overload.
Result<types::TypeRef> DirectInferType(std::string_view text,
                                       const json::ParseOptions& options,
                                       annotate::Annotation* ann);

/// Everything one DOM-free chunk worker contributes to a merged parallel
/// read: inferred types instead of parsed values, plus the shared
/// ChunkIngest policy half (chunk-local stats, malformed-line snapshots).
struct TypedChunkOutcome : json::ChunkIngest {
  /// Types inferred from the chunk's well-formed lines, in line order.
  std::vector<types::TypeRef> types;
  /// Eagerly folded annotation of the chunk's well-formed lines (non-null
  /// only when the worker ran with annotate=true). Per-record trees merge
  /// into this accumulator as lines complete, so memory stays O(chunks);
  /// the replay's abort exclusions are repaired by AnnotateChunkPrefix.
  std::unique_ptr<annotate::Annotation> annotation;
};

/// DOM-free sibling of json::ParseJsonLinesChunk: one isolated chunk,
/// DirectInferType per line, identical line splitting, BOM/CRLF tolerance
/// and policy-free malformed-line accounting. Pure and thread-safe. With
/// `annotate` set the outcome also carries the chunk's annotation fold.
TypedChunkOutcome InferJsonLinesChunk(std::string_view chunk,
                                      const json::ParseOptions& parse,
                                      size_t max_recorded_errors,
                                      bool first_chunk, bool annotate = false);

/// Re-annotates the first `records` well-formed lines of `chunk` into
/// `acc`. Used for the chunk a policy replay aborts inside: its eager
/// whole-chunk fold includes excluded records, so the included prefix is
/// re-scanned instead (same line machinery, DirectInferType per line).
/// Deterministic, so serial == chunk-parallel annotations hold exactly
/// even on aborted runs.
void AnnotateChunkPrefix(std::string_view chunk,
                         const json::ParseOptions& parse, bool first_chunk,
                         size_t records, annotate::Annotation* acc);

/// Replays the malformed-line policy over typed chunk outcomes — the same
/// payload-agnostic replay core as the DOM path, so abort points, statuses
/// and merged stats match a serial reader bit for bit.
json::ChunkReplay ReplayChunkPolicy(
    const std::vector<TypedChunkOutcome>& outcomes,
    const json::IngestOptions& options, json::IngestStats* stats);

/// Concatenates the types the replay decided to keep (full chunks plus the
/// partial prefix of the aborting chunk), moving them out of `outcomes`.
std::vector<types::TypeRef> TakeIncludedTypes(
    std::vector<TypedChunkOutcome>&& outcomes, const json::ChunkReplay& replay);

}  // namespace jsonsi::inference

#endif  // JSONSI_INFERENCE_DIRECT_INFER_H_
