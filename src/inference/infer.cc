#include "inference/infer.h"

#include <vector>

#include "json/parser.h"
#include "telemetry/telemetry.h"

namespace jsonsi::inference {

using json::Value;
using json::ValueKind;
using types::FieldType;
using types::Type;
using types::TypeRef;

namespace {

// The Figure 4 recursion; InferType wraps it with per-value accounting.
TypeRef InferNode(const Value& value) {
  switch (value.kind()) {
    case ValueKind::kNull:
      return Type::Null();
    case ValueKind::kBool:
      return Type::Bool();
    case ValueKind::kNum:
      return Type::Num();
    case ValueKind::kStr:
      return Type::Str();
    case ValueKind::kRecord: {
      std::vector<FieldType> fields;
      fields.reserve(value.fields().size());
      for (const json::Field& f : value.fields()) {
        fields.push_back({f.key, InferNode(*f.value), /*optional=*/false});
      }
      // Value fields are key-sorted and unique already.
      return Type::RecordFromSorted(std::move(fields));
    }
    case ValueKind::kArray: {
      std::vector<TypeRef> elements;
      elements.reserve(value.elements().size());
      for (const json::ValueRef& e : value.elements()) {
        elements.push_back(InferNode(*e));
      }
      return Type::ArrayExact(std::move(elements));
    }
  }
  return Type::Null();
}

}  // namespace

TypeRef InferType(const Value& value) {
  TypeRef t = InferNode(value);
  if (telemetry::Enabled()) {
    JSONSI_COUNTER("infer.values").Increment();
    JSONSI_HISTOGRAM("infer.type_size").Record(t->size());
  }
  return t;
}

Result<types::TypeRef> InferTypeFromJson(std::string_view json_text) {
  Result<json::ValueRef> value = json::Parse(json_text);
  if (!value.ok()) return value.status();
  return InferType(*value.value());
}

}  // namespace jsonsi::inference
