#include "inference/infer.h"

#include <vector>

#include "annotate/annotation.h"
#include "json/parser.h"
#include "telemetry/telemetry.h"
#include "types/interner.h"

namespace jsonsi::inference {

using json::Value;
using json::ValueKind;
using types::FieldType;
using types::Type;
using types::TypeRef;

namespace {

// The Figure 4 recursion; InferType wraps it with per-value accounting.
// When interning is enabled, record and array nodes are hash-consed at
// construction, bottom-up: repeated shapes (the common case on real
// datasets) share one node tree, so the Reduce phase sees pointer-identical
// types, dedup and the fusion memo key on identity, and equality checks
// short-circuit. Leaves need no interning — the basic-type factories are
// already process-wide singletons. Interning returns a structurally equal
// node, so the inferred type is unchanged either way (differential-tested).
TypeRef InferNode(const Value& value, const bool intern) {
  switch (value.kind()) {
    case ValueKind::kNull:
      return Type::Null();
    case ValueKind::kBool:
      return Type::Bool();
    case ValueKind::kNum:
      return Type::Num();
    case ValueKind::kStr:
      return Type::Str();
    case ValueKind::kRecord: {
      std::vector<FieldType> fields;
      fields.reserve(value.fields().size());
      for (const json::Field& f : value.fields()) {
        fields.push_back(
            {f.key, InferNode(*f.value, intern), /*optional=*/false});
      }
      // Value fields are key-sorted and unique already.
      TypeRef t = Type::RecordFromSorted(std::move(fields));
      return intern ? types::TypeInterner::Global().Intern(std::move(t)) : t;
    }
    case ValueKind::kArray: {
      std::vector<TypeRef> elements;
      elements.reserve(value.elements().size());
      for (const json::ValueRef& e : value.elements()) {
        elements.push_back(InferNode(*e, intern));
      }
      TypeRef t = Type::ArrayExact(std::move(elements));
      return intern ? types::TypeInterner::Global().Intern(std::move(t)) : t;
    }
  }
  return Type::Null();
}

}  // namespace

TypeRef InferType(const Value& value) {
  TypeRef t = InferNode(value, types::InterningEnabled());
  if (telemetry::Enabled()) {
    JSONSI_COUNTER("infer.values").Increment();
    JSONSI_HISTOGRAM("infer.type_size").Record(t->size());
  }
  return t;
}

TypeRef InferType(const Value& value, annotate::Annotation* ann) {
  if (ann != nullptr) annotate::ObserveValue(value, ann);
  return InferType(value);
}

Result<types::TypeRef> InferTypeFromJson(std::string_view json_text) {
  Result<json::ValueRef> value = json::Parse(json_text);
  if (!value.ok()) return value.status();
  return InferType(*value.value());
}

}  // namespace jsonsi::inference
