// Initial schema inference — the Map phase (Section 5.1, Figure 4).
//
// Infers, for a single JSON value, the type that is isomorphic to the value:
//   null -> Null    true/false -> Bool    n -> Num    s -> Str
//   {l1:V1,...}  ->  {l1:T1,...}          (all fields mandatory)
//   [V1,...,Vn]  ->  [T1,...,Tn]          (exact array type)
//
// The inferred type never uses union types, optional fields, or simplified
// (starred) array types — those only arise in the fusion phase. The rules are
// deterministic and total on well-formed values (key uniqueness is enforced
// at Value construction), which gives Lemma 5.1: V in [[InferType(V)]].

#ifndef JSONSI_INFERENCE_INFER_H_
#define JSONSI_INFERENCE_INFER_H_

#include <string_view>

#include "annotate/annotation.h"
#include "json/value.h"
#include "support/status.h"
#include "types/type.h"

namespace jsonsi::inference {

/// Infers the structural type of a single value (Figure 4 rules).
types::TypeRef InferType(const json::Value& value);
inline types::TypeRef InferType(const json::ValueRef& value) {
  return InferType(*value);
}

/// As InferType, additionally folding the value's statistics into `ann`
/// (annotate/annotation.h) when `ann` is non-null. The annotation rides
/// beside the type, never inside it: interning may hash-cons the returned
/// type to a shared node, and the accumulator still sees every record.
types::TypeRef InferType(const json::Value& value, annotate::Annotation* ann);

/// Convenience: parse JSON text, then infer (one record of a dataset).
Result<types::TypeRef> InferTypeFromJson(std::string_view json_text);

}  // namespace jsonsi::inference

#endif  // JSONSI_INFERENCE_INFER_H_
