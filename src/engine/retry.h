// Retry with exponential backoff for real (non-simulated) execution.
//
// The map/reduce pipeline's stages are all safe to re-run: type inference is
// a pure function of its input partition, and fusion is associative and
// commutative (Theorems 5.4/5.5), so recomputing a stage after a transient
// failure reproduces the same partial schema the lost attempt would have
// produced. RunWithRetry is the small piece of machinery that exploits this:
// it re-invokes a Status-returning operation with exponentially growing,
// jittered pauses until it succeeds, the error is classified permanent, or
// the attempt budget is exhausted.
//
// Jitter is drawn from support/rng (deterministic for a given policy seed),
// so tests and virtual-time callers can reproduce exact backoff sequences;
// set sleep_between_attempts = false to skip the real sleeps entirely.

#ifndef JSONSI_ENGINE_RETRY_H_
#define JSONSI_ENGINE_RETRY_H_

#include <cstdint>
#include <functional>

#include "support/status.h"

namespace jsonsi::engine {

/// Backoff/attempt configuration for RunWithRetry.
struct RetryPolicy {
  /// Total invocations allowed (first attempt included). Must be >= 1.
  int max_attempts = 3;
  /// Pause before retry k (1-based) is
  /// min(initial * multiplier^(k-1), max) * (1 + U[-jitter, +jitter]).
  double initial_backoff_seconds = 0.01;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 1.0;
  double jitter_fraction = 0.2;
  /// Seed for the deterministic jitter draw.
  uint64_t seed = 42;
  /// When false, backoff durations are accounted in RetryStats but not
  /// actually slept — for tests and virtual-time harnesses.
  bool sleep_between_attempts = true;
  /// Decides whether an error is worth retrying. When unset, the default
  /// classification applies: deterministic input errors (kParseError,
  /// kInvalidArgument, kNotFound, kOutOfRange) are permanent; everything
  /// else (kInternal — I/O hiccups, worker crashes) is transient.
  std::function<bool(const Status&)> retryable;
};

/// What a RunWithRetry call actually did.
struct RetryStats {
  int attempts = 0;
  double total_backoff_seconds = 0;
  /// Last non-OK status observed (OK when the first attempt succeeded).
  Status last_error;
};

/// Invokes `fn` until it returns OK, a non-retryable error occurs, or
/// `policy.max_attempts` is reached; returns the final status. `stats`, when
/// provided, receives the attempt/backoff accounting.
Status RunWithRetry(const std::function<Status()>& fn,
                    const RetryPolicy& policy, RetryStats* stats = nullptr);

}  // namespace jsonsi::engine

#endif  // JSONSI_ENGINE_RETRY_H_
