#include "engine/thread_pool.h"

#include <exception>
#include <string>

#include "support/timer.h"
#include "telemetry/telemetry.h"

namespace jsonsi::engine {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    JSONSI_COUNTER("pool.tasks_submitted").Increment();
    JSONSI_GAUGE("pool.queue_depth").Set(static_cast<int64_t>(queue_.size()));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

Status ThreadPool::first_error() const {
  std::unique_lock<std::mutex> lock(mu_);
  return first_error_;
}

size_t ThreadPool::failed_task_count() const {
  std::unique_lock<std::mutex> lock(mu_);
  return failed_tasks_;
}

void ThreadPool::ResetErrors() {
  std::unique_lock<std::mutex> lock(mu_);
  first_error_ = Status::OK();
  failed_tasks_ = 0;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      JSONSI_GAUGE("pool.queue_depth").Set(static_cast<int64_t>(queue_.size()));
    }
    // An exception leaving `task()` on a worker thread would terminate the
    // whole process; convert it into the pool's error channel instead so the
    // run degrades to a reportable (and retryable) failure.
    const bool telemetry_on = telemetry::Enabled();
    const uint64_t start_ns = telemetry_on ? MonotonicNanos() : 0;
    Status error;
    try {
      task();
    } catch (const std::exception& e) {
      error = Status::Internal(std::string("worker task threw: ") + e.what());
    } catch (...) {
      error = Status::Internal("worker task threw a non-std exception");
    }
    if (telemetry_on) {
      JSONSI_HISTOGRAM("pool.task_ns").Record(MonotonicNanos() - start_ns);
      JSONSI_COUNTER("pool.tasks_completed").Increment();
      if (!error.ok()) JSONSI_COUNTER("pool.tasks_failed").Increment();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!error.ok()) {
        ++failed_tasks_;
        if (first_error_.ok()) first_error_ = std::move(error);
      }
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace jsonsi::engine
