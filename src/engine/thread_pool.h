// Fixed-size worker pool executing submitted tasks; the local execution
// backend of the map/reduce engine (the stand-in for Spark's executor
// threads on a single host).

#ifndef JSONSI_ENGINE_THREAD_POOL_H_
#define JSONSI_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jsonsi::engine {

/// A minimal fixed-size thread pool. Tasks are void() closures; errors must
/// be captured by the closures themselves (the pool has no exception
/// channel — the engine layer stores per-task results/status in place).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace jsonsi::engine

#endif  // JSONSI_ENGINE_THREAD_POOL_H_
