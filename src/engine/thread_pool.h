// Fixed-size worker pool executing submitted tasks; the local execution
// backend of the map/reduce engine (the stand-in for Spark's executor
// threads on a single host).

#ifndef JSONSI_ENGINE_THREAD_POOL_H_
#define JSONSI_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/status.h"

namespace jsonsi::engine {

/// A minimal fixed-size thread pool. Tasks are void() closures; recoverable
/// errors should be captured by the closures themselves (the engine layer
/// stores per-task results/status in place). As a last line of defence the
/// pool catches exceptions escaping a task — which would otherwise
/// std::terminate the process from the worker thread — records the first one
/// as a Status, and keeps the remaining workers and tasks running. Drivers
/// check first_error() after Wait() and decide whether to retry the stage
/// (see engine/retry.h).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// OK while no task has thrown; otherwise an Internal status carrying the
  /// first escaped exception's message. Stable across Wait() calls until
  /// ResetErrors().
  Status first_error() const;

  /// Number of tasks that terminated by throwing since construction or the
  /// last ResetErrors().
  size_t failed_task_count() const;

  /// Clears the error channel (e.g. between retried stages).
  void ResetErrors();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  Status first_error_;
  size_t failed_tasks_ = 0;
};

}  // namespace jsonsi::engine

#endif  // JSONSI_ENGINE_THREAD_POOL_H_
