// Deterministic virtual-time simulator of the paper's evaluation cluster.
//
// The paper's scalability study (Section 6.2, Tables 6-8) ran Spark 1.6 on a
// 6-node cluster (2x10-core CPUs per node, 1 Gb Ethernet, HDFS) and observed:
//   * the naive run under-utilised the cluster — HDFS stored the dataset on
//     one node and intermediate results landed on two, so four nodes idled;
//   * manually partitioning the input and fusing per-partition schemas at the
//     end restored full parallelism (possible because Fuse is associative).
//
// We cannot reproduce those runs on this host (one core, no cluster), so the
// substitution documented in DESIGN.md is a *virtual-time* model that makes
// the causes of both behaviours explicit: nodes with a fixed core count, task
// compute costs (calibrated from real single-thread measurements of the
// inference/fusion code), data locality (which nodes hold a partition's
// blocks), and a network with finite bandwidth for remote reads and shuffles.
//
// Scheduling is greedy earliest-finish-time list scheduling, which is what a
// locality-aware Spark scheduler approximates. Everything is deterministic:
// the same inputs always produce the same virtual makespan.

#ifndef JSONSI_ENGINE_CLUSTER_SIM_H_
#define JSONSI_ENGINE_CLUSTER_SIM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jsonsi::engine {

/// Hardware model; defaults mirror the paper's cluster.
struct ClusterConfig {
  size_t num_nodes = 6;
  size_t cores_per_node = 20;  // 2 x 10-core CPUs
  /// 1 Gb Ethernet ~ 125 MB/s payload bandwidth.
  double network_bytes_per_sec = 125e6;
  /// Per-task scheduling/launch overhead (Spark task dispatch).
  double task_overhead_sec = 0.005;
};

/// One map task: processing of one input partition.
struct SimTask {
  /// CPU seconds the task needs (calibrated from real measurements).
  double compute_seconds = 0;
  /// Bytes the task reads (its partition's on-disk size).
  uint64_t input_bytes = 0;
  /// Bytes the task emits toward the reduce stage (its partial schema —
  /// small, which is the whole point of fusing early).
  uint64_t output_bytes = 0;
  /// Nodes holding a local replica of the task's input block.
  std::vector<size_t> replica_nodes;
};

/// Where tasks are allowed to run.
enum class Placement {
  /// Tasks run only on nodes holding a replica of their input — models
  /// Spark's process-local scheduling when no remote fetch is attempted.
  /// With all blocks on one node this serializes the job onto that node:
  /// the pathology of the paper's first cluster run.
  kLocalOnly,
  /// Tasks prefer replica nodes but may run anywhere, paying the network
  /// transfer of their input. Models rack-local/any scheduling.
  kAnyWithTransfer,
};

/// Outcome of a simulated job.
struct SimResult {
  /// Virtual wall-clock time from job start to the last reduce completion.
  double makespan_seconds = 0;
  /// Virtual completion time of the map stage alone.
  double map_seconds = 0;
  /// Per-node busy CPU-seconds (for utilisation reporting).
  std::vector<double> node_busy_seconds;
  /// Number of nodes that executed at least one task.
  size_t nodes_used = 0;
  /// Per-task virtual finish times (map stage), task order preserved.
  std::vector<double> task_finish_seconds;
};

/// Simulates a map stage followed by a tree-reduce of the per-task outputs
/// onto one node. `reduce_combine_seconds` is the virtual cost of one binary
/// combine (fusing two partial schemas — small and measured in reality).
SimResult SimulateJob(const std::vector<SimTask>& tasks,
                      const ClusterConfig& config, Placement placement,
                      double reduce_combine_seconds);

/// Convenience: spreads `total_bytes` and `total_compute_seconds` uniformly
/// over `num_partitions` tasks whose blocks all live on `data_node`
/// (replication factor 1 — the paper's observed HDFS layout).
std::vector<SimTask> MakeUniformTasks(size_t num_partitions,
                                      double total_compute_seconds,
                                      uint64_t total_bytes, size_t data_node,
                                      uint64_t partial_schema_bytes);

/// Convenience: same, but blocks round-robined across all nodes (the manual
/// partitioning strategy of Table 8).
std::vector<SimTask> MakeSpreadTasks(size_t num_partitions,
                                     double total_compute_seconds,
                                     uint64_t total_bytes, size_t num_nodes,
                                     uint64_t partial_schema_bytes);

}  // namespace jsonsi::engine

#endif  // JSONSI_ENGINE_CLUSTER_SIM_H_
