// Deterministic virtual-time simulator of the paper's evaluation cluster.
//
// The paper's scalability study (Section 6.2, Tables 6-8) ran Spark 1.6 on a
// 6-node cluster (2x10-core CPUs per node, 1 Gb Ethernet, HDFS) and observed:
//   * the naive run under-utilised the cluster — HDFS stored the dataset on
//     one node and intermediate results landed on two, so four nodes idled;
//   * manually partitioning the input and fusing per-partition schemas at the
//     end restored full parallelism (possible because Fuse is associative).
//
// We cannot reproduce those runs on this host (one core, no cluster), so the
// substitution documented in DESIGN.md is a *virtual-time* model that makes
// the causes of both behaviours explicit: nodes with a fixed core count, task
// compute costs (calibrated from real single-thread measurements of the
// inference/fusion code), data locality (which nodes hold a partition's
// blocks), and a network with finite bandwidth for remote reads and shuffles.
//
// Beyond the happy path, the simulator injects *faults* from a deterministic
// schedule — node crashes at virtual times, per-node straggler slowdowns,
// corrupt partitions whose tasks fail on their first attempts — and recovers
// with the policies a production scheduler would use: task retry with
// exponential backoff (seeded jitter), speculative re-execution of slow
// attempts, and node blacklisting after repeated failures. Recovery is
// *correct* because the reduce operator (schema fusion) is associative and
// commutative: a re-executed map task reproduces its partial schema exactly,
// and partials can be re-fused in any arrival order (Theorems 5.4/5.5) — the
// monoid structure that makes the whole pipeline restartable.
//
// Scheduling is greedy earliest-finish-time list scheduling, which is what a
// locality-aware Spark scheduler approximates. Everything is deterministic:
// the same inputs (including the fault schedule and policy seed) always
// produce the same virtual makespan and the same recovery counters.

#ifndef JSONSI_ENGINE_CLUSTER_SIM_H_
#define JSONSI_ENGINE_CLUSTER_SIM_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace jsonsi::engine {

/// Hardware model; defaults mirror the paper's cluster.
struct ClusterConfig {
  size_t num_nodes = 6;
  size_t cores_per_node = 20;  // 2 x 10-core CPUs
  /// 1 Gb Ethernet ~ 125 MB/s payload bandwidth.
  double network_bytes_per_sec = 125e6;
  /// Per-task scheduling/launch overhead (Spark task dispatch).
  double task_overhead_sec = 0.005;
};

/// One map task: processing of one input partition.
struct SimTask {
  /// CPU seconds the task needs (calibrated from real measurements).
  double compute_seconds = 0;
  /// Bytes the task reads (its partition's on-disk size).
  uint64_t input_bytes = 0;
  /// Bytes the task emits toward the reduce stage (its partial schema —
  /// small, which is the whole point of fusing early).
  uint64_t output_bytes = 0;
  /// Nodes holding a local replica of the task's input block.
  std::vector<size_t> replica_nodes;
};

/// Where tasks are allowed to run.
enum class Placement {
  /// Tasks run only on nodes holding a replica of their input — models
  /// Spark's process-local scheduling when no remote fetch is attempted.
  /// With all blocks on one node this serializes the job onto that node:
  /// the pathology of the paper's first cluster run.
  kLocalOnly,
  /// Tasks prefer replica nodes but may run anywhere, paying the network
  /// transfer of their input. Models rack-local/any scheduling.
  kAnyWithTransfer,
};

/// One scheduled node failure. The node refuses new attempts during
/// [at_seconds, at_seconds + down_seconds); attempts running on it when it
/// crashes fail at the crash instant and are retried under the recovery
/// policy. An infinite down time models permanent node loss.
struct NodeCrash {
  size_t node = 0;
  double at_seconds = 0;
  double down_seconds = std::numeric_limits<double>::infinity();
};

/// Deterministic fault schedule injected into a simulated job. Default
/// constructed = no faults (the happy path simulated before this layer
/// existed, bit-identical results).
struct FaultSchedule {
  /// Node crash windows (may list several crashes of the same node).
  std::vector<NodeCrash> crashes;
  /// Per-node compute slowdown multipliers; nodes beyond the vector's length
  /// run at factor 1.0. A factor of 4 models the saturated-disk straggler of
  /// real clusters; speculation exists to neutralise exactly this.
  std::vector<double> straggler_factor;
  /// Task indices whose input partition is corrupt: their first
  /// `corrupt_attempt_failures` attempts fail after reading
  /// `corrupt_failure_fraction` of the work (the failure is discovered
  /// mid-scan, so that compute is wasted). Later attempts succeed, modelling
  /// a re-fetched replica.
  std::vector<size_t> corrupt_tasks;
  int corrupt_attempt_failures = 1;
  double corrupt_failure_fraction = 0.5;

  bool HasFaults() const {
    if (!crashes.empty() || !corrupt_tasks.empty()) return true;
    for (double f : straggler_factor) {
      if (f != 1.0) return true;
    }
    return false;
  }
};

/// Recovery knobs of the simulated scheduler.
struct RecoveryPolicy {
  /// Total attempts allowed per task (first launch included). A task that
  /// exhausts its attempts marks the job incomplete.
  int max_attempts_per_task = 4;
  /// Exponential backoff between a failure and the relaunch of its task.
  double backoff_initial_seconds = 0.1;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 5.0;
  /// Uniform jitter fraction applied to each backoff (deterministic, drawn
  /// from `seed`): backoff * (1 + U[-jitter, +jitter]).
  double backoff_jitter = 0.1;
  uint64_t seed = 42;
  /// Launch a speculative copy of an attempt whose duration exceeds this
  /// multiple of the same task's duration on an unimpaired node (Spark's
  /// speculative execution). 0 disables speculation.
  double speculation_threshold = 0.0;
  /// Blacklist a node (no further launches) after this many attempt
  /// failures on it. 0 disables blacklisting.
  int blacklist_after_failures = 0;
};

/// Outcome of a simulated job.
struct SimResult {
  /// Virtual wall-clock time from job start to the last reduce completion.
  double makespan_seconds = 0;
  /// Virtual completion time of the map stage alone.
  double map_seconds = 0;
  /// Per-node busy CPU-seconds (for utilisation reporting).
  std::vector<double> node_busy_seconds;
  /// Number of nodes that executed at least one task.
  size_t nodes_used = 0;
  /// Per-task virtual finish times (map stage), task order preserved. For a
  /// task that never completed this is its last failure time.
  std::vector<double> task_finish_seconds;

  // ---- Fault/recovery accounting (all zero on a failure-free run). ----
  /// Attempt failures observed (crashes + corrupt reads), across all tasks.
  size_t attempt_failures = 0;
  /// Attempts re-launched after a failure.
  size_t retries = 0;
  /// Speculative copies launched / copies that finished first.
  size_t speculative_launches = 0;
  size_t speculative_wins = 0;
  /// Nodes blacklisted during the run.
  size_t nodes_blacklisted = 0;
  /// Tasks that exhausted max_attempts_per_task without succeeding.
  size_t failed_tasks = 0;
  /// True when every map task completed (failed_tasks == 0).
  bool completed = true;
  /// CPU-seconds burned by attempts that later failed (lost work).
  double wasted_seconds = 0;
  /// Virtual seconds spent waiting in backoff across all retries.
  double backoff_wait_seconds = 0;
  /// Makespan minus the makespan of the same job with no faults injected —
  /// the price of recovery. 0 on a failure-free run.
  double recovery_overhead_seconds = 0;
};

/// Simulates a map stage followed by a tree-reduce of the per-task outputs
/// onto one node. `reduce_combine_seconds` is the virtual cost of one binary
/// combine (fusing two partial schemas — small and measured in reality).
SimResult SimulateJob(const std::vector<SimTask>& tasks,
                      const ClusterConfig& config, Placement placement,
                      double reduce_combine_seconds);

/// Same job under an injected fault schedule and a recovery policy. With an
/// empty schedule this is identical to the overload above. Partials of
/// failed-and-retried tasks re-enter the reduce in completion order; the
/// fused result is unchanged by commutativity/associativity of Fuse, which
/// is why retry-based recovery is sound for this pipeline.
SimResult SimulateJob(const std::vector<SimTask>& tasks,
                      const ClusterConfig& config, Placement placement,
                      double reduce_combine_seconds,
                      const FaultSchedule& faults,
                      const RecoveryPolicy& recovery);

/// Convenience: spreads `total_bytes` and `total_compute_seconds` uniformly
/// over `num_partitions` tasks whose blocks all live on `data_node`
/// (replication factor 1 — the paper's observed HDFS layout).
std::vector<SimTask> MakeUniformTasks(size_t num_partitions,
                                      double total_compute_seconds,
                                      uint64_t total_bytes, size_t data_node,
                                      uint64_t partial_schema_bytes);

/// Convenience: same, but blocks round-robined across all nodes (the manual
/// partitioning strategy of Table 8).
std::vector<SimTask> MakeSpreadTasks(size_t num_partitions,
                                     double total_compute_seconds,
                                     uint64_t total_bytes, size_t num_nodes,
                                     uint64_t partial_schema_bytes);

}  // namespace jsonsi::engine

#endif  // JSONSI_ENGINE_CLUSTER_SIM_H_
