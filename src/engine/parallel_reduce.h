// Parallel pairwise tree reduction — the log-depth Reduce of the paper's
// map/reduce pipeline (Spark's treeReduce), run on the local thread pool.
//
// A serial left fold of k partials costs k-1 sequential combines; when the
// combiner is Fuse on wide schemas each of those walks a large accumulator.
// Because Fuse is associative and commutative (Theorems 5.4/5.5), ANY
// reduction tree yields a structurally identical result, so the partials
// can instead be merged pairwise in ceil(log2 k) rounds with every pair of
// a round combining concurrently — the critical path shrinks from k-1 to
// log2 k combines.
//
// The bracketing is byte-for-byte the one the serial pairwise loop in
// Dataset::Reduce used ((0,1),(2,3),... per round, odd element carried),
// so switching the rounds from sequential to pooled execution cannot change
// the result even for combiners that are associative but not commutative.

#ifndef JSONSI_ENGINE_PARALLEL_REDUCE_H_
#define JSONSI_ENGINE_PARALLEL_REDUCE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "engine/thread_pool.h"
#include "telemetry/telemetry.h"

namespace jsonsi::engine {

/// Reduces `items` with an associative `combine` in parallel pairwise
/// rounds on `pool`. Returns `identity` for an empty input. `rounds_out`,
/// when provided, receives the number of rounds executed (== ceil(log2 n),
/// 0 for n <= 1).
///
/// A combine that throws is captured by the pool as a Status; its pair's
/// slot keeps the identity value. Callers that care must check
/// pool.first_error() afterwards (the engine convention, see
/// thread_pool.h). The pool must have no unrelated tasks in flight: each
/// round issues a pool.Wait() barrier.
template <typename T, typename Combine>
T ParallelTreeReduce(ThreadPool& pool, std::vector<T> items, const T& identity,
                     Combine&& combine, size_t* rounds_out = nullptr) {
  size_t rounds = 0;
  while (items.size() > 1) {
    ++rounds;
    const size_t pairs = items.size() / 2;
    const bool odd = items.size() % 2 == 1;
    std::vector<T> next(pairs + (odd ? 1 : 0), identity);
    if (pairs == 1) {
      // One pair left: dispatching to a worker only adds latency.
      next[0] = combine(items[0], items[1]);
    } else {
      for (size_t i = 0; i < pairs; ++i) {
        pool.Submit([&items, &next, &combine, i] {
          JSONSI_SPAN("reduce.pair");
          next[i] = combine(items[2 * i], items[2 * i + 1]);
        });
      }
      pool.Wait();
    }
    if (odd) next.back() = std::move(items.back());
    items = std::move(next);
  }
  if (rounds_out) *rounds_out = rounds;
  return items.empty() ? identity : std::move(items.front());
}

}  // namespace jsonsi::engine

#endif  // JSONSI_ENGINE_PARALLEL_REDUCE_H_
