#include "engine/retry.h"

#include <algorithm>

#include "support/rng.h"
#include "support/timer.h"
#include "telemetry/telemetry.h"

namespace jsonsi::engine {
namespace {

bool DefaultRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kParseError:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
      return false;  // deterministic input errors: retrying cannot help
    default:
      return true;
  }
}

}  // namespace

Status RunWithRetry(const std::function<Status()>& fn,
                    const RetryPolicy& policy, RetryStats* stats) {
  Rng rng(policy.seed);
  RetryStats local;
  RetryStats& s = stats ? *stats : local;
  s = RetryStats{};

  JSONSI_COUNTER("retry.runs").Increment();
  int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt = 1;; ++attempt) {
    ++s.attempts;
    JSONSI_COUNTER("retry.attempts").Increment();
    Status status = fn();
    if (status.ok()) return status;
    s.last_error = status;
    bool retryable =
        policy.retryable ? policy.retryable(status) : DefaultRetryable(status);
    if (!retryable || attempt >= max_attempts) {
      if (retryable) {
        JSONSI_COUNTER("retry.budget_exhausted").Increment();
      } else {
        JSONSI_COUNTER("retry.permanent_failures").Increment();
      }
      return status;
    }

    double backoff = policy.initial_backoff_seconds;
    for (int i = 1; i < attempt; ++i) backoff *= policy.backoff_multiplier;
    backoff = std::min(backoff, policy.max_backoff_seconds);
    if (policy.jitter_fraction > 0) {
      backoff *= 1.0 + policy.jitter_fraction * (2.0 * rng.NextDouble() - 1.0);
    }
    backoff = std::max(backoff, 0.0);
    s.total_backoff_seconds += backoff;
    JSONSI_COUNTER("retry.retries").Increment();
    if (telemetry::Enabled()) {
      JSONSI_HISTOGRAM("retry.backoff_ns")
          .Record(static_cast<uint64_t>(backoff * 1e9));
    }
    if (policy.sleep_between_attempts && backoff > 0) {
      JSONSI_SPAN("retry.backoff_sleep");
      SleepForSeconds(backoff);
    }
  }
}

}  // namespace jsonsi::engine
