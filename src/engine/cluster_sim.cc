#include "engine/cluster_sim.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace jsonsi::engine {
namespace {

// Per-node core availability: free_at_[node][core] = virtual time the core
// becomes idle. Greedy assignment always picks the earliest-finishing
// (node, core) pair among the allowed nodes.
class CoreTable {
 public:
  CoreTable(size_t nodes, size_t cores)
      : free_at_(nodes, std::vector<double>(cores, 0.0)) {}

  // Earliest start on `node` (its least-loaded core).
  double EarliestStart(size_t node) const {
    return *std::min_element(free_at_[node].begin(), free_at_[node].end());
  }

  // Occupies the least-loaded core of `node` from max(now, free) for
  // `duration`; returns the finish time.
  double Assign(size_t node, double ready_time, double duration) {
    auto it = std::min_element(free_at_[node].begin(), free_at_[node].end());
    double start = std::max(*it, ready_time);
    *it = start + duration;
    return *it;
  }

 private:
  std::vector<std::vector<double>> free_at_;
};

bool IsReplica(const SimTask& task, size_t node) {
  return std::find(task.replica_nodes.begin(), task.replica_nodes.end(),
                   node) != task.replica_nodes.end();
}

}  // namespace

SimResult SimulateJob(const std::vector<SimTask>& tasks,
                      const ClusterConfig& config, Placement placement,
                      double reduce_combine_seconds) {
  assert(config.num_nodes > 0 && config.cores_per_node > 0);
  SimResult result;
  result.node_busy_seconds.assign(config.num_nodes, 0.0);
  result.task_finish_seconds.assign(tasks.size(), 0.0);

  CoreTable cores(config.num_nodes, config.cores_per_node);
  std::vector<bool> node_used(config.num_nodes, false);

  // ---- Map stage: greedy earliest-finish-time placement. ----
  for (size_t t = 0; t < tasks.size(); ++t) {
    const SimTask& task = tasks[t];
    double best_finish = std::numeric_limits<double>::infinity();
    size_t best_node = 0;
    double best_duration = 0;
    for (size_t node = 0; node < config.num_nodes; ++node) {
      bool local = IsReplica(task, node);
      if (placement == Placement::kLocalOnly && !local) continue;
      double transfer =
          local ? 0.0
                : static_cast<double>(task.input_bytes) /
                      config.network_bytes_per_sec;
      double duration =
          config.task_overhead_sec + transfer + task.compute_seconds;
      double finish = cores.EarliestStart(node) + duration;
      if (finish < best_finish) {
        best_finish = finish;
        best_node = node;
        best_duration = duration;
      }
    }
    assert(best_finish < std::numeric_limits<double>::infinity() &&
           "no eligible node (task with no replica under kLocalOnly?)");
    double finish = cores.Assign(best_node, 0.0, best_duration);
    result.task_finish_seconds[t] = finish;
    result.node_busy_seconds[best_node] += best_duration;
    node_used[best_node] = true;
    result.map_seconds = std::max(result.map_seconds, finish);
  }

  // ---- Reduce stage: partial outputs are shuffled to one driver node and
  // combined pairwise. The combine tree has depth ceil(log2(n)); each level
  // costs one combine, and inputs arrive after their shuffle transfer. This
  // upper-bounds the (tiny) reduce cost faithfully: partial schemas are
  // orders of magnitude smaller than the data. ----
  double reduce_ready = 0.0;
  for (size_t t = 0; t < tasks.size(); ++t) {
    double arrival = result.task_finish_seconds[t] +
                     static_cast<double>(tasks[t].output_bytes) /
                         config.network_bytes_per_sec;
    reduce_ready = std::max(reduce_ready, arrival);
  }
  size_t levels = 0;
  for (size_t n = tasks.size(); n > 1; n = (n + 1) / 2) ++levels;
  result.makespan_seconds =
      reduce_ready + static_cast<double>(levels) * reduce_combine_seconds;

  for (bool used : node_used) result.nodes_used += used ? 1 : 0;
  return result;
}

std::vector<SimTask> MakeUniformTasks(size_t num_partitions,
                                      double total_compute_seconds,
                                      uint64_t total_bytes, size_t data_node,
                                      uint64_t partial_schema_bytes) {
  std::vector<SimTask> tasks(num_partitions);
  for (SimTask& t : tasks) {
    t.compute_seconds = total_compute_seconds / num_partitions;
    t.input_bytes = total_bytes / num_partitions;
    t.output_bytes = partial_schema_bytes;
    t.replica_nodes = {data_node};
  }
  return tasks;
}

std::vector<SimTask> MakeSpreadTasks(size_t num_partitions,
                                     double total_compute_seconds,
                                     uint64_t total_bytes, size_t num_nodes,
                                     uint64_t partial_schema_bytes) {
  std::vector<SimTask> tasks(num_partitions);
  for (size_t i = 0; i < num_partitions; ++i) {
    SimTask& t = tasks[i];
    t.compute_seconds = total_compute_seconds / num_partitions;
    t.input_bytes = total_bytes / num_partitions;
    t.output_bytes = partial_schema_bytes;
    t.replica_nodes = {i % num_nodes};
  }
  return tasks;
}

}  // namespace jsonsi::engine
