#include "engine/cluster_sim.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "support/rng.h"
#include "telemetry/telemetry.h"

namespace jsonsi::engine {
namespace {

// Per-node core availability: free_at_[node][core] = virtual time the core
// becomes idle. Greedy assignment always picks the earliest-finishing
// (node, core) pair among the allowed nodes.
class CoreTable {
 public:
  CoreTable(size_t nodes, size_t cores)
      : free_at_(nodes, std::vector<double>(cores, 0.0)) {}

  // Earliest start on `node` (its least-loaded core).
  double EarliestStart(size_t node) const {
    return *std::min_element(free_at_[node].begin(), free_at_[node].end());
  }

  // Occupies the least-loaded core of `node` for [start, end). `start` must
  // not precede the core's availability (callers compute it from
  // EarliestStart, possibly shifted forward past node downtime).
  void Assign(size_t node, double start, double end) {
    auto it = std::min_element(free_at_[node].begin(), free_at_[node].end());
    assert(*it <= start + 1e-12);
    (void)start;
    *it = end;
  }

 private:
  std::vector<std::vector<double>> free_at_;
};

bool IsReplica(const SimTask& task, size_t node) {
  return std::find(task.replica_nodes.begin(), task.replica_nodes.end(),
                   node) != task.replica_nodes.end();
}

bool Contains(const std::vector<size_t>& xs, size_t x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

// A queued launch request: retry `attempt` of `task` not before `ready`.
// `seq` makes the processing order a deterministic total order.
struct PendingAttempt {
  double ready = 0;
  size_t seq = 0;
  size_t task = 0;
  int attempt = 1;
};

struct LaterFirst {
  bool operator()(const PendingAttempt& a, const PendingAttempt& b) const {
    if (a.ready != b.ready) return a.ready > b.ready;
    return a.seq > b.seq;
  }
};

// What one launched copy of an attempt did.
struct CopyOutcome {
  bool launched = false;  // false: no eligible node existed
  bool succeeded = false;
  size_t node = 0;
  double start = 0;
  double end = 0;  // finish time on success, failure time otherwise
};

// The whole fault-aware simulation state, shared by the helpers below.
class FaultSim {
 public:
  FaultSim(const std::vector<SimTask>& tasks, const ClusterConfig& config,
           Placement placement, const FaultSchedule& faults,
           const RecoveryPolicy& recovery)
      : tasks_(tasks),
        config_(config),
        placement_(placement),
        faults_(faults),
        recovery_(recovery),
        cores_(config.num_nodes, config.cores_per_node),
        rng_(recovery.seed),
        crashes_by_node_(config.num_nodes),
        node_failures_(config.num_nodes, 0),
        blacklisted_(config.num_nodes, false),
        node_used_(config.num_nodes, false) {
    for (const NodeCrash& c : faults.crashes) {
      if (c.node < config.num_nodes) crashes_by_node_[c.node].push_back(c);
    }
    for (auto& cs : crashes_by_node_) {
      std::sort(cs.begin(), cs.end(),
                [](const NodeCrash& a, const NodeCrash& b) {
                  return a.at_seconds < b.at_seconds;
                });
    }
  }

  SimResult Run(double reduce_combine_seconds);

 private:
  double Straggler(size_t node) const {
    return node < faults_.straggler_factor.size()
               ? faults_.straggler_factor[node]
               : 1.0;
  }

  // Earliest time >= t at which `node` accepts launches; infinity when the
  // node is permanently down from some crash at or before t.
  double NextUpTime(size_t node, double t) const {
    bool moved = true;
    while (moved) {
      moved = false;
      for (const NodeCrash& c : crashes_by_node_[node]) {
        if (t >= c.at_seconds && t < c.at_seconds + c.down_seconds) {
          t = c.at_seconds + c.down_seconds;
          moved = true;
        }
      }
    }
    return t;
  }

  // Earliest crash on `node` striking within [start, end), or +infinity.
  double CrashWithin(size_t node, double start, double end) const {
    for (const NodeCrash& c : crashes_by_node_[node]) {
      if (c.at_seconds >= start && c.at_seconds < end) return c.at_seconds;
    }
    return std::numeric_limits<double>::infinity();
  }

  bool NodeEligible(size_t node, double ready) const {
    return !blacklisted_[node] &&
           NextUpTime(node, std::max(cores_.EarliestStart(node), ready)) <
               std::numeric_limits<double>::infinity();
  }

  // Greedy earliest-finish node choice for `task` starting no earlier than
  // `ready`, excluding `exclude` (the primary's node, when placing a
  // speculative copy). Returns false when no node is eligible.
  bool ChooseNode(const SimTask& task, double ready, int exclude, size_t* node,
                  double* start, double* duration) const;

  // Executes one copy of attempt `attempt` of task `t`, updating core/busy
  // bookkeeping and per-node failure counts.
  CopyOutcome LaunchCopy(size_t t, int attempt, double ready, int exclude,
                         SimResult* result);

  void RecordFailure(size_t node, SimResult* result);

  const std::vector<SimTask>& tasks_;
  const ClusterConfig& config_;
  Placement placement_;
  const FaultSchedule& faults_;
  const RecoveryPolicy& recovery_;
  CoreTable cores_;
  Rng rng_;
  std::vector<std::vector<NodeCrash>> crashes_by_node_;
  std::vector<int> node_failures_;
  std::vector<bool> blacklisted_;
  std::vector<bool> node_used_;
};

bool FaultSim::ChooseNode(const SimTask& task, double ready, int exclude,
                          size_t* node, double* start,
                          double* duration) const {
  double best_finish = std::numeric_limits<double>::infinity();
  // Two passes under kLocalOnly: replicas first; when every replica is
  // blacklisted or permanently down, fall back to remote execution (the
  // real-world analogue is reading the surviving HDFS replica remotely).
  for (int pass = 0; pass < 2; ++pass) {
    bool local_only = placement_ == Placement::kLocalOnly && pass == 0;
    for (size_t n = 0; n < config_.num_nodes; ++n) {
      if (static_cast<int>(n) == exclude) continue;
      bool local = IsReplica(task, n);
      if (local_only && !local) continue;
      if (blacklisted_[n]) continue;
      double s = NextUpTime(n, std::max(cores_.EarliestStart(n), ready));
      if (s == std::numeric_limits<double>::infinity()) continue;
      double transfer = local ? 0.0
                              : static_cast<double>(task.input_bytes) /
                                    config_.network_bytes_per_sec;
      double d = config_.task_overhead_sec + transfer +
                 task.compute_seconds * Straggler(n);
      // The scheduler does not know future crashes; it ranks by the
      // crash-free finish time, exactly like the fault-free greedy.
      if (s + d < best_finish) {
        best_finish = s + d;
        *node = n;
        *start = s;
        *duration = d;
      }
    }
    if (best_finish < std::numeric_limits<double>::infinity()) return true;
    if (placement_ != Placement::kLocalOnly) break;
  }
  return false;
}

void FaultSim::RecordFailure(size_t node, SimResult* result) {
  ++result->attempt_failures;
  ++node_failures_[node];
  if (recovery_.blacklist_after_failures > 0 && !blacklisted_[node] &&
      node_failures_[node] >= recovery_.blacklist_after_failures) {
    blacklisted_[node] = true;
    ++result->nodes_blacklisted;
  }
}

CopyOutcome FaultSim::LaunchCopy(size_t t, int attempt, double ready,
                                 int exclude, SimResult* result) {
  CopyOutcome out;
  const SimTask& task = tasks_[t];
  size_t node = 0;
  double start = 0, duration = 0;
  if (!ChooseNode(task, ready, exclude, &node, &start, &duration)) return out;
  out.launched = true;
  out.node = node;
  out.start = start;

  double finish = start + duration;
  // A corrupt partition fails its first attempts partway through the scan.
  double fail_at = std::numeric_limits<double>::infinity();
  if (Contains(faults_.corrupt_tasks, t) &&
      attempt <= faults_.corrupt_attempt_failures) {
    fail_at = start + duration * faults_.corrupt_failure_fraction;
  }
  // A node crash mid-attempt kills it at the crash instant.
  fail_at = std::min(fail_at,
                     CrashWithin(node, start, std::min(finish, fail_at)));

  out.succeeded = fail_at == std::numeric_limits<double>::infinity();
  out.end = out.succeeded ? finish : fail_at;

  cores_.Assign(node, start, out.end);
  result->node_busy_seconds[node] += out.end - start;
  node_used_[node] = true;
  if (!out.succeeded) {
    result->wasted_seconds += out.end - start;
    RecordFailure(node, result);
  }
  return out;
}

SimResult FaultSim::Run(double reduce_combine_seconds) {
  SimResult result;
  result.node_busy_seconds.assign(config_.num_nodes, 0.0);
  result.task_finish_seconds.assign(tasks_.size(), 0.0);

  std::priority_queue<PendingAttempt, std::vector<PendingAttempt>, LaterFirst>
      queue;
  size_t seq = 0;
  for (size_t t = 0; t < tasks_.size(); ++t) {
    queue.push(PendingAttempt{0.0, seq++, t, 1});
  }

  std::vector<bool> done(tasks_.size(), false);
  std::vector<bool> abandoned(tasks_.size(), false);

  while (!queue.empty()) {
    PendingAttempt a = queue.top();
    queue.pop();
    if (done[a.task] || abandoned[a.task]) continue;
    const SimTask& task = tasks_[a.task];

    CopyOutcome primary = LaunchCopy(a.task, a.attempt, a.ready, -1, &result);
    if (!primary.launched) {
      // Nowhere left to run (every node blacklisted or permanently down).
      abandoned[a.task] = true;
      result.task_finish_seconds[a.task] = a.ready;
      continue;
    }

    // Speculative re-execution: when the chosen node is impaired enough that
    // the attempt runs `speculation_threshold` times slower than it would
    // unimpaired, launch a backup copy elsewhere. The loser is not killed
    // (utilisation accounting stays pessimistic, as with late kills in
    // Spark); the task completes at the earlier success.
    CopyOutcome backup;
    if (recovery_.speculation_threshold > 0) {
      double healthy = config_.task_overhead_sec + task.compute_seconds;
      double actual = (primary.end - primary.start);
      if (primary.succeeded &&
          actual > recovery_.speculation_threshold * healthy) {
        backup = LaunchCopy(a.task, a.attempt, a.ready,
                            static_cast<int>(primary.node), &result);
        if (backup.launched) ++result.speculative_launches;
      }
    }

    double completion = std::numeric_limits<double>::infinity();
    if (primary.succeeded) completion = primary.end;
    if (backup.launched && backup.succeeded) {
      if (backup.end < completion) ++result.speculative_wins;
      completion = std::min(completion, backup.end);
    }

    if (completion < std::numeric_limits<double>::infinity()) {
      done[a.task] = true;
      result.task_finish_seconds[a.task] = completion;
      result.map_seconds = std::max(result.map_seconds, completion);
      continue;
    }

    // Every copy failed: back off and retry, or abandon the task.
    double failed_at = primary.end;
    if (backup.launched) failed_at = std::max(failed_at, backup.end);
    if (a.attempt >= recovery_.max_attempts_per_task) {
      abandoned[a.task] = true;
      result.task_finish_seconds[a.task] = failed_at;
      result.map_seconds = std::max(result.map_seconds, failed_at);
      continue;
    }
    double backoff = recovery_.backoff_initial_seconds;
    for (int i = 1; i < a.attempt; ++i) backoff *= recovery_.backoff_multiplier;
    backoff = std::min(backoff, recovery_.backoff_max_seconds);
    if (recovery_.backoff_jitter > 0) {
      backoff *=
          1.0 + recovery_.backoff_jitter * (2.0 * rng_.NextDouble() - 1.0);
    }
    result.backoff_wait_seconds += backoff;
    ++result.retries;
    queue.push(
        PendingAttempt{failed_at + backoff, seq++, a.task, a.attempt + 1});
  }

  for (bool a : abandoned) {
    if (a) ++result.failed_tasks;
  }
  result.completed = result.failed_tasks == 0;

  // ---- Reduce stage: partial outputs are shuffled to one driver node and
  // combined pairwise. The combine tree has depth ceil(log2(n)); each level
  // costs one combine, and inputs arrive after their shuffle transfer. This
  // upper-bounds the (tiny) reduce cost faithfully: partial schemas are
  // orders of magnitude smaller than the data. Retried tasks feed the reduce
  // whenever their surviving attempt lands — any arrival order fuses to the
  // same schema (associativity + commutativity). ----
  double reduce_ready = 0.0;
  size_t reduced = 0;
  for (size_t t = 0; t < tasks_.size(); ++t) {
    if (abandoned[t]) continue;
    double arrival = result.task_finish_seconds[t] +
                     static_cast<double>(tasks_[t].output_bytes) /
                         config_.network_bytes_per_sec;
    reduce_ready = std::max(reduce_ready, arrival);
    ++reduced;
  }
  size_t levels = 0;
  for (size_t n = reduced; n > 1; n = (n + 1) / 2) ++levels;
  result.makespan_seconds =
      std::max(reduce_ready,
               result.map_seconds) +  // abandoned tasks may outlast arrivals
      static_cast<double>(levels) * reduce_combine_seconds;

  for (bool used : node_used_) result.nodes_used += used ? 1 : 0;
  return result;
}

}  // namespace

SimResult SimulateJob(const std::vector<SimTask>& tasks,
                      const ClusterConfig& config, Placement placement,
                      double reduce_combine_seconds) {
  return SimulateJob(tasks, config, placement, reduce_combine_seconds,
                     FaultSchedule{}, RecoveryPolicy{});
}

SimResult SimulateJob(const std::vector<SimTask>& tasks,
                      const ClusterConfig& config, Placement placement,
                      double reduce_combine_seconds,
                      const FaultSchedule& faults,
                      const RecoveryPolicy& recovery) {
  assert(config.num_nodes > 0 && config.cores_per_node > 0);
  FaultSim sim(tasks, config, placement, faults, recovery);
  SimResult result = sim.Run(reduce_combine_seconds);
  if (faults.HasFaults()) {
    // Fault-free baseline for the overhead delta; run directly (not through
    // the public overload) so it does not count as a second telemetry job.
    // FaultSim holds its schedule/policy by reference, so these must outlive
    // the Run call.
    const FaultSchedule no_faults;
    const RecoveryPolicy default_recovery;
    FaultSim clean_sim(tasks, config, placement, no_faults, default_recovery);
    SimResult clean = clean_sim.Run(reduce_combine_seconds);
    result.recovery_overhead_seconds =
        result.makespan_seconds - clean.makespan_seconds;
  }
  // Publish the job's recovery ledger. Virtual durations are recorded in
  // virtual nanoseconds so histograms share one unit with real timings.
  if (telemetry::Enabled()) {
    JSONSI_COUNTER("sim.jobs").Increment();
    JSONSI_COUNTER("sim.tasks").Add(tasks.size());
    JSONSI_COUNTER("sim.attempt_failures").Add(result.attempt_failures);
    JSONSI_COUNTER("sim.retries").Add(result.retries);
    JSONSI_COUNTER("sim.speculative_launches")
        .Add(result.speculative_launches);
    JSONSI_COUNTER("sim.speculative_wins").Add(result.speculative_wins);
    JSONSI_COUNTER("sim.nodes_blacklisted").Add(result.nodes_blacklisted);
    JSONSI_COUNTER("sim.failed_tasks").Add(result.failed_tasks);
    if (!result.completed) JSONSI_COUNTER("sim.incomplete_jobs").Increment();
    auto virtual_ns = [](double seconds) {
      return seconds > 0 ? static_cast<uint64_t>(seconds * 1e9) : 0;
    };
    JSONSI_HISTOGRAM("sim.makespan_vns")
        .Record(virtual_ns(result.makespan_seconds));
    JSONSI_HISTOGRAM("sim.wasted_vns")
        .Record(virtual_ns(result.wasted_seconds));
    JSONSI_HISTOGRAM("sim.backoff_wait_vns")
        .Record(virtual_ns(result.backoff_wait_seconds));
    JSONSI_HISTOGRAM("sim.recovery_overhead_vns")
        .Record(virtual_ns(result.recovery_overhead_seconds));
  }
  return result;
}

std::vector<SimTask> MakeUniformTasks(size_t num_partitions,
                                      double total_compute_seconds,
                                      uint64_t total_bytes, size_t data_node,
                                      uint64_t partial_schema_bytes) {
  std::vector<SimTask> tasks(num_partitions);
  for (SimTask& t : tasks) {
    t.compute_seconds = total_compute_seconds / num_partitions;
    t.input_bytes = total_bytes / num_partitions;
    t.output_bytes = partial_schema_bytes;
    t.replica_nodes = {data_node};
  }
  return tasks;
}

std::vector<SimTask> MakeSpreadTasks(size_t num_partitions,
                                     double total_compute_seconds,
                                     uint64_t total_bytes, size_t num_nodes,
                                     uint64_t partial_schema_bytes) {
  std::vector<SimTask> tasks(num_partitions);
  for (size_t i = 0; i < num_partitions; ++i) {
    SimTask& t = tasks[i];
    t.compute_seconds = total_compute_seconds / num_partitions;
    t.input_bytes = total_bytes / num_partitions;
    t.output_bytes = partial_schema_bytes;
    t.replica_nodes = {i % num_nodes};
  }
  return tasks;
}

}  // namespace jsonsi::engine
