// Partitioned in-memory dataset with parallel Map and tree Reduce — the
// Spark substrate of the paper scaled to one process.
//
// The paper's pipeline is `values.map(InferType).reduce(Fuse)`. What makes
// the distributed reduce legal is associativity + commutativity of Fuse
// (Theorems 5.4/5.5); the engine exploits exactly that structure:
//
//   * Map runs per partition on a thread pool (Spark tasks);
//   * Reduce folds each partition sequentially, then combines the partition
//     results pairwise in tree order (Spark's treeReduce) — any bracketing is
//     correct for an associative operator, and the tests assert the result is
//     bit-identical to a sequential left fold;
//   * per-partition timings are recorded so the experiment harnesses can
//     report inference vs fusion cost (Table 6) and feed the cluster
//     simulator (Tables 7-8).
//
// Dataset is header-only (templates); the thread pool and cluster simulator
// are compiled.

#ifndef JSONSI_ENGINE_DATASET_H_
#define JSONSI_ENGINE_DATASET_H_

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "engine/parallel_reduce.h"
#include "engine/thread_pool.h"
#include "support/timer.h"

namespace jsonsi::engine {

/// Wall-clock cost of one executed stage, per partition.
struct StageMetrics {
  std::vector<double> partition_seconds;  // one entry per partition task

  double TotalSeconds() const {
    return std::accumulate(partition_seconds.begin(), partition_seconds.end(),
                           0.0);
  }
  double MaxSeconds() const {
    double m = 0;
    for (double s : partition_seconds) m = std::max(m, s);
    return m;
  }
};

/// A partitioned, immutable-after-construction collection.
template <typename T>
class Dataset {
 public:
  /// Splits `items` into `num_partitions` contiguous chunks of near-equal
  /// size (Spark's default partitioning of a collection).
  static Dataset FromVector(std::vector<T> items, size_t num_partitions) {
    assert(num_partitions > 0);
    Dataset ds;
    size_t n = items.size();
    num_partitions = std::max<size_t>(
        1, std::min(num_partitions, std::max<size_t>(n, 1)));
    ds.partitions_.resize(num_partitions);
    size_t base = n / num_partitions;
    size_t extra = n % num_partitions;
    size_t offset = 0;
    for (size_t p = 0; p < num_partitions; ++p) {
      size_t len = base + (p < extra ? 1 : 0);
      auto first = std::make_move_iterator(items.begin() + offset);
      ds.partitions_[p].assign(first, first + len);
      offset += len;
    }
    return ds;
  }

  /// Adopts pre-built partitions unchanged (used when partition boundaries
  /// are semantically meaningful, e.g. Table 8's manual partitioning).
  static Dataset FromPartitions(std::vector<std::vector<T>> partitions) {
    Dataset ds;
    ds.partitions_ = std::move(partitions);
    if (ds.partitions_.empty()) ds.partitions_.emplace_back();
    return ds;
  }

  size_t num_partitions() const { return partitions_.size(); }

  size_t size() const {
    size_t n = 0;
    for (const auto& p : partitions_) n += p.size();
    return n;
  }

  const std::vector<T>& partition(size_t i) const { return partitions_[i]; }

  /// Parallel element-wise transformation; partitioning is preserved.
  /// `metrics`, when provided, receives one wall-clock entry per partition.
  template <typename F>
  auto Map(ThreadPool& pool, F&& fn, StageMetrics* metrics = nullptr) const
      -> Dataset<std::invoke_result_t<F, const T&>> {
    using U = std::invoke_result_t<F, const T&>;
    std::vector<std::vector<U>> out(partitions_.size());
    std::vector<double> seconds(partitions_.size(), 0.0);
    for (size_t p = 0; p < partitions_.size(); ++p) {
      pool.Submit([this, p, &out, &seconds, &fn] {
        jsonsi::Stopwatch watch;
        const auto& in = partitions_[p];
        std::vector<U> result;
        result.reserve(in.size());
        for (const T& item : in) result.push_back(fn(item));
        out[p] = std::move(result);
        seconds[p] = watch.ElapsedSeconds();
      });
    }
    pool.Wait();
    if (metrics) metrics->partition_seconds = std::move(seconds);
    return Dataset<U>::FromPartitions(std::move(out));
  }

  /// Parallel whole-partition transformation (Spark's mapPartitions).
  template <typename F>
  auto MapPartitions(ThreadPool& pool, F&& fn,
                     StageMetrics* metrics = nullptr) const
      -> Dataset<typename std::invoke_result_t<
          F, const std::vector<T>&>::value_type> {
    using Vec = std::invoke_result_t<F, const std::vector<T>&>;
    std::vector<Vec> out(partitions_.size());
    std::vector<double> seconds(partitions_.size(), 0.0);
    for (size_t p = 0; p < partitions_.size(); ++p) {
      pool.Submit([this, p, &out, &seconds, &fn] {
        jsonsi::Stopwatch watch;
        out[p] = fn(partitions_[p]);
        seconds[p] = watch.ElapsedSeconds();
      });
    }
    pool.Wait();
    if (metrics) metrics->partition_seconds = std::move(seconds);
    return Dataset<typename Vec::value_type>::FromPartitions(std::move(out));
  }

  /// Tree reduction with an associative, commutative combiner. Empty
  /// partitions contribute nothing; an entirely empty dataset returns
  /// `identity`. Phase 1 folds each partition on the pool (timed into
  /// `metrics`); phase 2 combines the per-partition results pairwise.
  template <typename F>
  T Reduce(ThreadPool& pool, const T& identity, F&& combine,
           StageMetrics* metrics = nullptr) const {
    std::vector<T> partials(partitions_.size(), identity);
    std::vector<double> seconds(partitions_.size(), 0.0);
    for (size_t p = 0; p < partitions_.size(); ++p) {
      pool.Submit([this, p, &partials, &seconds, &identity, &combine] {
        jsonsi::Stopwatch watch;
        T acc = identity;
        for (const T& item : partitions_[p]) acc = combine(acc, item);
        partials[p] = std::move(acc);
        seconds[p] = watch.ElapsedSeconds();
      });
    }
    pool.Wait();
    if (metrics) metrics->partition_seconds = std::move(seconds);
    // Pairwise tree combine (treeReduce): legal because `combine` is
    // associative; chosen over a left fold to mirror Spark and to keep the
    // critical path logarithmic when partials are expensive to merge. The
    // rounds themselves run on the pool (parallel_reduce.h) with the exact
    // bracketing of the old sequential loop, so results are unchanged.
    return ParallelTreeReduce(pool, std::move(partials), identity, combine);
  }

  /// Parallel predicate filter; partitioning is preserved (partitions may
  /// shrink or empty out, mirroring Spark's filter).
  template <typename P>
  Dataset<T> Filter(ThreadPool& pool, P&& keep) const {
    std::vector<std::vector<T>> out(partitions_.size());
    for (size_t p = 0; p < partitions_.size(); ++p) {
      pool.Submit([this, p, &out, &keep] {
        std::vector<T> kept;
        for (const T& item : partitions_[p]) {
          if (keep(item)) kept.push_back(item);
        }
        out[p] = std::move(kept);
      });
    }
    pool.Wait();
    return Dataset<T>::FromPartitions(std::move(out));
  }

  /// Parallel one-to-many transformation (Spark's flatMap): `fn` returns a
  /// vector of outputs per element; partition boundaries are preserved.
  template <typename F>
  auto FlatMap(ThreadPool& pool, F&& fn) const
      -> Dataset<typename std::invoke_result_t<F, const T&>::value_type> {
    using U = typename std::invoke_result_t<F, const T&>::value_type;
    std::vector<std::vector<U>> out(partitions_.size());
    for (size_t p = 0; p < partitions_.size(); ++p) {
      pool.Submit([this, p, &out, &fn] {
        std::vector<U> produced;
        for (const T& item : partitions_[p]) {
          auto items = fn(item);
          produced.insert(produced.end(),
                          std::make_move_iterator(items.begin()),
                          std::make_move_iterator(items.end()));
        }
        out[p] = std::move(produced);
      });
    }
    pool.Wait();
    return Dataset<U>::FromPartitions(std::move(out));
  }

  /// Gathers all elements into one vector (partition order preserved).
  std::vector<T> Collect() const {
    std::vector<T> out;
    out.reserve(size());
    for (const auto& p : partitions_) out.insert(out.end(), p.begin(), p.end());
    return out;
  }

 private:
  std::vector<std::vector<T>> partitions_;
};

}  // namespace jsonsi::engine

#endif  // JSONSI_ENGINE_DATASET_H_
