#!/bin/sh
# Validates the BENCH_*.json accounting emitted by a bench run: every
# expected file must exist, parse, and carry a non-empty "gauges" object.
# A harness that silently stopped exporting its gauges (telemetry wiring
# dropped, JSI_BENCH_JSON ignored, registry renamed) fails the bench-smoke
# job instead of uploading an empty artifact.
#
# Usage: check_bench_json.sh <dir> <name>...
#   <dir>   directory the harnesses wrote into (JSI_BENCH_JSON)
#   <name>  BENCH_<name>.json basenames expected in <dir>
set -eu

DIR="$1"
shift
[ $# -gt 0 ] || { echo "check_bench_json.sh: no expected names given" >&2; exit 2; }

status=0
for name in "$@"; do
  file="$DIR/BENCH_$name.json"
  if [ ! -s "$file" ]; then
    echo "MISSING $file" >&2
    status=1
    continue
  fi
  if python3 - "$file" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
gauges = doc.get("gauges")
if not isinstance(gauges, dict) or not gauges:
    raise SystemExit(f"{sys.argv[1]}: empty or missing 'gauges'")
EOF
  then
    count=$(python3 -c "import json,sys; print(len(json.load(open(sys.argv[1]))['gauges']))" "$file")
    echo "OK      $file ($count gauges)"
  else
    echo "BAD     $file" >&2
    status=1
  fi
done
exit $status
