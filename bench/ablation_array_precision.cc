// Ablation — array precision vs efficiency (the paper's future work:
// "we want to improve the precision of the inference process for arrays and
// study the relationship between precision and efficiency").
//
// Sweeps Fuser::max_tuple_length over the Twitter dataset (the array-heavy
// workload). L = 0 is the paper's algorithm; larger L preserves positional
// (tuple) array types up to that length. Reported per L:
//   * fused schema size (precision costs nodes),
//   * tuple positions preserved vs starred,
//   * fusion wall-clock (efficiency),
//   * a precision probe: the fraction of order/length-corrupted records the
//     schema correctly REJECTS (starred schemas accept any length/order, so
//     they reject fewer corruptions).

#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "fusion/fuse.h"
#include "types/membership.h"

namespace {

using namespace jsonsi;

size_t CountNodes(const types::Type& t, bool exact_arrays) {
  size_t n = 0;
  std::function<void(const types::Type&)> walk = [&](const types::Type& ty) {
    if (ty.is_array_exact() && exact_arrays) ++n;
    if (ty.is_array_star() && !exact_arrays) ++n;
    switch (ty.node()) {
      case types::TypeNode::kRecord:
        for (const auto& f : ty.fields()) walk(*f.type);
        break;
      case types::TypeNode::kArrayExact:
        for (const auto& e : ty.elements()) walk(*e);
        break;
      case types::TypeNode::kArrayStar:
        walk(*ty.body());
        break;
      case types::TypeNode::kUnion:
        for (const auto& alt : ty.alternatives()) walk(*alt);
        break;
      default:
        break;
    }
  };
  walk(t);
  return n;
}

// Corrupts a record by truncating the first non-empty array found (changes
// length), returning nullptr when the record has none.
json::ValueRef TruncateFirstArray(const json::Value& v, bool* changed) {
  switch (v.kind()) {
    case json::ValueKind::kArray: {
      if (!*changed && v.elements().size() >= 2) {
        *changed = true;
        std::vector<json::ValueRef> cut(v.elements().begin(),
                                        v.elements().end() - 1);
        return json::Value::Array(std::move(cut));
      }
      std::vector<json::ValueRef> elements;
      for (const auto& e : v.elements()) {
        elements.push_back(TruncateFirstArray(*e, changed));
      }
      return json::Value::Array(std::move(elements));
    }
    case json::ValueKind::kRecord: {
      std::vector<json::Field> fields;
      for (const auto& f : v.fields()) {
        fields.push_back({f.key, TruncateFirstArray(*f.value, changed)});
      }
      return json::Value::RecordUnchecked(std::move(fields));
    }
    default:
      return v.is_null()   ? json::Value::Null()
             : v.is_bool() ? json::Value::Bool(v.bool_value())
             : v.is_num()  ? json::Value::Num(v.num_value())
                           : json::Value::Str(v.str_value());
  }
}

}  // namespace

int main() {
  uint64_t n = std::min<uint64_t>(bench::SnapshotSizes().back(), 20000);
  auto gen =
      datagen::MakeGenerator(datagen::DatasetId::kTwitter, bench::BenchSeed());
  auto values = gen->GenerateMany(n);
  std::vector<types::TypeRef> ts;
  ts.reserve(values.size());
  for (const auto& v : values) ts.push_back(inference::InferType(*v));

  std::printf(
      "Ablation: array precision vs efficiency (Twitter, %s records)\n",
      bench::SizeLabel(n).c_str());
  std::printf("%-8s | %9s | %7s %7s | %9s | %12s\n", "L", "fused sz",
              "tuples", "stars", "fuse(s)", "rejects bad");
  std::printf(
      "----------------------------------------------------------------\n");

  for (size_t max_len : {0ul, 1ul, 2ul, 4ul, 8ul}) {
    fusion::FuseOptions opts;
    opts.max_tuple_length = max_len;
    fusion::Fuser fuser(opts);

    Stopwatch watch;
    types::TypeRef schema = types::Type::Empty();
    for (const auto& t : ts) schema = fuser.Fuse(schema, t);
    double seconds = watch.ElapsedSeconds();

    // Precision probe on 500 corrupted records.
    size_t rejected = 0, probes = 0;
    for (size_t i = 0; i < values.size() && probes < 500; ++i) {
      bool changed = false;
      json::ValueRef bad = TruncateFirstArray(*values[i], &changed);
      if (!changed) continue;
      ++probes;
      rejected += !types::Matches(*bad, *schema);
    }

    std::printf("%-8zu | %9zu | %7zu %7zu | %9.2f | %6zu/%zu\n", max_len,
                schema->size(), CountNodes(*schema, true),
                CountNodes(*schema, false), seconds, rejected, probes);
  }
  std::printf(
      "\nReading: L=0 is the paper's operator. Growing L preserves tuple\n"
      "positions (e.g. [lon, lat] pairs, entity index pairs), improving\n"
      "rejection of length-corrupted data at a modest size/time cost —\n"
      "the precision/efficiency relationship Section 7 asks about.\n");
  return 0;
}
