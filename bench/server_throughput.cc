// Server throughput — `jsi serve` under concurrent tenants.
//
// Starts a real InferenceServer on an ephemeral loopback port, then drives
// N tenant threads through the real HTTP client: each creates a session,
// streams its share of a generated JSONL corpus as fixed-size ingest
// batches, reads its schema back, and closes. The printed row is end-to-end
// wall-clock — socket framing, routing, per-session locking, and inference
// — so it measures the serving overhead on top of the core pipeline, not
// the pipeline alone.
//
// Environment knobs (on top of bench_common.h's):
//   JSI_SERVER_SESSIONS  concurrent tenants      (default 8, quick: 2)
//   JSI_SERVER_BATCHES   ingest batches/tenant   (default 16, quick: 4)
//   JSI_SERVER_LINES     records per batch       (default 2000, quick: 200)
//
// With JSI_BENCH_JSON set, the registry flush lands in BENCH_server.json —
// including the live server.* counters (ingest bytes/records, sessions,
// http errors) the daemon itself maintains.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/http.h"
#include "server/server.h"
#include "support/timer.h"

namespace {

std::string MakeBatch(uint64_t tenant, uint64_t lines, uint64_t offset) {
  std::string out;
  out.reserve(lines * 64);
  for (uint64_t i = offset; i < offset + lines; ++i) {
    out += "{\"id\": " + std::to_string(i);
    out += ", \"tenant\": " + std::to_string(tenant);
    out += ", \"name\": \"u" + std::to_string(i % 97) + "\"";
    if (i % 3 == 0) out += ", \"flag\": true";
    if (i % 5 == tenant % 5)
      out += ", \"tags\": [" + std::to_string(i) + ", \"t\"]";
    out += "}\n";
  }
  return out;
}

}  // namespace

int main() {
  using namespace jsonsi;
  bench::BenchJsonScope bench_json("server");

  const uint64_t sessions =
      bench::EnvU64("JSI_SERVER_SESSIONS", bench::BenchQuick() ? 2 : 8);
  const uint64_t batches =
      bench::EnvU64("JSI_SERVER_BATCHES", bench::BenchQuick() ? 4 : 16);
  const uint64_t lines =
      bench::EnvU64("JSI_SERVER_LINES", bench::BenchQuick() ? 200 : 2000);

  server::InferenceServer srv;
  if (Status st = srv.Start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::atomic<uint64_t> total_bytes{0};
  std::atomic<int> failures{0};
  Stopwatch timer;
  std::vector<std::thread> tenants;
  tenants.reserve(sessions);
  for (uint64_t t = 0; t < sessions; ++t) {
    tenants.emplace_back([&, t] {
      server::HttpConnection conn;
      if (!conn.Connect("127.0.0.1", srv.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      auto created = conn.Call("POST", "/v1/sessions", "{}");
      if (!created.ok() || created.value().status != 201) {
        failures.fetch_add(1);
        return;
      }
      const std::string& body = created.value().body;
      size_t pos = body.find("\"session\": \"") + 12;
      const std::string id = body.substr(pos, body.find('"', pos) - pos);
      for (uint64_t b = 0; b < batches; ++b) {
        const std::string batch = MakeBatch(t, lines, b * lines);
        total_bytes.fetch_add(batch.size(), std::memory_order_relaxed);
        auto resp = conn.Call("POST", "/v1/sessions/" + id + "/ingest",
                              batch, "application/x-ndjson");
        if (!resp.ok() || resp.value().status != 200) {
          failures.fetch_add(1);
          return;
        }
      }
      auto schema = conn.Call("GET", "/v1/sessions/" + id + "/schema");
      if (!schema.ok() || schema.value().status != 200) failures.fetch_add(1);
      conn.Call("DELETE", "/v1/sessions/" + id);
    });
  }
  for (auto& t : tenants) t.join();
  const double seconds = timer.ElapsedSeconds();
  Status stopped = srv.Stop();

  if (failures.load() != 0 || !stopped.ok()) {
    std::fprintf(stderr, "server bench: %d tenant failures, stop: %s\n",
                 failures.load(), stopped.ToString().c_str());
    return 1;
  }

  const uint64_t records = sessions * batches * lines;
  const double mb = static_cast<double>(total_bytes.load()) / (1024.0 * 1024.0);
  std::printf("Server throughput: %llu sessions x %llu batches x %llu lines\n",
              static_cast<unsigned long long>(sessions),
              static_cast<unsigned long long>(batches),
              static_cast<unsigned long long>(lines));
  std::printf("%-12s | %12s | %10s | %12s | %10s\n", "wall (s)", "records",
              "MB", "records/s", "MB/s");
  std::printf("-------------------------------------------------------------"
              "-----\n");
  std::printf("%-12.3f | %12llu | %10.2f | %12.0f | %10.2f\n", seconds,
              static_cast<unsigned long long>(records), mb,
              static_cast<double>(records) / seconds, mb / seconds);
  return 0;
}
