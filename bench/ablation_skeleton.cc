// Ablation — completeness vs skeleton schemas (Wang et al. [22]).
//
// Section 1's contrast: "the skeleton may totally miss information about
// paths that can be traversed in some of the JSON objects. In contrast, our
// approach enables the creation of a complete yet succinct schema".
//
// For each dataset: build the complete fused schema and frequency skeletons
// at several support thresholds; report path coverage of the actual record
// paths (ours is 1.0 by construction — also verified here) and the skeleton
// sizes, making the succinctness/completeness trade-off visible.

#include <cstdio>
#include <set>

#include "baseline/skeleton.h"
#include "bench_common.h"
#include "fusion/tree_fuser.h"
#include "stats/paths.h"

int main() {
  using namespace jsonsi;
  uint64_t n = std::min<uint64_t>(bench::SnapshotSizes().back(), 10000);

  std::printf(
      "Ablation: complete fused schema vs frequency skeletons "
      "(%s records per dataset)\n",
      bench::SizeLabel(n).c_str());
  std::printf("%-10s | %9s %9s | %9s %9s | %9s %9s\n", "Dataset", "ours cov",
              "ours sz", "sk1% cov", "sk1% sz", "sk5% cov", "sk5% sz");
  std::printf(
      "-----------------------------------------------------------------"
      "-----\n");

  for (auto id : datagen::AllDatasets()) {
    auto gen = datagen::MakeGenerator(id, bench::BenchSeed());
    auto values = gen->GenerateMany(n);

    fusion::TreeFuser fuser;
    stats::PathCounter counter;
    std::set<std::string> all_paths;
    for (const auto& v : values) {
      fuser.Add(inference::InferType(*v));
      counter.Add(*v);
      for (const auto& p : stats::ValuePaths(*v)) all_paths.insert(p);
    }
    types::TypeRef complete = fuser.Finish();

    auto coverage = [&](const types::TypeRef& schema) {
      return stats::Coverage(all_paths, stats::TypePaths(*schema));
    };
    types::TypeRef sk1 = baseline::PruneRareFields(
        complete, counter, baseline::SkeletonOptions{0.01});
    types::TypeRef sk5 = baseline::PruneRareFields(
        complete, counter, baseline::SkeletonOptions{0.05});

    std::printf("%-10s | %9.4f %9zu | %9.4f %9zu | %9.4f %9zu\n",
                datagen::DatasetName(id), coverage(complete),
                complete->size(), coverage(sk1), sk1->size(), coverage(sk5),
                sk5->size());
  }
  std::printf(
      "\nReading: our schema always covers 100%% of the record paths; the\n"
      "skeletons are smaller but blind to rare structure (exactly the gap\n"
      "Section 1 describes for skeleton-based repositories).\n");
  return 0;
}
