// Table 7 — NYTimes on the 6-node cluster: the under-utilisation pathology.
//
// The paper observed that the naive cluster run exploited only part of the
// cluster: "the HDFS uses only one node to store the entire dataset ... the
// intermediate results ... were split on only two nodes. The overall effect
// is that the computation was performed on two nodes while the remaining
// four nodes were idle."
//
// This harness measures the real per-record compute cost of typing NYTimes
// on this host (on a sample), scales it to the full row, and replays four
// scenarios in the virtual-time cluster simulator:
//
//   A. single machine (Mac mini, 1 node x 2 cores)        — paper's baseline
//   B. cluster, data on ONE HDFS node, locality-only      — the pathology
//   C. cluster, data on one node, remote reads allowed    — network-bound
//   D. cluster, data pre-partitioned across all six nodes — Table 8's fix
//
// Shape to reproduce: B uses 1-2 of 6 nodes and is far slower than D; C
// helps but stays network-bound; D approaches the ideal 6x over B.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "engine/cluster_sim.h"

int main() {
  using namespace jsonsi;
  bench::BenchJsonScope bench_json("table7_cluster");
  uint64_t target = bench::SnapshotSizes().back();
  uint64_t sample = std::min<uint64_t>(target, 50000);

  // Calibrate on a sample, then scale to the target row.
  auto rows = bench::RunStreamingPipeline(datagen::DatasetId::kNYTimes,
                                          {sample}, bench::BenchSeed(),
                                          /*measure_bytes=*/true);
  double scale = static_cast<double>(target) / static_cast<double>(sample);
  double compute =
      (rows[0].infer_seconds + rows[0].fuse_seconds) * scale;
  uint64_t bytes =
      static_cast<uint64_t>(rows[0].serialized_bytes * scale);
  uint64_t schema_bytes = rows[0].fused_size * 24;  // ~bytes per AST node

  std::printf(
      "Table 7: NYTimes (%s records, %s, %.0f CPU-seconds of typing)\n",
      bench::SizeLabel(target).c_str(), HumanBytes(bytes).c_str(), compute);
  std::printf("%-44s | %10s | %10s\n", "Scenario", "virt time", "nodes used");
  std::printf(
      "---------------------------------------------------------------------"
      "--\n");

  engine::ClusterConfig mac;
  mac.num_nodes = 1;
  mac.cores_per_node = 2;
  engine::ClusterConfig cluster;  // 6 x 20 cores, 1 GbE

  struct Scenario {
    const char* name;
    engine::ClusterConfig config;
    std::vector<engine::SimTask> tasks;
    engine::Placement placement;
  };
  const size_t kPartitions = 180;
  std::vector<Scenario> scenarios;
  scenarios.push_back({"A. single machine (2 cores)", mac,
                       engine::MakeUniformTasks(8, compute, bytes, 0,
                                                schema_bytes),
                       engine::Placement::kLocalOnly});
  scenarios.push_back({"B. cluster, HDFS on one node, local tasks", cluster,
                       engine::MakeUniformTasks(kPartitions, compute, bytes, 0,
                                                schema_bytes),
                       engine::Placement::kLocalOnly});
  scenarios.push_back({"C. cluster, HDFS on one node, remote reads", cluster,
                       engine::MakeUniformTasks(kPartitions, compute, bytes, 0,
                                                schema_bytes),
                       engine::Placement::kAnyWithTransfer});
  scenarios.push_back({"D. cluster, data partitioned across nodes", cluster,
                       engine::MakeSpreadTasks(kPartitions, compute, bytes,
                                               cluster.num_nodes,
                                               schema_bytes),
                       engine::Placement::kLocalOnly});

  double time_b = 0, time_d = 0;
  for (const Scenario& s : scenarios) {
    auto result = engine::SimulateJob(s.tasks, s.config, s.placement,
                                      /*reduce_combine_seconds=*/0.02);
    std::printf("%-44s | %9.1fs | %7zu / %zu\n", s.name,
                result.makespan_seconds, result.nodes_used,
                s.config.num_nodes);
    if (s.name[0] == 'B') time_b = result.makespan_seconds;
    if (s.name[0] == 'D') time_d = result.makespan_seconds;
  }
  std::printf(
      "\nShape check (paper): the naive cluster run (B) leaves most nodes\n"
      "idle; partitioning the input (D) restores full parallelism.\n"
      "Speedup D over B: %.1fx (ideal %zux)\n",
      time_b / time_d, cluster.num_nodes);
  return 0;
}
