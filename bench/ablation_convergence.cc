// Ablation — progressive refinement / schema convergence (Section 7's
// exploration idea: "process a subset of a large dataset to get a first
// insight on the structure of the data before deciding whether to refine").
//
// For each dataset: ingest in fixed-size batches and report how many records
// it takes until the schema stays structurally stable for K consecutive
// batches, plus the schema-size discovery curve. Expected shape: GitHub and
// NYTimes converge after a few thousand records (fixed structure), Twitter
// needs more (rare variants keep trickling in), Wikidata effectively never
// converges within the budget (unbounded key space) — quantifying why the
// paper calls it the worst case.

#include <cstdio>

#include "bench_common.h"
#include "core/progressive.h"

int main() {
  using namespace jsonsi;
  const uint64_t batch_size = 200;
  const uint64_t max_records =
      std::min<uint64_t>(bench::SnapshotSizes().back(), 100000);
  const size_t stable_k = 5;

  std::printf(
      "Ablation: schema convergence under progressive refinement\n"
      "(batches of %llu, converged = %zu consecutive unchanged batches,"
      " budget %s records)\n\n",
      static_cast<unsigned long long>(batch_size), stable_k,
      bench::SizeLabel(max_records).c_str());
  std::printf("%-10s | %14s | %12s | %10s\n", "Dataset", "converged at",
              "final size", "changes");
  std::printf(
      "----------------------------------------------------------------\n");

  for (auto id : datagen::AllDatasets()) {
    auto gen = datagen::MakeGenerator(id, bench::BenchSeed());
    core::ProgressiveOptions opts;
    opts.stable_batches_to_converge = stable_k;
    core::ProgressiveInferencer prog(opts);
    uint64_t offset = 0;
    uint64_t converged_at = 0;
    size_t changes = 0;
    while (offset < max_records) {
      core::BatchReport report =
          prog.AddBatch(gen->GenerateMany(batch_size, offset));
      offset += batch_size;
      changes += report.schema_changed ? 1 : 0;
      if (prog.converged()) {
        converged_at = report.records_total;
        break;
      }
    }
    char when[32];
    if (converged_at) {
      std::snprintf(when, sizeof(when), "%s records",
                    bench::SizeLabel(converged_at).c_str());
    } else {
      std::snprintf(when, sizeof(when), "> %s (no)",
                    bench::SizeLabel(max_records).c_str());
    }
    std::printf("%-10s | %14s | %12zu | %10zu\n", datagen::DatasetName(id),
                when, prog.Snapshot().type->size(), changes);
  }
  std::printf(
      "\nReading: a converged run means a small prefix already yields the\n"
      "final schema (explore cheaply, refine only if needed); Wikidata's\n"
      "key-as-data design keeps discovering new structure — the same\n"
      "pathology Tables 4/6 show from the size/time angle.\n");
  return 0;
}
