// Micro-benchmarks (google-benchmark) for the DOM-free direct inference
// kernel: per-record DirectInferType vs Parse+InferType over the four
// datagen corpora (the ISSUE's >= 1.5x records/s acceptance gate), the
// tokenizer-only validation floor, and the end-to-end InferFromJsonLines
// A/B (direct vs --no-direct, serial and chunk-parallel). Every benchmark
// reports MB/s via SetBytesProcessed and records/s via SetItemsProcessed
// so the two paths read off one table.
//
// The SIMD A/B rows (Tokenize/kernel/*, Infer/direct/kernel/*) run the same
// loops with the structural-index kernel pinned, one benchmark per ISA the
// host actually has; the scalar row is the SWAR floor the vector speedup is
// measured against. Corpora are page-warmed before timing so the first row
// to touch fresh memory does not absorb the soft faults for everyone else.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/schema_inferencer.h"
#include "inference/direct_infer.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "json/serializer.h"
#include "json/simd/kernel.h"
#include "json/tokenizer.h"

namespace {

using namespace jsonsi;

constexpr size_t kRecordsPerDataset = 512;

// Corpus indices 0..3 are the datagen datasets; 4 is a synthetic
// wide-strings corpus (long plain string fields, the structural scan's
// best case) used only by the per-kernel rows.
constexpr int kNumCorpora = 5;
constexpr int kWideStrings = 4;

// One serialized corpus per dataset, generated once per process.
struct Corpus {
  std::vector<std::string> lines;
  std::string jsonl;  // the same lines joined with '\n'
  int64_t bytes = 0;
};

const Corpus& GetCorpus(int index) {
  static Corpus corpora[kNumCorpora];
  Corpus& c = corpora[index];
  if (c.lines.empty()) {
    std::vector<json::ValueRef> values;
    if (index == kWideStrings) {
      // ~1 KiB records, four ~200-byte escape-free text fields: string
      // scanning dominates, so the rows isolate the bulk string-skip path.
      for (size_t r = 0; r < kRecordsPerDataset; ++r) {
        std::string line = "{";
        for (int f = 0; f < 4; ++f) {
          line += "\"field";
          line += static_cast<char>('0' + f);
          line += "\":\"";
          line.append(200 + ((r + static_cast<size_t>(f) * 53) % 48),
                      static_cast<char>('a' + (r + static_cast<size_t>(f)) %
                                                  26));
          line += f == 3 ? "\"" : "\",";
        }
        line += ",\"id\":";
        line += std::to_string(r);
        line += "}";
        c.lines.push_back(std::move(line));
      }
    } else {
      values = datagen::MakeGenerator(static_cast<datagen::DatasetId>(index),
                                      bench::BenchSeed())
                   ->GenerateMany(kRecordsPerDataset);
      for (const auto& v : values) c.lines.push_back(json::ToJson(v));
    }
    for (const auto& line : c.lines) {
      c.bytes += static_cast<int64_t>(line.size());
      c.jsonl += line;
      c.jsonl += '\n';
    }
    benchmark::DoNotOptimize(bench::WarmPages(c.jsonl));
    for (const auto& line : c.lines) {
      benchmark::DoNotOptimize(bench::WarmPages(line));
    }
  }
  return c;
}

int Dataset(const benchmark::State& state) {
  return static_cast<int>(state.range(0));
}

// Publishes one per-kernel row's throughput as a gauge so the
// BENCH_direct_infer.json accounting carries the SIMD A/B table itself
// (not just byte counters) — e.g. bench.simd.tokenize.avx2.dataset4_mbps.
// Gauges are set-last-wins, so re-runs overwrite rather than accumulate.
void PublishKernelRow(const char* row, json::simd::Kernel k, int dataset,
                      int64_t bytes, double seconds) {
  if (!telemetry::Enabled() || seconds <= 0) return;
  std::string name = std::string("bench.simd.") + row + "." +
                     json::simd::KernelName(k) + ".dataset" +
                     std::to_string(dataset) + "_mbps";
  telemetry::MetricsRegistry::Global().GetGauge(name).Set(
      static_cast<int64_t>(static_cast<double>(bytes) / seconds / 1e6));
}

// Baseline: the composed pipeline — materialize a json::Value, then type it.
void BM_DomInfer(benchmark::State& state) {
  const Corpus& corpus = GetCorpus(Dataset(state));
  size_t i = 0;
  for (auto _ : state) {
    auto value = json::Parse(corpus.lines[i++ % corpus.lines.size()]);
    auto type = inference::InferType(*value.value());
    benchmark::DoNotOptimize(type);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * corpus.bytes /
                          static_cast<int64_t>(corpus.lines.size()));
}
BENCHMARK(BM_DomInfer)->DenseRange(0, 3)->Name("Infer/dom/dataset");

// The kernel under test: one fused pass, no DOM.
void BM_DirectInfer(benchmark::State& state) {
  const Corpus& corpus = GetCorpus(Dataset(state));
  size_t i = 0;
  for (auto _ : state) {
    auto type =
        inference::DirectInferType(corpus.lines[i++ % corpus.lines.size()]);
    benchmark::DoNotOptimize(type);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * corpus.bytes /
                          static_cast<int64_t>(corpus.lines.size()));
}
BENCHMARK(BM_DirectInfer)->DenseRange(0, 3)->Name("Infer/direct/dataset");

// Floor: the raw token stream with no type construction at all — how much
// of the direct path's cost is lexing vs building/interning types.
void BM_TokenizeOnly(benchmark::State& state) {
  const Corpus& corpus = GetCorpus(Dataset(state));
  size_t i = 0;
  for (auto _ : state) {
    json::Tokenizer tok(corpus.lines[i++ % corpus.lines.size()]);
    json::Token t;
    do {
      Status st = tok.Next(&t);
      benchmark::DoNotOptimize(st);
    } while (t.kind != json::TokenKind::kEnd);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * corpus.bytes /
                          static_cast<int64_t>(corpus.lines.size()));
}
BENCHMARK(BM_TokenizeOnly)->DenseRange(0, 3)->Name("Tokenize/dataset");

// Per-kernel A/B rows: the tokenize-only and direct-infer loops with the
// structural-index kernel pinned. The scalar row never builds an index
// (the SWAR cursor loops ARE the scalar kernel), so it is the floor the
// ISSUE's >= 2x tokenize gate measures the vector ISAs against. Each row
// labels itself with the kernel name and exports the kernel enum as a
// counter, so BENCH_direct_infer.json rows stay comparable across hosts
// with different ISAs.
void RunTokenizeKernel(benchmark::State& state, json::simd::Kernel k) {
  const Corpus& corpus = GetCorpus(Dataset(state));
  const json::simd::Kernel saved = json::simd::ActiveKernel();
  json::simd::SetKernel(k);
  size_t i = 0;
  Stopwatch watch;
  for (auto _ : state) {
    json::Tokenizer tok(corpus.lines[i++ % corpus.lines.size()]);
    json::Token t;
    do {
      Status st = tok.Next(&t);
      benchmark::DoNotOptimize(st);
    } while (t.kind != json::TokenKind::kEnd);
  }
  const double seconds = watch.ElapsedSeconds();
  json::simd::SetKernel(saved);
  state.SetItemsProcessed(state.iterations());
  const int64_t bytes = state.iterations() * corpus.bytes /
                        static_cast<int64_t>(corpus.lines.size());
  state.SetBytesProcessed(bytes);
  state.SetLabel(json::simd::KernelName(k));
  state.counters["kernel"] = static_cast<double>(static_cast<int>(k));
  PublishKernelRow("tokenize", k, Dataset(state), bytes, seconds);
}

void RunDirectInferKernel(benchmark::State& state, json::simd::Kernel k) {
  const Corpus& corpus = GetCorpus(Dataset(state));
  const json::simd::Kernel saved = json::simd::ActiveKernel();
  json::simd::SetKernel(k);
  size_t i = 0;
  Stopwatch watch;
  for (auto _ : state) {
    auto type =
        inference::DirectInferType(corpus.lines[i++ % corpus.lines.size()]);
    benchmark::DoNotOptimize(type);
  }
  const double seconds = watch.ElapsedSeconds();
  json::simd::SetKernel(saved);
  state.SetItemsProcessed(state.iterations());
  const int64_t bytes = state.iterations() * corpus.bytes /
                        static_cast<int64_t>(corpus.lines.size());
  state.SetBytesProcessed(bytes);
  state.SetLabel(json::simd::KernelName(k));
  state.counters["kernel"] = static_cast<double>(static_cast<int>(k));
  PublishKernelRow("infer_direct", k, Dataset(state), bytes, seconds);
}

// Stage 1 in isolation: structural-index build throughput over the whole
// corpus buffer, no tokenization. This is the raw classify+carry speed the
// per-ISA table in docs/performance.md quotes.
void RunIndexBuildKernel(benchmark::State& state, json::simd::Kernel k) {
  const Corpus& corpus = GetCorpus(Dataset(state));
  json::simd::StructuralIndex index;
  Stopwatch watch;
  for (auto _ : state) {
    index.Build(corpus.jsonl, k);
    benchmark::DoNotOptimize(index.StructuralCount());
  }
  const double seconds = watch.ElapsedSeconds();
  const int64_t bytes =
      state.iterations() * static_cast<int64_t>(corpus.jsonl.size());
  state.SetBytesProcessed(bytes);
  state.SetLabel(json::simd::KernelName(k));
  state.counters["kernel"] = static_cast<double>(static_cast<int>(k));
  PublishKernelRow("index_build", k, Dataset(state), bytes, seconds);
}

void RegisterKernelBenchmarks() {
  for (json::simd::Kernel k : json::simd::AvailableKernels()) {
    const std::string name = json::simd::KernelName(k);
    benchmark::RegisterBenchmark(
        ("Tokenize/kernel:" + name + "/dataset").c_str(),
        [k](benchmark::State& state) { RunTokenizeKernel(state, k); })
        ->DenseRange(0, kNumCorpora - 1);
    benchmark::RegisterBenchmark(
        ("Infer/direct/kernel:" + name + "/dataset").c_str(),
        [k](benchmark::State& state) { RunDirectInferKernel(state, k); })
        ->DenseRange(0, kNumCorpora - 1);
    benchmark::RegisterBenchmark(
        ("IndexBuild/kernel:" + name + "/dataset").c_str(),
        [k](benchmark::State& state) { RunIndexBuildKernel(state, k); })
        ->DenseRange(0, kNumCorpora - 1);
  }
}

// End-to-end A/B: the whole InferFromJsonLines pipeline, direct vs DOM.
// range(0) = dataset, range(1) = threads (1 = serial path).
void BM_EndToEnd(benchmark::State& state, bool direct) {
  const Corpus& corpus = GetCorpus(Dataset(state));
  core::InferenceOptions options;
  options.direct_infer = direct;
  options.num_threads = static_cast<size_t>(state.range(1));
  options.parallel_ingest_min_bytes = 0;
  core::SchemaInferencer inferencer(options);
  for (auto _ : state) {
    auto schema = inferencer.InferFromJsonLines(corpus.jsonl);
    benchmark::DoNotOptimize(schema);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.lines.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.jsonl.size()));
}
void BM_EndToEndDirect(benchmark::State& state) { BM_EndToEnd(state, true); }
void BM_EndToEndDom(benchmark::State& state) { BM_EndToEnd(state, false); }
BENCHMARK(BM_EndToEndDirect)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 4}})
    ->Name("E2E/direct/dataset/threads");
BENCHMARK(BM_EndToEndDom)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 4}})
    ->Name("E2E/dom/dataset/threads");

}  // namespace

int main(int argc, char** argv) {
  // BenchJsonScope turns telemetry on under JSI_BENCH_JSON and flushes the
  // registry (including the infer.direct.* counters the benchmarks drive)
  // to BENCH_direct_infer.json on exit.
  jsonsi::bench::BenchJsonScope scope("direct_infer");
  jsonsi::bench::ApplyQuickArgs(&argc, &argv);  // JSI_BENCH_QUICK smoke mode
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RegisterKernelBenchmarks();  // one Tokenize + Infer row per available ISA
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
