// Micro-benchmarks (google-benchmark) for the DOM-free direct inference
// kernel: per-record DirectInferType vs Parse+InferType over the four
// datagen corpora (the ISSUE's >= 1.5x records/s acceptance gate), the
// tokenizer-only validation floor, and the end-to-end InferFromJsonLines
// A/B (direct vs --no-direct, serial and chunk-parallel). Every benchmark
// reports MB/s via SetBytesProcessed and records/s via SetItemsProcessed
// so the two paths read off one table.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/schema_inferencer.h"
#include "inference/direct_infer.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "json/serializer.h"
#include "json/tokenizer.h"

namespace {

using namespace jsonsi;

constexpr size_t kRecordsPerDataset = 512;

// One serialized corpus per dataset, generated once per process.
struct Corpus {
  std::vector<std::string> lines;
  std::string jsonl;  // the same lines joined with '\n'
  int64_t bytes = 0;
};

const Corpus& GetCorpus(datagen::DatasetId id) {
  static Corpus corpora[4];
  Corpus& c = corpora[static_cast<int>(id)];
  if (c.lines.empty()) {
    auto values =
        datagen::MakeGenerator(id, bench::BenchSeed())
            ->GenerateMany(kRecordsPerDataset);
    for (const auto& v : values) {
      c.lines.push_back(json::ToJson(v));
      c.bytes += static_cast<int64_t>(c.lines.back().size());
      c.jsonl += c.lines.back();
      c.jsonl += '\n';
    }
  }
  return c;
}

datagen::DatasetId Dataset(const benchmark::State& state) {
  return static_cast<datagen::DatasetId>(state.range(0));
}

// Baseline: the composed pipeline — materialize a json::Value, then type it.
void BM_DomInfer(benchmark::State& state) {
  const Corpus& corpus = GetCorpus(Dataset(state));
  size_t i = 0;
  for (auto _ : state) {
    auto value = json::Parse(corpus.lines[i++ % corpus.lines.size()]);
    auto type = inference::InferType(*value.value());
    benchmark::DoNotOptimize(type);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * corpus.bytes /
                          static_cast<int64_t>(corpus.lines.size()));
}
BENCHMARK(BM_DomInfer)->DenseRange(0, 3)->Name("Infer/dom/dataset");

// The kernel under test: one fused pass, no DOM.
void BM_DirectInfer(benchmark::State& state) {
  const Corpus& corpus = GetCorpus(Dataset(state));
  size_t i = 0;
  for (auto _ : state) {
    auto type =
        inference::DirectInferType(corpus.lines[i++ % corpus.lines.size()]);
    benchmark::DoNotOptimize(type);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * corpus.bytes /
                          static_cast<int64_t>(corpus.lines.size()));
}
BENCHMARK(BM_DirectInfer)->DenseRange(0, 3)->Name("Infer/direct/dataset");

// Floor: the raw token stream with no type construction at all — how much
// of the direct path's cost is lexing vs building/interning types.
void BM_TokenizeOnly(benchmark::State& state) {
  const Corpus& corpus = GetCorpus(Dataset(state));
  size_t i = 0;
  for (auto _ : state) {
    json::Tokenizer tok(corpus.lines[i++ % corpus.lines.size()]);
    json::Token t;
    do {
      Status st = tok.Next(&t);
      benchmark::DoNotOptimize(st);
    } while (t.kind != json::TokenKind::kEnd);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * corpus.bytes /
                          static_cast<int64_t>(corpus.lines.size()));
}
BENCHMARK(BM_TokenizeOnly)->DenseRange(0, 3)->Name("Tokenize/dataset");

// End-to-end A/B: the whole InferFromJsonLines pipeline, direct vs DOM.
// range(0) = dataset, range(1) = threads (1 = serial path).
void BM_EndToEnd(benchmark::State& state, bool direct) {
  const Corpus& corpus = GetCorpus(Dataset(state));
  core::InferenceOptions options;
  options.direct_infer = direct;
  options.num_threads = static_cast<size_t>(state.range(1));
  options.parallel_ingest_min_bytes = 0;
  core::SchemaInferencer inferencer(options);
  for (auto _ : state) {
    auto schema = inferencer.InferFromJsonLines(corpus.jsonl);
    benchmark::DoNotOptimize(schema);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.lines.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.jsonl.size()));
}
void BM_EndToEndDirect(benchmark::State& state) { BM_EndToEnd(state, true); }
void BM_EndToEndDom(benchmark::State& state) { BM_EndToEnd(state, false); }
BENCHMARK(BM_EndToEndDirect)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 4}})
    ->Name("E2E/direct/dataset/threads");
BENCHMARK(BM_EndToEndDom)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 4}})
    ->Name("E2E/dom/dataset/threads");

}  // namespace

int main(int argc, char** argv) {
  // BenchJsonScope turns telemetry on under JSI_BENCH_JSON and flushes the
  // registry (including the infer.direct.* counters the benchmarks drive)
  // to BENCH_direct_infer.json on exit.
  jsonsi::bench::BenchJsonScope scope("direct_infer");
  jsonsi::bench::ApplyQuickArgs(&argc, &argv);  // JSI_BENCH_QUICK smoke mode
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
