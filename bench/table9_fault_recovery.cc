// Table 9 — fault injection and recovery in the virtual cluster.
//
// The paper's cluster experiments (Tables 6-8) assume every task finishes on
// its first attempt. Real clusters do not cooperate: nodes crash, disks
// straggle, partitions arrive corrupt. This harness injects those faults
// into the virtual-time simulator and measures the price of recovery under
// the policies a production scheduler would use (retry with backoff,
// speculative execution, blacklisting).
//
// The robustness story is an algebraic one. Because schema fusion is
// associative and commutative (Theorems 5.4/5.5), a failed map task can be
// re-executed from its input partition and its partial schema re-fused in
// whatever order recovery produces — the result is the failure-free schema,
// always. And because partial schemas are tiny (early fusion), partitions
// can be made fine-grained at negligible shuffle cost, which bounds the work
// a crash destroys. Part B quantifies exactly that: same job, same crash,
// finer partitions -> less lost work and a smaller recovery overhead.
//
// All inputs are fixed constants (no measurement, no wall clock), so the
// printed table is bit-deterministic run over run.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/checkpoint.h"
#include "core/streaming_inferencer.h"
#include "engine/cluster_sim.h"
#include "support/timer.h"

int main() {
  using namespace jsonsi::engine;
  jsonsi::bench::BenchJsonScope bench_json("table9_fault_recovery");

  // A Table-7-scale job: ~600 CPU-seconds of typing over ~20 GB, spread
  // across the 6-node cluster, partial schemas of a few KB.
  const double kComputeSeconds = 600.0;
  const double kBytes = 20e9;
  const uint64_t kSchemaBytes = 4096;
  ClusterConfig cluster;  // 6 x 20 cores, 1 GbE

  std::printf(
      "Table 9: fault injection and recovery (virtual cluster, %zu nodes x "
      "%zu cores)\n\n",
      cluster.num_nodes, cluster.cores_per_node);

  // ---- Part A: one job, increasingly hostile schedules. ----
  const size_t kPartitions = 180;
  auto tasks = MakeSpreadTasks(kPartitions, kComputeSeconds,
                               static_cast<uint64_t>(kBytes),
                               cluster.num_nodes, kSchemaBytes);

  struct Scenario {
    const char* name;
    FaultSchedule faults;
    RecoveryPolicy policy;
  };
  std::vector<Scenario> scenarios;

  scenarios.push_back({"no faults (baseline)", {}, {}});

  {
    Scenario s{"node crash at t=2s, back after 5s", {}, {}};
    s.faults.crashes = {NodeCrash{1, 2.0, 5.0}};
    scenarios.push_back(s);
  }
  {
    Scenario s{"node lost permanently at t=2s", {}, {}};
    s.faults.crashes = {NodeCrash{1, 2.0}};
    scenarios.push_back(s);
  }
  {
    Scenario s{"straggler node (4x slower)", {}, {}};
    s.faults.straggler_factor = {4.0};
    scenarios.push_back(s);
  }
  {
    Scenario s{"straggler + speculative execution", {}, {}};
    s.faults.straggler_factor = {4.0};
    s.policy.speculation_threshold = 1.5;
    scenarios.push_back(s);
  }
  {
    Scenario s{"8 corrupt partitions (1 bad attempt)", {}, {}};
    s.faults.corrupt_tasks = {3, 23, 47, 71, 95, 119, 143, 167};
    scenarios.push_back(s);
  }
  {
    Scenario s{"crash + straggler + corruption, blacklisting", {}, {}};
    s.faults.crashes = {NodeCrash{2, 1.0, 0.2}, NodeCrash{2, 3.0, 0.2}};
    s.faults.straggler_factor = {1.0, 1.0, 1.0, 1.0, 2.5};
    s.faults.corrupt_tasks = {10, 20, 30};
    s.policy.speculation_threshold = 1.5;
    s.policy.blacklist_after_failures = 25;
    scenarios.push_back(s);
  }

  std::printf("A. recovery policies under injected faults (%zu partitions)\n",
              kPartitions);
  std::printf("%-42s | %8s %8s | %5s %5s %5s | %8s %8s\n", "Schedule",
              "virt", "overhd", "fail", "retry", "spec", "wasted", "done");
  std::printf(
      "--------------------------------------------------------------------"
      "---------------------------\n");
  for (const Scenario& s : scenarios) {
    auto r = SimulateJob(tasks, cluster, Placement::kLocalOnly, 0.02,
                         s.faults, s.policy);
    std::printf("%-42s | %7.2fs %7.2fs | %5zu %5zu %5zu | %7.1fs %8s\n",
                s.name, r.makespan_seconds, r.recovery_overhead_seconds,
                r.attempt_failures, r.retries, r.speculative_launches,
                r.wasted_seconds, r.completed ? "yes" : "NO");
  }

  // ---- Part B: recovery cost vs partition granularity. ----
  //
  // Early fusion means a task's output is a partial schema of a few KB
  // regardless of how much input it covers, so nothing stops partitions from
  // being fine-grained. Fine partitions bound lost work: a crash destroys at
  // most (cores x task length) of compute.
  std::printf(
      "\nB. same crash, finer partitions (early fusion makes re-execution "
      "units small)\n");
  std::printf("%-12s | %10s | %8s %8s %8s\n", "partitions", "task len",
              "virt", "wasted", "overhd");
  std::printf("------------------------------------------------------\n");
  FaultSchedule crash;
  crash.crashes = {NodeCrash{0, 2.0, 2.0}, NodeCrash{4, 4.0, 2.0}};
  double coarse_overhead = 0, fine_overhead = 0;
  for (size_t parts : {6u, 30u, 180u, 720u, 2880u}) {
    auto t = MakeSpreadTasks(parts, kComputeSeconds,
                             static_cast<uint64_t>(kBytes), cluster.num_nodes,
                             kSchemaBytes);
    auto r = SimulateJob(t, cluster, Placement::kLocalOnly, 0.02, crash,
                         RecoveryPolicy{});
    std::printf("%-12zu | %9.2fs | %7.2fs %7.2fs %7.2fs\n", parts,
                kComputeSeconds / static_cast<double>(parts),
                r.makespan_seconds, r.wasted_seconds,
                r.recovery_overhead_seconds);
    if (parts == 6u) coarse_overhead = r.recovery_overhead_seconds;
    if (parts == 2880u) fine_overhead = r.recovery_overhead_seconds;
  }
  std::printf(
      "\nShape check: recovery overhead shrinks as partitions get finer\n"
      "(%.2fs at 6 partitions -> %.2fs at 2880), because a lost attempt\n"
      "forfeits at most one small partition's scan and its re-fused partial\n"
      "schema costs almost nothing to reship.\n",
      coarse_overhead, fine_overhead);

  // ---- Part C: single-node checkpoint overhead. ----
  //
  // The cluster recovers by re-executing tasks; a single streaming process
  // recovers by resuming from its last checkpoint. The knob is the same
  // trade-off in miniature: checkpoint more often -> less work lost to a
  // crash, but every save serializes the full inferencer state. This part
  // measures what the durability actually costs, end to end through
  // SaveCheckpoint (serialize + checksum + temp file + atomic rename).
  {
    using jsonsi::core::SaveCheckpoint;
    using jsonsi::core::StreamingInferencer;
    namespace bench = jsonsi::bench;

    const uint64_t records =
        bench::EnvU64("JSI_MAX_RECORDS", bench::BenchQuick() ? 10000 : 200000);
    namespace datagen = jsonsi::datagen;
    auto gen =
        datagen::MakeGenerator(datagen::DatasetId::kGitHub, bench::BenchSeed());
    std::string jsonl;
    for (uint64_t i = 0; i < records; ++i) {
      jsonl += jsonsi::json::ToJson(gen->Generate(i));
      jsonl += '\n';
    }
    const std::string path =
        (std::filesystem::temp_directory_path() / "jsi_bench_checkpoint.txt")
            .string();

    std::printf(
        "\nC. checkpoint overhead vs interval (%llu github records, "
        "single stream)\n",
        static_cast<unsigned long long>(records));
    std::printf("%-14s | %8s | %10s | %10s | %8s\n", "every", "saves",
                "wall", "records/s", "ovrhd%");
    std::printf("--------------------------------------------------------\n");

    double baseline_seconds = 0;
    for (uint64_t every : {0ull, 100000ull, 10000ull, 1000ull}) {
      if (every > records && every != 0) continue;
      StreamingInferencer stream;
      uint64_t saves = 0;
      jsonsi::Stopwatch wall;
      size_t pos = 0, since = 0;
      while (pos < jsonl.size()) {
        size_t end = jsonl.find('\n', pos);
        end = end == std::string::npos ? jsonl.size() : end + 1;
        jsonsi::Status st =
            stream.AddJsonLines(std::string_view(jsonl).substr(pos, end - pos));
        if (!st.ok()) {
          std::fprintf(stderr, "bench: ingest failed: %s\n",
                       st.ToString().c_str());
          return 1;
        }
        pos = end;
        if (every != 0 && ++since >= every) {
          since = 0;
          jsonsi::Status saved = SaveCheckpoint(stream, path);
          if (!saved.ok()) {
            std::fprintf(stderr, "bench: checkpoint failed: %s\n",
                         saved.ToString().c_str());
            return 1;
          }
          ++saves;
        }
      }
      const double seconds = wall.ElapsedSeconds();
      if (every == 0) baseline_seconds = seconds;
      const double rate =
          seconds > 0 ? static_cast<double>(records) / seconds : 0;
      const double overhead_pct =
          baseline_seconds > 0
              ? (seconds / baseline_seconds - 1.0) * 100.0
              : 0.0;
      std::printf("%-14s | %8llu | %9.3fs | %10.0f | %7.1f%%\n",
                  every == 0 ? "never" : bench::SizeLabel(every).c_str(),
                  static_cast<unsigned long long>(saves), seconds, rate,
                  overhead_pct);
      if (jsonsi::telemetry::Enabled()) {
        auto& registry = jsonsi::telemetry::MetricsRegistry::Global();
        const std::string prefix =
            "bench.checkpoint.every_" +
            (every == 0 ? std::string("never") : std::to_string(every));
        registry.GetGauge(prefix + ".records_per_s")
            .Set(static_cast<int64_t>(rate));
        registry.GetGauge(prefix + ".saves")
            .Set(static_cast<int64_t>(saves));
      }
    }
    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::filesystem::remove(path + ".tmp", ec);
    std::printf(
        "\nShape check: overhead stays flat until the interval drops below\n"
        "a few thousand records, because a checkpoint's size tracks the\n"
        "schema (early fusion keeps it tiny), not the input consumed.\n");
  }
  return 0;
}
