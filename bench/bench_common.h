// Shared machinery for the experiment harnesses (Tables 1-8).
//
// The 1M-record rows are produced STREAMING: records are generated, typed,
// folded into a TreeFuser, and dropped — nothing scales with |D| except the
// distinct-type hash set (8 bytes per distinct type). Sub-dataset rows
// (1K/10K/100K) are snapshots taken during the same single pass, so each
// dataset is generated exactly once per table.
//
// Environment knobs:
//   JSI_MAX_RECORDS  caps the largest row (default 1,000,000). Useful for
//                    quick smoke runs: JSI_MAX_RECORDS=10000.
//   JSI_SEED         generator seed (default 42), for reproducibility sweeps.
//   JSI_BENCH_JSON   when set, harnesses turn telemetry on and write their
//                    per-phase accounting as BENCH_<name>.json into the
//                    named directory ("1" means the current directory) —
//                    the machine-readable companion of the printed tables.
//   JSI_BENCH_QUICK  smoke mode for CI: caps SnapshotSizes() at 10K records
//                    (unless JSI_MAX_RECORDS overrides) and makes
//                    google-benchmark mains run each benchmark for ~0.01s
//                    (ApplyQuickArgs). Numbers are meaningless for
//                    comparison — the point is that every harness executes.

#ifndef JSONSI_BENCH_BENCH_COMMON_H_
#define JSONSI_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "datagen/generator.h"
#include "fusion/fuse_cache.h"
#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "types/interner.h"
#include "json/serializer.h"
#include "support/string_util.h"
#include "support/timer.h"
#include "telemetry/telemetry.h"
#include "types/type.h"

namespace jsonsi::bench {

inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtoull(v, nullptr, 10) : fallback;
}

/// True when JSI_BENCH_QUICK asks for a smoke run (any value but "" / "0").
inline bool BenchQuick() {
  const char* v = std::getenv("JSI_BENCH_QUICK");
  return v && *v && std::strcmp(v, "0") != 0;
}

/// Rewrites (argc, argv) before benchmark::Initialize when quick mode is
/// on: injects --benchmark_min_time=0.01 unless the command line already
/// sets one. Call once at the top of a google-benchmark main; storage is
/// static, so the pointers stay valid for the process lifetime.
inline void ApplyQuickArgs(int* argc, char*** argv) {
  if (!BenchQuick()) return;
  for (int i = 1; i < *argc; ++i) {
    if (std::strstr((*argv)[i], "--benchmark_min_time") != nullptr) return;
  }
  static std::vector<char*> args(*argv, *argv + *argc);
  static char flag[] = "--benchmark_min_time=0.01";
  args.push_back(flag);
  args.push_back(nullptr);
  *argv = args.data();
  *argc = static_cast<int>(args.size()) - 1;
}

/// The paper's sub-dataset sizes (1K/10K/100K/1M), capped by JSI_MAX_RECORDS
/// (default 1M, or 10K under JSI_BENCH_QUICK).
inline std::vector<uint64_t> SnapshotSizes() {
  uint64_t cap = EnvU64("JSI_MAX_RECORDS", BenchQuick() ? 10000 : 1000000);
  std::vector<uint64_t> sizes;
  for (uint64_t s : {1000ull, 10000ull, 100000ull, 1000000ull}) {
    if (s <= cap) sizes.push_back(s);
  }
  if (sizes.empty() || sizes.back() != cap) sizes.push_back(cap);
  return sizes;
}

inline uint64_t BenchSeed() { return EnvU64("JSI_SEED", 42); }

/// Touches every 4 KiB page of `data` (plus the last byte) and returns a
/// byte sum the caller should feed to DoNotOptimize. Run this over a
/// freshly generated corpus BEFORE the timed region: otherwise the first
/// benchmark to scan it absorbs all the soft page faults and its MB/s row
/// is not comparable to later rows over the same bytes (which matters once
/// rows differ only by SIMD kernel).
inline uint64_t WarmPages(std::string_view data) {
  uint64_t sum = 0;
  for (size_t i = 0; i < data.size(); i += 4096) {
    sum += static_cast<unsigned char>(data[i]);
  }
  if (!data.empty()) sum += static_cast<unsigned char>(data.back());
  return sum;
}

/// RAII for the JSI_BENCH_JSON knob: the constructor enables telemetry when
/// the env var is set, the destructor snapshots the metrics registry into
/// <dir>/BENCH_<name>.json. Instantiate once at the top of a harness main;
/// a no-op when the knob is unset.
class BenchJsonScope {
 public:
  explicit BenchJsonScope(const std::string& name) : name_(name) {
    const char* dir = std::getenv("JSI_BENCH_JSON");
    if (!dir || !*dir) return;
    dir_ = std::strcmp(dir, "1") == 0 ? "." : dir;
    telemetry::SetEnabled(true);
  }

  ~BenchJsonScope() {
    if (dir_.empty()) return;
    std::string path = dir_ + "/BENCH_" + name_ + ".json";
    telemetry::FileSink sink(path, /*trace_path=*/"");
    Status st = telemetry::Flush(sink);
    if (!st.ok()) {
      std::fprintf(stderr, "bench: telemetry write failed: %s\n",
                   st.ToString().c_str());
    } else {
      std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
    }
  }

  BenchJsonScope(const BenchJsonScope&) = delete;
  BenchJsonScope& operator=(const BenchJsonScope&) = delete;

 private:
  std::string name_;
  std::string dir_;
};

/// One row of Tables 2-5 plus the timing/size info other tables reuse.
struct SnapshotRow {
  uint64_t records = 0;
  uint64_t distinct_types = 0;
  size_t min_size = 0;
  size_t max_size = 0;
  double avg_size = 0;
  size_t fused_size = 0;
  types::TypeRef fused;
  uint64_t serialized_bytes = 0;  // compact JSON-Lines size of the prefix
  double gen_seconds = 0;
  double infer_seconds = 0;  // Map phase, single-thread
  double fuse_seconds = 0;   // Reduce phase (tree order), single-thread
};

/// Publishes one pipeline run's final accounting under bench.<dataset>.*.
/// Registry counters are additive, so a binary that runs several datasets
/// (Tables 1 and 6) gets one metric family per dataset, not a blend.
inline void PublishBenchTelemetry(datagen::DatasetId id,
                                  const SnapshotRow& last) {
  if (!telemetry::Enabled()) return;
  auto& registry = telemetry::MetricsRegistry::Global();
  const std::string prefix = std::string("bench.") + datagen::DatasetName(id);
  auto ns = [](double seconds) {
    return seconds > 0 ? static_cast<uint64_t>(seconds * 1e9) : 0;
  };
  registry.GetCounter(prefix + ".records").Add(last.records);
  registry.GetCounter(prefix + ".gen_ns").Add(ns(last.gen_seconds));
  registry.GetCounter(prefix + ".infer_ns").Add(ns(last.infer_seconds));
  registry.GetCounter(prefix + ".fuse_ns").Add(ns(last.fuse_seconds));
  registry.GetCounter(prefix + ".serialized_bytes")
      .Add(last.serialized_bytes);
  registry.GetGauge(prefix + ".distinct_types")
      .Set(static_cast<int64_t>(last.distinct_types));
  registry.GetGauge(prefix + ".fused_size")
      .Set(static_cast<int64_t>(last.fused_size));
}

/// Publishes the process-wide interning/memoization table stats as gauges
/// (intern.*, fusecache.*) so BENCH_*.json files carry the cache accounting
/// alongside the per-dataset rows. No-op when telemetry is off.
inline void PublishCacheTelemetry() {
  if (!telemetry::Enabled()) return;
  auto& registry = telemetry::MetricsRegistry::Global();
  auto is = types::TypeInterner::Global().stats();
  registry.GetGauge("intern.live").Set(static_cast<int64_t>(is.size));
  registry.GetGauge("intern.hit_rate_pct")
      .Set(static_cast<int64_t>(is.HitRate() * 100));
  auto cs = fusion::FuseCache::Global().stats();
  registry.GetGauge("fusecache.live").Set(static_cast<int64_t>(cs.size));
  registry.GetGauge("fusecache.hit_rate_pct")
      .Set(static_cast<int64_t>(cs.HitRate() * 100));
}

/// One-line digest of the interning + fuse-cache tables (process-wide,
/// cumulative). Printed under each table so the speedup rows can be read
/// against the hit rates that produced them.
inline void PrintCacheStats() {
  auto is = types::TypeInterner::Global().stats();
  auto cs = fusion::FuseCache::Global().stats();
  std::printf(
      "interning[%s]: intern %zu live, %.1f%% hits (%llu/%llu, %llu evicted)"
      " | fuse-cache %zu live, %.1f%% hits (%llu/%llu, %llu evicted)\n\n",
      types::InterningEnabled() ? "on" : "off", is.size, is.HitRate() * 100,
      static_cast<unsigned long long>(is.hits),
      static_cast<unsigned long long>(is.hits + is.misses),
      static_cast<unsigned long long>(is.evictions), cs.size,
      cs.HitRate() * 100, static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.hits + cs.misses),
      static_cast<unsigned long long>(cs.evictions));
}

/// Streams `sizes.back()` records of `id`, snapshotting at every size.
/// Phases are timed in chunks so the clock overhead stays negligible.
inline std::vector<SnapshotRow> RunStreamingPipeline(
    datagen::DatasetId id, const std::vector<uint64_t>& sizes, uint64_t seed,
    bool measure_bytes, bool run_typing = true) {
  auto gen = datagen::MakeGenerator(id, seed);
  std::unordered_set<uint64_t> distinct_hashes;
  fusion::TreeFuser fuser;
  size_t min_size = 0, max_size = 0;
  double total_size = 0;
  uint64_t bytes = 0;
  double gen_s = 0, infer_s = 0, fuse_s = 0;

  std::vector<SnapshotRow> rows;
  uint64_t next_snapshot_index = 0;
  const uint64_t total = sizes.back();
  constexpr uint64_t kChunk = 512;
  std::vector<json::ValueRef> values;
  std::vector<types::TypeRef> chunk_types;
  for (uint64_t done = 0; done < total;) {
    uint64_t n = std::min(kChunk, total - done);
    // Align chunk boundaries with snapshot points.
    if (next_snapshot_index < sizes.size()) {
      n = std::min(n, sizes[next_snapshot_index] - done);
    }
    values.clear();
    chunk_types.clear();
    Stopwatch w1;
    for (uint64_t i = 0; i < n; ++i) values.push_back(gen->Generate(done + i));
    gen_s += w1.ElapsedSeconds();
    if (measure_bytes) {
      for (const auto& v : values) {
        bytes += json::SerializedSize(*v) + 1;  // + newline
      }
    }
    if (run_typing) {
      Stopwatch w2;
      for (const auto& v : values) {
        chunk_types.push_back(inference::InferType(*v));
      }
      infer_s += w2.ElapsedSeconds();
    }
    for (const auto& t : chunk_types) {
      if (distinct_hashes.insert(t->hash()).second) {
        // new distinct type
      }
      size_t s = t->size();
      if (total_size == 0) {
        min_size = max_size = s;
      } else {
        min_size = std::min(min_size, s);
        max_size = std::max(max_size, s);
      }
      total_size += static_cast<double>(s);
    }
    Stopwatch w3;
    for (auto& t : chunk_types) fuser.Add(std::move(t));
    fuse_s += w3.ElapsedSeconds();
    done += n;
    if (next_snapshot_index < sizes.size() &&
        done == sizes[next_snapshot_index]) {
      SnapshotRow row;
      row.records = done;
      row.distinct_types = distinct_hashes.size();
      row.min_size = min_size;
      row.max_size = max_size;
      row.avg_size = total_size / static_cast<double>(done);
      Stopwatch w4;
      row.fused = fuser.Finish();
      fuse_s += w4.ElapsedSeconds();
      row.fused_size = run_typing ? row.fused->size() : 0;
      row.serialized_bytes = bytes;
      row.gen_seconds = gen_s;
      row.infer_seconds = infer_s;
      row.fuse_seconds = fuse_s;
      rows.push_back(std::move(row));
      ++next_snapshot_index;
    }
  }
  if (!rows.empty()) {
    PublishBenchTelemetry(id, rows.back());
    PublishCacheTelemetry();
  }
  return rows;
}

/// "1K" / "10K" / "100K" / "1M" / exact count for odd caps.
inline std::string SizeLabel(uint64_t n) {
  if (n % 1000000 == 0) return std::to_string(n / 1000000) + "M";
  if (n % 1000 == 0) return std::to_string(n / 1000) + "K";
  return std::to_string(n);
}

/// Prints one of the Tables 2-5 in the paper's column layout.
inline void PrintTypeTable(const char* title,
                           const std::vector<SnapshotRow>& rows) {
  std::printf("%s\n", title);
  std::printf("%-6s %12s | %8s %8s %10s | %10s %8s\n", "|D|", "# types",
              "min", "max", "avg", "fused", "f/avg");
  std::printf("%.*s\n", 78,
              "------------------------------------------------------------"
              "------------------");
  for (const SnapshotRow& r : rows) {
    std::printf("%-6s %12s | %8zu %8zu %10.1f | %10zu %8.2f\n",
                SizeLabel(r.records).c_str(),
                WithThousands(static_cast<int64_t>(r.distinct_types)).c_str(),
                r.min_size, r.max_size, r.avg_size, r.fused_size,
                r.avg_size > 0
                    ? static_cast<double>(r.fused_size) / r.avg_size
                    : 0.0);
  }
  PrintCacheStats();
}

}  // namespace jsonsi::bench

#endif  // JSONSI_BENCH_BENCH_COMMON_H_
