// Table 5 — results for NYTimes: the best compaction case.
//
// Shape to reproduce (paper): many distinct inferred types (555 @ 1K up to
// 312,458 @ 1M — lengths and lower-level variants multiply), but because the
// FIRST level is fixed and all variation is nested, fusion aligns top-level
// keys perfectly and the fused type stays small relative to the inputs —
// "promising and even better than the rest".

#include "table_typecounts_main.h"

int main() {
  return jsonsi::bench::RunTypeCountTable(
      jsonsi::datagen::DatasetId::kNYTimes, "Table 5: Results for NYTimes",
      "1K        555 | 6 ~300 ... | small fused type\n"
      "10K     2,891 | 6 ...      | fused/avg lowest of all\n"
      "100K   15,959 | 6 ...      | datasets despite many\n"
      "1M    312,458 | 6 ...      | distinct input types");
}
