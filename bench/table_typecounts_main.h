// Shared main() body for Tables 2-5: run the streaming pipeline on one
// dataset, print #types / min / max / avg / fused-size per sub-dataset, and
// echo the paper's measured rows for shape comparison.

#ifndef JSONSI_BENCH_TABLE_TYPECOUNTS_MAIN_H_
#define JSONSI_BENCH_TABLE_TYPECOUNTS_MAIN_H_

#include <cstdio>

#include "bench_common.h"

namespace jsonsi::bench {

inline int RunTypeCountTable(datagen::DatasetId id, const char* title,
                             const char* paper_rows) {
  BenchJsonScope bench_json(datagen::DatasetName(id));
  auto rows =
      RunStreamingPipeline(id, SnapshotSizes(), BenchSeed(),
                           /*measure_bytes=*/false);
  PrintTypeTable(title, rows);
  std::printf("Paper (for shape comparison):\n%s\n", paper_rows);
  return 0;
}

}  // namespace jsonsi::bench

#endif  // JSONSI_BENCH_TABLE_TYPECOUNTS_MAIN_H_
