// Micro-benchmarks for the map/reduce engine and the cluster simulator:
// thread-pool dispatch overhead, Map/Reduce throughput across partition
// counts, the full inference pipeline through the engine, and the virtual-
// time simulator's own cost (it must be negligible next to what it models).

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <numeric>

#include "datagen/generator.h"
#include "engine/cluster_sim.h"
#include "engine/dataset.h"
#include "engine/thread_pool.h"
#include "fusion/fuse.h"
#include "inference/infer.h"

namespace {

using namespace jsonsi;

void BM_ThreadPoolDispatch(benchmark::State& state) {
  engine::ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      pool.Submit([] {});
    }
    pool.Wait();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolDispatch)
    ->Arg(1)
    ->Arg(4)
    ->Name("ThreadPool/dispatch64/threads");

void BM_DatasetMap(benchmark::State& state) {
  engine::ThreadPool pool(2);
  std::vector<int> items(100000);
  std::iota(items.begin(), items.end(), 0);
  auto ds = engine::Dataset<int>::FromVector(
      items, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = ds.Map(pool, [](const int& x) { return x * 2; });
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_DatasetMap)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Name("Dataset/map100k/partitions");

void BM_DatasetReduce(benchmark::State& state) {
  engine::ThreadPool pool(2);
  std::vector<int> items(100000, 1);
  auto ds = engine::Dataset<int>::FromVector(
      items, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    int sum = ds.Reduce(pool, 0, [](int a, int b) { return a + b; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DatasetReduce)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Name("Dataset/reduce100k/partitions");

void BM_EnginePipeline(benchmark::State& state) {
  // The paper's full dataflow through the engine: map InferType, reduce
  // Fuse, on 2,000 Twitter records.
  engine::ThreadPool pool(2);
  auto values = datagen::MakeGenerator(datagen::DatasetId::kTwitter, 42)
                    ->GenerateMany(2000);
  auto ds = engine::Dataset<json::ValueRef>::FromVector(
      values, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto typed = ds.Map(
        pool, [](const json::ValueRef& v) { return inference::InferType(*v); });
    auto schema = typed.Reduce(pool, types::Type::Empty(), fusion::Fuse);
    benchmark::DoNotOptimize(schema);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_EnginePipeline)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Name("Pipeline/twitter2k/partitions")
    ->Unit(benchmark::kMillisecond);

void BM_ClusterSimulation(benchmark::State& state) {
  auto tasks = engine::MakeSpreadTasks(static_cast<size_t>(state.range(0)),
                                       300.0, 22e9, 6, 4096);
  engine::ClusterConfig config;
  for (auto _ : state) {
    auto result = engine::SimulateJob(tasks, config,
                                      engine::Placement::kAnyWithTransfer,
                                      0.01);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ClusterSimulation)->Arg(60)->Arg(600)->Name("ClusterSim/tasks");

}  // namespace

int main(int argc, char** argv) {
  // Writes BENCH_micro_engine.json under JSI_BENCH_JSON (see bench_common.h).
  jsonsi::bench::BenchJsonScope scope("micro_engine");
  jsonsi::bench::ApplyQuickArgs(&argc, &argv);  // JSI_BENCH_QUICK smoke mode
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  jsonsi::bench::PublishCacheTelemetry();
  return 0;
}
