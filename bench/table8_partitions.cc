// Table 8 — partition-based processing of NYTimes.
//
// The paper's manual strategy: process each of 4 partitions in isolation
// (objects / distinct types / time per partition), then fuse the four
// partial schemas — "a fast operation as each schema to fuse has a very
// small size". Possible only because fusion is associative.
//
// Paper rows:     objects   types    time
//   partition 1   284,943   67,652   2.4 min
//   partition 2   300,000   83,226   3.8 min
//   partition 3   300,000   89,929   1.9 min
//   partition 4   300,000   84,333   3.3 min
//
// We reproduce the same protocol with real measurements on this host: the
// target row (default 1M records) split in the paper's proportions, each
// partition typed independently (real wall-clock), then the final fuse of
// the partial schemas timed separately. Shape to reproduce: per-partition
// distinct-type counts in the hundreds of thousands scaled to partition
// size; final fusion orders of magnitude cheaper than any partition.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "fusion/fuse.h"

int main() {
  using namespace jsonsi;
  bench::BenchJsonScope bench_json("table8_partitions");
  uint64_t total = bench::SnapshotSizes().back();

  // The paper's partition proportions of its 1,184,943-record dataset.
  const double kFractions[4] = {284943.0 / 1184943, 300000.0 / 1184943,
                                300000.0 / 1184943, 300000.0 / 1184943};
  std::printf("Table 8: partition-based processing of NYTimes (%s records)\n",
              bench::SizeLabel(total).c_str());
  std::printf("%-13s | %10s | %10s | %10s\n", "", "Objects", "Types", "Time");
  std::printf("--------------------------------------------------\n");

  auto gen = datagen::MakeGenerator(datagen::DatasetId::kNYTimes,
                                    bench::BenchSeed());
  std::vector<types::TypeRef> partials;
  double total_partition_seconds = 0;
  uint64_t start = 0;
  for (int p = 0; p < 4; ++p) {
    uint64_t count = static_cast<uint64_t>(kFractions[p] * total);
    if (p == 3) count = total - start;  // absorb rounding

    Stopwatch watch;
    std::unordered_set<uint64_t> distinct;
    fusion::TreeFuser fuser;
    for (uint64_t i = 0; i < count; ++i) {
      auto t = inference::InferType(*gen->Generate(start + i));
      distinct.insert(t->hash());
      fuser.Add(std::move(t));
    }
    partials.push_back(fuser.Finish());
    double seconds = watch.ElapsedSeconds();
    total_partition_seconds += seconds;
    std::printf("partition %-3d | %10s | %10s | %8.1fs\n", p + 1,
                WithThousands(static_cast<int64_t>(count)).c_str(),
                WithThousands(static_cast<int64_t>(distinct.size())).c_str(),
                seconds);
    start += count;
  }

  // Final fusion of the partial schemas — the step associativity enables.
  Stopwatch fuse_watch;
  types::TypeRef global = fusion::FuseAll(partials);
  double fuse_seconds = fuse_watch.ElapsedSeconds();

  std::printf("--------------------------------------------------\n");
  std::printf("final fuse of 4 partial schemas: %.4fs (schema size %zu)\n",
              fuse_seconds, global->size());
  std::printf("average partition time: %.1fs; final fuse is %.5f%% of it\n",
              total_partition_seconds / 4,
              100.0 * fuse_seconds / (total_partition_seconds / 4));
  std::printf(
      "\nShape check (paper): partitions process independently in similar\n"
      "times (their avg 2.85 min on Spark); the closing fusion of partial\n"
      "schemas is negligible — 'a fast operation as each schema ... has a\n"
      "very small size'.\n");
  return 0;
}
