// Table 1 — (sub-)dataset sizes.
//
// Paper: byte sizes of the 1K/10K/100K/1M prefixes of each dataset
// (GitHub 14MB..14GB, Twitter 2.2MB..2.1GB, Wikidata 23MB..5.4GB,
// NYTimes 10MB..22GB). Our synthetic records are structurally faithful but
// textually smaller (no need to store megabytes of prose to exercise the
// algorithms), so absolute sizes are scaled down; the *relative* shape —
// Twitter smallest per record, Wikidata/NYTimes largest — is preserved.
//
// The size reported is the exact compact JSON-Lines byte count of the
// prefix, computed streaming without materializing the text.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jsonsi;
  bench::BenchJsonScope bench_json("table1_dataset_sizes");
  auto sizes = bench::SnapshotSizes();

  std::printf("Table 1: (sub-)dataset sizes (JSON-Lines bytes)\n");
  std::printf("%-10s", "Dataset");
  for (uint64_t n : sizes) {
    std::printf(" %12s", bench::SizeLabel(n).c_str());
  }
  std::printf(
      "\n------------------------------------------------------------\n");

  for (auto id : datagen::AllDatasets()) {
    // Generation-only pass: inference/fusion timings are not needed here,
    // but the streaming runner keeps memory flat and snapshots exact.
    auto rows = bench::RunStreamingPipeline(id, sizes, bench::BenchSeed(),
                                            /*measure_bytes=*/true,
                                            /*run_typing=*/false);
    std::printf("%-10s", datagen::DatasetName(id));
    for (const auto& row : rows) {
      std::printf(" %12s", HumanBytes(row.serialized_bytes).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper (crawled data, for shape comparison):\n"
      "GitHub     14MB 137MB 1.3GB 14GB\n"
      "Twitter    2.2MB 22MB 216MB 2.1GB\n"
      "Wikidata   23MB 155MB 1.1GB 5.4GB\n"
      "NYTimes    10MB 180MB 2GB 22GB\n");
  return 0;
}
