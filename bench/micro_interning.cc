// Micro-benchmarks (google-benchmark) for hash-consed interning + memoized
// fusion: the intern hit path itself, pairwise Fuse and 1000-element folds
// with the optimization on vs off (the `--no-intern` baseline), and the
// dedup-layer behaviour on duplicate-heavy vs distinct-heavy (Wikidata)
// streams. Each benchmark reports the intern-table / fuse-cache hit rates
// and occupancy observed during its timed region via state.counters; the
// custom main additionally publishes final table stats through telemetry so
// JSI_BENCH_JSON=<dir> emits BENCH_interning.json.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "datagen/generator.h"
#include "fusion/fuse.h"
#include "fusion/fuse_cache.h"
#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "types/interner.h"

namespace {

using namespace jsonsi;
using types::ScopedInterning;
using types::TypeInterner;
using fusion::FuseCache;

std::vector<json::ValueRef> SampleValues(datagen::DatasetId id, size_t n) {
  return datagen::MakeGenerator(id, 42)->GenerateMany(n);
}

std::vector<types::TypeRef> SampleTypes(datagen::DatasetId id, size_t n) {
  ScopedInterning off(false);  // fresh, unshared trees as the baseline input
  std::vector<types::TypeRef> ts;
  for (const auto& v : SampleValues(id, n)) {
    ts.push_back(inference::InferType(*v));
  }
  return ts;
}

fusion::Fuser PlainFuser() {
  fusion::FuseOptions opts;
  opts.intern = false;
  opts.memoize = false;
  opts.dedup = false;
  return fusion::Fuser(opts);
}

void ReportTableCounters(benchmark::State& state,
                         const types::InternerStats& i0,
                         const fusion::FuseCacheStats& c0) {
  auto i1 = TypeInterner::Global().stats();
  auto c1 = FuseCache::Global().stats();
  const double ih = static_cast<double>(i1.hits - i0.hits);
  const double im = static_cast<double>(i1.misses - i0.misses);
  const double ch = static_cast<double>(c1.hits - c0.hits);
  const double cm = static_cast<double>(c1.misses - c0.misses);
  state.counters["intern_hit_rate"] = ih + im > 0 ? ih / (ih + im) : 0.0;
  state.counters["fusecache_hit_rate"] = ch + cm > 0 ? ch / (ch + cm) : 0.0;
  state.counters["intern_live"] = static_cast<double>(i1.size);
  state.counters["fusecache_live"] = static_cast<double>(c1.size);
}

// The intern operation itself, steady state: every call is a table hit
// returning the canonical node.
void BM_InternHit(benchmark::State& state) {
  auto ts = SampleTypes(static_cast<datagen::DatasetId>(state.range(0)), 64);
  TypeInterner& interner = TypeInterner::Global();
  for (auto& t : ts) t = interner.Intern(std::move(t));  // warm the table
  auto i0 = interner.stats();
  size_t i = 0;
  for (auto _ : state) {
    auto t = interner.Intern(ts[i++ % ts.size()]);
    benchmark::DoNotOptimize(t);
  }
  auto i1 = interner.stats();
  const double hits = static_cast<double>(i1.hits - i0.hits);
  const double total =
      static_cast<double>((i1.hits + i1.misses) - (i0.hits + i0.misses));
  state.counters["intern_hit_rate"] = total > 0 ? hits / total : 0.0;
}
BENCHMARK(BM_InternHit)->DenseRange(0, 3)->Name("InternHit/dataset");

// Pairwise fusion over a recurring working set: plain recomputes the
// Figure 5/6 merge every time, memoized hits the fuse cache.
void BM_FusePairPlain(benchmark::State& state) {
  ScopedInterning off(false);
  auto ts = SampleTypes(static_cast<datagen::DatasetId>(state.range(0)), 64);
  const fusion::Fuser plain = PlainFuser();
  size_t i = 0;
  for (auto _ : state) {
    auto f = plain.Fuse(ts[i % ts.size()], ts[(i + 1) % ts.size()]);
    benchmark::DoNotOptimize(f);
    ++i;
  }
}
BENCHMARK(BM_FusePairPlain)->DenseRange(0, 3)->Name("FusePair/plain/dataset");

void BM_FusePairMemoized(benchmark::State& state) {
  ScopedInterning on(true);
  auto ts = SampleTypes(static_cast<datagen::DatasetId>(state.range(0)), 64);
  const fusion::Fuser memo;  // defaults: intern + memoize
  auto i0 = TypeInterner::Global().stats();
  auto c0 = FuseCache::Global().stats();
  size_t i = 0;
  for (auto _ : state) {
    auto f = memo.Fuse(ts[i % ts.size()], ts[(i + 1) % ts.size()]);
    benchmark::DoNotOptimize(f);
    ++i;
  }
  ReportTableCounters(state, i0, c0);
}
BENCHMARK(BM_FusePairMemoized)
    ->DenseRange(0, 3)
    ->Name("FusePair/memoized/dataset");

// The reduce phase end-to-end: 1000 records folded through TreeFuser with
// the optimization stack off (the --no-intern baseline) vs on (dedup +
// interning + memo). Wikidata (dataset 2) is the adversarial shape: nearly
// every record brings a fresh type, so dedup buys little and the bench
// shows the bounded-table overheads instead.
void BM_Fold1000NoIntern(benchmark::State& state) {
  ScopedInterning off(false);
  auto ts = SampleTypes(static_cast<datagen::DatasetId>(state.range(0)), 1000);
  for (auto _ : state) {
    fusion::TreeFuser fuser{PlainFuser()};
    for (const auto& t : ts) fuser.Add(t);
    auto f = fuser.Finish();
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_Fold1000NoIntern)
    ->DenseRange(0, 3)
    ->Name("Fold1000/no-intern/dataset")
    ->Unit(benchmark::kMillisecond);

void BM_Fold1000Interned(benchmark::State& state) {
  ScopedInterning on(true);
  auto ts = SampleTypes(static_cast<datagen::DatasetId>(state.range(0)), 1000);
  auto i0 = TypeInterner::Global().stats();
  auto c0 = FuseCache::Global().stats();
  double dedup_distinct = 0;
  for (auto _ : state) {
    fusion::TreeFuser fuser;  // defaults: dedup + intern + memoize
    for (const auto& t : ts) fuser.Add(t);
    dedup_distinct = static_cast<double>(fuser.pending_distinct());
    auto f = fuser.Finish();
    benchmark::DoNotOptimize(f);
  }
  ReportTableCounters(state, i0, c0);
  state.counters["dedup_distinct"] = dedup_distinct;
}
BENCHMARK(BM_Fold1000Interned)
    ->DenseRange(0, 3)
    ->Name("Fold1000/interned/dataset")
    ->Unit(benchmark::kMillisecond);

// Inference with bottom-up interning on vs off: measures the intern overhead
// paid in the Map phase to buy sharing in the Reduce phase.
void BM_InferPlain(benchmark::State& state) {
  ScopedInterning off(false);
  auto values =
      SampleValues(static_cast<datagen::DatasetId>(state.range(0)), 64);
  size_t i = 0;
  for (auto _ : state) {
    auto t = inference::InferType(*values[i++ % values.size()]);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_InferPlain)->DenseRange(0, 3)->Name("Infer/no-intern/dataset");

void BM_InferInterned(benchmark::State& state) {
  ScopedInterning on(true);
  auto values =
      SampleValues(static_cast<datagen::DatasetId>(state.range(0)), 64);
  auto i0 = TypeInterner::Global().stats();
  auto c0 = FuseCache::Global().stats();
  size_t i = 0;
  for (auto _ : state) {
    auto t = inference::InferType(*values[i++ % values.size()]);
    benchmark::DoNotOptimize(t);
  }
  ReportTableCounters(state, i0, c0);
}
BENCHMARK(BM_InferInterned)->DenseRange(0, 3)->Name("Infer/interned/dataset");

}  // namespace

int main(int argc, char** argv) {
  // BenchJsonScope turns telemetry on under JSI_BENCH_JSON and flushes the
  // registry to BENCH_interning.json on exit; the final-table gauges are
  // published just before that flush.
  jsonsi::bench::BenchJsonScope scope("interning");
  jsonsi::bench::ApplyQuickArgs(&argc, &argv);  // JSI_BENCH_QUICK smoke mode
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  jsonsi::bench::PublishCacheTelemetry();
  jsonsi::bench::PrintCacheStats();
  return 0;
}
