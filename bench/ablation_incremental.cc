// Ablation — incremental schema maintenance vs full re-inference
// (Section 1: "in the case of insertion of a new record ... we simply need
// to fuse the existing schema with the schema of the new record" and
// "it just suffices to re-infer the schema for the updated parts").
//
// Protocol, per dataset:
//   base:        infer schema of N records (one-time cost, amortized)
//   new batch:   N/10 additional records arrive
//   full re-run: re-infer N + N/10 records from scratch
//   incremental: infer only the new N/10 and Fuse with the existing schema
// Both must produce identical schemas (asserted); the speedup is the point.

#include <cassert>
#include <cstdio>

#include "bench_common.h"
#include "fusion/fuse.h"
#include "fusion/tree_fuser.h"

namespace {

jsonsi::types::TypeRef InferRange(jsonsi::datagen::DatasetGenerator& gen,
                                  uint64_t start, uint64_t count) {
  jsonsi::fusion::TreeFuser fuser;
  for (uint64_t i = 0; i < count; ++i) {
    fuser.Add(jsonsi::inference::InferType(*gen.Generate(start + i)));
  }
  return fuser.Finish();
}

}  // namespace

int main() {
  using namespace jsonsi;
  uint64_t n = std::min<uint64_t>(bench::SnapshotSizes().back(), 100000);
  uint64_t batch = n / 10;

  std::printf(
      "Ablation: incremental maintenance (+%s records on a %s-record base)\n",
      bench::SizeLabel(batch).c_str(), bench::SizeLabel(n).c_str());
  std::printf("%-10s | %12s | %12s | %9s | %6s\n", "Dataset", "full re-run",
              "incremental", "speedup", "equal");
  std::printf(
      "-----------------------------------------------------------------"
      "-----\n");

  for (auto id : datagen::AllDatasets()) {
    auto gen = datagen::MakeGenerator(id, bench::BenchSeed());

    // Existing schema over the base (its cost is already sunk in reality).
    types::TypeRef base_schema = InferRange(*gen, 0, n);

    Stopwatch full_watch;
    types::TypeRef full = InferRange(*gen, 0, n + batch);
    double full_seconds = full_watch.ElapsedSeconds();

    Stopwatch inc_watch;
    types::TypeRef batch_schema = InferRange(*gen, n, batch);
    types::TypeRef incremental = fusion::Fuse(base_schema, batch_schema);
    double inc_seconds = inc_watch.ElapsedSeconds();

    bool equal = incremental->Equals(*full);
    std::printf("%-10s | %11.2fs | %11.2fs | %8.1fx | %6s\n",
                datagen::DatasetName(id), full_seconds, inc_seconds,
                full_seconds / inc_seconds, equal ? "yes" : "NO");
  }
  std::printf(
      "\nReading: associativity makes the incremental result exactly equal\n"
      "to the from-scratch schema while touching only the new data.\n");
  return 0;
}
