// Ablation — precision vs Spark-style type coercion (Section 6.1's
// comparison point: "the Spark API uses type coercion yielding an array of
// type String only. In our case, we can exploit union types to generate a
// much more precise type").
//
// For each dataset, infer both schemas over the same sample and count the
// positions where coercion lost information fusion kept: union-typed leaves
// flattened to Str, and record/array structure collapsed to Str.

#include <cstdio>

#include "baseline/spark_coercion.h"
#include "bench_common.h"
#include "fusion/tree_fuser.h"

int main() {
  using namespace jsonsi;
  uint64_t n = std::min<uint64_t>(bench::SnapshotSizes().back(), 20000);

  std::printf("Ablation: fusion (union types) vs Spark-style coercion"
              " (%s records per dataset)\n",
              bench::SizeLabel(n).c_str());
  std::printf("%-10s | %10s %10s | %8s %12s %10s\n", "Dataset", "fused sz",
              "coerced sz", "unions", "->Str", "struct lost");
  std::printf(
      "-----------------------------------------------------------------"
      "-----\n");

  for (auto id : datagen::AllDatasets()) {
    auto gen = datagen::MakeGenerator(id, bench::BenchSeed());
    fusion::TreeFuser fuser;
    types::TypeRef coerced = types::Type::Null();
    for (uint64_t i = 0; i < n; ++i) {
      auto v = gen->Generate(i);
      fuser.Add(inference::InferType(*v));
      coerced = baseline::MergeCoerced(coerced, baseline::InferCoerced(*v));
    }
    types::TypeRef fused = fuser.Finish();
    baseline::CoercionLoss loss = baseline::MeasureLoss(fused, coerced);
    std::printf("%-10s | %10zu %10zu | %8zu %12zu %10zu\n",
                datagen::DatasetName(id), fused->size(), coerced->size(),
                loss.union_positions, loss.coerced_to_str,
                loss.structure_lost);
  }
  std::printf(
      "\nReading: every '->Str' is a position where the baseline reports\n"
      "String while the fused schema preserves the exact union of observed\n"
      "types; 'struct lost' positions had record/array structure erased.\n");
  return 0;
}
