// Ingestion front-end throughput harness (src/io/).
//
// Generates a JSONL corpus on disk once, then infers it through every
// input-source mode — the legacy whole-file slurp as the baseline, the
// zero-copy mmap path, and the pread/stream pipelines with read-ahead
// overlap on and off — under both a warm and a cold page cache (cold =
// fsync + posix_fadvise(DONTNEED) before the run, so the kernel really
// re-reads the disk). Prints MB/s per row and publishes the numbers as
// bench.io.* gauges (BENCH_io.json under JSI_BENCH_JSON).
//
// Every row's schema is checked structurally identical to the slurp
// baseline's — a mismatch exits non-zero, so the harness doubles as a
// differential gate at bench scale.
//
// Knobs: JSI_IO_BENCH_MB corpus size in MiB (default 256, or 8 under
// JSI_BENCH_QUICK), JSI_SEED, JSI_BENCH_JSON.

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/schema_inferencer.h"
#include "datagen/generator.h"
#include "io/input_source.h"
#include "json/serializer.h"
#include "support/timer.h"

namespace {

using namespace jsonsi;

std::string BenchFilePath() {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = tmp && *tmp ? tmp : "/tmp";
  return dir + "/jsi_io_bench_" + std::to_string(::getpid()) + ".jsonl";
}

// Writes ~size_mb MiB of generated JSONL and fsyncs it so cold-cache drops
// actually evict clean pages.
uint64_t WriteCorpus(const std::string& path, uint64_t size_mb) {
  auto gen = datagen::MakeGenerator(datagen::DatasetId::kGitHub,
                                    bench::BenchSeed());
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    std::perror("io_pipeline: open corpus");
    std::exit(1);
  }
  uint64_t written = 0;
  uint64_t i = 0;
  std::string block;
  while (written < size_mb << 20) {
    block.clear();
    for (int n = 0; n < 512; ++n) {
      block += json::ToJson(*gen->Generate(i++));
      block += '\n';
    }
    ssize_t w = ::write(fd, block.data(), block.size());
    if (w != static_cast<ssize_t>(block.size())) {
      std::perror("io_pipeline: write corpus");
      std::exit(1);
    }
    written += static_cast<uint64_t>(w);
  }
  ::fsync(fd);
  ::close(fd);
  return written;
}

// Evicts the file's clean pages so the next run reads the disk again.
void DropCache(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return;
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

struct Row {
  std::string label;
  double cold_mbps = 0;
  double warm_mbps = 0;
};

struct RunResult {
  double seconds = 0;
  core::Schema schema;
  uint64_t records = 0;
};

RunResult RunSlurp(const std::string& path) {
  RunResult r;
  Stopwatch watch;
  // The legacy ingestion path, verbatim: ostringstream slurp (one copy into
  // the stream's buffer, a second into the string), then one-shot
  // inference. This is the baseline the pipeline rows are measured against.
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "io_pipeline: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = std::move(buffer).str();
  auto schema = core::SchemaInferencer().InferFromJsonLines(text);
  r.seconds = watch.ElapsedSeconds();
  if (!schema.ok()) {
    std::fprintf(stderr, "io_pipeline: inference failed: %s\n",
                 schema.status().ToString().c_str());
    std::exit(1);
  }
  r.schema = std::move(schema).value();
  r.records = r.schema.stats.record_count;
  return r;
}

RunResult RunPiped(const std::string& path, io::IoMode mode, bool overlap) {
  core::InferenceOptions options;
  options.io.mode = mode;
  options.io.overlap = overlap;
  RunResult r;
  Stopwatch watch;
  auto schema = core::SchemaInferencer(options).InferFromFile(path);
  r.seconds = watch.ElapsedSeconds();
  if (!schema.ok()) {
    std::fprintf(stderr, "io_pipeline: %s inference failed: %s\n",
                 io::IoModeName(mode), schema.status().ToString().c_str());
    std::exit(1);
  }
  r.schema = std::move(schema).value();
  r.records = r.schema.stats.record_count;
  return r;
}

}  // namespace

int main() {
  bench::BenchJsonScope bench_json("io");
  const uint64_t size_mb =
      bench::EnvU64("JSI_IO_BENCH_MB", bench::BenchQuick() ? 8 : 256);
  const std::string path = BenchFilePath();
  std::printf("generating %llu MiB GitHub JSONL corpus...\n",
              static_cast<unsigned long long>(size_mb));
  const uint64_t bytes = WriteCorpus(path, size_mb);
  const double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);

  struct Case {
    const char* label;
    const char* gauge;
    io::IoMode mode;
    bool overlap;
    bool slurp;
  };
  const std::vector<Case> cases = {
      {"slurp + infer (baseline)", "slurp", io::IoMode::kAuto, true, true},
      {"mmap (zero-copy)", "mmap", io::IoMode::kMmap, true, false},
      {"pread pipeline, overlap on", "read_overlap", io::IoMode::kRead, true,
       false},
      {"pread pipeline, overlap off", "read_sync", io::IoMode::kRead, false,
       false},
      {"stream pipeline, overlap on", "stream_overlap", io::IoMode::kStream,
       true, false},
      {"stream pipeline, overlap off", "stream_sync", io::IoMode::kStream,
       false, false},
  };

  std::printf("%-28s %12s %12s\n", "source", "cold MB/s", "warm MB/s");
  std::printf("%.*s\n", 54,
              "------------------------------------------------------");

  auto& registry = telemetry::MetricsRegistry::Global();
  types::TypeRef baseline_type;
  double slurp_cold = 0, mmap_cold = 0;
  int failures = 0;
  for (const Case& c : cases) {
    DropCache(path);
    RunResult cold = c.slurp ? RunSlurp(path) : RunPiped(path, c.mode,
                                                         c.overlap);
    RunResult warm = c.slurp ? RunSlurp(path) : RunPiped(path, c.mode,
                                                         c.overlap);
    Row row;
    row.label = c.label;
    row.cold_mbps = mb / cold.seconds;
    row.warm_mbps = mb / warm.seconds;
    std::printf("%-28s %12.1f %12.1f\n", c.label, row.cold_mbps,
                row.warm_mbps);
    if (c.slurp) {
      baseline_type = cold.schema.type;
      slurp_cold = row.cold_mbps;
    } else if (!types::TypeEquals(baseline_type, cold.schema.type) ||
               !types::TypeEquals(baseline_type, warm.schema.type)) {
      std::fprintf(stderr, "io_pipeline: %s schema DIVERGED from slurp\n",
                   c.label);
      ++failures;
    }
    if (std::string(c.gauge) == "mmap") mmap_cold = row.cold_mbps;
    if (telemetry::Enabled()) {
      const std::string prefix = std::string("bench.io.") + c.gauge;
      registry.GetGauge(prefix + "_cold_mbps")
          .Set(static_cast<int64_t>(row.cold_mbps));
      registry.GetGauge(prefix + "_warm_mbps")
          .Set(static_cast<int64_t>(row.warm_mbps));
    }
  }
  if (telemetry::Enabled()) {
    registry.GetGauge("bench.io.file_mb").Set(static_cast<int64_t>(mb));
    if (slurp_cold > 0) {
      // The headline number: the default `jsi infer <file>` path (mmap)
      // against the legacy slurp, both cold-cache, as a percentage
      // (130 == the 1.3x acceptance bar).
      registry.GetGauge("bench.io.mmap_vs_slurp_cold_pct")
          .Set(static_cast<int64_t>(100.0 * mmap_cold / slurp_cold));
    }
  }
  if (slurp_cold > 0) {
    std::printf("\nmmap vs slurp (cold): %.2fx\n", mmap_cold / slurp_cold);
  }
  std::printf("\ncorpus: %.1f MiB; pipeline rows read the file in bounded "
              "%zu MiB batches\n",
              mb, io::IoOptions{}.buffer_bytes >> 20);
  ::unlink(path.c_str());
  return failures == 0 ? 0 : 1;
}
