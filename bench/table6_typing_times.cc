// Table 6 — typing execution times (type inference vs type fusion) for the
// GitHub, Twitter and Wikidata datasets.
//
// Shape to reproduce (paper, Spark on 2 cores / cluster):
//   * Wikidata is by far the most time-consuming (keys-as-data make fusion
//     expensive);
//   * GitHub takes longer than Twitter (bigger byte size per record);
//   * inference cost scales with data size, fusion cost with schema
//     irregularity.
//
// We report (a) real single-thread seconds measured on this host for the
// largest configured row, (b) the virtual-time projection of those
// measurements onto the paper's two hardware setups via the cluster
// simulator (Mac mini: 1 node x 2 cores; cluster: 6 nodes x 20 cores with
// the dataset spread across HDFS), and (c) real parallel wall-clock of the
// end-to-end pipeline at 1/2/4/8 threads on this host (the local analogue
// of the paper's Spark parallelism; see also bench/parallel_pipeline.cc).

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "core/schema_inferencer.h"
#include "engine/cluster_sim.h"
#include "json/jsonl.h"

int main() {
  using namespace jsonsi;
  bench::BenchJsonScope bench_json("table6_typing_times");
  auto sizes = bench::SnapshotSizes();

  std::printf("Table 6: typing execution times (largest row: %s records)\n",
              bench::SizeLabel(sizes.back()).c_str());
  std::printf("%-10s | %12s %12s | %14s %14s\n", "Dataset", "infer(s)",
              "fuse(s)", "mac-mini(vt s)", "cluster(vt s)");
  std::printf(
      "----------------------------------------------------------------------"
      "\n");

  for (auto id : {datagen::DatasetId::kGitHub, datagen::DatasetId::kTwitter,
                  datagen::DatasetId::kWikidata}) {
    auto rows = bench::RunStreamingPipeline(id, sizes, bench::BenchSeed(),
                                            /*measure_bytes=*/true);
    const auto& last = rows.back();
    double compute = last.infer_seconds + last.fuse_seconds;

    // Virtual-time projections of the measured compute cost.
    engine::ClusterConfig mac;
    mac.num_nodes = 1;
    mac.cores_per_node = 2;
    auto mac_tasks = engine::MakeUniformTasks(
        /*num_partitions=*/8, compute, last.serialized_bytes, 0, 4096);
    double mac_vt = engine::SimulateJob(mac_tasks, mac,
                                        engine::Placement::kLocalOnly, 0.01)
                        .makespan_seconds;

    engine::ClusterConfig cluster;  // paper defaults: 6 x 20 cores
    auto cl_tasks = engine::MakeSpreadTasks(
        /*num_partitions=*/120, compute, last.serialized_bytes,
        cluster.num_nodes, 4096);
    double cl_vt = engine::SimulateJob(cl_tasks, cluster,
                                       engine::Placement::kLocalOnly, 0.01)
                       .makespan_seconds;

    std::printf("%-10s | %12.1f %12.1f | %14.1f %14.1f\n",
                datagen::DatasetName(id), last.infer_seconds,
                last.fuse_seconds, mac_vt, cl_vt);
  }
  std::printf(
      "\nShape check (paper): Wikidata >> GitHub > Twitter in total typing\n"
      "time; fusion dominates on Wikidata, inference elsewhere.\n");

  // ---- Parallel scaling of the real pipeline on this host. ----
  // Uses a smaller row than the table above so the 4 thread counts stay
  // affordable; speedups are only meaningful on multi-core hosts.
  const uint64_t scale_records = std::min<uint64_t>(sizes.back(), 100000);
  auto gen =
      datagen::MakeGenerator(datagen::DatasetId::kGitHub, bench::BenchSeed());
  std::vector<json::ValueRef> values;
  values.reserve(scale_records);
  for (uint64_t i = 0; i < scale_records; ++i) {
    values.push_back(gen->Generate(i));
  }
  const std::string text = json::ToJsonLines(values);
  values.clear();
  std::printf(
      "\nParallel pipeline, github %s records (host concurrency: %u)\n",
      bench::SizeLabel(scale_records).c_str(),
      std::thread::hardware_concurrency());
  std::printf("%8s %10s %9s\n", "threads", "wall s", "speedup");
  double serial_seconds = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    core::InferenceOptions options;
    options.num_threads = threads;
    options.parallel_ingest_min_bytes = 0;
    Stopwatch watch;
    auto result = core::SchemaInferencer(options).InferFromJsonLines(text);
    double seconds = watch.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "table6: parallel inference failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (threads == 1) serial_seconds = seconds;
    std::printf("%8zu %10.3f %8.2fx\n", threads, seconds,
                seconds > 0 ? serial_seconds / seconds : 0.0);
  }
  return 0;
}
