// Table 4 — results for Wikidata: the worst case for key-driven fusion.
//
// Shape to reproduce (paper): nearly every record has a fresh type
// (999 distinct among 1K; 640,010 among 1M — note the dedup saturating);
// the fused type is LARGER than the average input (entity ids used as record
// keys accumulate as optional fields) but still far smaller than the sum of
// the inputs, and its growth flattens once |D| covers the key space.

#include "table_typecounts_main.h"

int main() {
  return jsonsi::bench::RunTypeCountTable(
      jsonsi::datagen::DatasetId::kWikidata, "Table 4: Results for Wikidata",
      "1K        999 | 27 2,158 ~260 | fused >> avg\n"
      "10K     9,886 | 21 ...        | fused grows\n"
      "100K   95,298 | 11 ...        | growth flattens\n"
      "1M    640,010 | 11 ...        | (key space saturates)");
}
