// Table 2 — results for GitHub: distinct inferred types, min/max/avg type
// size, fused type size, per sub-dataset size.
//
// Shape to reproduce (paper): min == max == avg (homogeneous records whose
// variation never changes the type's size); distinct types grow slowly
// (29 -> 66 -> 261 -> 3,043); fused/avg stays <= 1.4.

#include "table_typecounts_main.h"

int main() {
  return jsonsi::bench::RunTypeCountTable(
      jsonsi::datagen::DatasetId::kGitHub, "Table 2: Results for GitHub",
      "1K     29 | 147 147 147 | 165\n"
      "10K    66 | 147 147 147 | 183\n"
      "100K  261 | 147 147 147 | 197\n"
      "1M  3,043 | 147 147 147 | 207");
}
