// Table 3 — results for Twitter.
//
// Shape to reproduce (paper): wide min..max spread (tiny delete records vs
// entity-rich tweets); distinct types grow steadily with |D| (167 -> 8,117)
// because exact array lengths vary; the fused type stays small thanks to
// array simplification — fused/avg bounded by ~4.

#include "table_typecounts_main.h"

int main() {
  return jsonsi::bench::RunTypeCountTable(
      jsonsi::datagen::DatasetId::kTwitter, "Table 3: Results for Twitter",
      "1K    167 | 7 123 35 |  95\n"
      "10K   677 | 7 123 35 | 122\n"
      "100K 2,320 | 7 123 35 | 139\n"
      "1M   8,117 | 7 123 35 | 152");
}
