// Micro-benchmarks (google-benchmark) for the hot paths of the pipeline:
// parsing, per-value inference, binary fusion, array collapse, membership,
// and the tree-vs-left fold comparison that motivates TreeFuser.

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include <vector>

#include "datagen/generator.h"
#include "fusion/fuse.h"
#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "annotate/counted_schema.h"
#include "json/serializer.h"
#include "types/membership.h"
#include "types/subtype.h"

namespace {

using namespace jsonsi;

std::vector<json::ValueRef> SampleValues(datagen::DatasetId id, size_t n) {
  return datagen::MakeGenerator(id, 42)->GenerateMany(n);
}

void BM_ParseRecord(benchmark::State& state) {
  std::string text = json::ToJson(*SampleValues(
      static_cast<datagen::DatasetId>(state.range(0)), 1)[0]);
  for (auto _ : state) {
    auto v = json::Parse(text);
    benchmark::DoNotOptimize(v);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseRecord)->DenseRange(0, 3)->Name("Parse/dataset");

void BM_SerializeRecord(benchmark::State& state) {
  auto values =
      SampleValues(static_cast<datagen::DatasetId>(state.range(0)), 1);
  std::string out;
  for (auto _ : state) {
    out.clear();
    json::AppendJson(*values[0], &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SerializeRecord)->DenseRange(0, 3)->Name("Serialize/dataset");

void BM_InferType(benchmark::State& state) {
  auto values =
      SampleValues(static_cast<datagen::DatasetId>(state.range(0)), 64);
  size_t i = 0;
  for (auto _ : state) {
    auto t = inference::InferType(*values[i++ % values.size()]);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_InferType)->DenseRange(0, 3)->Name("InferType/dataset");

void BM_FusePair(benchmark::State& state) {
  auto values =
      SampleValues(static_cast<datagen::DatasetId>(state.range(0)), 64);
  std::vector<types::TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  size_t i = 0;
  for (auto _ : state) {
    auto f = fusion::Fuse(ts[i % ts.size()], ts[(i + 1) % ts.size()]);
    benchmark::DoNotOptimize(f);
    ++i;
  }
}
BENCHMARK(BM_FusePair)->DenseRange(0, 3)->Name("FusePair/dataset");

void BM_FuseIntoAccumulator(benchmark::State& state) {
  // The per-record cost of maintaining a schema accumulator (the left-fold
  // reduce step); range(0) selects the dataset.
  auto values =
      SampleValues(static_cast<datagen::DatasetId>(state.range(0)), 256);
  std::vector<types::TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  types::TypeRef acc = fusion::FuseAll(ts);  // pre-warmed accumulator
  size_t i = 0;
  for (auto _ : state) {
    auto f = fusion::Fuse(acc, ts[i++ % ts.size()]);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_FuseIntoAccumulator)->DenseRange(0, 3)->Name("FuseAccum/dataset");

void BM_LeftFold1000(benchmark::State& state) {
  auto values =
      SampleValues(static_cast<datagen::DatasetId>(state.range(0)), 1000);
  std::vector<types::TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  for (auto _ : state) {
    auto f = fusion::FuseAll(ts);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_LeftFold1000)
    ->DenseRange(0, 3)
    ->Name("Fold1000/left/dataset")
    ->Unit(benchmark::kMillisecond);

void BM_TreeFold1000(benchmark::State& state) {
  auto values =
      SampleValues(static_cast<datagen::DatasetId>(state.range(0)), 1000);
  std::vector<types::TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  for (auto _ : state) {
    fusion::TreeFuser fuser;
    for (const auto& t : ts) fuser.Add(t);
    auto f = fuser.Finish();
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_TreeFold1000)
    ->DenseRange(0, 3)
    ->Name("Fold1000/tree/dataset")
    ->Unit(benchmark::kMillisecond);

void BM_CollapseArray(benchmark::State& state) {
  // Mixed-content array of range(0) elements (the Section 2 case).
  std::vector<types::TypeRef> elements;
  for (int64_t i = 0; i < state.range(0); ++i) {
    elements.push_back(
        i % 3 == 0
            ? types::Type::Str()
            : (i % 3 == 1 ? types::Type::Num()
                          : types::Type::RecordUnchecked(
                                {{"E", types::Type::Str(), false},
                                 {"F", types::Type::Num(), false}})));
  }
  auto array = types::Type::ArrayExact(elements);
  for (auto _ : state) {
    auto c = fusion::Collapse(array);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CollapseArray)->Arg(4)->Arg(32)->Arg(256)->Name("Collapse/len");

void BM_Membership(benchmark::State& state) {
  auto values =
      SampleValues(static_cast<datagen::DatasetId>(state.range(0)), 64);
  std::vector<types::TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  types::TypeRef schema = fusion::FuseAll(ts);
  size_t i = 0;
  for (auto _ : state) {
    bool ok = types::Matches(*values[i++ % values.size()], *schema);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Membership)->DenseRange(0, 3)->Name("Matches/dataset");

void BM_ProfilerObserve(benchmark::State& state) {
  auto values =
      SampleValues(static_cast<datagen::DatasetId>(state.range(0)), 256);
  annotate::SchemaProfiler profiler;
  size_t i = 0;
  for (auto _ : state) {
    profiler.Observe(*values[i % values.size()], i);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProfilerObserve)->DenseRange(0, 3)->Name("Profiler/dataset");

void BM_SubtypeCheck(benchmark::State& state) {
  auto values =
      SampleValues(static_cast<datagen::DatasetId>(state.range(0)), 128);
  std::vector<types::TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  types::TypeRef schema = fusion::FuseAll(ts);
  size_t i = 0;
  for (auto _ : state) {
    bool ok = types::IsSubtypeOf(*ts[i++ % ts.size()], *schema);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SubtypeCheck)->DenseRange(0, 3)->Name("Subtype/dataset");

}  // namespace

int main(int argc, char** argv) {
  // Writes BENCH_micro_fusion.json under JSI_BENCH_JSON (see bench_common.h).
  jsonsi::bench::BenchJsonScope scope("micro_fusion");
  jsonsi::bench::ApplyQuickArgs(&argc, &argv);  // JSI_BENCH_QUICK smoke mode
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  jsonsi::bench::PublishCacheTelemetry();
  return 0;
}
