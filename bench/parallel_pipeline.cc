// Parallel end-to-end pipeline scaling harness.
//
// Measures the full text-to-schema pipeline (chunked JSONL ingestion +
// partition-parallel map/fuse + parallel tree-reduce, see
// core/schema_inferencer.h) at 1/2/4/8 threads over the GitHub and Twitter
// generators, reporting wall-clock, records/s, and speedup vs the serial
// path. The schema of every thread count is checked structurally identical
// to the 1-thread result — a mismatch exits non-zero, so this harness
// doubles as a determinism gate on real-sized inputs.
//
// Speedups are only meaningful on multi-core hosts; the printed table
// includes the detected hardware concurrency so flat numbers on a 1-core
// box read as expected, not as a regression.
//
// Knobs: JSI_MAX_RECORDS (default 200,000 or 5,000 under JSI_BENCH_QUICK),
// JSI_SEED, JSI_BENCH_JSON (writes BENCH_parallel_pipeline.json).

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/schema_inferencer.h"
#include "json/jsonl.h"
#include "types/type.h"

namespace {

using namespace jsonsi;

struct Measurement {
  size_t threads = 0;
  double seconds = 0;
  core::Schema schema;
};

Measurement RunOnce(const std::string& text, size_t threads) {
  core::InferenceOptions options;
  options.num_threads = threads;
  options.parallel_ingest_min_bytes = 0;
  Measurement m;
  m.threads = threads;
  Stopwatch watch;
  auto result = core::SchemaInferencer(options).InferFromJsonLines(text);
  m.seconds = watch.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "parallel_pipeline: inference failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  m.schema = std::move(result).value();
  return m;
}

int RunDataset(datagen::DatasetId id, uint64_t records) {
  auto gen = datagen::MakeGenerator(id, bench::BenchSeed());
  std::vector<json::ValueRef> values;
  values.reserve(records);
  for (uint64_t i = 0; i < records; ++i) values.push_back(gen->Generate(i));
  const std::string text = json::ToJsonLines(values);
  values.clear();

  std::printf("%s: %s records, %.1f MiB JSONL\n", datagen::DatasetName(id),
              bench::SizeLabel(records).c_str(),
              static_cast<double>(text.size()) / (1024.0 * 1024.0));
  std::printf("%8s %10s %12s %9s\n", "threads", "wall s", "records/s",
              "speedup");

  double serial_seconds = 0;
  types::TypeRef serial_type;
  int failures = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    Measurement m = RunOnce(text, threads);
    if (threads == 1) {
      serial_seconds = m.seconds;
      serial_type = m.schema.type;
    } else if (!types::TypeEquals(serial_type, m.schema.type)) {
      // The determinism gate: parallel output must be structurally
      // identical to serial, not merely equivalent-looking.
      std::fprintf(stderr,
                   "parallel_pipeline: %s @ %zu threads diverged from the "
                   "serial schema\n",
                   datagen::DatasetName(id), threads);
      ++failures;
    }
    double speedup = m.seconds > 0 ? serial_seconds / m.seconds : 0;
    std::printf("%8zu %10.3f %12.0f %8.2fx\n", threads, m.seconds,
                m.seconds > 0 ? static_cast<double>(records) / m.seconds : 0,
                speedup);
    if (telemetry::Enabled()) {
      auto& registry = telemetry::MetricsRegistry::Global();
      const std::string prefix = std::string("bench.parallel.") +
                                 datagen::DatasetName(id) + ".t" +
                                 std::to_string(threads);
      registry.GetGauge(prefix + ".wall_ns")
          .Set(static_cast<int64_t>(m.seconds * 1e9));
      registry.GetGauge(prefix + ".speedup_x100")
          .Set(static_cast<int64_t>(speedup * 100));
    }
  }
  std::printf("\n");
  return failures;
}

}  // namespace

int main() {
  bench::BenchJsonScope scope("parallel_pipeline");
  const uint64_t records =
      bench::EnvU64("JSI_MAX_RECORDS", bench::BenchQuick() ? 5000 : 200000);
  std::printf("Parallel pipeline scaling (hardware concurrency: %u)\n\n",
              std::thread::hardware_concurrency());
  int failures = 0;
  failures += RunDataset(datagen::DatasetId::kGitHub, records);
  failures += RunDataset(datagen::DatasetId::kTwitter, records);
  bench::PublishCacheTelemetry();
  bench::PrintCacheStats();
  if (failures > 0) {
    std::fprintf(stderr, "parallel_pipeline: %d determinism failure(s)\n",
                 failures);
    return 1;
  }
  return 0;
}
