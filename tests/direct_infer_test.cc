// Differential tests for the DOM-free direct inference kernel
// (inference/direct_infer.h): DirectInferType must be observationally
// equivalent to the composed pipeline InferType(*Parse(text)) — same types
// (TypeEquals), and on malformed input the *same Status*, message and
// position byte-for-byte. The suite drives both paths over the datagen
// corpora, an adversarial gallery, every truncation of a nested document,
// all malformed-line policies through SchemaInferencer, the chunk-parallel
// path, the streaming inferencer, and the infer.direct.* telemetry
// contract (default path never materializes a json::Value).

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/schema_inferencer.h"
#include "core/streaming_inferencer.h"
#include "datagen/generator.h"
#include "inference/direct_infer.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "json/serializer.h"
#include "telemetry/telemetry.h"
#include "types/interner.h"
#include "types/printer.h"
#include "types/type.h"

namespace jsonsi {
namespace {

using core::InferenceOptions;
using core::SchemaInferencer;
using core::StreamingInferencer;
using core::StreamingOptions;
using inference::DirectInferType;
using json::MalformedLinePolicy;
using json::ParseOptions;

// Runs both pipelines on one document and asserts observational
// equivalence: equal types when both succeed, equal Status (code and
// message, hence position) when both fail, and never a split verdict.
void ExpectParity(std::string_view text, const ParseOptions& options = {}) {
  auto direct = DirectInferType(text, options);
  auto parsed = json::Parse(text, options);
  if (parsed.ok()) {
    ASSERT_TRUE(direct.ok())
        << "direct failed where parse succeeded on: " << text << "\n  "
        << direct.status().message();
    auto via_dom = inference::InferType(*parsed.value());
    EXPECT_TRUE(types::TypeEquals(direct.value(), via_dom))
        << "type mismatch on: " << text << "\n  direct: "
        << types::ToString(*direct.value())
        << "\n  dom:    " << types::ToString(*via_dom);
  } else {
    ASSERT_FALSE(direct.ok())
        << "direct succeeded where parse failed on: " << text
        << "\n  parse error: " << parsed.status().message();
    EXPECT_EQ(direct.status(), parsed.status()) << "on: " << text;
  }
}

TEST(DirectInferTest, ScalarsAndEmptyContainers) {
  for (std::string_view text :
       {"null", "true", "false", "0", "-1", "3.25", "1e6", "-2.5E-3",
        "\"\"", "\"abc\"", "{}", "[]", "  42  ", "\t\"x\"\n"}) {
    ExpectParity(text);
  }
}

TEST(DirectInferTest, NestedStructures) {
  for (std::string_view text :
       {R"({"a":1})", R"({"a":1,"b":"x"})", R"({"b":1,"a":2})",
        R"([1,2,3])", R"([1,"a",null,true])", R"([[1],[2,3],[]])",
        R"({"a":{"b":{"c":[]}}})", R"([{"a":1},{"a":2,"b":3}])",
        R"({"k":[{"x":null}],"m":{}})",
        R"({"esc":"a\nb\t\"c\"\\d\/e\u0041\uD83D\uDE00"})"}) {
    ExpectParity(text);
  }
}

TEST(DirectInferTest, AdversarialGalleryMatchesParserErrors) {
  for (std::string_view text : {
           // Literals and numbers.
           "nul", "truex", "fals", "01", "1.", "1e", "1e+", "-", "+1",
           ".5", "1e999", "--1", "1.2.3",
           // Strings and escapes.
           "\"abc", "\"a\\", "\"a\\q\"", "\"a\nb\"", "\"\\u12\"",
           "\"\\uZZZZ\"", "\"\\uD800x\"", "\"\\uD800\\u0041\"",
           "\"\\uDC00\"",
           // Records.
           "{", "{}x", "{\"a\"}", "{\"a\":}", "{\"a\" 1}", "{\"a\":1,}",
           "{\"a\":1 \"b\":2}", "{1:2}", "{\"a\":1,\"a\":2}",
           "{\"a\":1,\"b\":2,\"a\":3}", "{\"\\u0041\":1,\"A\":2}",
           // Arrays.
           "[", "[1,]", "[1 2]", "[,1]", "[1,2", "]", "}",
           // Top level.
           "", "   ", "1 2", "{} {}", ":", ",",
       }) {
    ExpectParity(text);
  }
}

TEST(DirectInferTest, DepthLimitParity) {
  ParseOptions shallow;
  shallow.max_depth = 4;
  for (std::string_view text :
       {"[[[[1]]]]", "[[[[[1]]]]]", R"({"a":{"b":{"c":{"d":1}}}})",
        R"({"a":{"b":{"c":{"d":{"e":1}}}}})", R"([{"a":[{"b":1}]}])"}) {
    ExpectParity(text, shallow);
    ExpectParity(text);  // default depth for good measure
  }
}

TEST(DirectInferTest, DocumentBudgetParity) {
  ParseOptions tight;
  tight.max_document_bytes = 16;
  for (std::string_view text :
       {"{\"key\":\"a much longer document\"}", "[1,2,3,4,5,6,7,8,9,10]",
        "\"exactly seventeen\"", "{\"a\":1}", "null", ""}) {
    ExpectParity(text, tight);
    ExpectParity(text);  // unlimited budget for good measure
  }
  // A document of exactly the limit is admitted.
  ParseOptions exact;
  exact.max_document_bytes = 7;
  ExpectParity("{\"a\":1}", exact);
  auto ok = DirectInferType("{\"a\":1}", exact);
  EXPECT_TRUE(ok.ok()) << ok.status().message();
}

TEST(DirectInferTest, TrailingContentOptionParity) {
  ParseOptions lenient;
  lenient.allow_trailing_content = true;
  for (std::string_view text : {"1 2", "{} {\"a\":1}", "null trailing",
                                "[1]   ", "\"x\"y"}) {
    ExpectParity(text, lenient);
  }
}

TEST(DirectInferTest, EveryTruncationOfANestedDocument) {
  const std::string doc =
      R"({"id":17,"tags":["a","b\u00e9"],"meta":{"ok":true,"note":null},)"
      R"("score":-1.5e2})";
  for (size_t n = 0; n <= doc.size(); ++n) {
    ExpectParity(std::string_view(doc).substr(0, n));
  }
}

TEST(DirectInferTest, DatagenDifferentialWithAndWithoutInterning) {
  for (auto id : {datagen::DatasetId::kGitHub, datagen::DatasetId::kTwitter,
                  datagen::DatasetId::kWikidata,
                  datagen::DatasetId::kNYTimes}) {
    auto values = datagen::MakeGenerator(id, 7)->GenerateMany(200);
    for (bool intern : {true, false}) {
      types::ScopedInterning scope(intern);
      for (const auto& v : values) {
        const std::string text = json::ToJson(v);
        auto direct = DirectInferType(text);
        ASSERT_TRUE(direct.ok()) << direct.status().message();
        EXPECT_TRUE(
            types::TypeEquals(direct.value(), inference::InferType(*v)))
            << "intern=" << intern << " on: " << text;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline-level equivalence: SchemaInferencer with direct_infer on vs off.

std::string DirtyJsonl() {
  std::string text = "\xEF\xBB\xBF";  // BOM on the first line
  auto values =
      datagen::MakeGenerator(datagen::DatasetId::kGitHub, 3)->GenerateMany(40);
  for (size_t i = 0; i < values.size(); ++i) {
    text += json::ToJson(values[i]);
    text += (i % 5 == 2) ? "\r\n" : "\n";
    if (i % 7 == 3) text += "\n";                  // blank line
    if (i % 9 == 4) text += "{\"broken\": nope}\n";  // malformed line
  }
  text += "not json at all\n";
  return text;
}

void ExpectIngestStatsEq(const json::IngestStats& a,
                         const json::IngestStats& b) {
  EXPECT_EQ(a.lines_read, b.lines_read);
  EXPECT_EQ(a.blank_lines, b.blank_lines);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.malformed_lines, b.malformed_lines);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_EQ(a.errors[i].line_number, b.errors[i].line_number);
    EXPECT_EQ(a.errors[i].byte_offset, b.errors[i].byte_offset);
    EXPECT_EQ(a.errors[i].message, b.errors[i].message);
  }
}

TEST(DirectInferPipelineTest, PolicyDifferentialAgainstDomPath) {
  const std::string text = DirtyJsonl();
  for (auto policy : {MalformedLinePolicy::kFail, MalformedLinePolicy::kSkip,
                      MalformedLinePolicy::kFailAboveRate}) {
    for (double rate : {0.01, 0.5}) {
      InferenceOptions direct_opts;
      direct_opts.num_threads = 1;
      direct_opts.ingest.on_malformed = policy;
      direct_opts.ingest.max_error_rate = rate;
      direct_opts.ingest.min_lines_for_rate = 4;
      InferenceOptions dom_opts = direct_opts;
      dom_opts.direct_infer = false;

      json::IngestStats direct_stats, dom_stats;
      auto direct = SchemaInferencer(direct_opts)
                        .InferFromJsonLines(text, &direct_stats);
      auto dom =
          SchemaInferencer(dom_opts).InferFromJsonLines(text, &dom_stats);

      ASSERT_EQ(direct.ok(), dom.ok())
          << "policy=" << static_cast<int>(policy) << " rate=" << rate;
      ExpectIngestStatsEq(direct_stats, dom_stats);
      if (direct.ok()) {
        EXPECT_TRUE(types::TypeEquals(direct.value().type, dom.value().type));
        EXPECT_EQ(direct.value().stats.record_count,
                  dom.value().stats.record_count);
        // Mode accounting: each pipeline attributes every record to its
        // own ingestion path.
        EXPECT_EQ(direct.value().stats.direct_records,
                  direct.value().stats.record_count);
        EXPECT_EQ(direct.value().stats.dom_records, 0u);
        EXPECT_EQ(dom.value().stats.dom_records,
                  dom.value().stats.record_count);
        EXPECT_EQ(dom.value().stats.direct_records, 0u);
      } else {
        EXPECT_EQ(direct.status(), dom.status());
      }
    }
  }
}

TEST(DirectInferPipelineTest, ParallelSchemaIdenticalToSerial) {
  std::string text;
  auto values = datagen::MakeGenerator(datagen::DatasetId::kTwitter, 11)
                    ->GenerateMany(120);
  for (const auto& v : values) {
    text += json::ToJson(v);
    text += '\n';
  }

  InferenceOptions serial;
  serial.num_threads = 1;
  auto base = SchemaInferencer(serial).InferFromJsonLines(text);
  ASSERT_TRUE(base.ok()) << base.status().message();

  for (size_t threads : {2u, 4u}) {
    InferenceOptions par = serial;
    par.num_threads = threads;
    par.parallel_ingest_min_bytes = 0;  // force chunking on this small input
    auto schema = SchemaInferencer(par).InferFromJsonLines(text);
    ASSERT_TRUE(schema.ok()) << schema.status().message();
    EXPECT_TRUE(types::TypeEquals(schema.value().type, base.value().type))
        << "threads=" << threads;
    EXPECT_EQ(schema.value().stats.record_count,
              base.value().stats.record_count);
    EXPECT_EQ(schema.value().stats.direct_records, values.size());
  }
}

// ---------------------------------------------------------------------------
// Telemetry contract: the default path never materializes a json::Value.

class DirectInferTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::MetricsRegistry::Global().ResetAll();
    telemetry::SetEnabled(true);
  }
  void TearDown() override {
    telemetry::SetEnabled(false);
    telemetry::MetricsRegistry::Global().ResetAll();
  }
};

TEST_F(DirectInferTelemetryTest, DefaultPathBypassesDomForEveryRecord) {
  std::string text;
  constexpr size_t kRecords = 64;
  auto values = datagen::MakeGenerator(datagen::DatasetId::kNYTimes, 5)
                    ->GenerateMany(kRecords);
  for (const auto& v : values) {
    text += json::ToJson(v);
    text += '\n';
  }

  InferenceOptions options;
  options.num_threads = 1;
  auto schema = SchemaInferencer(options).InferFromJsonLines(text);
  ASSERT_TRUE(schema.ok()) << schema.status().message();

  auto snap = telemetry::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.CounterValue("infer.direct.records"), kRecords);
  EXPECT_EQ(snap.CounterValue("infer.direct.dom_bypassed"), kRecords);
  EXPECT_EQ(snap.CounterValue("infer.direct.errors"), 0u);
  EXPECT_EQ(snap.CounterValue("parse.calls"), 0u)
      << "direct path must not invoke the DOM parser";

  // The DOM fallback, by contrast, parses every record.
  telemetry::MetricsRegistry::Global().ResetAll();
  options.direct_infer = false;
  schema = SchemaInferencer(options).InferFromJsonLines(text);
  ASSERT_TRUE(schema.ok()) << schema.status().message();
  snap = telemetry::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.CounterValue("parse.calls"), kRecords);
  EXPECT_EQ(snap.CounterValue("infer.direct.records"), 0u);
}

// ---------------------------------------------------------------------------
// Streaming inferencer parity.

TEST(DirectInferStreamingTest, StreamingDirectMatchesDomSnapshot) {
  const std::string text = DirtyJsonl();
  StreamingOptions direct_opts;
  direct_opts.on_malformed = MalformedLinePolicy::kSkip;
  StreamingOptions dom_opts = direct_opts;
  dom_opts.direct_infer = false;

  StreamingInferencer direct(direct_opts), dom(dom_opts);
  ASSERT_TRUE(direct.AddJsonLines(text).ok());
  ASSERT_TRUE(dom.AddJsonLines(text).ok());
  // Feed a second batch to exercise cumulative stats on the direct arm.
  ASSERT_TRUE(direct.AddJsonLines(text).ok());
  ASSERT_TRUE(dom.AddJsonLines(text).ok());

  EXPECT_EQ(direct.record_count(), dom.record_count());
  EXPECT_EQ(direct.malformed_count(), dom.malformed_count());
  ExpectIngestStatsEq(direct.ingest_stats(), dom.ingest_stats());
  EXPECT_TRUE(types::TypeEquals(direct.Snapshot().type, dom.Snapshot().type));
}

TEST(DirectInferStreamingTest, StreamingParallelMatchesSerial) {
  std::string text;
  auto values = datagen::MakeGenerator(datagen::DatasetId::kWikidata, 9)
                    ->GenerateMany(150);
  for (const auto& v : values) {
    text += json::ToJson(v);
    text += '\n';
  }

  StreamingInferencer serial, parallel;
  ASSERT_TRUE(serial.AddJsonLines(text).ok());
  ASSERT_TRUE(parallel.AddJsonLinesParallel(text, 4).ok());
  EXPECT_EQ(serial.record_count(), parallel.record_count());
  EXPECT_TRUE(
      types::TypeEquals(serial.Snapshot().type, parallel.Snapshot().type));
  ExpectIngestStatsEq(serial.ingest_stats(), parallel.ingest_stats());
}

TEST(DirectInferStreamingTest, ProfilerForcesDomPathAndStaysExact) {
  std::string text;
  auto values = datagen::MakeGenerator(datagen::DatasetId::kGitHub, 21)
                    ->GenerateMany(30);
  for (const auto& v : values) {
    text += json::ToJson(v);
    text += '\n';
  }

  StreamingOptions profiled;
  profiled.profile = true;  // direct_infer stays true but must be ignored
  StreamingInferencer with_profile(profiled), plain;
  ASSERT_TRUE(with_profile.AddJsonLines(text).ok());
  ASSERT_TRUE(plain.AddJsonLines(text).ok());
  ASSERT_NE(with_profile.profiler(), nullptr);
  EXPECT_EQ(with_profile.record_count(), plain.record_count());
  EXPECT_TRUE(types::TypeEquals(with_profile.Snapshot().type,
                                plain.Snapshot().type));
}

}  // namespace
}  // namespace jsonsi
