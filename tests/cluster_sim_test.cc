// Tests for the virtual-time cluster simulator: determinism, locality
// effects (the paper's under-utilisation pathology), bandwidth accounting,
// and the partitioned-strategy speedup it must reproduce.

#include <gtest/gtest.h>

#include "engine/cluster_sim.h"

namespace jsonsi::engine {
namespace {

ClusterConfig PaperCluster() {
  return ClusterConfig{};  // 6 nodes x 20 cores, 1 GbE defaults
}

TEST(ClusterSimTest, Deterministic) {
  auto tasks = MakeUniformTasks(24, 120.0, 24e9, 0, 4096);
  auto a = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001);
  auto b = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001);
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.nodes_used, b.nodes_used);
}

TEST(ClusterSimTest, LocalOnlyWithOneDataNodeUsesOneNode) {
  // The paper's observed pathology: HDFS put the whole dataset on one node,
  // so local-only scheduling serializes the job onto that node.
  auto tasks = MakeUniformTasks(40, 200.0, 22e9, /*data_node=*/2, 4096);
  auto result = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001);
  EXPECT_EQ(result.nodes_used, 1u);
  // 200 CPU-seconds on one 20-core node: ~10s + overheads.
  EXPECT_GE(result.makespan_seconds, 10.0);
  EXPECT_LT(result.makespan_seconds, 12.0);
}

TEST(ClusterSimTest, SpreadDataUsesWholeClusterAndIsFaster) {
  ClusterConfig cfg = PaperCluster();
  auto hot = MakeUniformTasks(60, 300.0, 22e9, 0, 4096);
  auto spread = MakeSpreadTasks(60, 300.0, 22e9, cfg.num_nodes, 4096);
  auto bad = SimulateJob(hot, cfg, Placement::kLocalOnly, 0.001);
  auto good = SimulateJob(spread, cfg, Placement::kLocalOnly, 0.001);
  EXPECT_EQ(good.nodes_used, cfg.num_nodes);
  EXPECT_LT(good.makespan_seconds, bad.makespan_seconds);
  // Ideal speedup is 6x; scheduling overheads keep it below that but it
  // must be substantial.
  EXPECT_GT(bad.makespan_seconds / good.makespan_seconds, 2.5);
}

TEST(ClusterSimTest, AnyPlacementPaysTransferButBeatsSerialization) {
  ClusterConfig cfg = PaperCluster();
  auto hot = MakeUniformTasks(60, 300.0, 22e9, 0, 4096);
  auto local = SimulateJob(hot, cfg, Placement::kLocalOnly, 0.001);
  auto any = SimulateJob(hot, cfg, Placement::kAnyWithTransfer, 0.001);
  // Remote reads let other nodes help: faster than one hot node...
  EXPECT_LT(any.makespan_seconds, local.makespan_seconds);
  // ...but slower than if data had been spread (network is the bottleneck).
  auto spread = SimulateJob(
      MakeSpreadTasks(60, 300.0, 22e9, cfg.num_nodes, 4096), cfg,
      Placement::kLocalOnly, 0.001);
  EXPECT_GT(any.makespan_seconds, spread.makespan_seconds);
}

TEST(ClusterSimTest, MapSecondsNotAboveMakespan) {
  auto tasks = MakeSpreadTasks(12, 60.0, 1e9, 6, 2048);
  auto r = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.01);
  EXPECT_LE(r.map_seconds, r.makespan_seconds);
  EXPECT_GT(r.map_seconds, 0.0);
}

TEST(ClusterSimTest, ReduceCombineCostAddsTreeDepth) {
  auto tasks = MakeSpreadTasks(16, 16.0, 1e8, 6, 0);
  auto cheap = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.0);
  auto costly = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 1.0);
  // 16 partials -> tree depth 4 -> +4 seconds.
  EXPECT_NEAR(costly.makespan_seconds - cheap.makespan_seconds, 4.0, 1e-9);
}

TEST(ClusterSimTest, BusySecondsAccountedPerNode) {
  auto tasks = MakeSpreadTasks(6, 6.0, 6e6, 6, 0);
  auto r = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.0);
  ASSERT_EQ(r.node_busy_seconds.size(), 6u);
  for (double busy : r.node_busy_seconds) EXPECT_GT(busy, 0.0);
  EXPECT_EQ(r.nodes_used, 6u);
}

TEST(ClusterSimTest, SingleMachineConfigModelsTheMacMini) {
  // The paper's first hardware: one dual-core machine. Virtual time for a
  // 100-CPU-second job must be ~50s.
  ClusterConfig mac;
  mac.num_nodes = 1;
  mac.cores_per_node = 2;
  auto tasks = MakeUniformTasks(8, 100.0, 1e9, 0, 1024);
  auto r = SimulateJob(tasks, mac, Placement::kLocalOnly, 0.001);
  EXPECT_NEAR(r.makespan_seconds, 50.0, 1.0);
}

TEST(ClusterSimTest, UniformAndSpreadTaskBuilders) {
  auto uniform = MakeUniformTasks(4, 8.0, 4000, 3, 99);
  ASSERT_EQ(uniform.size(), 4u);
  for (const SimTask& t : uniform) {
    EXPECT_DOUBLE_EQ(t.compute_seconds, 2.0);
    EXPECT_EQ(t.input_bytes, 1000u);
    EXPECT_EQ(t.output_bytes, 99u);
    EXPECT_EQ(t.replica_nodes, std::vector<size_t>{3});
  }
  auto spread = MakeSpreadTasks(4, 8.0, 4000, 2, 99);
  EXPECT_EQ(spread[0].replica_nodes, std::vector<size_t>{0});
  EXPECT_EQ(spread[1].replica_nodes, std::vector<size_t>{1});
  EXPECT_EQ(spread[2].replica_nodes, std::vector<size_t>{0});
}

}  // namespace
}  // namespace jsonsi::engine
