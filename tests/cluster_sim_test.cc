// Tests for the virtual-time cluster simulator: determinism, locality
// effects (the paper's under-utilisation pathology), bandwidth accounting,
// and the partitioned-strategy speedup it must reproduce.

#include <gtest/gtest.h>

#include "engine/cluster_sim.h"

namespace jsonsi::engine {
namespace {

ClusterConfig PaperCluster() {
  return ClusterConfig{};  // 6 nodes x 20 cores, 1 GbE defaults
}

TEST(ClusterSimTest, Deterministic) {
  auto tasks = MakeUniformTasks(24, 120.0, 24e9, 0, 4096);
  auto a = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001);
  auto b = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001);
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.nodes_used, b.nodes_used);
}

TEST(ClusterSimTest, LocalOnlyWithOneDataNodeUsesOneNode) {
  // The paper's observed pathology: HDFS put the whole dataset on one node,
  // so local-only scheduling serializes the job onto that node.
  auto tasks = MakeUniformTasks(40, 200.0, 22e9, /*data_node=*/2, 4096);
  auto result =
      SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001);
  EXPECT_EQ(result.nodes_used, 1u);
  // 200 CPU-seconds on one 20-core node: ~10s + overheads.
  EXPECT_GE(result.makespan_seconds, 10.0);
  EXPECT_LT(result.makespan_seconds, 12.0);
}

TEST(ClusterSimTest, SpreadDataUsesWholeClusterAndIsFaster) {
  ClusterConfig cfg = PaperCluster();
  auto hot = MakeUniformTasks(60, 300.0, 22e9, 0, 4096);
  auto spread = MakeSpreadTasks(60, 300.0, 22e9, cfg.num_nodes, 4096);
  auto bad = SimulateJob(hot, cfg, Placement::kLocalOnly, 0.001);
  auto good = SimulateJob(spread, cfg, Placement::kLocalOnly, 0.001);
  EXPECT_EQ(good.nodes_used, cfg.num_nodes);
  EXPECT_LT(good.makespan_seconds, bad.makespan_seconds);
  // Ideal speedup is 6x; scheduling overheads keep it below that but it
  // must be substantial.
  EXPECT_GT(bad.makespan_seconds / good.makespan_seconds, 2.5);
}

TEST(ClusterSimTest, AnyPlacementPaysTransferButBeatsSerialization) {
  ClusterConfig cfg = PaperCluster();
  auto hot = MakeUniformTasks(60, 300.0, 22e9, 0, 4096);
  auto local = SimulateJob(hot, cfg, Placement::kLocalOnly, 0.001);
  auto any = SimulateJob(hot, cfg, Placement::kAnyWithTransfer, 0.001);
  // Remote reads let other nodes help: faster than one hot node...
  EXPECT_LT(any.makespan_seconds, local.makespan_seconds);
  // ...but slower than if data had been spread (network is the bottleneck).
  auto spread = SimulateJob(
      MakeSpreadTasks(60, 300.0, 22e9, cfg.num_nodes, 4096), cfg,
      Placement::kLocalOnly, 0.001);
  EXPECT_GT(any.makespan_seconds, spread.makespan_seconds);
}

TEST(ClusterSimTest, MapSecondsNotAboveMakespan) {
  auto tasks = MakeSpreadTasks(12, 60.0, 1e9, 6, 2048);
  auto r = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.01);
  EXPECT_LE(r.map_seconds, r.makespan_seconds);
  EXPECT_GT(r.map_seconds, 0.0);
}

TEST(ClusterSimTest, ReduceCombineCostAddsTreeDepth) {
  auto tasks = MakeSpreadTasks(16, 16.0, 1e8, 6, 0);
  auto cheap = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.0);
  auto costly = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 1.0);
  // 16 partials -> tree depth 4 -> +4 seconds.
  EXPECT_NEAR(costly.makespan_seconds - cheap.makespan_seconds, 4.0, 1e-9);
}

TEST(ClusterSimTest, BusySecondsAccountedPerNode) {
  auto tasks = MakeSpreadTasks(6, 6.0, 6e6, 6, 0);
  auto r = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.0);
  ASSERT_EQ(r.node_busy_seconds.size(), 6u);
  for (double busy : r.node_busy_seconds) EXPECT_GT(busy, 0.0);
  EXPECT_EQ(r.nodes_used, 6u);
}

TEST(ClusterSimTest, SingleMachineConfigModelsTheMacMini) {
  // The paper's first hardware: one dual-core machine. Virtual time for a
  // 100-CPU-second job must be ~50s.
  ClusterConfig mac;
  mac.num_nodes = 1;
  mac.cores_per_node = 2;
  auto tasks = MakeUniformTasks(8, 100.0, 1e9, 0, 1024);
  auto r = SimulateJob(tasks, mac, Placement::kLocalOnly, 0.001);
  EXPECT_NEAR(r.makespan_seconds, 50.0, 1.0);
}

// ------------------------------------------------- fault injection --------

TEST(ClusterSimFaultTest, EmptyScheduleMatchesLegacyOverload) {
  // The fault-aware scheduler must be bit-identical to the pre-existing
  // greedy loop when no faults are injected, for every placement/shape.
  struct Case {
    std::vector<SimTask> tasks;
    Placement placement;
  };
  std::vector<Case> cases;
  cases.push_back({MakeUniformTasks(40, 200.0, 22e9, 2, 4096),
                   Placement::kLocalOnly});
  cases.push_back({MakeSpreadTasks(60, 300.0, 22e9, 6, 4096),
                   Placement::kLocalOnly});
  cases.push_back({MakeUniformTasks(60, 300.0, 22e9, 0, 4096),
                   Placement::kAnyWithTransfer});
  for (const Case& c : cases) {
    auto legacy = SimulateJob(c.tasks, PaperCluster(), c.placement, 0.001);
    auto faulty = SimulateJob(c.tasks, PaperCluster(), c.placement, 0.001,
                              FaultSchedule{}, RecoveryPolicy{});
    EXPECT_DOUBLE_EQ(legacy.makespan_seconds, faulty.makespan_seconds);
    EXPECT_DOUBLE_EQ(legacy.map_seconds, faulty.map_seconds);
    EXPECT_EQ(legacy.nodes_used, faulty.nodes_used);
    ASSERT_EQ(legacy.task_finish_seconds.size(),
              faulty.task_finish_seconds.size());
    for (size_t i = 0; i < legacy.task_finish_seconds.size(); ++i) {
      EXPECT_DOUBLE_EQ(legacy.task_finish_seconds[i],
                       faulty.task_finish_seconds[i]);
    }
    EXPECT_EQ(faulty.attempt_failures, 0u);
    EXPECT_EQ(faulty.retries, 0u);
    EXPECT_TRUE(faulty.completed);
    EXPECT_DOUBLE_EQ(faulty.wasted_seconds, 0.0);
    EXPECT_DOUBLE_EQ(faulty.recovery_overhead_seconds, 0.0);
  }
}

FaultSchedule MixedFaults() {
  FaultSchedule faults;
  faults.crashes = {NodeCrash{1, 0.8, 1.5}};
  faults.straggler_factor = {1.0, 1.0, 1.0, 4.0};
  faults.corrupt_tasks = {3, 17};
  return faults;
}

TEST(ClusterSimFaultTest, FaultyRunIsDeterministic) {
  auto tasks = MakeSpreadTasks(48, 240.0, 22e9, 6, 4096);
  for (uint64_t seed : {7u, 8u, 9u}) {
    RecoveryPolicy policy;
    policy.seed = seed;
    policy.speculation_threshold = 2.0;
    auto a = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001,
                         MixedFaults(), policy);
    auto b = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001,
                         MixedFaults(), policy);
    EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
    EXPECT_DOUBLE_EQ(a.wasted_seconds, b.wasted_seconds);
    EXPECT_DOUBLE_EQ(a.backoff_wait_seconds, b.backoff_wait_seconds);
    EXPECT_EQ(a.attempt_failures, b.attempt_failures);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.speculative_launches, b.speculative_launches);
    ASSERT_EQ(a.task_finish_seconds.size(), b.task_finish_seconds.size());
    for (size_t i = 0; i < a.task_finish_seconds.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.task_finish_seconds[i], b.task_finish_seconds[i]);
    }
  }
}

TEST(ClusterSimFaultTest, CorruptPartitionRetriesAndRecovers) {
  auto tasks = MakeSpreadTasks(24, 120.0, 22e9, 6, 4096);
  FaultSchedule faults;
  faults.corrupt_tasks = {5};
  faults.corrupt_attempt_failures = 1;
  auto r = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001,
                       faults, RecoveryPolicy{});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.failed_tasks, 0u);
  EXPECT_EQ(r.attempt_failures, 1u);
  EXPECT_EQ(r.retries, 1u);
  EXPECT_GT(r.wasted_seconds, 0.0);
  EXPECT_GT(r.backoff_wait_seconds, 0.0);
  EXPECT_GT(r.recovery_overhead_seconds, 0.0);
}

TEST(ClusterSimFaultTest, PermanentNodeLossFallsBackToRemoteReplica) {
  // All data on node 2; node 2 dies mid-run and never comes back. Under
  // kLocalOnly the scheduler must fall back to remote reads of the
  // surviving replica rather than deadlock.
  auto tasks = MakeUniformTasks(40, 200.0, 22e9, 2, 4096);
  FaultSchedule faults;
  faults.crashes = {NodeCrash{2, 2.0}};  // infinite downtime
  auto r = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001,
                       faults, RecoveryPolicy{});
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.attempt_failures, 0u);
  EXPECT_GT(r.nodes_used, 1u);
  EXPECT_GT(r.recovery_overhead_seconds, 0.0);
}

TEST(ClusterSimFaultTest, SpeculationNeutralizesStraggler) {
  auto tasks = MakeSpreadTasks(30, 150.0, 1e9, 6, 1024);
  FaultSchedule faults;
  faults.straggler_factor = {6.0};  // node 0 six times slower
  RecoveryPolicy no_spec;
  RecoveryPolicy spec;
  spec.speculation_threshold = 2.0;
  auto slow = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001,
                          faults, no_spec);
  auto helped = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly,
                            0.001, faults, spec);
  EXPECT_EQ(slow.speculative_launches, 0u);
  EXPECT_GT(helped.speculative_launches, 0u);
  EXPECT_GT(helped.speculative_wins, 0u);
  EXPECT_LT(helped.makespan_seconds, slow.makespan_seconds);
}

TEST(ClusterSimFaultTest, RepeatedFailuresBlacklistTheNode) {
  // Every task's data lives on node 0, which crashes briefly mid-run and
  // kills the attempts running there: after two failures the node is
  // blacklisted and the rest of the job runs remotely on healthy nodes
  // (which never fail, so exactly one node is ever blacklisted).
  auto tasks = MakeUniformTasks(20, 100.0, 1e9, 0, 1024);
  FaultSchedule faults;
  faults.crashes = {NodeCrash{0, 1.0, 0.1}};
  RecoveryPolicy policy;
  policy.blacklist_after_failures = 2;
  auto r = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001,
                       faults, policy);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.nodes_blacklisted, 1u);
  EXPECT_GT(r.nodes_used, 1u);
}

TEST(ClusterSimFaultTest, ExhaustedAttemptsMarkJobIncomplete) {
  auto tasks = MakeSpreadTasks(12, 60.0, 1e9, 6, 1024);
  FaultSchedule faults;
  faults.corrupt_tasks = {4};
  faults.corrupt_attempt_failures = 100;  // never heals
  RecoveryPolicy policy;
  policy.max_attempts_per_task = 3;
  auto r = SimulateJob(tasks, PaperCluster(), Placement::kLocalOnly, 0.001,
                       faults, policy);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.failed_tasks, 1u);
  EXPECT_EQ(r.attempt_failures, 3u);
  EXPECT_EQ(r.retries, 2u);
}

TEST(ClusterSimFaultTest, SmallPartitionsLoseLessWorkToACrash) {
  // The robustness angle on the paper's early-fusion design: partial schemas
  // are small, so nothing forces coarse partitions — and finer partitions
  // bound the work a mid-task crash destroys.
  ClusterConfig one_node;
  one_node.num_nodes = 1;
  one_node.cores_per_node = 20;
  FaultSchedule faults;
  faults.crashes = {NodeCrash{0, 0.5, 0.5}};
  auto coarse = SimulateJob(MakeUniformTasks(20, 40.0, 1e9, 0, 1024), one_node,
                            Placement::kLocalOnly, 0.001, faults,
                            RecoveryPolicy{});
  auto fine = SimulateJob(MakeUniformTasks(160, 40.0, 1e9, 0, 1024), one_node,
                          Placement::kLocalOnly, 0.001, faults,
                          RecoveryPolicy{});
  ASSERT_TRUE(coarse.completed);
  ASSERT_TRUE(fine.completed);
  EXPECT_LT(fine.wasted_seconds, coarse.wasted_seconds);
  EXPECT_LT(fine.recovery_overhead_seconds, coarse.recovery_overhead_seconds);
}

TEST(ClusterSimTest, UniformAndSpreadTaskBuilders) {
  auto uniform = MakeUniformTasks(4, 8.0, 4000, 3, 99);
  ASSERT_EQ(uniform.size(), 4u);
  for (const SimTask& t : uniform) {
    EXPECT_DOUBLE_EQ(t.compute_seconds, 2.0);
    EXPECT_EQ(t.input_bytes, 1000u);
    EXPECT_EQ(t.output_bytes, 99u);
    EXPECT_EQ(t.replica_nodes, std::vector<size_t>{3});
  }
  auto spread = MakeSpreadTasks(4, 8.0, 4000, 2, 99);
  EXPECT_EQ(spread[0].replica_nodes, std::vector<size_t>{0});
  EXPECT_EQ(spread[1].replica_nodes, std::vector<size_t>{1});
  EXPECT_EQ(spread[2].replica_nodes, std::vector<size_t>{0});
}

}  // namespace
}  // namespace jsonsi::engine
