// Tests for the map/reduce engine: thread pool, partitioning, Map,
// MapPartitions, tree Reduce vs sequential fold equivalence, metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "engine/dataset.h"
#include "engine/retry.h"
#include "engine/thread_pool.h"
#include "fusion/fuse.h"
#include "inference/infer.h"
#include "random_value_gen.h"
#include "types/type.h"

namespace jsonsi::engine {
namespace {

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ExceptionInTaskBecomesStatusNotTermination) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([] { throw std::runtime_error("disk on fire"); });
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  // The other tasks keep running; the error is reported, not thrown.
  EXPECT_EQ(counter.load(), 20);
  EXPECT_FALSE(pool.first_error().ok());
  EXPECT_NE(pool.first_error().message().find("disk on fire"),
            std::string::npos);
  EXPECT_EQ(pool.failed_task_count(), 1u);
}

TEST(ThreadPoolTest, FirstErrorKeptAcrossLaterFailures) {
  ThreadPool pool(1);  // one worker => deterministic failure order
  pool.Submit([] { throw std::runtime_error("first"); });
  pool.Submit([] { throw std::runtime_error("second"); });
  pool.Wait();
  EXPECT_EQ(pool.failed_task_count(), 2u);
  EXPECT_NE(pool.first_error().message().find("first"), std::string::npos);
}

TEST(ThreadPoolTest, NonStdExceptionCaught) {
  ThreadPool pool(1);
  pool.Submit([] { throw 42; });
  pool.Wait();
  EXPECT_FALSE(pool.first_error().ok());
  EXPECT_EQ(pool.failed_task_count(), 1u);
}

TEST(ThreadPoolTest, ResetErrorsClearsTheChannel) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("transient"); });
  pool.Wait();
  ASSERT_FALSE(pool.first_error().ok());
  pool.ResetErrors();
  EXPECT_TRUE(pool.first_error().ok());
  EXPECT_EQ(pool.failed_task_count(), 0u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_TRUE(pool.first_error().ok());
}

// ---------------------------------------------------------- RunWithRetry --

RetryPolicy FastPolicy() {
  RetryPolicy p;
  p.sleep_between_attempts = false;  // account backoff, don't sleep
  return p;
}

TEST(RetryTest, FirstAttemptSuccessDoesNotRetry) {
  RetryStats stats;
  Status st = RunWithRetry([] { return Status::OK(); }, FastPolicy(), &stats);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_DOUBLE_EQ(stats.total_backoff_seconds, 0.0);
  EXPECT_TRUE(stats.last_error.ok());
}

TEST(RetryTest, TransientFailureHealsWithinBudget) {
  int calls = 0;
  RetryStats stats;
  Status st = RunWithRetry(
      [&calls]() -> Status {
        return ++calls < 3 ? Status::Internal("flaky") : Status::OK();
      },
      FastPolicy(), &stats);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_GT(stats.total_backoff_seconds, 0.0);
}

TEST(RetryTest, BudgetExhaustionReturnsLastError) {
  int calls = 0;
  RetryPolicy policy = FastPolicy();
  policy.max_attempts = 4;
  Status st = RunWithRetry(
      [&calls]() -> Status {
        ++calls;
        return Status::Internal("always down");
      },
      policy);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 4);
  EXPECT_NE(st.message().find("always down"), std::string::npos);
}

TEST(RetryTest, DeterministicInputErrorsAreNotRetried) {
  for (Status permanent :
       {Status::ParseError("bad json"), Status::InvalidArgument("bad flag"),
        Status::NotFound("no file"), Status::OutOfRange("index")}) {
    int calls = 0;
    Status st = RunWithRetry(
        [&]() -> Status {
          ++calls;
          return permanent;
        },
        FastPolicy());
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(calls, 1) << permanent;  // no second attempt
  }
}

TEST(RetryTest, CustomRetryablePredicateWins) {
  RetryPolicy policy = FastPolicy();
  policy.retryable = [](const Status& s) {
    return s.code() == StatusCode::kNotFound;  // e.g. eventual consistency
  };
  int calls = 0;
  Status st = RunWithRetry(
      [&calls]() -> Status {
        return ++calls < 2 ? Status::NotFound("not yet") : Status::OK();
      },
      policy);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, BackoffSequenceIsSeededAndDeterministic) {
  auto run = [](uint64_t seed) {
    RetryPolicy policy = FastPolicy();
    policy.max_attempts = 5;
    policy.seed = seed;
    RetryStats stats;
    RunWithRetry([] { return Status::Internal("down"); }, policy, &stats);
    return stats.total_backoff_seconds;
  };
  EXPECT_DOUBLE_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // jitter actually depends on the seed
}

TEST(RetryTest, BackoffGrowsButIsCapped) {
  RetryPolicy policy = FastPolicy();
  policy.max_attempts = 10;
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.04;
  policy.jitter_fraction = 0.0;
  RetryStats stats;
  RunWithRetry([] { return Status::Internal("down"); }, policy, &stats);
  // 0.01 + 0.02 + 0.04 * 7 (capped) = 0.31, nine pauses for ten attempts.
  EXPECT_NEAR(stats.total_backoff_seconds, 0.31, 1e-12);
}

// --------------------------------------------------------------- Dataset --

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(DatasetTest, PartitioningIsBalancedAndComplete) {
  auto ds = Dataset<int>::FromVector(Iota(10), 3);
  EXPECT_EQ(ds.num_partitions(), 3u);
  EXPECT_EQ(ds.size(), 10u);
  // 10 = 4 + 3 + 3
  EXPECT_EQ(ds.partition(0).size(), 4u);
  EXPECT_EQ(ds.partition(1).size(), 3u);
  EXPECT_EQ(ds.partition(2).size(), 3u);
  EXPECT_EQ(ds.Collect(), Iota(10));
}

TEST(DatasetTest, MorePartitionsThanItemsClamped) {
  auto ds = Dataset<int>::FromVector(Iota(2), 8);
  EXPECT_EQ(ds.num_partitions(), 2u);
  EXPECT_EQ(ds.Collect(), Iota(2));
}

TEST(DatasetTest, EmptyDataset) {
  auto ds = Dataset<int>::FromVector({}, 4);
  EXPECT_EQ(ds.size(), 0u);
  ThreadPool pool(2);
  int sum = ds.Reduce(pool, 0, [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, 0);
}

TEST(DatasetTest, MapTransformsEveryElement) {
  ThreadPool pool(3);
  auto ds = Dataset<int>::FromVector(Iota(100), 7);
  StageMetrics metrics;
  auto doubled = ds.Map(pool, [](const int& x) { return x * 2; }, &metrics);
  auto out = doubled.Collect();
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], 2 * i);
  EXPECT_EQ(metrics.partition_seconds.size(), 7u);
  EXPECT_GE(metrics.TotalSeconds(), 0.0);
  EXPECT_GE(metrics.MaxSeconds(), 0.0);
}

TEST(DatasetTest, MapChangesElementType) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector(Iota(5), 2);
  auto strs = ds.Map(pool, [](const int& x) { return std::to_string(x); });
  EXPECT_EQ(strs.Collect(),
            (std::vector<std::string>{"0", "1", "2", "3", "4"}));
}

TEST(DatasetTest, MapPartitionsSeesWholePartitions) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector(Iota(10), 4);
  auto sums = ds.MapPartitions(pool, [](const std::vector<int>& part) {
    return std::vector<int>{std::accumulate(part.begin(), part.end(), 0)};
  });
  auto out = sums.Collect();
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 45);
}

TEST(DatasetTest, ReduceMatchesSequentialFoldForAssociativeOp) {
  ThreadPool pool(4);
  auto items = Iota(1000);
  for (size_t parts : {1u, 2u, 3u, 7u, 16u}) {
    auto ds = Dataset<int>::FromVector(items, parts);
    int sum = ds.Reduce(pool, 0, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 499500) << parts << " partitions";
  }
}

TEST(DatasetTest, ReduceIdentityRespected) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector({5}, 1);
  int prod = ds.Reduce(pool, 1, [](int a, int b) { return a * b; });
  EXPECT_EQ(prod, 5);
}

TEST(DatasetTest, FromPartitionsPreservesBoundaries) {
  auto ds = Dataset<int>::FromPartitions({{1, 2}, {}, {3}});
  EXPECT_EQ(ds.num_partitions(), 3u);
  EXPECT_EQ(ds.partition(1).size(), 0u);
  EXPECT_EQ(ds.Collect(), (std::vector<int>{1, 2, 3}));
}

TEST(DatasetTest, FilterKeepsMatchingElements) {
  ThreadPool pool(3);
  auto ds = Dataset<int>::FromVector(Iota(100), 5);
  auto evens = ds.Filter(pool, [](const int& x) { return x % 2 == 0; });
  auto out = evens.Collect();
  ASSERT_EQ(out.size(), 50u);
  for (int x : out) EXPECT_EQ(x % 2, 0);
  EXPECT_EQ(evens.num_partitions(), 5u);  // partitioning preserved
}

TEST(DatasetTest, FilterCanEmptyPartitions) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector(Iota(10), 5);
  auto none = ds.Filter(pool, [](const int&) { return false; });
  EXPECT_EQ(none.size(), 0u);
  EXPECT_EQ(none.num_partitions(), 5u);
}

TEST(DatasetTest, FlatMapExpandsElements) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector({1, 2, 3}, 2);
  auto repeated = ds.FlatMap(pool, [](const int& x) {
    return std::vector<int>(static_cast<size_t>(x), x);
  });
  EXPECT_EQ(repeated.Collect(), (std::vector<int>{1, 2, 2, 3, 3, 3}));
}

TEST(DatasetTest, FlatMapCanDropAndChangeType) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector(Iota(6), 3);
  auto strs = ds.FlatMap(pool, [](const int& x) {
    return x % 2 ? std::vector<std::string>{std::to_string(x)}
                 : std::vector<std::string>{};
  });
  EXPECT_EQ(strs.Collect(), (std::vector<std::string>{"1", "3", "5"}));
}

// The engine-level version of the paper's key claim: partitioned tree
// reduction of Fuse equals the sequential fold, for any partitioning.
TEST(DatasetTest, FusionReduceIndependentOfPartitioning) {
  auto values = jsonsi::testing::RandomValues(42, 64);
  std::vector<types::TypeRef> ts;
  ts.reserve(values.size());
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  types::TypeRef sequential = fusion::FuseAll(ts);

  ThreadPool pool(4);
  for (size_t parts : {1u, 2u, 5u, 9u, 32u}) {
    auto ds = Dataset<types::TypeRef>::FromVector(ts, parts);
    types::TypeRef reduced =
        ds.Reduce(pool, types::Type::Empty(), fusion::Fuse);
    EXPECT_TRUE(reduced->Equals(*sequential)) << parts << " partitions";
  }
}

}  // namespace
}  // namespace jsonsi::engine
