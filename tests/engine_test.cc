// Tests for the map/reduce engine: thread pool, partitioning, Map,
// MapPartitions, tree Reduce vs sequential fold equivalence, metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "engine/dataset.h"
#include "engine/thread_pool.h"
#include "fusion/fuse.h"
#include "inference/infer.h"
#include "random_value_gen.h"
#include "types/type.h"

namespace jsonsi::engine {
namespace {

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReentrant) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

// --------------------------------------------------------------- Dataset --

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(DatasetTest, PartitioningIsBalancedAndComplete) {
  auto ds = Dataset<int>::FromVector(Iota(10), 3);
  EXPECT_EQ(ds.num_partitions(), 3u);
  EXPECT_EQ(ds.size(), 10u);
  // 10 = 4 + 3 + 3
  EXPECT_EQ(ds.partition(0).size(), 4u);
  EXPECT_EQ(ds.partition(1).size(), 3u);
  EXPECT_EQ(ds.partition(2).size(), 3u);
  EXPECT_EQ(ds.Collect(), Iota(10));
}

TEST(DatasetTest, MorePartitionsThanItemsClamped) {
  auto ds = Dataset<int>::FromVector(Iota(2), 8);
  EXPECT_EQ(ds.num_partitions(), 2u);
  EXPECT_EQ(ds.Collect(), Iota(2));
}

TEST(DatasetTest, EmptyDataset) {
  auto ds = Dataset<int>::FromVector({}, 4);
  EXPECT_EQ(ds.size(), 0u);
  ThreadPool pool(2);
  int sum = ds.Reduce(pool, 0, [](int a, int b) { return a + b; });
  EXPECT_EQ(sum, 0);
}

TEST(DatasetTest, MapTransformsEveryElement) {
  ThreadPool pool(3);
  auto ds = Dataset<int>::FromVector(Iota(100), 7);
  StageMetrics metrics;
  auto doubled = ds.Map(pool, [](const int& x) { return x * 2; }, &metrics);
  auto out = doubled.Collect();
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], 2 * i);
  EXPECT_EQ(metrics.partition_seconds.size(), 7u);
  EXPECT_GE(metrics.TotalSeconds(), 0.0);
  EXPECT_GE(metrics.MaxSeconds(), 0.0);
}

TEST(DatasetTest, MapChangesElementType) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector(Iota(5), 2);
  auto strs = ds.Map(pool, [](const int& x) { return std::to_string(x); });
  EXPECT_EQ(strs.Collect(),
            (std::vector<std::string>{"0", "1", "2", "3", "4"}));
}

TEST(DatasetTest, MapPartitionsSeesWholePartitions) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector(Iota(10), 4);
  auto sums = ds.MapPartitions(pool, [](const std::vector<int>& part) {
    return std::vector<int>{std::accumulate(part.begin(), part.end(), 0)};
  });
  auto out = sums.Collect();
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 45);
}

TEST(DatasetTest, ReduceMatchesSequentialFoldForAssociativeOp) {
  ThreadPool pool(4);
  auto items = Iota(1000);
  for (size_t parts : {1u, 2u, 3u, 7u, 16u}) {
    auto ds = Dataset<int>::FromVector(items, parts);
    int sum = ds.Reduce(pool, 0, [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, 499500) << parts << " partitions";
  }
}

TEST(DatasetTest, ReduceIdentityRespected) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector({5}, 1);
  int prod = ds.Reduce(pool, 1, [](int a, int b) { return a * b; });
  EXPECT_EQ(prod, 5);
}

TEST(DatasetTest, FromPartitionsPreservesBoundaries) {
  auto ds = Dataset<int>::FromPartitions({{1, 2}, {}, {3}});
  EXPECT_EQ(ds.num_partitions(), 3u);
  EXPECT_EQ(ds.partition(1).size(), 0u);
  EXPECT_EQ(ds.Collect(), (std::vector<int>{1, 2, 3}));
}

TEST(DatasetTest, FilterKeepsMatchingElements) {
  ThreadPool pool(3);
  auto ds = Dataset<int>::FromVector(Iota(100), 5);
  auto evens = ds.Filter(pool, [](const int& x) { return x % 2 == 0; });
  auto out = evens.Collect();
  ASSERT_EQ(out.size(), 50u);
  for (int x : out) EXPECT_EQ(x % 2, 0);
  EXPECT_EQ(evens.num_partitions(), 5u);  // partitioning preserved
}

TEST(DatasetTest, FilterCanEmptyPartitions) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector(Iota(10), 5);
  auto none = ds.Filter(pool, [](const int&) { return false; });
  EXPECT_EQ(none.size(), 0u);
  EXPECT_EQ(none.num_partitions(), 5u);
}

TEST(DatasetTest, FlatMapExpandsElements) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector({1, 2, 3}, 2);
  auto repeated = ds.FlatMap(pool, [](const int& x) {
    return std::vector<int>(static_cast<size_t>(x), x);
  });
  EXPECT_EQ(repeated.Collect(), (std::vector<int>{1, 2, 2, 3, 3, 3}));
}

TEST(DatasetTest, FlatMapCanDropAndChangeType) {
  ThreadPool pool(2);
  auto ds = Dataset<int>::FromVector(Iota(6), 3);
  auto strs = ds.FlatMap(pool, [](const int& x) {
    return x % 2 ? std::vector<std::string>{std::to_string(x)}
                 : std::vector<std::string>{};
  });
  EXPECT_EQ(strs.Collect(), (std::vector<std::string>{"1", "3", "5"}));
}

// The engine-level version of the paper's key claim: partitioned tree
// reduction of Fuse equals the sequential fold, for any partitioning.
TEST(DatasetTest, FusionReduceIndependentOfPartitioning) {
  auto values = jsonsi::testing::RandomValues(42, 64);
  std::vector<types::TypeRef> ts;
  ts.reserve(values.size());
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  types::TypeRef sequential = fusion::FuseAll(ts);

  ThreadPool pool(4);
  for (size_t parts : {1u, 2u, 5u, 9u, 32u}) {
    auto ds = Dataset<types::TypeRef>::FromVector(ts, parts);
    types::TypeRef reduced =
        ds.Reduce(pool, types::Type::Empty(), fusion::Fuse);
    EXPECT_TRUE(reduced->Equals(*sequential)) << parts << " partitions";
  }
}

}  // namespace
}  // namespace jsonsi::engine
