// Tests for the two comparators: Spark-style coercing inference (precision
// loss) and the skeleton baseline (completeness loss).

#include <gtest/gtest.h>

#include "baseline/skeleton.h"
#include "baseline/spark_coercion.h"
#include "fusion/fuse.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "stats/paths.h"
#include "types/printer.h"
#include "types/type_parser.h"

namespace jsonsi::baseline {
namespace {

json::ValueRef V(std::string_view text) {
  auto r = json::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

types::TypeRef T(std::string_view text) {
  auto r = types::ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

// -------------------------------------------------------- spark coercion --

TEST(SparkCoercionTest, ScalarsInferDirectly) {
  EXPECT_TRUE(InferCoerced(*V("1"))->Equals(*T("Num")));
  EXPECT_TRUE(InferCoerced(*V("\"s\""))->Equals(*T("Str")));
  EXPECT_TRUE(InferCoerced(*V("null"))->Equals(*T("Null")));
}

TEST(SparkCoercionTest, MixedArrayCoercesToStr) {
  // The paper's Section 6.1 example: Spark types a mixed array as String
  // only, where fusion keeps [(Num + Str + {l: Str})*].
  types::TypeRef t = InferCoerced(*V(R"([12, "str", {"l": "x"}])"));
  EXPECT_TRUE(t->Equals(*T("[(Str)*]"))) << types::ToString(*t);
}

TEST(SparkCoercionTest, HomogeneousArrayKeepsElementType) {
  EXPECT_TRUE(InferCoerced(*V("[1, 2, 3]"))->Equals(*T("[(Num)*]")));
  EXPECT_TRUE(InferCoerced(*V("[]"))->Equals(*T("[(Empty)*]")));
}

TEST(SparkCoercionTest, ArrayOfRecordsMergesFieldWise) {
  types::TypeRef t = InferCoerced(*V(R"([{"a": 1}, {"b": "s"}])"));
  EXPECT_TRUE(t->Equals(*T("[({a: Num?, b: Str?})*]")))
      << types::ToString(*t);
}

TEST(SparkCoercionTest, MergeRules) {
  EXPECT_TRUE(MergeCoerced(T("Num"), T("Num"))->Equals(*T("Num")));
  EXPECT_TRUE(MergeCoerced(T("Num"), T("Str"))->Equals(*T("Str")));
  EXPECT_TRUE(MergeCoerced(T("Bool"), T("Num"))->Equals(*T("Str")));
  EXPECT_TRUE(MergeCoerced(T("Null"), T("Num"))->Equals(*T("Num")));
  EXPECT_TRUE(MergeCoerced(T("{a: Num}"), T("Num"))->Equals(*T("Str")));
}

TEST(SparkCoercionTest, RecordMergeTracksOptionality) {
  types::TypeRef t =
      MergeCoerced(T("{a: Num, b: Str}"), T("{b: Str, c: Bool}"));
  EXPECT_TRUE(t->Equals(*T("{a: Num?, b: Str, c: Bool?}")))
      << types::ToString(*t);
}

TEST(SparkCoercionTest, MergeIsCommutativeAndAssociative) {
  std::vector<types::TypeRef> ts = {T("Num"), T("Str"), T("{a: Num}"),
                                    T("[(Num)*]"), T("Null"), T("Bool")};
  for (const auto& a : ts) {
    for (const auto& b : ts) {
      EXPECT_TRUE(MergeCoerced(a, b)->Equals(*MergeCoerced(b, a)));
      for (const auto& c : ts) {
        EXPECT_TRUE(MergeCoerced(MergeCoerced(a, b), c)
                        ->Equals(*MergeCoerced(a, MergeCoerced(b, c))));
      }
    }
  }
}

TEST(SparkCoercionTest, SchemaPipelineNeverProducesUnions) {
  std::vector<json::ValueRef> values = {
      V(R"({"a": 1, "b": [1, "x"]})"),
      V(R"({"a": "s", "c": {"d": true}})"),
      V(R"({"a": null, "b": [false]})"),
  };
  types::TypeRef t = InferCoercedSchema(values);
  std::function<void(const types::Type&)> check = [&](const types::Type& ty) {
    EXPECT_FALSE(ty.is_union());
    if (ty.is_record()) {
      for (const auto& f : ty.fields()) check(*f.type);
    } else if (ty.is_array_star()) {
      check(*ty.body());
    }
  };
  check(*t);
}

TEST(SparkCoercionTest, MeasureLossFindsCoercedUnions) {
  std::vector<json::ValueRef> values = {
      V(R"({"x": 1, "deep": {"y": [1, 2]}})"),
      V(R"({"x": "s", "deep": {"y": ["a"]}})"),
  };
  types::TypeRef fused =
      fusion::Fuse(inference::InferType(*values[0]),
                   inference::InferType(*values[1]));
  types::TypeRef coerced = InferCoercedSchema(values);
  CoercionLoss loss = MeasureLoss(fused, coerced);
  // x: Num+Str -> Str, deep.y[]: Num+Str -> Str.
  EXPECT_EQ(loss.union_positions, 2u);
  EXPECT_EQ(loss.coerced_to_str, 2u);
}

TEST(SparkCoercionTest, MeasureLossFindsLostStructure) {
  std::vector<json::ValueRef> values = {
      V(R"({"p": {"a": 1}})"),
      V(R"({"p": "plain"})"),
  };
  types::TypeRef fused = fusion::Fuse(inference::InferType(*values[0]),
                                      inference::InferType(*values[1]));
  types::TypeRef coerced = InferCoercedSchema(values);
  CoercionLoss loss = MeasureLoss(fused, coerced);
  EXPECT_EQ(loss.structure_lost, 1u);
}

// --------------------------------------------------------------- skeleton --

TEST(SkeletonTest, KeepsFrequentDropsRare) {
  std::vector<json::ValueRef> values;
  for (int i = 0; i < 99; ++i) values.push_back(V(R"({"common": 1})"));
  values.push_back(V(R"({"common": 1, "rare": "x"})"));
  types::TypeRef complete = types::Type::Empty();
  for (const auto& v : values) {
    complete = fusion::Fuse(complete, inference::InferType(*v));
  }
  SkeletonOptions opts;
  opts.min_support = 0.05;  // rare occurs in 1% < 5%
  types::TypeRef skeleton = BuildSkeleton(values, complete, opts);
  EXPECT_NE(complete->FindField("rare"), nullptr);
  EXPECT_EQ(skeleton->FindField("rare"), nullptr);
  EXPECT_NE(skeleton->FindField("common"), nullptr);
}

TEST(SkeletonTest, PrunesNestedPathsIndependently) {
  std::vector<json::ValueRef> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back(V(R"({"outer": {"kept": 1}})"));
  }
  values.push_back(V(R"({"outer": {"kept": 1, "dropped": true}})"));
  types::TypeRef complete = types::Type::Empty();
  for (const auto& v : values) {
    complete = fusion::Fuse(complete, inference::InferType(*v));
  }
  types::TypeRef skeleton =
      BuildSkeleton(values, complete, SkeletonOptions{0.1});
  const types::FieldType* outer = skeleton->FindField("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_NE(outer->type->FindField("kept"), nullptr);
  EXPECT_EQ(outer->type->FindField("dropped"), nullptr);
}

TEST(SkeletonTest, CompletenessGapIsMeasurable) {
  // The whole point of the comparison: the skeleton misses value paths,
  // the fused schema never does.
  std::vector<json::ValueRef> values;
  for (int i = 0; i < 200; ++i) values.push_back(V(R"({"a": 1, "b": "s"})"));
  values.push_back(V(R"({"a": 1, "b": "s", "odd": {"deep": true}})"));
  types::TypeRef complete = types::Type::Empty();
  for (const auto& v : values) {
    complete = fusion::Fuse(complete, inference::InferType(*v));
  }
  types::TypeRef skeleton =
      BuildSkeleton(values, complete, SkeletonOptions{0.01});

  std::set<std::string> all_value_paths;
  for (const auto& v : values) {
    for (const auto& p : stats::ValuePaths(*v)) all_value_paths.insert(p);
  }
  double full_cov =
      stats::Coverage(all_value_paths, stats::TypePaths(*complete));
  double skel_cov =
      stats::Coverage(all_value_paths, stats::TypePaths(*skeleton));
  EXPECT_DOUBLE_EQ(full_cov, 1.0);
  EXPECT_LT(skel_cov, 1.0);
}

TEST(SkeletonTest, ZeroSupportKeepsEverything) {
  std::vector<json::ValueRef> values = {V(R"({"a": 1})"),
                                        V(R"({"b": "s"})")};
  types::TypeRef complete = fusion::Fuse(inference::InferType(*values[0]),
                                         inference::InferType(*values[1]));
  types::TypeRef skeleton =
      BuildSkeleton(values, complete, SkeletonOptions{0.0});
  EXPECT_TRUE(skeleton->Equals(*complete));
}

}  // namespace
}  // namespace jsonsi::baseline
