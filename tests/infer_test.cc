// Tests for the Map-phase inference rules (Figure 4) and the soundness
// property of Lemma 5.1: V in [[InferType(V)]], checked over both
// hand-written and randomly generated values.

#include <gtest/gtest.h>

#include "inference/infer.h"
#include "json/parser.h"
#include "random_value_gen.h"
#include "types/membership.h"
#include "types/printer.h"
#include "types/type_parser.h"

namespace jsonsi::inference {
namespace {

types::TypeRef InferJson(std::string_view text) {
  auto r = InferTypeFromJson(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return r.ok() ? r.value() : types::Type::Empty();
}

void ExpectInfers(std::string_view value_text, std::string_view type_text) {
  types::TypeRef inferred = InferJson(value_text);
  auto expected = types::ParseType(type_text);
  ASSERT_TRUE(expected.ok()) << expected.status();
  EXPECT_TRUE(inferred->Equals(*expected.value()))
      << value_text << " inferred " << types::ToString(*inferred)
      << " expected " << type_text;
}

TEST(InferTest, BasicRules) {
  ExpectInfers("null", "Null");
  ExpectInfers("true", "Bool");
  ExpectInfers("false", "Bool");
  ExpectInfers("3.25", "Num");
  ExpectInfers("\"abc\"", "Str");
}

TEST(InferTest, EmptyContainers) {
  ExpectInfers("{}", "{}");
  ExpectInfers("[]", "[]");
}

TEST(InferTest, RecordRule) {
  ExpectInfers(R"({"a":1,"b":"s","c":null})", "{a: Num, b: Str, c: Null}");
}

TEST(InferTest, ArrayRuleKeepsPositions) {
  // Initial inference is isomorphic to the value: exact array types.
  ExpectInfers(R"([1,"s",true])", "[Num, Str, Bool]");
}

TEST(InferTest, PaperFigureOneShape) {
  // The mixed-content array of Section 2: two strings then a record.
  ExpectInfers(R"(["abc","cde",{"E":"fr","F":12}])",
               "[Str, Str, {E: Str, F: Num}]");
}

TEST(InferTest, DeepNesting) {
  ExpectInfers(R"({"a":{"b":{"c":[{"d":null}]}}})",
               "{a: {b: {c: [{d: Null}]}}}");
}

TEST(InferTest, AllFieldsMandatory) {
  types::TypeRef t = InferJson(R"({"x":1,"y":2})");
  for (const types::FieldType& f : t->fields()) {
    EXPECT_FALSE(f.optional);
  }
}

TEST(InferTest, NeverProducesUnionsOptionalsOrStars) {
  // Section 5.1: the Map phase uses only the core of the type language.
  std::function<void(const types::Type&)> check = [&](const types::Type& t) {
    EXPECT_FALSE(t.is_union());
    EXPECT_FALSE(t.is_array_star());
    EXPECT_FALSE(t.is_empty());
    if (t.is_record()) {
      for (const auto& f : t.fields()) {
        EXPECT_FALSE(f.optional);
        check(*f.type);
      }
    } else if (t.is_array_exact()) {
      for (const auto& e : t.elements()) check(*e);
    }
  };
  for (uint64_t seed = 0; seed < 50; ++seed) {
    check(*InferType(*jsonsi::testing::RandomValue(seed)));
  }
}

TEST(InferTest, InferredTypeIsIsomorphicInShape) {
  // The inferred type has exactly one type node per value node for scalars
  // and arrays; records add one node per field on both sides.
  for (uint64_t seed = 0; seed < 30; ++seed) {
    json::ValueRef v = jsonsi::testing::RandomValue(seed);
    types::TypeRef t = InferType(*v);
    EXPECT_EQ(t->size(), v->TreeSize()) << "seed=" << seed;
  }
}

TEST(InferTest, DeterministicAcrossCalls) {
  json::ValueRef v = jsonsi::testing::RandomValue(77);
  EXPECT_TRUE(InferType(*v)->Equals(*InferType(*v)));
}

TEST(InferTest, ParseErrorPropagates) {
  EXPECT_FALSE(InferTypeFromJson("not json").ok());
}

// ------------------------------------------------ Lemma 5.1 (soundness) --

class InferSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InferSoundness, ValueBelongsToItsInferredType) {
  uint64_t seed = GetParam();
  // Exercise a spread of shapes per seed.
  jsonsi::testing::RandomValueOptions opts;
  opts.max_depth = 5;
  for (int i = 0; i < 20; ++i) {
    json::ValueRef v = jsonsi::testing::RandomValue(seed * 1000 + i, opts);
    types::TypeRef t = InferType(*v);
    EXPECT_TRUE(types::Matches(*v, *t))
        << "seed=" << seed << " i=" << i << " type=" << types::ToString(*t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InferSoundness,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace jsonsi::inference
