// Tests for the parameterized Fuser (tuple-array precision — the paper's
// future-work extension): rule behaviour, default equivalence with the
// paper's operator, and preservation of the algebraic theorems under every
// option setting.

#include <gtest/gtest.h>

#include "fusion/fuse.h"
#include "inference/infer.h"
#include "random_value_gen.h"
#include "types/membership.h"
#include "types/printer.h"
#include "types/subtype.h"
#include "types/type_parser.h"

namespace jsonsi::fusion {
namespace {

using types::ToString;
using types::Type;
using types::TypeRef;

TypeRef T(std::string_view text) {
  auto r = types::ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

Fuser Tuples(size_t max_len) {
  FuseOptions opts;
  opts.max_tuple_length = max_len;
  return Fuser(opts);
}

TEST(FuserOptionsTest, DefaultMatchesPaperBehaviour) {
  Fuser paper;
  TypeRef a = T("[Num, Str]");
  TypeRef b = T("[Num, Str]");
  EXPECT_TRUE(paper.Fuse(a, b)->Equals(*T("[(Num + Str)*]")));
  EXPECT_TRUE(paper.Fuse(a, b)->Equals(*Fuse(a, b)));  // free function agrees
}

TEST(FuserOptionsTest, EqualLengthShortArraysFusePositionally) {
  Fuser fuser = Tuples(4);
  TypeRef fused = fuser.Fuse(T("[Num, Str]"), T("[Bool, Str]"));
  EXPECT_TRUE(fused->Equals(*T("[(Num + Bool), Str]"))) << ToString(*fused);
}

TEST(FuserOptionsTest, LengthMismatchFallsBackToStar) {
  Fuser fuser = Tuples(4);
  TypeRef fused = fuser.Fuse(T("[Num, Str]"), T("[Num]"));
  EXPECT_TRUE(fused->Equals(*T("[(Num + Str)*]"))) << ToString(*fused);
}

TEST(FuserOptionsTest, OverLengthFallsBackToStar) {
  Fuser fuser = Tuples(2);
  TypeRef fused = fuser.Fuse(T("[Num, Num, Num]"), T("[Str, Str, Str]"));
  EXPECT_TRUE(fused->Equals(*T("[(Num + Str)*]"))) << ToString(*fused);
}

TEST(FuserOptionsTest, StarAbsorbsTuples) {
  Fuser fuser = Tuples(4);
  TypeRef fused = fuser.Fuse(T("[(Bool)*]"), T("[Num, Str]"));
  EXPECT_TRUE(fused->Equals(*T("[(Bool + Num + Str)*]"))) << ToString(*fused);
}

TEST(FuserOptionsTest, TuplePreservesGeoCoordinatesShape) {
  // The motivating precision case: [lon, lat] pairs keep their arity.
  Fuser fuser = Tuples(2);
  TypeRef fused = fuser.Fuse(T("{coordinates: [Num, Num]}"),
                             T("{coordinates: [Num, Num]}"));
  EXPECT_TRUE(fused->Equals(*T("{coordinates: [Num, Num]}")))
      << ToString(*fused);
  // And the paper-default fuser loses it.
  TypeRef starred = Fuse(T("{coordinates: [Num, Num]}"),
                         T("{coordinates: [Num, Num]}"));
  EXPECT_TRUE(starred->Equals(*T("{coordinates: [(Num)*]}")));
}

TEST(FuserOptionsTest, TupleModeIsIdempotentOnTuples) {
  Fuser fuser = Tuples(4);
  TypeRef t = T("[Num, (Num + Str)]");
  EXPECT_TRUE(fuser.Fuse(t, t)->Equals(*t));
}

// ---- algebraic theorems hold for every option value ----------------------

struct SeedAndLen {
  uint64_t seed;
  size_t max_tuple_length;
};

class FuserOptionProperties
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(FuserOptionProperties, CommutativeAssociativeCorrect) {
  auto [seed, max_len] = GetParam();
  Fuser fuser = Tuples(max_len);
  auto values = jsonsi::testing::RandomValues(seed, 12);
  std::vector<TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));

  for (size_t i = 0; i < ts.size(); ++i) {
    for (size_t j = 0; j < ts.size(); ++j) {
      TypeRef ab = fuser.Fuse(ts[i], ts[j]);
      ASSERT_TRUE(ab->Equals(*fuser.Fuse(ts[j], ts[i])))
          << "commutativity, L=" << max_len << "\n a=" << ToString(*ts[i])
          << "\n b=" << ToString(*ts[j]);
      // Correctness as subtyping (Theorem 5.2 generalized).
      ASSERT_TRUE(types::IsSubtypeOf(*ts[i], *ab));
      ASSERT_TRUE(types::IsSubtypeOf(*ts[j], *ab));
      for (size_t k = 0; k < ts.size(); k += 4) {
        TypeRef left = fuser.Fuse(ab, ts[k]);
        TypeRef right = fuser.Fuse(ts[i], fuser.Fuse(ts[j], ts[k]));
        ASSERT_TRUE(left->Equals(*right))
            << "associativity, L=" << max_len << "\n a=" << ToString(*ts[i])
            << "\n b=" << ToString(*ts[j]) << "\n c=" << ToString(*ts[k])
            << "\n (ab)c=" << ToString(*left)
            << "\n a(bc)=" << ToString(*right);
      }
    }
  }
}

TEST_P(FuserOptionProperties, MembershipPreserved) {
  auto [seed, max_len] = GetParam();
  Fuser fuser = Tuples(max_len);
  auto values = jsonsi::testing::RandomValues(seed + 300, 20);
  std::vector<TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  TypeRef schema = fuser.FuseAll(ts);
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(types::Matches(*values[i], *schema))
        << "L=" << max_len << " value#" << i << "\n"
        << ToString(*schema);
  }
}

TEST_P(FuserOptionProperties, HigherPrecisionNeverSmallerSchema) {
  // The precision/efficiency relationship: tuples can only add information,
  // so the schema under tuple mode is a SUBTYPE of the paper-mode schema
  // (more precise), and at least as large.
  auto [seed, max_len] = GetParam();
  if (max_len == 0) return;  // nothing to compare
  Fuser precise = Tuples(max_len);
  Fuser paper;
  auto values = jsonsi::testing::RandomValues(seed + 700, 16);
  std::vector<TypeRef> ts;
  for (const auto& v : values) ts.push_back(inference::InferType(*v));
  TypeRef tight = precise.FuseAll(ts);
  TypeRef loose = paper.FuseAll(ts);
  ASSERT_TRUE(types::IsSubtypeOf(*tight, *loose))
      << "precise schema must refine the paper schema\n tight="
      << ToString(*tight) << "\n loose=" << ToString(*loose);
  EXPECT_GE(tight->size() + 2, loose->size());  // small slack for stars
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLengths, FuserOptionProperties,
    ::testing::Combine(::testing::Range<uint64_t>(0, 6),
                       ::testing::Values<size_t>(0, 1, 2, 4, 16)));

}  // namespace
}  // namespace jsonsi::fusion
