// Tests for statistics-annotated schemas (SchemaProfiler): counting
// semantics, provenance, merge associativity, projection agreement with the
// fusion pipeline, and rendering.

#include <gtest/gtest.h>

#include "annotate/counted_schema.h"
#include "fusion/fuse.h"
#include "fusion/tree_fuser.h"
#include "inference/infer.h"
#include "json/parser.h"
#include "random_value_gen.h"
#include "types/printer.h"
#include "types/type_parser.h"

namespace jsonsi::annotate {
namespace {

json::ValueRef V(std::string_view text) {
  auto r = json::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

types::TypeRef T(std::string_view text) {
  auto r = types::ParseType(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

TEST(SchemaProfilerTest, EmptyProfile) {
  SchemaProfiler profiler;
  EXPECT_EQ(profiler.record_count(), 0u);
  EXPECT_TRUE(profiler.ToType()->is_empty());
}

TEST(SchemaProfilerTest, CountsKindsPerPosition) {
  SchemaProfiler p;
  p.Observe(*V(R"({"x": 1})"), 0);
  p.Observe(*V(R"({"x": "s"})"), 1);
  p.Observe(*V(R"({"x": 2})"), 2);
  const ProfileNode& root = p.root();
  EXPECT_EQ(root.record_count, 3u);
  const auto& x = root.fields.at("x");
  EXPECT_EQ(x.present_count, 3u);
  EXPECT_EQ(x.node->num_count, 2u);
  EXPECT_EQ(x.node->str_count, 1u);
}

TEST(SchemaProfilerTest, FieldPresenceGivesOptionality) {
  SchemaProfiler p;
  p.Observe(*V(R"({"always": 1})"), 0);
  p.Observe(*V(R"({"always": 2, "sometimes": true})"), 1);
  types::TypeRef t = p.ToType();
  EXPECT_TRUE(t->Equals(*T("{always: Num, sometimes: Bool?}")))
      << types::ToString(*t);
  EXPECT_EQ(p.root().fields.at("sometimes").present_count, 1u);
}

TEST(SchemaProfilerTest, ProvenanceFirstSeen) {
  SchemaProfiler p;
  p.Observe(*V(R"({"a": 1})"), 10);
  p.Observe(*V(R"({"a": 1, "late": null})"), 25);
  p.Observe(*V(R"({"a": 1, "late": null})"), 30);
  EXPECT_EQ(p.root().fields.at("a").first_seen, 10u);
  EXPECT_EQ(p.root().fields.at("late").first_seen, 25u);
}

TEST(SchemaProfilerTest, ValueStatistics) {
  SchemaProfiler p;
  p.Observe(*V(R"({"n": 5, "s": "abc", "arr": [1, 2, 3]})"), 0);
  p.Observe(*V(R"({"n": -2, "s": "xy", "arr": []})"), 1);
  const auto& root = p.root();
  EXPECT_DOUBLE_EQ(root.fields.at("n").node->num_stats.min, -2);
  EXPECT_DOUBLE_EQ(root.fields.at("n").node->num_stats.max, 5);
  EXPECT_DOUBLE_EQ(root.fields.at("s").node->str_len_stats.min, 2);
  EXPECT_DOUBLE_EQ(root.fields.at("s").node->str_len_stats.max, 3);
  EXPECT_DOUBLE_EQ(root.fields.at("arr").node->array_len_stats.min, 0);
  EXPECT_DOUBLE_EQ(root.fields.at("arr").node->array_len_stats.max, 3);
}

TEST(SchemaProfilerTest, ArrayElementsPooled) {
  SchemaProfiler p;
  p.Observe(*V(R"([1, "s", {"k": true}])"), 0);
  types::TypeRef t = p.ToType();
  EXPECT_TRUE(t->Equals(*T("[(Num + Str + {k: Bool})*]")))
      << types::ToString(*t);
}

TEST(SchemaProfilerTest, MergeAddsCountsAndTakesMinProvenance) {
  SchemaProfiler a, b;
  a.Observe(*V(R"({"x": 1})"), 5);
  b.Observe(*V(R"({"x": "s", "y": null})"), 2);
  b.Observe(*V(R"({"x": 2})"), 9);
  a.Merge(b);
  EXPECT_EQ(a.record_count(), 3u);
  const auto& x = a.root().fields.at("x");
  EXPECT_EQ(x.present_count, 3u);
  EXPECT_EQ(x.node->num_count, 2u);
  EXPECT_EQ(x.node->str_count, 1u);
  EXPECT_EQ(x.first_seen, 2u);
  EXPECT_EQ(a.root().fields.at("y").present_count, 1u);
}

TEST(SchemaProfilerTest, MergeOrderIrrelevant) {
  auto values = jsonsi::testing::RandomValues(3, 30);
  SchemaProfiler left, right;
  // left: (A merge B); right: (B merge A) over split halves.
  {
    SchemaProfiler a, b;
    for (size_t i = 0; i < 15; ++i) a.Observe(*values[i], i);
    for (size_t i = 15; i < 30; ++i) b.Observe(*values[i], i);
    left.Merge(a);
    left.Merge(b);
    SchemaProfiler a2, b2;
    for (size_t i = 0; i < 15; ++i) a2.Observe(*values[i], i);
    for (size_t i = 15; i < 30; ++i) b2.Observe(*values[i], i);
    right.Merge(b2);
    right.Merge(a2);
  }
  EXPECT_TRUE(left.ToType()->Equals(*right.ToType()));
  EXPECT_EQ(left.ToString(), right.ToString());
}

TEST(SchemaProfilerTest, MergeEqualsSingleStream) {
  auto values = jsonsi::testing::RandomValues(7, 40);
  SchemaProfiler whole;
  for (size_t i = 0; i < values.size(); ++i) whole.Observe(*values[i], i);
  SchemaProfiler parts;
  for (size_t start = 0; start < values.size(); start += 10) {
    SchemaProfiler chunk;
    for (size_t i = start; i < start + 10; ++i) chunk.Observe(*values[i], i);
    parts.Merge(chunk);
  }
  EXPECT_EQ(parts.record_count(), whole.record_count());
  EXPECT_EQ(parts.ToString(), whole.ToString());
}

// The profiler's type projection carries the same information as the fusion
// pipeline: it equals the star-normalized fused type (self-fusion stars the
// exact arrays that the profiler pools by construction).
class ProfilerVsFusion : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProfilerVsFusion, ProjectionMatchesStarNormalizedFusion) {
  auto values = jsonsi::testing::RandomValues(GetParam(), 25);
  SchemaProfiler profiler;
  fusion::TreeFuser fuser;
  for (size_t i = 0; i < values.size(); ++i) {
    profiler.Observe(*values[i], i);
    fuser.Add(inference::InferType(*values[i]));
  }
  types::TypeRef fused = fuser.Finish();
  types::TypeRef stable = fusion::Fuse(fused, fused);  // star-normalize
  EXPECT_TRUE(profiler.ToType()->Equals(*stable))
      << "profiler: " << types::ToString(*profiler.ToType())
      << "\nfusion:   " << types::ToString(*stable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfilerVsFusion,
                         ::testing::Range<uint64_t>(0, 15));

TEST(SchemaProfilerTest, RenderingShowsCountsAndProvenance) {
  SchemaProfiler p;
  p.Observe(*V(R"({"a": 1})"), 0);
  p.Observe(*V(R"({"a": "s", "b": true})"), 1);
  std::string s = p.ToString(/*show_value_stats=*/false);
  EXPECT_NE(s.find("a: Num[1] + Str[1] [2/2, first@0]"), std::string::npos)
      << s;
  EXPECT_NE(s.find("b: Bool[1]? [1/2, first@1]"), std::string::npos) << s;
}

TEST(SchemaProfilerTest, RenderingValueStats) {
  SchemaProfiler p;
  p.Observe(*V(R"({"n": 3})"), 0);
  p.Observe(*V(R"({"n": 8})"), 1);
  std::string s = p.ToString(/*show_value_stats=*/true);
  EXPECT_NE(s.find("Num[2]{3..8}"), std::string::npos) << s;
}

}  // namespace
}  // namespace jsonsi::annotate
