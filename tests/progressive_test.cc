// Tests for progressive refinement: convergence detection, stability runs,
// resumption after drift, and dataset-level behaviour (homogeneous datasets
// converge quickly; key-as-data datasets keep drifting).

#include <gtest/gtest.h>

#include "core/progressive.h"
#include "datagen/generator.h"
#include "json/parser.h"

namespace jsonsi::core {
namespace {

std::vector<json::ValueRef> Batch(std::initializer_list<const char*> docs) {
  std::vector<json::ValueRef> out;
  for (const char* doc : docs) out.push_back(json::Parse(doc).value());
  return out;
}

TEST(ProgressiveTest, FirstBatchAlwaysChanges) {
  ProgressiveInferencer prog;
  BatchReport r = prog.AddBatch(Batch({R"({"a": 1})"}));
  EXPECT_TRUE(r.schema_changed);
  EXPECT_EQ(r.stable_run, 0u);
  EXPECT_EQ(r.records_total, 1u);
  EXPECT_FALSE(prog.converged());
}

TEST(ProgressiveTest, IdenticalBatchesBuildAStableRun) {
  ProgressiveOptions opts;
  opts.stable_batches_to_converge = 3;
  ProgressiveInferencer prog(opts);
  prog.AddBatch(Batch({R"({"a": 1})"}));
  for (size_t i = 1; i <= 3; ++i) {
    BatchReport r = prog.AddBatch(Batch({R"({"a": 2})"}));
    EXPECT_FALSE(r.schema_changed);
    EXPECT_EQ(r.stable_run, i);
  }
  EXPECT_TRUE(prog.converged());
  EXPECT_EQ(prog.history().size(), 4u);
}

TEST(ProgressiveTest, DriftResetsTheRun) {
  ProgressiveOptions opts;
  opts.stable_batches_to_converge = 2;
  ProgressiveInferencer prog(opts);
  prog.AddBatch(Batch({R"({"a": 1})"}));
  prog.AddBatch(Batch({R"({"a": 2})"}));  // stable 1
  BatchReport drift = prog.AddBatch(Batch({R"({"a": 1, "new": true})"}));
  EXPECT_TRUE(drift.schema_changed);
  EXPECT_EQ(drift.stable_run, 0u);
  EXPECT_FALSE(prog.converged());
  prog.AddBatch(Batch({R"({"a": 3})"}));
  prog.AddBatch(Batch({R"({"a": 4})"}));
  EXPECT_TRUE(prog.converged());
}

TEST(ProgressiveTest, SnapshotMatchesIngestedData) {
  ProgressiveInferencer prog;
  prog.AddBatch(Batch({R"({"a": 1})", R"({"a": "s", "b": null})"}));
  Schema schema = prog.Snapshot();
  EXPECT_EQ(schema.stats.record_count, 2u);
  EXPECT_TRUE(schema.type->is_record());
}

TEST(ProgressiveTest, SchemaSizeIsMonotoneNonDecreasing) {
  auto gen = datagen::MakeGenerator(datagen::DatasetId::kTwitter, 3);
  ProgressiveInferencer prog;
  size_t last = 0;
  for (uint64_t b = 0; b < 10; ++b) {
    BatchReport r = prog.AddBatch(gen->GenerateMany(100, b * 100));
    EXPECT_GE(r.schema_size, last);
    last = r.schema_size;
  }
}

TEST(ProgressiveTest, GitHubConvergesQuicklyWikidataDoesNot) {
  // The paper's §7 exploration idea quantified: homogeneous data converges
  // within a few small batches; key-as-data keeps adding structure.
  ProgressiveOptions opts;
  opts.stable_batches_to_converge = 3;

  ProgressiveInferencer github(opts);
  auto gh = datagen::MakeGenerator(datagen::DatasetId::kGitHub, 7);
  uint64_t gh_batches = 0;
  while (!github.converged() && gh_batches < 100) {
    github.AddBatch(gh->GenerateMany(200, gh_batches * 200));
    ++gh_batches;
  }
  EXPECT_TRUE(github.converged());
  EXPECT_LT(gh_batches, 60u);

  ProgressiveInferencer wikidata(opts);
  auto wd = datagen::MakeGenerator(datagen::DatasetId::kWikidata, 7);
  uint64_t wd_batches = 0;
  while (!wikidata.converged() && wd_batches < 20) {
    wikidata.AddBatch(wd->GenerateMany(200, wd_batches * 200));
    ++wd_batches;
  }
  EXPECT_FALSE(wikidata.converged());  // still discovering new keys
}

}  // namespace
}  // namespace jsonsi::core
